#ifndef WEBDIS_CORE_TRACE_H_
#define WEBDIS_CORE_TRACE_H_

#include <string>
#include <vector>

#include "server/query_server.h"

namespace webdis::core {

class Engine;

/// Collects per-node visit events from every query server of an Engine and
/// renders them as the paper's Figure-7-style traversal trace: one line per
/// visit with the node, the clone state as received, the role the node
/// played, and the outcome. Attach before running, render after.
///
///   core::TraceCollector trace(&engine);
///   auto outcome = engine.Run(disql);
///   std::cout << trace.Format();
class TraceCollector {
 public:
  /// Installs itself as the engine's visit observer. The engine must
  /// outlive the collector; only one observer is active at a time.
  explicit TraceCollector(Engine* engine);

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  const std::vector<server::VisitEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Aligned text table of the trace.
  std::string Format() const;

  /// One-line description of a single visit (used by Format and the shell).
  static std::string DescribeVisit(const server::VisitEvent& event);

 private:
  std::vector<server::VisitEvent> events_;
};

}  // namespace webdis::core

#endif  // WEBDIS_CORE_TRACE_H_
