#ifndef WEBDIS_CORE_ENGINE_H_
#define WEBDIS_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/data_shipping.h"
#include "client/user_site.h"
#include "common/status.h"
#include "disql/compiler.h"
#include "net/reliable.h"
#include "net/sim.h"
#include "server/http_server.h"
#include "server/query_server.h"
#include "web/graph.h"
#include "web/mutation.h"

namespace webdis::core {

/// End-to-end configuration of a simulated WEBDIS deployment.
struct EngineOptions {
  net::SimNetworkOptions network;
  server::QueryServerOptions server;
  client::UserSiteOptions client;
  /// Per-host overrides of `server` (e.g. a tight admission queue on one
  /// hot site while the rest of the federation runs the defaults).
  std::map<std::string, server::QueryServerOptions> server_overrides;
  /// Fraction of web hosts that run a WEBDIS query server (1.0 = every
  /// host participates; lower values exercise the §7.1 migration path).
  double participation_fraction = 1.0;
  uint64_t participation_seed = 1;
  /// Hosts that run a query server regardless of the sampled fraction
  /// (e.g. the StartNode site, which a user would naturally pick from the
  /// participating federation).
  std::vector<std::string> forced_participants;
  /// Centrally process clones that could not be delivered to
  /// non-participating sites, via the data-shipping fallback.
  bool fallback_processing = true;
  /// Storage fault injection for the durability layer (PROTOCOL.md §8).
  /// When a host's effective server options have `persist.enabled`, the
  /// engine gives that server its own deterministic MemoryPersistBackend,
  /// seeded per-host from `persist_faults.seed`, applying these torn-write /
  /// short-read rules at crash and load time.
  server::PersistFaultRules persist_faults;
  /// Timeout used when client.use_cht is false (the strawman completion
  /// rule of Section 2.7).
  SimDuration completion_timeout = 10 * kSecond;
};

/// Aggregated network traffic for one run (deltas over the run).
struct TrafficSummary {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t inter_host_messages = 0;
  uint64_t inter_host_bytes = 0;
  uint64_t query_messages = 0;
  uint64_t query_bytes = 0;
  uint64_t report_messages = 0;
  uint64_t report_bytes = 0;
  uint64_t fetch_messages = 0;
  uint64_t fetch_bytes = 0;
  uint64_t terminate_messages = 0;
  uint64_t connection_refused = 0;
};

/// Everything measured about one query run.
struct RunOutcome {
  query::QueryId id;
  bool completed = false;
  /// Completion was reached by deadline GC rather than a settled CHT: some
  /// hosts were unreachable and the answer may be missing their rows.
  bool partial = false;
  std::vector<std::string> unreachable_hosts;
  /// Some visits were shed, expired, vetoed or truncated by the per-query
  /// budget / admission control (PROTOCOL.md §7): the answer is explicitly
  /// degraded and `budget_exceeded_nodes` names where.
  bool budget_exhausted = false;
  std::vector<std::string> budget_exceeded_nodes;
  std::vector<relational::ResultSet> results;
  SimTime submit_time = 0;
  SimTime completion_time = 0;     // when the user site *knew* it was done
  SimTime last_report_time = 0;    // when the last result actually arrived
  client::QueryRunStats client_stats;
  server::QueryServerStats server_stats;  // summed over all servers
  size_t cht_total_entries = 0;
  size_t cht_max_active = 0;
  uint64_t cht_suppressed = 0;
  uint64_t cht_unmatched_deletes = 0;
  size_t fallback_node_count = 0;
  baseline::DataShippingOutcome fallback;  // §7.1 centralized continuation
  /// §10 dynamic-web outcome. `pinned_epoch` is the web epoch the query was
  /// submitted under (0 = unpinned / frozen web). `node_versions` maps each
  /// evaluated node to the document version its report was stamped with;
  /// the classification below compares those stamps against the web at
  /// collection time:
  ///   fresh            — current version == stamped version
  ///   stale-consistent — document still exists but was edited after the
  ///                      visit (the answer is exact for its stamped
  ///                      version, just not for the latest one)
  ///   superseded       — document (or its whole site) is gone
  /// A mutated web therefore yields an explicitly qualified answer, never a
  /// silent torn read.
  uint64_t pinned_epoch = 0;
  std::map<std::string, uint64_t> node_versions;
  size_t fresh_nodes = 0;
  size_t stale_consistent_nodes = 0;
  size_t superseded_nodes = 0;
  std::vector<std::string> stale_node_urls;
  std::vector<std::string> superseded_node_urls;
  /// Hosts that answered SiteRetired mid-run (named degraded outcome,
  /// distinct from unreachable_hosts).
  std::vector<std::string> retired_sites;
  /// Nodes hidden from this run by its epoch pin.
  std::vector<std::string> epoch_gated_nodes;
  /// Client-side at-least-once delivery counters (initial dispatch).
  net::RetryStats client_retry;
  TrafficSummary traffic;
  /// Stepper configuration and concurrency counters (workers == 0 means the
  /// run used the legacy single-threaded event loop).
  size_t workers = 0;
  net::ParallelStats parallel;

  /// Total rows across all result sets.
  size_t TotalRows() const;
};

/// Renders result sets as aligned text tables (the Figure 8 display).
std::string FormatResults(const std::vector<relational::ResultSet>& results);

/// Renders one run's degradation-relevant counters — client-side stats plus
/// the aggregated server-side send-error / shed / breaker / budget counters
/// — as `name: value` lines (zero counters omitted). The observability
/// companion to the partial-outcome flags.
std::string FormatRunStats(const RunOutcome& outcome);

/// A complete single-process WEBDIS deployment over the simulated network:
/// one HttpServer per web host, one QueryServer per *participating* host,
/// and a UserSite on a dedicated client host. Run() submits a DISQL query,
/// drives the network to quiescence, applies the configured completion rule
/// and optional centralized fallback, and returns results + full metrics.
class Engine {
 public:
  /// `web` must outlive the engine.
  Engine(const web::WebGraph* web, EngineOptions options = EngineOptions());
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Parses, compiles, submits, and runs a DISQL query to completion.
  Result<RunOutcome> Run(const std::string& disql,
                         const std::string& user = "user");

  /// Same, for an already-compiled query.
  Result<RunOutcome> RunCompiled(const disql::CompiledQuery& compiled,
                                 const std::string& user = "user");

  // -- Orchestration access (tests and benchmarks drive partial runs) ------
  net::SimNetwork& network() { return *network_; }
  client::UserSite& user_site() { return *user_site_; }
  /// nullptr if the host does not participate.
  server::QueryServer* server_for(const std::string& host);
  /// The host's storage backend; nullptr unless its effective server
  /// options enabled persistence. Tests use this to inspect snapshots and
  /// WAL bytes directly.
  server::MemoryPersistBackend* persist_backend_for(const std::string& host);
  const std::vector<std::string>& participating_hosts() const {
    return participating_hosts_;
  }
  /// Installs a visit observer on every query server.
  void ObserveVisits(server::QueryServer::VisitObserver observer);

  /// §10: attaches a seeded mutation plan over a mutable view of the
  /// engine's web. Schedules one network timer per distinct pending
  /// mutation time; each firing applies the due batch and orchestrates the
  /// deployment to match — a spawned host gets an HttpServer plus a
  /// participating QueryServer (reachable to queries pinned at or after the
  /// spawn epoch), a retired host gets QueryServer::Retire() and its HTTP
  /// server stopped. Also wires the client's epoch source to `web->epoch`
  /// so every subsequent Submit pins the then-current epoch.
  ///
  /// `web` must be the same graph the engine was constructed over (the
  /// const view the servers read through). Requires worker_threads == 0:
  /// mutations touch shared WebGraph state outside the parallel stepper's
  /// endpoint confinement. `plan` must outlive the engine.
  void InstallMutationPlan(web::WebGraph* web, web::MutationPlan* plan);

  /// Hosts spawned / retired by the installed mutation plan so far.
  const std::vector<std::string>& spawned_hosts() const {
    return spawned_hosts_;
  }
  const std::vector<std::string>& churn_retired_hosts() const {
    return churn_retired_hosts_;
  }

  /// Submits without driving the network (for step-wise orchestration).
  Result<query::QueryId> Submit(const disql::CompiledQuery& compiled,
                                const std::string& user = "user");

  /// Collects the outcome for a query after the caller drove the network.
  RunOutcome CollectOutcome(const query::QueryId& id,
                            const TrafficSummary& baseline_traffic);

  /// Snapshot of cumulative traffic (subtract snapshots for deltas).
  TrafficSummary TrafficSnapshot() const;

  server::QueryServerStats AggregateServerStats() const;

  static constexpr const char* kClientHost = "user.site";

 private:
  /// Creates, starts and registers a participating QueryServer on `host`
  /// (with its per-host persistence backend when enabled). Shared between
  /// construction and mid-run site spawns.
  void AddParticipant(const std::string& host,
                      const server::QueryServerOptions& server_options);
  /// Timer callback: applies due mutations and reconciles the deployment.
  void ApplyDueMutations();

  const web::WebGraph* web_;
  EngineOptions options_;
  std::unique_ptr<net::SimNetwork> network_;
  std::map<std::string, std::unique_ptr<server::HttpServer>> http_servers_;
  std::map<std::string, std::unique_ptr<server::QueryServer>> query_servers_;
  std::map<std::string, std::unique_ptr<server::MemoryPersistBackend>>
      persist_backends_;
  std::vector<std::string> participating_hosts_;
  std::unique_ptr<client::UserSite> user_site_;
  /// §10 churn state (set by InstallMutationPlan; null on frozen webs).
  web::WebGraph* mutable_web_ = nullptr;
  web::MutationPlan* mutation_plan_ = nullptr;
  std::vector<std::string> spawned_hosts_;
  std::vector<std::string> churn_retired_hosts_;
};

/// Runs the same compiled query through the data-shipping baseline on a
/// fresh deployment of the same web (HTTP servers only), returning the
/// baseline outcome plus its traffic summary. The comparator for T1.
struct BaselineRun {
  baseline::DataShippingOutcome outcome;
  TrafficSummary traffic;
};
Result<BaselineRun> RunDataShippingBaseline(
    const web::WebGraph& web, const disql::CompiledQuery& compiled,
    net::SimNetworkOptions network_options = net::SimNetworkOptions(),
    baseline::DataShippingOptions options = baseline::DataShippingOptions());

}  // namespace webdis::core

#endif  // WEBDIS_CORE_ENGINE_H_
