#include "core/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_annotations.h"
#include "html/url.h"

namespace webdis::core {

size_t RunOutcome::TotalRows() const {
  size_t total = 0;
  for (const relational::ResultSet& rs : results) total += rs.rows.size();
  return total;
}

std::string FormatResults(const std::vector<relational::ResultSet>& results) {
  std::string out;
  for (const relational::ResultSet& rs : results) {
    const size_t cols = rs.column_labels.size();
    std::vector<size_t> widths(cols);
    for (size_t c = 0; c < cols; ++c) {
      widths[c] = rs.column_labels[c].size();
    }
    std::vector<std::vector<std::string>> cells;
    for (const relational::Tuple& row : rs.rows) {
      std::vector<std::string> rendered;
      for (size_t c = 0; c < cols && c < row.size(); ++c) {
        std::string cell = row[c].ToString();
        if (cell.size() > 60) cell = cell.substr(0, 57) + "...";
        widths[c] = std::max(widths[c], cell.size());
        rendered.push_back(std::move(cell));
      }
      cells.push_back(std::move(rendered));
    }
    const auto pad = [](const std::string& s, size_t w) {
      return s + std::string(w - s.size(), ' ');
    };
    for (size_t c = 0; c < cols; ++c) {
      out += pad(rs.column_labels[c], widths[c]) + "  ";
    }
    out += "\n";
    for (size_t c = 0; c < cols; ++c) {
      out += std::string(widths[c], '-') + "  ";
    }
    out += "\n";
    for (const std::vector<std::string>& row : cells) {
      for (size_t c = 0; c < row.size(); ++c) {
        out += pad(row[c], widths[c]) + "  ";
      }
      out += "\n";
    }
    out += "\n";
  }
  return out;
}

std::string FormatRunStats(const RunOutcome& outcome) {
  std::string out;
  if (outcome.partial) out += "partial: true\n";
  if (outcome.budget_exhausted) out += "budget_exhausted: true\n";
  for (const std::string& node : outcome.budget_exceeded_nodes) {
    out += "budget_exceeded_node: " + node + "\n";
  }
  if (outcome.pinned_epoch != 0) {
    out += StringPrintf(
        "freshness: pinned_epoch=%llu fresh=%zu stale_consistent=%zu "
        "superseded=%zu\n",
        (unsigned long long)outcome.pinned_epoch, outcome.fresh_nodes,
        outcome.stale_consistent_nodes, outcome.superseded_nodes);
  }
  for (const std::string& url : outcome.stale_node_urls) {
    out += "stale_node: " + url + "\n";
  }
  for (const std::string& url : outcome.superseded_node_urls) {
    out += "superseded_node: " + url + "\n";
  }
  for (const std::string& host : outcome.retired_sites) {
    out += "retired_site: " + host + "\n";
  }
  for (const std::string& url : outcome.epoch_gated_nodes) {
    out += "epoch_gated_node: " + url + "\n";
  }
  out += "client:\n";
  const std::string client = outcome.client_stats.ToText();
  if (client.empty()) out += "  (all zero)\n";
  for (const std::string& line : Split(client, '\n')) {
    if (!line.empty()) out += "  " + line + "\n";
  }
  const auto emit = [&out](const char* name, uint64_t value) {
    if (value != 0) out += StringPrintf("  %s: %llu\n", name,
                                        (unsigned long long)value);
  };
  out += "servers:\n";
  const server::QueryServerStats& s = outcome.server_stats;
  emit("clones_received", s.clones_received);
  emit("clones_forwarded", s.clones_forwarded);
  emit("report_send_errors", s.report_send_errors);
  emit("forward_send_errors", s.forward_send_errors);
  emit("undeliverable_forwards", s.undeliverable_forwards);
  emit("retries", s.retries);
  emit("retry_exhausted", s.retry_exhausted);
  emit("clones_shed", s.clones_shed);
  emit("clones_evicted", s.clones_evicted);
  emit("overload_nacks_sent", s.overload_nacks_sent);
  emit("overload_nacks_received", s.overload_nacks_received);
  emit("queue_peak", s.queue_peak);
  emit("budget_expired_clones", s.budget_expired_clones);
  emit("budget_vetoed_forwards", s.budget_vetoed_forwards);
  emit("rows_truncated", s.rows_truncated);
  emit("breaker_trips", s.breaker_trips);
  emit("breaker_short_circuits", s.breaker_short_circuits);
  emit("breaker_probes", s.breaker_probes);
  emit("breaker_recoveries", s.breaker_recoveries);
  emit("db_cache_evictions", s.db_cache_evictions);
  emit("db_cache_bytes", s.db_cache_bytes);
  emit("snapshots_written", s.snapshots_written);
  emit("wal_records_appended", s.wal_records_appended);
  emit("wal_append_errors", s.wal_append_errors);
  emit("recovered_from_snapshot", s.recovered_from_snapshot);
  emit("replayed_wal_records", s.replayed_wal_records);
  emit("cold_starts", s.cold_starts);
  emit("wal_records_discarded", s.wal_records_discarded);
  emit("snapshot_load_rejected", s.snapshot_load_rejected);
  emit("recovered_clones", s.recovered_clones);
  emit("result_cache_hits", s.result_cache_hits);
  emit("result_cache_misses", s.result_cache_misses);
  emit("result_cache_evictions", s.result_cache_evictions);
  emit("result_cache_bytes", s.result_cache_bytes);
  emit("clone_batches_sent", s.clone_batches_sent);
  emit("clone_batch_members_sent", s.clone_batch_members_sent);
  emit("clone_batches_received", s.clone_batches_received);
  emit("clone_batch_members_received", s.clone_batch_members_received);
  emit("report_batches_sent", s.report_batches_sent);
  emit("report_batch_members_sent", s.report_batch_members_sent);
  emit("batches_shed", s.batches_shed);
  emit("site_retired_nacks_sent", s.site_retired_nacks_sent);
  emit("site_retired_nacks_received", s.site_retired_nacks_received);
  emit("retired_reports_sent", s.retired_reports_sent);
  emit("epoch_gated_nodes", s.epoch_gated_nodes);
  if (outcome.workers > 0) {
    // Cumulative over the network's lifetime, not per query: occupancy is a
    // property of how the whole run's slices partitioned.
    out += StringPrintf(
        "parallel: workers=%zu slices=%llu parallel_slices=%llu "
        "max_partitions=%llu occupancy=%.1f%% coalesced_batches=%llu "
        "coalesced_slices=%llu serial_slices=%llu serial_events=%llu\n",
        outcome.workers, (unsigned long long)outcome.parallel.slices,
        (unsigned long long)outcome.parallel.parallel_slices,
        (unsigned long long)outcome.parallel.max_slice_partitions,
        100.0 * outcome.parallel.Occupancy(),
        (unsigned long long)outcome.parallel.coalesced_batches,
        (unsigned long long)outcome.parallel.coalesced_slices,
        (unsigned long long)outcome.parallel.serial_slices,
        (unsigned long long)outcome.parallel.serial_events);
  }
  return out;
}

Engine::Engine(const web::WebGraph* web, EngineOptions options)
    : web_(web), options_(options) {
  // The at-least-once envelope is not self-describing: a retry-enabled
  // sender talking to a retry-disabled receiver (or vice versa) would
  // misparse every message. Catch the misconfiguration at construction.
  WEBDIS_CHECK(options_.server.retry.enabled == options_.client.retry.enabled)
      << "server and client retry settings must match";
  for (const auto& [host, override_opts] : options_.server_overrides) {
    WEBDIS_CHECK(override_opts.retry.enabled == options_.client.retry.enabled)
        << "server override for " << host << " must match client retry";
  }
  network_ = std::make_unique<net::SimNetwork>(options_.network);
  const std::vector<std::string> hosts = web_->Hosts();

  // Every host serves plain HTTP (it is, after all, the web).
  for (const std::string& host : hosts) {
    auto http = std::make_unique<server::HttpServer>(host, web_,
                                                     network_.get());
    const Status status = http->Start();
    WEBDIS_CHECK(status.ok()) << status.ToString();
    http_servers_.emplace(host, std::move(http));
  }

  // A deterministic subset of hosts participates in WEBDIS.
  Rng rng(options_.participation_seed);
  for (const std::string& host : hosts) {
    const bool forced =
        std::find(options_.forced_participants.begin(),
                  options_.forced_participants.end(),
                  host) != options_.forced_participants.end();
    const bool participates =
        forced || options_.participation_fraction >= 1.0 ||
        rng.Bernoulli(options_.participation_fraction);
    if (!participates) continue;
    const auto override_it = options_.server_overrides.find(host);
    const server::QueryServerOptions& server_options =
        override_it == options_.server_overrides.end() ? options_.server
                                                       : override_it->second;
    AddParticipant(host, server_options);
  }

  user_site_ = std::make_unique<client::UserSite>(
      kClientHost, network_.get(), options_.client);
  user_site_->SetClock([this] { return network_->now(); });
}

void Engine::AddParticipant(
    const std::string& host,
    const server::QueryServerOptions& server_options) {
  auto qs = std::make_unique<server::QueryServer>(
      host, web_, network_.get(), server_options);
  if (server_options.persist.enabled) {
    // Per-host seed: FNV-1a of the host name folded into the base seed,
    // so fault schedules are stable across platforms and host ordering.
    uint64_t host_hash = 1469598103934665603ull;
    for (const char c : host) {
      host_hash ^= static_cast<uint8_t>(c);
      host_hash *= 1099511628211ull;
    }
    server::PersistFaultRules rules = options_.persist_faults;
    rules.seed = options_.persist_faults.seed ^ host_hash;
    auto backend = std::make_unique<server::MemoryPersistBackend>(rules);
    qs->SetPersistence(backend.get());
    persist_backends_.emplace(host, std::move(backend));
  }
  const Status status = qs->Start();
  WEBDIS_CHECK(status.ok()) << status.ToString();
  qs->SetClock([this] { return network_->now(); });
  participating_hosts_.push_back(host);
  query_servers_.emplace(host, std::move(qs));
}

Engine::~Engine() = default;

server::QueryServer* Engine::server_for(const std::string& host) {
  auto it = query_servers_.find(host);
  return it == query_servers_.end() ? nullptr : it->second.get();
}

server::MemoryPersistBackend* Engine::persist_backend_for(
    const std::string& host) {
  auto it = persist_backends_.find(host);
  return it == persist_backends_.end() ? nullptr : it->second.get();
}

void Engine::ObserveVisits(server::QueryServer::VisitObserver observer) {
  if (options_.network.worker_threads > 0 && observer != nullptr) {
    // The observer is the one deliberately shared sink across all servers
    // (e.g. the trace collector). Under the parallel stepper, servers on
    // distinct hosts invoke it concurrently, so serialize it here; within a
    // time-slice the cross-host observation order is unspecified.
    auto mu = std::make_shared<webdis::Mutex>();
    auto inner =
        std::make_shared<server::QueryServer::VisitObserver>(
            std::move(observer));
    observer = [mu, inner](const server::VisitEvent& event) {
      webdis::MutexLock lock(mu.get());
      (*inner)(event);
    };
  }
  for (auto& [host, qs] : query_servers_) {
    qs->SetVisitObserver(observer);
  }
}

void Engine::InstallMutationPlan(web::WebGraph* web,
                                 web::MutationPlan* plan) {
  WEBDIS_CHECK(web == web_)
      << "mutation plan must target the graph the engine was built over";
  WEBDIS_CHECK(options_.network.worker_threads == 0)
      << "churn requires the sequential stepper (workers == 0): mutations "
         "touch shared WebGraph state outside endpoint confinement";
  mutable_web_ = web;
  mutation_plan_ = plan;
  // Every query submitted from here on pins the then-current epoch (§10.1).
  user_site_->SetEpochSource([web] { return web->epoch(); });
  const SimTime now = network_->now();
  for (const SimTime t : plan->PendingTimes()) {
    // ApplyDue is a no-op for an already-applied prefix, so a timer that
    // fires after a later timer already consumed its batch is harmless.
    network_->ScheduleAfter(t > now ? t - now : 0,
                            [this] { ApplyDueMutations(); });
  }
}

void Engine::ApplyDueMutations() {
  if (mutation_plan_ == nullptr) return;
  const std::vector<web::Mutation> batch =
      mutation_plan_->ApplyDue(mutable_web_, network_->now());
  for (const web::Mutation& m : batch) {
    switch (m.kind) {
      case web::Mutation::Kind::kSpawnSite: {
        auto parsed = html::ParseUrl(m.url);
        WEBDIS_CHECK(parsed.ok()) << parsed.status().ToString();
        const std::string& host = parsed->host;
        if (http_servers_.find(host) == http_servers_.end()) {
          auto http = std::make_unique<server::HttpServer>(host, web_,
                                                           network_.get());
          const Status status = http->Start();
          WEBDIS_CHECK(status.ok()) << status.ToString();
          http_servers_.emplace(host, std::move(http));
        }
        if (query_servers_.find(host) == query_servers_.end()) {
          // Spawned sites always participate: the plan pairs each spawn
          // with an inbound link, and the point is that queries pinned at
          // or after the spawn epoch can actually traverse into it.
          AddParticipant(host, options_.server);
          spawned_hosts_.push_back(host);
        }
        break;
      }
      case web::Mutation::Kind::kRetireSite: {
        // The query server survives in retired mode so in-flight clones get
        // a terminal SiteRetired instead of a silent black hole (§10.2);
        // plain HTTP goes dark with the site.
        auto qs_it = query_servers_.find(m.host);
        if (qs_it != query_servers_.end()) qs_it->second->Retire();
        auto http_it = http_servers_.find(m.host);
        if (http_it != http_servers_.end()) http_it->second->Stop();
        churn_retired_hosts_.push_back(m.host);
        break;
      }
      case web::Mutation::Kind::kEditPage:
      case web::Mutation::Kind::kAddLink:
      case web::Mutation::Kind::kRemoveLink:
        break;  // document-level churn needs no deployment change
    }
  }
}

TrafficSummary Engine::TrafficSnapshot() const {
  TrafficSummary t;
  t.messages = network_->total_traffic().messages;
  t.bytes = network_->total_traffic().bytes;
  t.inter_host_messages = network_->inter_host_traffic().messages;
  t.inter_host_bytes = network_->inter_host_traffic().bytes;
  // Batched envelopes fold into their member categories: a CloneBatch is
  // query traffic, a ReportBatch is report traffic (PROTOCOL.md §9) — the
  // shared-vs-unshared message comparison in bench/s2 stays apples-to-apples.
  const auto& q = network_->traffic_for(net::MessageType::kWebQuery);
  const auto& qb = network_->traffic_for(net::MessageType::kCloneBatch);
  t.query_messages = q.messages + qb.messages;
  t.query_bytes = q.bytes + qb.bytes;
  const auto& r = network_->traffic_for(net::MessageType::kReport);
  const auto& rb = network_->traffic_for(net::MessageType::kReportBatch);
  t.report_messages = r.messages + rb.messages;
  t.report_bytes = r.bytes + rb.bytes;
  const auto& freq = network_->traffic_for(net::MessageType::kFetchRequest);
  const auto& fresp = network_->traffic_for(net::MessageType::kFetchResponse);
  t.fetch_messages = freq.messages + fresp.messages;
  t.fetch_bytes = freq.bytes + fresp.bytes;
  t.terminate_messages =
      network_->traffic_for(net::MessageType::kTerminate).messages;
  t.connection_refused = network_->connection_refused_count();
  return t;
}

namespace {

TrafficSummary Subtract(const TrafficSummary& a, const TrafficSummary& b) {
  TrafficSummary d;
  d.messages = a.messages - b.messages;
  d.bytes = a.bytes - b.bytes;
  d.inter_host_messages = a.inter_host_messages - b.inter_host_messages;
  d.inter_host_bytes = a.inter_host_bytes - b.inter_host_bytes;
  d.query_messages = a.query_messages - b.query_messages;
  d.query_bytes = a.query_bytes - b.query_bytes;
  d.report_messages = a.report_messages - b.report_messages;
  d.report_bytes = a.report_bytes - b.report_bytes;
  d.fetch_messages = a.fetch_messages - b.fetch_messages;
  d.fetch_bytes = a.fetch_bytes - b.fetch_bytes;
  d.terminate_messages = a.terminate_messages - b.terminate_messages;
  d.connection_refused = a.connection_refused - b.connection_refused;
  return d;
}

}  // namespace

server::QueryServerStats Engine::AggregateServerStats() const {
  server::QueryServerStats total;
  for (const auto& [host, qs] : query_servers_) {
    const server::QueryServerStats& s = qs->stats();
    total.clones_received += s.clones_received;
    total.nodes_processed += s.nodes_processed;
    total.node_queries_evaluated += s.node_queries_evaluated;
    total.answers_found += s.answers_found;
    total.db_constructions += s.db_constructions;
    total.db_cache_hits += s.db_cache_hits;
    total.db_cache_evictions += s.db_cache_evictions;
    total.db_cache_bytes += s.db_cache_bytes;
    total.duplicates_dropped += s.duplicates_dropped;
    total.superset_rewrites += s.superset_rewrites;
    total.clones_forwarded += s.clones_forwarded;
    total.dead_ends += s.dead_ends;
    total.missing_documents += s.missing_documents;
    total.passive_terminations += s.passive_terminations;
    total.active_terminations += s.active_terminations;
    total.undeliverable_forwards += s.undeliverable_forwards;
    total.decode_errors += s.decode_errors;
    total.acks_sent += s.acks_sent;
    total.acks_received += s.acks_received;
    total.ack_send_failures += s.ack_send_failures;
    total.report_send_errors += s.report_send_errors;
    total.forward_send_errors += s.forward_send_errors;
    total.retries += s.retries;
    total.retry_exhausted += s.retry_exhausted;
    total.redeliveries_suppressed += s.redeliveries_suppressed;
    total.clones_shed += s.clones_shed;
    total.clones_evicted += s.clones_evicted;
    total.overload_nacks_sent += s.overload_nacks_sent;
    total.overload_nacks_received += s.overload_nacks_received;
    total.queue_peak = std::max(total.queue_peak, s.queue_peak);
    total.budget_expired_clones += s.budget_expired_clones;
    total.budget_vetoed_forwards += s.budget_vetoed_forwards;
    total.rows_truncated += s.rows_truncated;
    total.breaker_trips += s.breaker_trips;
    total.breaker_short_circuits += s.breaker_short_circuits;
    total.breaker_probes += s.breaker_probes;
    total.breaker_recoveries += s.breaker_recoveries;
    total.snapshots_written += s.snapshots_written;
    total.wal_records_appended += s.wal_records_appended;
    total.wal_append_errors += s.wal_append_errors;
    total.recovered_from_snapshot += s.recovered_from_snapshot;
    total.replayed_wal_records += s.replayed_wal_records;
    total.cold_starts += s.cold_starts;
    total.wal_records_discarded += s.wal_records_discarded;
    total.snapshot_load_rejected += s.snapshot_load_rejected;
    total.recovered_clones += s.recovered_clones;
    total.result_cache_hits += s.result_cache_hits;
    total.result_cache_misses += s.result_cache_misses;
    total.result_cache_evictions += s.result_cache_evictions;
    total.result_cache_bytes += s.result_cache_bytes;
    total.clone_batches_sent += s.clone_batches_sent;
    total.clone_batch_members_sent += s.clone_batch_members_sent;
    total.clone_batches_received += s.clone_batches_received;
    total.clone_batch_members_received += s.clone_batch_members_received;
    total.report_batches_sent += s.report_batches_sent;
    total.report_batch_members_sent += s.report_batch_members_sent;
    total.batches_shed += s.batches_shed;
    total.site_retired_nacks_sent += s.site_retired_nacks_sent;
    total.site_retired_nacks_received += s.site_retired_nacks_received;
    total.retired_reports_sent += s.retired_reports_sent;
    total.epoch_gated_nodes += s.epoch_gated_nodes;
  }
  return total;
}

Result<query::QueryId> Engine::Submit(const disql::CompiledQuery& compiled,
                                      const std::string& user) {
  return user_site_->Submit(compiled, user);
}

RunOutcome Engine::CollectOutcome(const query::QueryId& id,
                                  const TrafficSummary& baseline_traffic) {
  RunOutcome outcome;
  outcome.id = id;
  const client::UserSite::QueryRun* run = user_site_->Find(id);
  WEBDIS_CHECK(run != nullptr);
  outcome.completed = run->completed;
  outcome.partial = run->partial;
  outcome.unreachable_hosts = run->unreachable_hosts;
  outcome.budget_exhausted = run->budget_exhausted;
  outcome.budget_exceeded_nodes = run->budget_exceeded_nodes;
  outcome.results = run->results;
  outcome.submit_time = run->submit_time;
  outcome.completion_time = run->completion_time;
  outcome.last_report_time = run->last_report_time;
  outcome.client_stats = run->stats;
  outcome.cht_total_entries = run->cht.total_count();
  outcome.cht_max_active = run->cht.max_active();
  outcome.cht_suppressed = run->cht.suppressed_count();
  outcome.cht_unmatched_deletes = run->cht.unmatched_deletes();
  outcome.fallback_node_count = run->fallback_nodes.size();
  outcome.pinned_epoch = run->pinned_epoch;
  outcome.node_versions = run->node_versions;
  outcome.retired_sites = run->retired_sites;
  outcome.epoch_gated_nodes = run->epoch_gated_nodes;
  // §10 freshness classification: compare each report's stamped version
  // against the web as it stands now. Versions only grow, so "different"
  // always means "edited after the visit".
  for (const auto& [url, stamped] : run->node_versions) {
    const web::WebGraph::Document* doc = web_->Find(url);
    if (doc == nullptr) {
      ++outcome.superseded_nodes;
      outcome.superseded_node_urls.push_back(url);
    } else if (doc->version == stamped) {
      ++outcome.fresh_nodes;
    } else {
      ++outcome.stale_consistent_nodes;
      outcome.stale_node_urls.push_back(url);
    }
  }
  outcome.client_retry = user_site_->retry_stats();
  outcome.server_stats = AggregateServerStats();
  outcome.traffic = Subtract(TrafficSnapshot(), baseline_traffic);
  outcome.workers = options_.network.worker_threads;
  outcome.parallel = network_->parallel_stats();
  return outcome;
}

Result<RunOutcome> Engine::RunCompiled(const disql::CompiledQuery& compiled,
                                       const std::string& user) {
  const TrafficSummary before = TrafficSnapshot();
  query::QueryId id;
  WEBDIS_ASSIGN_OR_RETURN(id, user_site_->Submit(compiled, user));
  network_->RunUntilIdle();

  const client::UserSite::QueryRun* run = user_site_->Find(id);
  WEBDIS_CHECK(run != nullptr);
  if (!options_.client.use_cht && !run->completed) {
    // Timeout-completion strawman: the user declares the query done only a
    // full timeout after the last arrival.
    user_site_->FinishWithTimeout(id, options_.completion_timeout);
  }

  // §7.1 fallback: continue centrally for undeliverable nodes.
  RunOutcome outcome = CollectOutcome(id, before);
  if (options_.fallback_processing && !run->fallback_nodes.empty()) {
    baseline::DataShippingEngine fallback_engine(kClientHost, network_.get());
    auto fb = fallback_engine.RunFrom(run->compiled, run->fallback_nodes);
    if (fb.ok()) {
      outcome.fallback = std::move(fb).value();
      // Merge fallback rows into the outcome's result sets.
      for (const relational::ResultSet& rs : outcome.fallback.results) {
        relational::ResultSet* target = nullptr;
        for (relational::ResultSet& existing : outcome.results) {
          if (existing.column_labels == rs.column_labels) {
            target = &existing;
            break;
          }
        }
        if (target == nullptr) {
          outcome.results.push_back(rs);
        } else {
          for (const relational::Tuple& row : rs.rows) {
            const bool seen = std::any_of(
                target->rows.begin(), target->rows.end(),
                [&row](const relational::Tuple& existing) {
                  if (existing.size() != row.size()) return false;
                  for (size_t i = 0; i < row.size(); ++i) {
                    if (!(existing[i] == row[i])) return false;
                  }
                  return true;
                });
            if (!seen) target->rows.push_back(row);
          }
        }
      }
      // Refresh traffic to include fallback fetches.
      outcome.traffic = Subtract(TrafficSnapshot(), before);
    } else {
      WEBDIS_LOG(kWarning) << "fallback processing failed: "
                           << fb.status().ToString();
    }
  }
  return outcome;
}

Result<RunOutcome> Engine::Run(const std::string& disql,
                               const std::string& user) {
  disql::CompiledQuery compiled;
  WEBDIS_ASSIGN_OR_RETURN(compiled, disql::CompileDisql(disql));
  return RunCompiled(compiled, user);
}

Result<BaselineRun> RunDataShippingBaseline(
    const web::WebGraph& web, const disql::CompiledQuery& compiled,
    net::SimNetworkOptions network_options,
    baseline::DataShippingOptions options) {
  net::SimNetwork network(network_options);
  std::vector<std::unique_ptr<server::HttpServer>> http_servers;
  for (const std::string& host : web.Hosts()) {
    auto http = std::make_unique<server::HttpServer>(host, &web, &network);
    WEBDIS_RETURN_IF_ERROR(http->Start());
    http_servers.push_back(std::move(http));
  }
  baseline::DataShippingEngine engine(Engine::kClientHost, &network, options);
  BaselineRun run;
  WEBDIS_ASSIGN_OR_RETURN(run.outcome, engine.Run(compiled));
  const auto& total = network.total_traffic();
  run.traffic.messages = total.messages;
  run.traffic.bytes = total.bytes;
  run.traffic.inter_host_messages = network.inter_host_traffic().messages;
  run.traffic.inter_host_bytes = network.inter_host_traffic().bytes;
  const auto& freq = network.traffic_for(net::MessageType::kFetchRequest);
  const auto& fresp = network.traffic_for(net::MessageType::kFetchResponse);
  run.traffic.fetch_messages = freq.messages + fresp.messages;
  run.traffic.fetch_bytes = freq.bytes + fresp.bytes;
  run.traffic.connection_refused = network.connection_refused_count();
  return run;
}

}  // namespace webdis::core
