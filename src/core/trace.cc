#include "core/trace.h"

#include <algorithm>

#include "core/engine.h"

namespace webdis::core {

TraceCollector::TraceCollector(Engine* engine) {
  engine->ObserveVisits([this](const server::VisitEvent& event) {
    events_.push_back(event);
  });
}

std::string TraceCollector::DescribeVisit(const server::VisitEvent& event) {
  if (event.duplicate) return "duplicate dropped";
  std::string out;
  if (event.rewritten) out += "superset rewrite; ";
  if (!event.evaluated) {
    out += "forwarded";
    return out;
  }
  if (event.answered) {
    out += "answered";
    if (event.forward_count > 0) out += " + forwarded";
  } else if (event.dead_end) {
    out += "dead-end";
  } else {
    out += "no answer, forwarded";
  }
  return out;
}

std::string TraceCollector::Format() const {
  const std::vector<std::string> headers = {"node", "state received", "role",
                                            "outcome"};
  std::vector<std::vector<std::string>> rows;
  std::vector<size_t> widths;
  for (const std::string& h : headers) widths.push_back(h.size());
  for (const server::VisitEvent& event : events_) {
    std::vector<std::string> row = {
        event.node_url, event.received_state.ToString(),
        event.evaluated ? "ServerRouter" : "PureRouter",
        DescribeVisit(event)};
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
    rows.push_back(std::move(row));
  }
  const auto emit = [&widths](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
      line += cells[i];
      line += std::string(widths[i] - cells[i].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = emit(headers);
  std::string rule;
  for (size_t i = 0; i < headers.size(); ++i) {
    rule += std::string(widths[i], '-') + "  ";
  }
  out += rule + "\n";
  for (const std::vector<std::string>& row : rows) out += emit(row);
  return out;
}

}  // namespace webdis::core
