#ifndef WEBDIS_COMMON_STATUS_H_
#define WEBDIS_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace webdis {

/// Canonical error codes used across the WEBDIS codebase. Modeled after the
/// RocksDB/Arrow status idiom: the library never throws; every fallible
/// operation returns a Status (or Result<T>).
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,
  kIoError,
  kNetworkError,
  kConnectionRefused,
  kCorruption,
  kUnimplemented,
  kInternal,
  kCancelled,
  kTimedOut,
};

/// Human-readable name of a status code ("Ok", "ParseError", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy when OK (no message
/// allocation); carries a code plus a context message otherwise.
///
/// [[nodiscard]]: silently dropping a Status is how a lost send strands a
/// CHT entry until deadline-GC instead of triggering retry — every ignored
/// return is a compile error. Where dropping is genuinely correct (e.g.
/// best-effort acks whose refusal is expected after passive termination),
/// cast to void with a comment saying why.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }
  static Status ConnectionRefused(std::string msg) {
    return Status(StatusCode::kConnectionRefused, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never holds an OK status
/// without a value. [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: enables `return value;` in functions returning
  /// Result<T>, mirroring absl::StatusOr.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; Status::OK() if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> data_;
};

}  // namespace webdis

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define WEBDIS_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::webdis::Status _webdis_status = (expr);        \
    if (!_webdis_status.ok()) return _webdis_status; \
  } while (false)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// move-assigns the value into `lhs` (which must already be declared).
#define WEBDIS_ASSIGN_OR_RETURN(lhs, expr)              \
  do {                                                  \
    auto _webdis_result = (expr);                       \
    if (!_webdis_result.ok()) {                         \
      return _webdis_result.status();                   \
    }                                                   \
    lhs = std::move(_webdis_result).value();            \
  } while (false)

#endif  // WEBDIS_COMMON_STATUS_H_
