#ifndef WEBDIS_COMMON_INTERNER_H_
#define WEBDIS_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

namespace webdis::common {

/// Arena-backed string-interning pool. Each distinct string is stored once
/// in a chunked character arena and addressed by a dense 32-bit id; views
/// returned by `View` point into the arena and stay valid for the pool's
/// lifetime (chunks are never reallocated or freed before destruction).
///
/// This is the memory substrate for the 10⁵–10⁶-document synthetic web:
/// URL keys and host names repeat massively (every per-host index entry,
/// every link target), so the web tables store 4-byte ids instead of
/// `std::string` copies. Not thread-safe for interning; concurrent `View`
/// reads of already-interned ids are safe (the arena is append-only).
class StringInterner {
 public:
  static constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

  StringInterner() = default;
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the id for `s`, interning a copy into the arena on first use.
  uint32_t Intern(std::string_view s);

  /// The id for `s` if already interned, else kInvalidId. Never allocates.
  uint32_t Lookup(std::string_view s) const;

  /// The interned string for a valid id. The view stays valid for the
  /// interner's lifetime.
  std::string_view View(uint32_t id) const { return by_id_[id]; }

  size_t size() const { return by_id_.size(); }

  /// Arena + index footprint in bytes (chunk storage, id table, and an
  /// estimate of the lookup-map nodes) — the denominator-side input to the
  /// bytes-per-document accounting in bench/p1_parallel.
  size_t ApproxBytes() const;

 private:
  /// Appends `s` to the arena and returns a stable view of the copy.
  std::string_view Store(std::string_view s);

  static constexpr size_t kChunkBytes = 1 << 16;
  std::deque<std::string> chunks_;          // fixed-capacity arena blocks
  std::deque<std::string_view> by_id_;      // id -> arena view
  std::map<std::string_view, uint32_t> ids_;  // arena view -> id
};

}  // namespace webdis::common

#endif  // WEBDIS_COMMON_INTERNER_H_
