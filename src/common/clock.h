#ifndef WEBDIS_COMMON_CLOCK_H_
#define WEBDIS_COMMON_CLOCK_H_

#include <cstdint>

namespace webdis {

/// Simulated time, in microseconds since simulation start. The discrete-event
/// network simulator advances this; it never refers to wall-clock time, so
/// experiment timings are deterministic.
using SimTime = uint64_t;

/// Durations share the representation of SimTime (microseconds).
using SimDuration = uint64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

}  // namespace webdis

#endif  // WEBDIS_COMMON_CLOCK_H_
