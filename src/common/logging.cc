#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/thread_annotations.h"

namespace webdis {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

// Serializes emission: whole lines never interleave, even when the TCP
// transport's background threads log concurrently with the dispatch pump.
Mutex g_sink_mu;
LogSink g_sink WEBDIS_GUARDED_BY(g_sink_mu);

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

void Emit(LogLevel level, const std::string& line) WEBDIS_EXCLUDES(g_sink_mu) {
  MutexLock lock(&g_sink_mu);
  if (g_sink) {
    g_sink(level, line);
    return;
  }
  std::fputs(line.c_str(), stderr);
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  MutexLock lock(&g_sink_mu);
  g_sink = std::move(sink);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  Emit(level_, stream_.str());
  if (fatal_) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace webdis
