#ifndef WEBDIS_COMMON_RNG_H_
#define WEBDIS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace webdis {

/// Deterministic pseudo-random number generator (SplitMix64). All synthetic
/// web generation and benchmark workloads are seeded, so every experiment is
/// exactly reproducible run-to-run — a property the paper's live-web
/// evaluation could never have.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks one element uniformly. Precondition: !v.empty().
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(Uniform(v.size()))];
  }

  // -- State capture (lazy web materialization, web/synth.cc) ---------------
  // SplitMix64's whole state is one word that advances by a fixed increment
  // per draw, so a generator mid-stream can be snapshotted, skipped, and
  // reconstructed exactly — the synthetic-web generator records per-document
  // states at build time and replays them on first fetch, producing pages
  // byte-identical to an eager build.

  /// Current raw state. `FromState(State())` continues this exact stream.
  uint64_t State() const { return state_; }

  /// A generator positioned at a previously captured `State()`.
  static Rng FromState(uint64_t state) {
    Rng rng(0);
    rng.state_ = state;
    return rng;
  }

  /// Advances the stream by `draws` calls to Next() in O(1).
  void Skip(uint64_t draws) { state_ += draws * 0x9E3779B97F4A7C15ULL; }

 private:
  uint64_t state_;
};

}  // namespace webdis

#endif  // WEBDIS_COMMON_RNG_H_
