#include "common/thread_pool.h"

namespace webdis::common {

ThreadPool::ThreadPool(size_t extra_threads) {
  threads_.reserve(extra_threads);
  for (size_t i = 0; i < extra_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::DrainBatch(uint64_t generation) {
  for (;;) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t index = 0;
    {
      MutexLock lock(&mu_);
      if (batch_generation_ != generation || batch_fn_ == nullptr ||
          next_index_ >= batch_count_) {
        return;
      }
      index = next_index_++;
      fn = batch_fn_;
    }
    // An index of the current generation was claimed, so finished_ stays
    // below batch_count_ until we report back: that batch's RunBatch is
    // still blocked, *fn is alive, and the generation cannot advance.
    (*fn)(index);
    {
      MutexLock lock(&mu_);
      ++finished_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::RunBatch(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty()) {
    // Sequential degenerate case: skip the synchronization entirely.
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  uint64_t generation = 0;
  {
    MutexLock lock(&mu_);
    batch_fn_ = &fn;
    batch_count_ = count;
    next_index_ = 0;
    finished_ = 0;
    generation = ++batch_generation_;
  }
  work_cv_.notify_all();
  DrainBatch(generation);
  {
    MutexLock lock(&mu_);
    // Own claims are exhausted, but pool threads may still be running theirs.
    while (finished_ < count) done_cv_.wait(mu_);
    batch_fn_ = nullptr;  // workers must not touch a dead batch
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      MutexLock lock(&mu_);
      while (!shutdown_ &&
             (batch_fn_ == nullptr || batch_generation_ == seen_generation ||
              next_index_ >= batch_count_)) {
        work_cv_.wait(mu_);
      }
      if (shutdown_) return;
      seen_generation = batch_generation_;
    }
    DrainBatch(seen_generation);
  }
}

}  // namespace webdis::common
