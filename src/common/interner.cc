#include "common/interner.h"

namespace webdis::common {

std::string_view StringInterner::Store(std::string_view s) {
  if (s.size() > kChunkBytes / 2) {
    // Oversized strings get a dedicated block so they never strand half a
    // chunk of unused capacity.
    chunks_.emplace_front(s);
    return chunks_.front();
  }
  if (chunks_.empty() ||
      chunks_.back().size() + s.size() > chunks_.back().capacity()) {
    chunks_.emplace_back();
    chunks_.back().reserve(kChunkBytes);
  }
  std::string& chunk = chunks_.back();
  const size_t offset = chunk.size();
  chunk.append(s.data(), s.size());
  return std::string_view(chunk).substr(offset, s.size());
}

uint32_t StringInterner::Intern(std::string_view s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  const std::string_view stored = Store(s);
  const uint32_t id = static_cast<uint32_t>(by_id_.size());
  by_id_.push_back(stored);
  ids_.emplace(stored, id);
  return id;
}

uint32_t StringInterner::Lookup(std::string_view s) const {
  auto it = ids_.find(s);
  return it == ids_.end() ? kInvalidId : it->second;
}

size_t StringInterner::ApproxBytes() const {
  size_t bytes = 0;
  for (const std::string& chunk : chunks_) bytes += chunk.capacity();
  bytes += by_id_.size() * sizeof(std::string_view);
  // Rough red-black-tree node overhead for the lookup map.
  bytes += ids_.size() * (sizeof(std::string_view) + sizeof(uint32_t) + 40);
  return bytes;
}

}  // namespace webdis::common
