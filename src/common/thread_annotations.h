#ifndef WEBDIS_COMMON_THREAD_ANNOTATIONS_H_
#define WEBDIS_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

/// Clang thread-safety annotations (-Wthread-safety), no-ops elsewhere.
///
/// WEBDIS is single-threaded by design — handler dispatch is pumped by the
/// caller — but the TCP transport runs accept/read background threads and the
/// logger may be called from any of them. Every field those threads share is
/// annotated with WEBDIS_GUARDED_BY so the locking discipline is checked at
/// compile time (CI builds with -Werror=thread-safety), not left to TSan
/// luck. See CONTRIBUTING.md "Static analysis & sanitizers".
///
/// The std::mutex in libstdc++ carries no capability attributes, so the
/// analysis cannot see through std::lock_guard<std::mutex>. webdis::Mutex /
/// webdis::MutexLock below are thin annotated wrappers (the absl::Mutex
/// idiom) that make the analysis work with any standard library.

#if defined(__clang__) && (!defined(SWIG))
#define WEBDIS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define WEBDIS_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Declares a data member protected by the given capability (mutex).
#define WEBDIS_GUARDED_BY(x) WEBDIS_THREAD_ANNOTATION_(guarded_by(x))

/// Declares a pointer member whose pointee is protected by the capability.
#define WEBDIS_PT_GUARDED_BY(x) WEBDIS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares lock-acquisition order: this mutex is always acquired before the
/// listed ones. Machine-read by tools/webdis_lint.py (lock-order): any two
/// mutexes whose MutexLock scopes nest must carry an ordering annotation,
/// and the resulting directed acquisition graph must stay acyclic — a cycle
/// is a latent deadlock even if today's schedules never interleave it.
#define WEBDIS_ACQUIRED_BEFORE(...) \
  WEBDIS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Function requires the capability to be held by the caller.
#define WEBDIS_REQUIRES(...) \
  WEBDIS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (it acquires it).
#define WEBDIS_EXCLUDES(...) \
  WEBDIS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define WEBDIS_ACQUIRE(...) \
  WEBDIS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define WEBDIS_RELEASE(...) \
  WEBDIS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Marks a type as a lockable capability.
#define WEBDIS_CAPABILITY(x) WEBDIS_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose lifetime equals a critical section.
#define WEBDIS_SCOPED_CAPABILITY WEBDIS_THREAD_ANNOTATION_(scoped_lockable)

/// Escape hatch for functions the analysis cannot model (cv predicates).
#define WEBDIS_NO_THREAD_SAFETY_ANALYSIS \
  WEBDIS_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace webdis {

/// std::mutex with capability annotations. Also a BasicLockable, so
/// std::condition_variable_any can wait on it directly (the absl::CondVar
/// shape: the analysis keeps seeing the mutex as held across the wait, which
/// is exactly the invariant the surrounding code relies on).
class WEBDIS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WEBDIS_ACQUIRE() { mu_.lock(); }
  void unlock() WEBDIS_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex; the annotated replacement for std::lock_guard.
class WEBDIS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) WEBDIS_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() WEBDIS_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable usable with webdis::Mutex. Callers hold the Mutex (via
/// MutexLock) for the whole wait; the wait internally releases and reacquires
/// it, invisible to — and irrelevant for — the static analysis.
using CondVar = std::condition_variable_any;

}  // namespace webdis

#endif  // WEBDIS_COMMON_THREAD_ANNOTATIONS_H_
