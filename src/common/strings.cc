#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cctype>

namespace webdis {

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const std::string h = ToLower(haystack);
  const std::string n = ToLower(needle);
  return h.find(n) != std::string::npos;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string CollapseWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // drop leading whitespace
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string StringPrintf(const char* format, ...) {
  va_list ap;
  va_start(ap, format);
  va_list ap_copy;
  va_copy(ap_copy, ap);
  const int len = std::vsnprintf(nullptr, 0, format, ap);
  va_end(ap);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, format, ap_copy);
  }
  va_end(ap_copy);
  return out;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace webdis
