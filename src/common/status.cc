#include "common/status.h"

namespace webdis {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNetworkError:
      return "NetworkError";
    case StatusCode::kConnectionRefused:
      return "ConnectionRefused";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kTimedOut:
      return "TimedOut";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace webdis
