#ifndef WEBDIS_COMMON_LOGGING_H_
#define WEBDIS_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace webdis {

/// Log severity, lowest to highest.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that is emitted (default: kWarning, so
/// tests and benchmarks stay quiet unless something is wrong).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives every emitted log line (already formatted, newline-terminated).
using LogSink = std::function<void(LogLevel level, const std::string& line)>;

/// Installs a sink that replaces the default stderr output; pass nullptr to
/// restore stderr. Emission is serialized under an internal mutex — the TCP
/// transport's accept/read threads may log concurrently with the dispatch
/// pump — so sinks need no locking of their own but must not log reentrantly.
void SetLogSink(LogSink sink);

namespace internal_logging {

/// Stream-style log sink; emits on destruction (and aborts if fatal). Not for
/// direct use — use the WEBDIS_LOG / WEBDIS_CHECK macros.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace webdis

/// Usage: WEBDIS_LOG(kInfo) << "forwarded " << n << " clones";
#define WEBDIS_LOG(severity)                                              \
  if (::webdis::LogLevel::severity < ::webdis::GetLogLevel()) {           \
  } else                                                                  \
    ::webdis::internal_logging::LogMessage(::webdis::LogLevel::severity,  \
                                           __FILE__, __LINE__)            \
        .stream()

/// Fatal invariant check: prints and aborts. Used for programmer errors only
/// (never for data/network errors, which return Status).
#define WEBDIS_CHECK(cond)                                             \
  if (cond) {                                                          \
  } else                                                               \
    ::webdis::internal_logging::LogMessage(::webdis::LogLevel::kError, \
                                           __FILE__, __LINE__, true)   \
            .stream()                                                  \
        << "CHECK failed: " #cond " "

#endif  // WEBDIS_COMMON_LOGGING_H_
