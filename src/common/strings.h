#ifndef WEBDIS_COMMON_STRINGS_H_
#define WEBDIS_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace webdis {

/// ASCII lower-casing (the paper's `contains` predicate is case-insensitive
/// over HTML text, which is ASCII-oriented).
std::string ToLower(std::string_view s);

/// True if `haystack` contains `needle` (case-sensitive).
bool Contains(std::string_view haystack, std::string_view needle);

/// True if `haystack` contains `needle` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Splits on a single character; empty pieces are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Collapses runs of whitespace into single spaces and trims; used when
/// extracting document text from HTML.
std::string CollapseWhitespace(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a non-negative decimal integer. Returns false on any non-digit or
/// overflow.
bool ParseUint64(std::string_view s, uint64_t* out);

}  // namespace webdis

#endif  // WEBDIS_COMMON_STRINGS_H_
