#ifndef WEBDIS_COMMON_THREAD_POOL_H_
#define WEBDIS_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace webdis::common {

/// Fixed-size worker pool for the deterministic parallel stepper
/// (net/sim.h). The usage pattern is fork/join batches, not a task queue:
/// RunBatch(n, fn) invokes fn(0) … fn(n-1) exactly once each, spread across
/// the pool threads *and* the calling thread, and returns only when every
/// invocation has finished. Between batches the workers sleep on a condvar,
/// so an idle pool costs nothing but memory.
///
/// The calling thread participates, so a pool constructed with
/// `extra_threads == 0` degenerates to a plain sequential loop — that is how
/// `worker_threads = 1` stepper mode runs with zero threading overhead while
/// still exercising the slice/merge machinery.
class ThreadPool {
 public:
  /// Spawns `extra_threads` workers (may be 0).
  explicit ThreadPool(size_t extra_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for i in [0, count), distributing indices dynamically over
  /// the pool plus the calling thread; blocks until all have completed.
  /// `fn` must be safe to invoke concurrently with distinct indices. Must
  /// not be called reentrantly (from inside a batch task) or from two
  /// threads at once — the stepper's barrier structure guarantees this.
  void RunBatch(size_t count, const std::function<void(size_t)>& fn)
      WEBDIS_EXCLUDES(mu_);

  /// Concurrent executors available to a batch (pool threads + caller).
  size_t concurrency() const { return threads_.size() + 1; }

 private:
  void WorkerLoop() WEBDIS_EXCLUDES(mu_);
  /// Claims and runs tasks of batch `generation` until none are left or a
  /// different batch is current. The generation check and the index claim
  /// happen in one critical section: a worker that went to sleep holding
  /// nothing and woke after its batch completed simply returns, instead of
  /// claiming indices (and bounds) from a batch it never saw.
  void DrainBatch(uint64_t generation) WEBDIS_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_;  // new batch posted, or shutdown
  CondVar done_cv_;  // batch fully finished
  const std::function<void(size_t)>* batch_fn_ WEBDIS_GUARDED_BY(mu_) =
      nullptr;
  size_t batch_count_ WEBDIS_GUARDED_BY(mu_) = 0;
  size_t next_index_ WEBDIS_GUARDED_BY(mu_) = 0;
  size_t finished_ WEBDIS_GUARDED_BY(mu_) = 0;
  uint64_t batch_generation_ WEBDIS_GUARDED_BY(mu_) = 0;
  bool shutdown_ WEBDIS_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace webdis::common

#endif  // WEBDIS_COMMON_THREAD_POOL_H_
