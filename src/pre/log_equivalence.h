#ifndef WEBDIS_PRE_LOG_EQUIVALENCE_H_
#define WEBDIS_PRE_LOG_EQUIVALENCE_H_

#include <optional>

#include "pre/pre.h"

namespace webdis::pre {

/// Outcome of comparing an incoming clone's remaining PRE against a log-table
/// entry for the same (node, query-id, num_q), per Section 3.1.1.
enum class LogComparison : uint8_t {
  /// The PREs are structurally identical, or the incoming one is a subset
  /// (`A*m·B` vs logged `A*n·B` with m <= n): drop the incoming clone.
  kDuplicate,
  /// The incoming PRE is a strict superset (`A*m·B` vs logged `A*n·B` with
  /// m > n): replace the log entry and apply the multiple-rewrite so only
  /// the difference is processed.
  kSupersetRewrite,
  /// No equivalence established: treat as a brand-new entry.
  kUnrelated,
};

/// Result of ComparePreForLog: the action plus (for kSupersetRewrite) the
/// rewritten PRE `A·A*(m-1)·B` the clone should continue with.
struct LogDecision {
  LogComparison comparison = LogComparison::kUnrelated;
  std::optional<Pre> rewritten;  // set iff kSupersetRewrite
};

/// Implements the paper's log-table equivalence rules for a new clone PRE
/// `incoming` against an existing logged PRE `logged`:
///
///  * identical                      -> kDuplicate
///  * both `A*m·B` / `A*n·B` (same A, same B):
///      m <= n                       -> kDuplicate  (paths already covered)
///      m >  n                       -> kSupersetRewrite with A·A*(m-1)·B
///    (a logged unbounded `A*·B` covers every bounded `A*m·B`; an incoming
///    unbounded against a logged bounded is a superset)
///  * anything else                  -> kUnrelated
LogDecision ComparePreForLog(const Pre& incoming, const Pre& logged);

/// Precomputed canonical view of a PRE for repeated log-table comparisons:
/// the canonical key and, when the PRE has the `(A*m)·B` shape, its star
/// decomposition with B's canonical key. Computing these once per logged
/// entry (instead of re-canonicalizing both sides on every arrival) is what
/// makes the log-table check O(entries) string compares per arrival.
struct LogPreForm {
  std::string canonical;  // Pre::CanonicalKey()
  bool star = false;      // DecomposeStarPrefix() succeeded
  StarPrefix prefix;      // valid iff star
  std::string rest_canonical;  // prefix.rest.CanonicalKey(), iff star
};

LogPreForm MakeLogPreForm(const Pre& pre);

/// Same decision procedure as the two-argument overload — asserted
/// equivalent in pre_test — but comparing the precomputed forms. `incoming`
/// itself is still needed to build the kSupersetRewrite result.
LogDecision ComparePreForLog(const Pre& incoming, const LogPreForm& incoming_form,
                             const LogPreForm& logged_form);

}  // namespace webdis::pre

#endif  // WEBDIS_PRE_LOG_EQUIVALENCE_H_
