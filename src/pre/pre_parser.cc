#include <cctype>

#include "common/strings.h"
#include "pre/pre.h"

namespace webdis::pre {

namespace {

/// Recursive-descent parser over PRE syntax:
///
///   alt    := concat ('|' concat)*
///   concat := repeat (('.' | '·') repeat)*
///   repeat := atom ('*' digits?)*
///   atom   := 'I' | 'L' | 'G' | 'N' | '(' alt ')'
///
/// '·' is the paper's middle-dot (UTF-8 C2 B7); ASCII '.' is accepted too.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Pre> Parse() {
    Pre result;
    WEBDIS_ASSIGN_OR_RETURN(result, ParseAlt());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after PRE");
    }
    return result;
  }

 private:
  Status Error(std::string message) const {
    return Status::ParseError(StringPrintf(
        "%s at offset %zu in PRE '%s'", message.c_str(), pos_,
        std::string(text_).c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeConcatOp() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      return true;
    }
    // UTF-8 middle dot.
    if (pos_ + 1 < text_.size() &&
        static_cast<unsigned char>(text_[pos_]) == 0xC2 &&
        static_cast<unsigned char>(text_[pos_ + 1]) == 0xB7) {
      pos_ += 2;
      return true;
    }
    return false;
  }

  Result<Pre> ParseAlt() {
    std::vector<Pre> parts;
    Pre first;
    WEBDIS_ASSIGN_OR_RETURN(first, ParseConcat());
    parts.push_back(std::move(first));
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '|') break;
      ++pos_;
      Pre next;
      WEBDIS_ASSIGN_OR_RETURN(next, ParseConcat());
      parts.push_back(std::move(next));
    }
    return Pre::AltAll(parts);
  }

  Result<Pre> ParseConcat() {
    std::vector<Pre> parts;
    Pre first;
    WEBDIS_ASSIGN_OR_RETURN(first, ParseRepeat());
    parts.push_back(std::move(first));
    while (ConsumeConcatOp()) {
      Pre next;
      WEBDIS_ASSIGN_OR_RETURN(next, ParseRepeat());
      parts.push_back(std::move(next));
    }
    return Pre::ConcatAll(parts);
  }

  Result<Pre> ParseRepeat() {
    Pre base;
    WEBDIS_ASSIGN_OR_RETURN(base, ParseAtom());
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '*') break;
      ++pos_;
      SkipSpace();
      if (pos_ < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        uint64_t bound = 0;
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          bound = bound * 10 + static_cast<uint64_t>(text_[pos_] - '0');
          if (bound > 1000000) {
            return Error("repetition bound too large");
          }
          ++pos_;
        }
        (void)start;
        base = Pre::Repeat(base, static_cast<uint32_t>(bound));
      } else {
        base = Pre::RepeatUnbounded(base);
      }
    }
    return base;
  }

  Result<Pre> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Error("expected link symbol or '('");
    }
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      Pre inner;
      WEBDIS_ASSIGN_OR_RETURN(inner, ParseAlt());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Error("expected ')'");
      }
      ++pos_;
      return inner;
    }
    auto link = html::LinkTypeFromSymbol(c);
    if (!link.ok()) {
      return Error(StringPrintf("unexpected character '%c'", c));
    }
    ++pos_;
    return Pre::Link(link.value());
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Pre> Pre::Parse(std::string_view text) {
  if (Trim(text).empty()) {
    return Status::ParseError("empty PRE");
  }
  return Parser(text).Parse();
}

}  // namespace webdis::pre
