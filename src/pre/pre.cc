#include "pre/pre.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "common/strings.h"
#include "serialize/encoder.h"

namespace webdis::pre {

struct Pre::Node {
  PreKind kind = PreKind::kEmpty;
  LinkType link = LinkType::kNull;   // kLink
  uint32_t max = 0;                  // kRepeat (bounded)
  bool unbounded = false;            // kRepeat
  std::vector<NodeRef> children;     // kConcat / kAlt / kRepeat (1 child)
};

Pre::Pre() : node_(nullptr) {}
Pre::Pre(NodeRef node) : node_(std::move(node)) {}

PreKind Pre::kind() const {
  return node_ == nullptr ? PreKind::kEmpty : node_->kind;
}

Pre Pre::Empty() { return Pre(); }

Pre Pre::Never() {
  auto node = std::make_shared<Node>();
  node->kind = PreKind::kNever;
  return Pre(std::move(node));
}

Pre Pre::Link(LinkType type) {
  // The null link N matches only the zero-length path: semantically ε. We
  // keep it as a distinct node so `N | G·L` round-trips through ToString.
  auto node = std::make_shared<Node>();
  node->kind = PreKind::kLink;
  node->link = type;
  return Pre(std::move(node));
}

Pre Pre::Concat(const Pre& a, const Pre& b) { return ConcatAll({a, b}); }

Pre Pre::ConcatAll(const std::vector<Pre>& parts) {
  std::vector<NodeRef> flat;
  for (const Pre& p : parts) {
    switch (p.kind()) {
      case PreKind::kNever:
        return Never();
      case PreKind::kEmpty:
        continue;
      case PreKind::kLink:
        // N is ε for concatenation purposes; drop it inside concat so
        // algebra (and derivatives) stay simple.
        if (p.node_->link == LinkType::kNull) continue;
        flat.push_back(p.node_);
        break;
      case PreKind::kConcat:
        flat.insert(flat.end(), p.node_->children.begin(),
                    p.node_->children.end());
        break;
      default:
        flat.push_back(p.node_);
    }
  }
  if (flat.empty()) return Empty();
  if (flat.size() == 1) return Pre(flat[0]);
  auto node = std::make_shared<Node>();
  node->kind = PreKind::kConcat;
  node->children = std::move(flat);
  return Pre(std::move(node));
}

Pre Pre::Alt(const Pre& a, const Pre& b) { return AltAll({a, b}); }

Pre Pre::AltAll(const std::vector<Pre>& parts) {
  std::vector<NodeRef> flat;
  std::vector<std::string> keys;
  bool saw_any = false;
  for (const Pre& p : parts) {
    saw_any = true;
    if (p.IsNever()) continue;
    std::vector<Pre> expanded;
    if (p.kind() == PreKind::kAlt) {
      for (const NodeRef& c : p.node_->children) expanded.push_back(Pre(c));
    } else {
      expanded.push_back(p);
    }
    for (const Pre& e : expanded) {
      const std::string key = e.CanonicalKey();
      if (std::find(keys.begin(), keys.end(), key) != keys.end()) continue;
      keys.push_back(key);
      flat.push_back(e.node_ != nullptr ? e.node_ : Empty().node_);
      if (e.node_ == nullptr) {
        // Represent ε inside an alternation with an explicit empty node so
        // the child vector has no nulls.
        auto node = std::make_shared<Node>();
        node->kind = PreKind::kEmpty;
        flat.back() = std::move(node);
      }
    }
  }
  if (!saw_any || flat.empty()) return Never();
  if (flat.size() == 1) return Pre(flat[0]);
  auto node = std::make_shared<Node>();
  node->kind = PreKind::kAlt;
  node->children = std::move(flat);
  return Pre(std::move(node));
}

Pre Pre::Repeat(const Pre& a, uint32_t max) {
  if (max == 0 || a.IsEmpty() || a.IsNever()) return Empty();
  if (a.kind() == PreKind::kLink && a.node_->link == LinkType::kNull) {
    return Empty();
  }
  auto node = std::make_shared<Node>();
  node->kind = PreKind::kRepeat;
  node->max = max;
  node->unbounded = false;
  node->children.push_back(a.node_);
  return Pre(std::move(node));
}

Pre Pre::RepeatUnbounded(const Pre& a) {
  if (a.IsEmpty() || a.IsNever()) return Empty();
  if (a.kind() == PreKind::kLink && a.node_->link == LinkType::kNull) {
    return Empty();
  }
  auto node = std::make_shared<Node>();
  node->kind = PreKind::kRepeat;
  node->unbounded = true;
  node->children.push_back(a.node_);
  return Pre(std::move(node));
}

bool Pre::ContainsNull() const {
  switch (kind()) {
    case PreKind::kEmpty:
      return true;
    case PreKind::kNever:
      return false;
    case PreKind::kLink:
      return node_->link == LinkType::kNull;
    case PreKind::kConcat:
      for (const NodeRef& c : node_->children) {
        if (!Pre(c).ContainsNull()) return false;
      }
      return true;
    case PreKind::kAlt:
      for (const NodeRef& c : node_->children) {
        if (Pre(c).ContainsNull()) return true;
      }
      return false;
    case PreKind::kRepeat:
      return true;  // zero repetitions
  }
  return false;
}

std::vector<LinkType> Pre::FirstLinks() const {
  std::vector<LinkType> out;
  for (LinkType t :
       {LinkType::kInterior, LinkType::kLocal, LinkType::kGlobal}) {
    if (!Derive(t).IsNever()) out.push_back(t);
  }
  return out;
}

Pre Pre::Derive(LinkType type) const {
  switch (kind()) {
    case PreKind::kEmpty:
    case PreKind::kNever:
      return Never();
    case PreKind::kLink:
      if (node_->link == type && node_->link != LinkType::kNull) {
        return Empty();
      }
      return Never();
    case PreKind::kConcat: {
      // d(a·rest) = d(a)·rest  |  [nullable(a)] d(rest)
      const Pre head = Pre(node_->children[0]);
      std::vector<Pre> tail_parts;
      for (size_t i = 1; i < node_->children.size(); ++i) {
        tail_parts.push_back(Pre(node_->children[i]));
      }
      const Pre tail = ConcatAll(tail_parts);
      Pre result = Concat(head.Derive(type), tail);
      if (head.ContainsNull()) {
        result = Alt(result, tail.Derive(type));
      }
      return result;
    }
    case PreKind::kAlt: {
      std::vector<Pre> parts;
      for (const NodeRef& c : node_->children) {
        parts.push_back(Pre(c).Derive(type));
      }
      return AltAll(parts);
    }
    case PreKind::kRepeat: {
      const Pre child = Pre(node_->children[0]);
      const Pre d = child.Derive(type);
      if (d.IsNever()) return Never();
      Pre remaining;
      if (node_->unbounded) {
        remaining = RepeatUnbounded(child);
      } else if (node_->max <= 1) {
        remaining = Empty();
      } else {
        remaining = Repeat(child, node_->max - 1);
      }
      return Concat(d, remaining);
    }
  }
  return Never();
}

bool Pre::Matches(const std::vector<LinkType>& path) const {
  Pre cur = *this;
  for (LinkType t : path) {
    cur = cur.Derive(t);
    if (cur.IsNever()) return false;
  }
  return cur.ContainsNull();
}

std::vector<std::vector<LinkType>> Pre::EnumeratePaths(size_t max_len,
                                                       size_t limit) const {
  std::vector<std::vector<LinkType>> out;
  // BFS in shortlex order over (path, derivative state).
  struct State {
    std::vector<LinkType> path;
    Pre pre;
  };
  std::deque<State> queue;
  queue.push_back({{}, *this});
  while (!queue.empty() && out.size() < limit) {
    State state = std::move(queue.front());
    queue.pop_front();
    if (state.pre.ContainsNull()) out.push_back(state.path);
    if (state.path.size() >= max_len) continue;
    for (LinkType t :
         {LinkType::kInterior, LinkType::kLocal, LinkType::kGlobal}) {
      Pre next = state.pre.Derive(t);
      if (next.IsNever()) continue;
      std::vector<LinkType> path = state.path;
      path.push_back(t);
      queue.push_back({std::move(path), std::move(next)});
    }
  }
  return out;
}

bool Pre::DecomposeStarPrefix(StarPrefix* out) const {
  const auto view_repeat = [](const NodeRef& n, StarPrefix* sp) -> bool {
    if (n == nullptr || n->kind != PreKind::kRepeat) return false;
    const NodeRef& child = n->children[0];
    if (child->kind != PreKind::kLink) return false;
    sp->link = child->link;
    sp->bound = n->max;
    sp->unbounded = n->unbounded;
    return true;
  };

  if (kind() == PreKind::kRepeat) {
    if (!view_repeat(node_, out)) return false;
    out->rest = Empty();
    return true;
  }
  if (kind() == PreKind::kConcat) {
    if (!view_repeat(node_->children[0], out)) return false;
    std::vector<Pre> rest_parts;
    for (size_t i = 1; i < node_->children.size(); ++i) {
      rest_parts.push_back(Pre(node_->children[i]));
    }
    out->rest = ConcatAll(rest_parts);
    return true;
  }
  return false;
}

Pre Pre::MultipleRewriteOnce() const {
  StarPrefix sp;
  const bool decomposed = DecomposeStarPrefix(&sp);
  WEBDIS_CHECK(decomposed) << "MultipleRewriteOnce on non-star-prefix PRE "
                           << ToString();
  WEBDIS_CHECK(sp.unbounded || sp.bound >= 1);
  Pre middle;
  if (sp.unbounded) {
    middle = RepeatUnbounded(Link(sp.link));
  } else if (sp.bound > 1) {
    middle = Repeat(Link(sp.link), sp.bound - 1);
  } else {
    middle = Empty();
  }
  return ConcatAll({Link(sp.link), middle, sp.rest});
}

std::string Pre::CanonicalKey() const {
  switch (kind()) {
    case PreKind::kEmpty:
      return "e";
    case PreKind::kNever:
      return "0";
    case PreKind::kLink:
      // The null link matches exactly the zero-length path: canonically
      // identical to ε (they differ only in how they print).
      if (node_->link == LinkType::kNull) return "e";
      return std::string(1, html::LinkTypeSymbol(node_->link));
    case PreKind::kConcat: {
      std::string out = "C(";
      for (const NodeRef& c : node_->children) out += Pre(c).CanonicalKey();
      out += ")";
      return out;
    }
    case PreKind::kAlt: {
      std::vector<std::string> keys;
      for (const NodeRef& c : node_->children) {
        keys.push_back(Pre(c).CanonicalKey());
      }
      std::sort(keys.begin(), keys.end());
      std::string out = "A(";
      for (const std::string& k : keys) {
        out += k;
        out += ",";
      }
      out += ")";
      return out;
    }
    case PreKind::kRepeat: {
      std::string out = "R";
      out += node_->unbounded ? "*" : std::to_string(node_->max);
      out += "(";
      out += Pre(node_->children[0]).CanonicalKey();
      out += ")";
      return out;
    }
  }
  return "?";
}

bool Pre::Equals(const Pre& other) const {
  return CanonicalKey() == other.CanonicalKey();
}

namespace {

/// Precedence levels for printing: alt(0) < concat(1) < repeat(2) < atom(3).
int Precedence(PreKind kind) {
  switch (kind) {
    case PreKind::kAlt:
      return 0;
    case PreKind::kConcat:
      return 1;
    case PreKind::kRepeat:
      return 2;
    default:
      return 3;
  }
}

}  // namespace

std::string Pre::ToString() const {
  switch (kind()) {
    case PreKind::kEmpty:
      return "N";  // the paper writes the zero-length path as the null link
    case PreKind::kNever:
      return "0";
    case PreKind::kLink:
      return std::string(1, html::LinkTypeSymbol(node_->link));
    case PreKind::kConcat: {
      std::string out;
      for (size_t i = 0; i < node_->children.size(); ++i) {
        if (i > 0) out += ".";
        const Pre child(node_->children[i]);
        if (Precedence(child.kind()) < Precedence(PreKind::kConcat)) {
          out += "(" + child.ToString() + ")";
        } else {
          out += child.ToString();
        }
      }
      return out;
    }
    case PreKind::kAlt: {
      std::string out;
      for (size_t i = 0; i < node_->children.size(); ++i) {
        if (i > 0) out += " | ";
        out += Pre(node_->children[i]).ToString();
      }
      return out;
    }
    case PreKind::kRepeat: {
      const Pre child(node_->children[0]);
      std::string inner = child.ToString();
      if (Precedence(child.kind()) < Precedence(PreKind::kRepeat)) {
        inner = "(" + inner + ")";
      }
      if (node_->unbounded) return inner + "*";
      return inner + "*" + std::to_string(node_->max);
    }
  }
  return "?";
}

void Pre::EncodeTo(serialize::Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(kind()));
  switch (kind()) {
    case PreKind::kEmpty:
    case PreKind::kNever:
      break;
    case PreKind::kLink:
      enc->PutU8(static_cast<uint8_t>(node_->link));
      break;
    case PreKind::kConcat:
    case PreKind::kAlt:
      enc->PutVarint(node_->children.size());
      for (const NodeRef& c : node_->children) Pre(c).EncodeTo(enc);
      break;
    case PreKind::kRepeat:
      enc->PutBool(node_->unbounded);
      enc->PutU32(node_->max);
      Pre(node_->children[0]).EncodeTo(enc);
      break;
  }
}

namespace {

Result<Pre> DecodePre(serialize::Decoder* dec, int depth) {
  constexpr int kMaxDepth = 64;
  if (depth > kMaxDepth) {
    return Status::Corruption("PRE tree too deep");
  }
  uint8_t tag = 0;
  WEBDIS_RETURN_IF_ERROR(dec->GetU8(&tag));
  switch (static_cast<PreKind>(tag)) {
    case PreKind::kEmpty:
      return Pre::Empty();
    case PreKind::kNever:
      return Pre::Never();
    case PreKind::kLink: {
      uint8_t link = 0;
      WEBDIS_RETURN_IF_ERROR(dec->GetU8(&link));
      if (link > static_cast<uint8_t>(LinkType::kNull)) {
        return Status::Corruption("bad link type tag");
      }
      return Pre::Link(static_cast<LinkType>(link));
    }
    case PreKind::kConcat:
    case PreKind::kAlt: {
      uint64_t count = 0;
      WEBDIS_RETURN_IF_ERROR(
          dec->GetCount("PRE operand", 1024, /*min_bytes_per_item=*/1,
                        &count));
      std::vector<Pre> parts;
      parts.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        Pre part;
        WEBDIS_ASSIGN_OR_RETURN(part, DecodePre(dec, depth + 1));
        parts.push_back(std::move(part));
      }
      return static_cast<PreKind>(tag) == PreKind::kConcat
                 ? Pre::ConcatAll(parts)
                 : Pre::AltAll(parts);
    }
    case PreKind::kRepeat: {
      bool unbounded = false;
      WEBDIS_RETURN_IF_ERROR(dec->GetBool(&unbounded));
      uint32_t max = 0;
      WEBDIS_RETURN_IF_ERROR(dec->GetU32(&max));
      Pre child;
      WEBDIS_ASSIGN_OR_RETURN(child, DecodePre(dec, depth + 1));
      return unbounded ? Pre::RepeatUnbounded(child)
                       : Pre::Repeat(child, max);
    }
    default:
      return Status::Corruption("bad PRE kind tag");
  }
}

}  // namespace

Result<Pre> Pre::DecodeFrom(serialize::Decoder* dec) {
  return DecodePre(dec, 0);
}

}  // namespace webdis::pre
