#include "pre/log_equivalence.h"

namespace webdis::pre {

LogDecision ComparePreForLog(const Pre& incoming, const Pre& logged) {
  LogDecision decision;
  if (incoming.Equals(logged)) {
    decision.comparison = LogComparison::kDuplicate;
    return decision;
  }
  StarPrefix in_sp, log_sp;
  if (!incoming.DecomposeStarPrefix(&in_sp) ||
      !logged.DecomposeStarPrefix(&log_sp)) {
    return decision;  // kUnrelated
  }
  if (in_sp.link != log_sp.link || !in_sp.rest.Equals(log_sp.rest)) {
    return decision;  // kUnrelated
  }
  // Same A and same B; compare the bounds m (incoming) vs n (logged).
  const bool incoming_covers_logged =
      in_sp.unbounded || (!log_sp.unbounded && in_sp.bound > log_sp.bound);
  if (!incoming_covers_logged) {
    // m <= n (or logged unbounded): every path of the incoming PRE was
    // already explored by the logged clone.
    decision.comparison = LogComparison::kDuplicate;
    return decision;
  }
  // m > n: only the difference must be processed. The multiple-rewrite
  // forces this node to act as a PureRouter (the first link of A is consumed
  // explicitly) and keeps downstream log comparisons unambiguous
  // (Section 3.1.1's argument against the single-rewrite A^{n+1}·A*(m-n-1)·B).
  decision.comparison = LogComparison::kSupersetRewrite;
  decision.rewritten = incoming.MultipleRewriteOnce();
  return decision;
}

LogPreForm MakeLogPreForm(const Pre& pre) {
  LogPreForm form;
  form.canonical = pre.CanonicalKey();
  form.star = pre.DecomposeStarPrefix(&form.prefix);
  if (form.star) form.rest_canonical = form.prefix.rest.CanonicalKey();
  return form;
}

LogDecision ComparePreForLog(const Pre& incoming,
                             const LogPreForm& incoming_form,
                             const LogPreForm& logged_form) {
  LogDecision decision;
  if (incoming_form.canonical == logged_form.canonical) {
    decision.comparison = LogComparison::kDuplicate;
    return decision;
  }
  if (!incoming_form.star || !logged_form.star) {
    return decision;  // kUnrelated
  }
  const StarPrefix& in_sp = incoming_form.prefix;
  const StarPrefix& log_sp = logged_form.prefix;
  if (in_sp.link != log_sp.link ||
      incoming_form.rest_canonical != logged_form.rest_canonical) {
    return decision;  // kUnrelated
  }
  const bool incoming_covers_logged =
      in_sp.unbounded || (!log_sp.unbounded && in_sp.bound > log_sp.bound);
  if (!incoming_covers_logged) {
    decision.comparison = LogComparison::kDuplicate;
    return decision;
  }
  decision.comparison = LogComparison::kSupersetRewrite;
  decision.rewritten = incoming.MultipleRewriteOnce();
  return decision;
}

}  // namespace webdis::pre
