#include "pre/log_equivalence.h"

namespace webdis::pre {

LogDecision ComparePreForLog(const Pre& incoming, const Pre& logged) {
  LogDecision decision;
  if (incoming.Equals(logged)) {
    decision.comparison = LogComparison::kDuplicate;
    return decision;
  }
  StarPrefix in_sp, log_sp;
  if (!incoming.DecomposeStarPrefix(&in_sp) ||
      !logged.DecomposeStarPrefix(&log_sp)) {
    return decision;  // kUnrelated
  }
  if (in_sp.link != log_sp.link || !in_sp.rest.Equals(log_sp.rest)) {
    return decision;  // kUnrelated
  }
  // Same A and same B; compare the bounds m (incoming) vs n (logged).
  const bool incoming_covers_logged =
      in_sp.unbounded || (!log_sp.unbounded && in_sp.bound > log_sp.bound);
  if (!incoming_covers_logged) {
    // m <= n (or logged unbounded): every path of the incoming PRE was
    // already explored by the logged clone.
    decision.comparison = LogComparison::kDuplicate;
    return decision;
  }
  // m > n: only the difference must be processed. The multiple-rewrite
  // forces this node to act as a PureRouter (the first link of A is consumed
  // explicitly) and keeps downstream log comparisons unambiguous
  // (Section 3.1.1's argument against the single-rewrite A^{n+1}·A*(m-n-1)·B).
  decision.comparison = LogComparison::kSupersetRewrite;
  decision.rewritten = incoming.MultipleRewriteOnce();
  return decision;
}

}  // namespace webdis::pre
