#ifndef WEBDIS_PRE_PRE_H_
#define WEBDIS_PRE_PRE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "html/url.h"

namespace webdis::serialize {
class Encoder;
class Decoder;
}  // namespace webdis::serialize

namespace webdis::pre {

using html::LinkType;

/// AST node kinds for Path Regular Expressions (Section 2: symbols I/L/G/N,
/// operators concatenation `·`, alternation `|`, bounded repetition `*k`).
/// kEmpty is the zero-length path ε; kNever is the empty language ∅ (arises
/// only from derivatives of dead branches).
enum class PreKind : uint8_t {
  kEmpty = 0,
  kNever = 1,
  kLink = 2,
  kConcat = 3,
  kAlt = 4,
  kRepeat = 5,
};

/// A Path Regular Expression — an immutable value type (cheap to copy: the
/// tree is shared). All operations the WEBDIS protocol needs are here:
///
///  * `ContainsNull()`  — does the PRE admit the zero-length path? If so the
///    node-query is evaluated at the current node (the node is a
///    ServerRouter for this hop, else a PureRouter).
///  * `FirstLinks()`    — which link types should the query be forwarded on.
///  * `Derive(l)`       — rem(p) after traversing one link of type l
///    (Brzozowski derivative, algebraically simplified).
///  * `DecomposeStarPrefix()` / `MultipleRewriteOnce()` — the log-table
///    machinery of Section 3.1.1 for `A*m·B` superset detection and the
///    query-multiple-rewrite `A*m·B → A·A*(m-1)·B`.
///
/// Repetition `A*k` matches 0..k copies of A; `A*` (no bound) matches 0..∞.
class Pre {
 public:
  /// Default-constructed PRE is ε (zero-length path).
  Pre();

  // -- Constructors --------------------------------------------------------
  static Pre Empty();
  static Pre Never();
  static Pre Link(LinkType type);
  /// Concatenation p1·p2 (flattens, drops ε, absorbs ∅).
  static Pre Concat(const Pre& a, const Pre& b);
  static Pre ConcatAll(const std::vector<Pre>& parts);
  /// Alternation p1|p2 (flattens, drops ∅, dedupes).
  static Pre Alt(const Pre& a, const Pre& b);
  static Pre AltAll(const std::vector<Pre>& parts);
  /// Bounded repetition a*max (0..max copies).
  static Pre Repeat(const Pre& a, uint32_t max);
  /// Unbounded repetition a* (0..∞ copies).
  static Pre RepeatUnbounded(const Pre& a);

  /// Parses PRE syntax: `N | G·(L*4)`, `G.(G|L)`, `L*`, ... Both the paper's
  /// `·` (U+00B7) and ASCII `.` are accepted as concatenation.
  static Result<Pre> Parse(std::string_view text);

  // -- Inspection ----------------------------------------------------------
  PreKind kind() const;
  bool IsEmpty() const { return kind() == PreKind::kEmpty; }
  bool IsNever() const { return kind() == PreKind::kNever; }

  /// True iff the zero-length path is in the language ("the PRE contains a
  /// null link" in the paper's phrasing). ε, N, and any `*` are nullable.
  bool ContainsNull() const;

  /// Link types on which the language has a continuation (the derivative is
  /// not ∅): the subset of a node's out-links the query is forwarded on.
  /// Never includes kNull.
  std::vector<LinkType> FirstLinks() const;

  /// Brzozowski derivative: the remaining PRE after traversing one link of
  /// type `type`. Returns Never() if no path starts with that link type.
  Pre Derive(LinkType type) const;

  /// True iff the exact sequence of link types is in the language.
  bool Matches(const std::vector<LinkType>& path) const;

  /// All paths (link-type sequences) of length <= max_len in the language,
  /// in shortlex order. For testing and for the data-shipping baseline's
  /// local traversal. Caps output at `limit` paths.
  std::vector<std::vector<LinkType>> EnumeratePaths(size_t max_len,
                                                    size_t limit = 100000)
      const;

  // -- Log-table support (Section 3.1.1) -----------------------------------

  /// Attempts to view this PRE as `(A*m)·B` with A a single link symbol
  /// (see StarPrefix below; a bare `A*m` decomposes with rest = ε).
  /// Returns false if the PRE does not have that shape.
  bool DecomposeStarPrefix(struct StarPrefix* out) const;

  /// The paper's query-multiple-rewrite: `A*m·B → A·(A*(m-1))·B`. For the
  /// unbounded `A*·B` the result is `A·A*·B`. Precondition: this PRE
  /// decomposes to a star prefix with bound >= 1 (or unbounded).
  Pre MultipleRewriteOnce() const;

  /// Structural equivalence under canonicalization (alternation is compared
  /// order-insensitively). This is the log-table "completely identical"
  /// test; it is NOT full language equivalence.
  bool Equals(const Pre& other) const;

  /// Canonical key string: equal keys <=> Equals(). Usable as a map key.
  std::string CanonicalKey() const;

  // -- Misc ----------------------------------------------------------------

  /// Round-trippable rendering using ASCII '.', '|', '*', parentheses.
  std::string ToString() const;

  void EncodeTo(serialize::Encoder* enc) const;
  static Result<Pre> DecodeFrom(serialize::Decoder* dec);

  bool operator==(const Pre& other) const { return Equals(other); }

 private:
  struct Node;
  using NodeRef = std::shared_ptr<const Node>;

  explicit Pre(NodeRef node);

  NodeRef node_;
};

/// The `(A*m)·B` shape the paper's log-table equivalence rules operate on.
/// `bound` is m; `unbounded` means `A*`; `rest` is B (possibly ε).
struct StarPrefix {
  LinkType link = LinkType::kLocal;
  uint32_t bound = 0;
  bool unbounded = false;
  Pre rest;
};

}  // namespace webdis::pre

#endif  // WEBDIS_PRE_PRE_H_
