#include "client/user_site.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "html/url.h"
#include "serialize/encoder.h"
#include "server/http_server.h"

namespace webdis::client {

std::string QueryRunStats::ToText() const {
  std::string out;
  const auto line = [&out](const char* name, uint64_t value) {
    if (value != 0) out += StringPrintf("%s: %llu\n", name,
                                        static_cast<unsigned long long>(value));
  };
  line("reports_received", reports_received);
  line("node_reports", node_reports);
  line("duplicate_drop_reports", duplicate_drop_reports);
  line("undeliverable_reports", undeliverable_reports);
  line("budget_exceeded_reports", budget_exceeded_reports);
  line("site_retired_reports", site_retired_reports);
  line("epoch_gated_reports", epoch_gated_reports);
  line("result_rows_received", result_rows_received);
  line("duplicate_rows_filtered", duplicate_rows_filtered);
  line("termination_messages_sent", termination_messages_sent);
  line("root_acks_received", root_acks_received);
  line("report_batches_received", report_batches_received);
  line("report_batch_members_received", report_batch_members_received);
  line("batch_members_dropped_closed", batch_members_dropped_closed);
  line("entries_gc", entries_gc);
  line("redeliveries_suppressed", redeliveries_suppressed);
  line("dispatch_send_errors", dispatch_send_errors);
  line("termination_send_failures", termination_send_failures);
  return out;
}

UserSite::UserSite(std::string host, net::Transport* transport,
                   UserSiteOptions options)
    : host_(std::move(host)),
      transport_(transport),
      options_(options),
      sender_(transport, options.retry),
      receiver_(transport,
                options.retry.enabled && transport->SupportsTimers()),
      clock_([] { return SimTime{0}; }),
      next_port_(options.first_result_port) {}

Result<query::QueryId> UserSite::Submit(const disql::CompiledQuery& compiled,
                                        const std::string& user) {
  if (compiled.start_urls.empty()) {
    return Status::InvalidArgument("compiled query has no StartNodes");
  }
  query::QueryId id;
  id.user = user;
  id.reply_host = host_;
  id.reply_port = next_port_++;
  id.query_number = next_query_number_++;

  auto run = std::make_unique<QueryRun>(options_.cht_dedup,
                                        options_.robust_completion);
  run->id = id;
  run->compiled.web_query = compiled.web_query.Clone();
  run->compiled.start_urls = compiled.start_urls;
  run->compiled.select_labels = compiled.select_labels;
  run->submit_time = clock_();
  QueryRun* raw = run.get();

  // Open the listening result socket; its port travels in the QueryId.
  WEBDIS_RETURN_IF_ERROR(transport_->Listen(
      net::Endpoint{host_, id.reply_port},
      [this, raw](const net::Endpoint& from, net::MessageType type,
                  const std::vector<uint8_t>& payload) {
        OnMessage(raw, from, type, payload);
      }));
  runs_.emplace(id.Key(), std::move(run));

  // Group StartNodes by site — the initial dispatch enjoys the same
  // one-clone-per-site batching as forwarding (§3.2(4)).
  std::map<std::string, std::vector<std::string>> by_host;
  for (const std::string& url : compiled.start_urls) {
    auto parsed = html::ParseUrl(url);
    if (!parsed.ok()) {
      return Status::InvalidArgument(
          StringPrintf("bad StartNode URL '%s'", url.c_str()));
    }
    by_host[parsed->host].push_back(parsed->ResourceKey());
  }

  // Per-query resource budget (PROTOCOL.md §7.1): deadlines become absolute
  // here, and the clone allowance is split across the initial per-site
  // clones (remainder to the first sites) so the *global* dispatch count is
  // bounded no matter how the traversal fans out.
  query::QueryBudget budget;
  if (options_.budget_deadline > 0) {
    budget.has_deadline = true;
    budget.deadline = clock_() + options_.budget_deadline;
  }
  if (options_.budget_max_hops > 0) {
    budget.has_hop_limit = true;
    budget.hops_left = options_.budget_max_hops;
  }
  if (options_.budget_max_rows_per_visit > 0) {
    budget.has_row_limit = true;
    budget.max_rows_per_visit = options_.budget_max_rows_per_visit;
  }
  if (options_.epoch_source) {
    // §10.1: pin the web epoch at submission — servers hide documents
    // spawned after it, so this run sees a consistent reachability set.
    budget.pinned_epoch = options_.epoch_source();
    raw->pinned_epoch = budget.pinned_epoch;
  }
  uint64_t clone_alloc_base = 0;
  uint64_t clone_alloc_extra = 0;
  if (options_.budget_max_clones > 0) {
    budget.has_clone_limit = true;
    clone_alloc_base = options_.budget_max_clones / by_host.size();
    clone_alloc_extra = options_.budget_max_clones % by_host.size();
  }

  const query::CloneState initial_state{
      static_cast<uint32_t>(compiled.web_query.remaining_queries.size()),
      compiled.web_query.rem_pre};
  const net::Endpoint self{host_, id.reply_port};
  uint64_t next_root_token = 1;
  size_t site_index = 0;
  for (const auto& [site_host, urls] : by_host) {
    // Figure 2: enter the CHT entries, then dispatch.
    if (!options_.ack_tree_termination) {
      for (const std::string& url : urls) {
        raw->cht.Add(url, initial_state, clock_());
      }
    }
    query::WebQuery clone = compiled.web_query.Clone();
    clone.id = id;
    clone.dest_urls = urls;
    clone.budget = budget;
    if (budget.has_clone_limit) {
      clone.budget.clones_left =
          clone_alloc_base + (site_index < clone_alloc_extra ? 1 : 0);
    }
    ++site_index;
    uint64_t root_token = 0;
    if (options_.ack_tree_termination) {
      root_token = next_root_token++;
      clone.ack_mode = true;
      clone.ack_parent_host = host_;
      clone.ack_parent_port = id.reply_port;
      clone.ack_token = root_token;
      raw->outstanding_root_acks.insert(root_token);
    }
    serialize::Encoder enc;
    clone.EncodeTo(&enc);
    const Status status = sender_.Send(
        self, net::Endpoint{site_host, server::kQueryServerPort},
        net::MessageType::kWebQuery, enc.Release());
    if (!status.ok() && status.code() != StatusCode::kConnectionRefused &&
        sender_.enabled()) {
      // Transient transport error with retry armed: the clone will be
      // retransmitted, so the CHT entries must stay — falling back now
      // would process the StartNodes twice (centrally AND on redelivery).
      // If every retry exhausts, the deadline sweep reclaims the entries.
      ++raw->stats.dispatch_send_errors;
      continue;
    }
    if (!status.ok()) {
      // StartNode site runs no query server: clear the entries and record
      // the nodes for centralized fallback.
      if (options_.ack_tree_termination) {
        raw->outstanding_root_acks.erase(root_token);
      } else {
        for (const std::string& url : urls) {
          raw->cht.MarkDeleted(url, initial_state, clock_());
        }
      }
      for (const std::string& url : urls) {
        raw->fallback_nodes.push_back(query::ChtEntry{url, initial_state});
      }
    }
  }
  MaybeComplete(raw);
  if (!raw->completed && options_.use_cht &&
      !options_.ack_tree_termination && options_.entry_deadline > 0 &&
      transport_->SupportsTimers()) {
    ScheduleSweep(raw);
  }
  return id;
}

void UserSite::ScheduleSweep(QueryRun* run) {
  const SimDuration interval =
      std::max<SimDuration>(options_.entry_deadline / 4, kMillisecond);
  run->sweep_timer = transport_->ScheduleAfter(
      interval, [this, run] { SweepDeadlines(run); });
}

void UserSite::CancelSweep(QueryRun* run) {
  if (run->sweep_timer != 0) {
    transport_->CancelTimer(run->sweep_timer);
    run->sweep_timer = 0;
  }
}

void UserSite::SweepDeadlines(QueryRun* run) {
  run->sweep_timer = 0;
  if (run->completed || run->cancelled) return;
  const std::vector<CurrentHostsTable::Entry> expired =
      run->cht.DrainExpired(clock_(), options_.entry_deadline);
  for (const CurrentHostsTable::Entry& entry : expired) {
    ++run->stats.entries_gc;
    run->partial = true;
    auto parsed = html::ParseUrl(entry.node_url);
    const std::string site_host =
        parsed.ok() ? parsed->host : entry.node_url;
    if (std::find(run->unreachable_hosts.begin(),
                  run->unreachable_hosts.end(),
                  site_host) == run->unreachable_hosts.end()) {
      run->unreachable_hosts.push_back(site_host);
    }
  }
  MaybeComplete(run);
  // Re-arm while the run is live. Termination is still guaranteed: the
  // message supply is finite (retries are capped), so eventually every key
  // either settles or goes idle past the deadline and is collected here.
  if (!run->completed && !run->cancelled) ScheduleSweep(run);
}

const UserSite::QueryRun* UserSite::Find(const query::QueryId& id) const {
  auto it = runs_.find(id.Key());
  return it == runs_.end() ? nullptr : it->second.get();
}

bool UserSite::IsComplete(const query::QueryId& id) const {
  const QueryRun* run = Find(id);
  return run != nullptr && run->completed;
}

void UserSite::Cancel(const query::QueryId& id) {
  auto it = runs_.find(id.Key());
  if (it == runs_.end()) return;
  QueryRun* run = it->second.get();
  if (run->completed || run->cancelled) return;
  run->cancelled = true;
  CancelSweep(run);
  if (options_.active_termination) {
    // Send kTerminate to every site with an active clone.
    std::set<std::string> hosts;
    for (const CurrentHostsTable::Entry& entry : run->cht.entries()) {
      if (entry.deleted) continue;
      auto parsed = html::ParseUrl(entry.node_url);
      if (parsed.ok()) hosts.insert(parsed->host);
    }
    serialize::Encoder enc;
    id.EncodeTo(&enc);
    const std::vector<uint8_t> payload = enc.Release();
    const net::Endpoint self{host_, id.reply_port};
    for (const std::string& site_host : hosts) {
      const Status status = transport_->Send(
          self, net::Endpoint{site_host, server::kQueryServerPort},
          net::MessageType::kTerminate, payload);
      if (status.ok()) {
        ++run->stats.termination_messages_sent;
      } else {
        // Observed, not fatal: a site that misses its kTerminate keeps
        // processing until its next report send is refused (passive
        // termination below always runs, so that refusal is guaranteed).
        ++run->stats.termination_send_failures;
      }
    }
  }
  // Passive termination (both modes): close the socket; every later result
  // dispatch is refused and servers purge the query locally (Section 2.8).
  CloseResultSocket(run);
}

void UserSite::FinishWithTimeout(const query::QueryId& id,
                                 SimDuration timeout) {
  auto it = runs_.find(id.Key());
  if (it == runs_.end()) return;
  QueryRun* run = it->second.get();
  if (run->completed) return;
  run->completed = true;
  CancelSweep(run);
  const SimTime base =
      run->stats.reports_received > 0 ? run->last_report_time
                                      : run->submit_time;
  run->completion_time = base + timeout;
  CloseResultSocket(run);
}

size_t UserSite::AbandonStalled(const query::QueryId& id) {
  auto it = runs_.find(id.Key());
  if (it == runs_.end()) return 0;
  QueryRun* run = it->second.get();
  if (run->completed) return 0;
  const std::vector<CurrentHostsTable::Entry> outstanding =
      run->cht.DrainOutstanding();
  for (const CurrentHostsTable::Entry& entry : outstanding) {
    run->fallback_nodes.push_back(
        query::ChtEntry{entry.node_url, entry.state});
  }
  run->completed = true;
  CancelSweep(run);
  run->completion_time = clock_();
  CloseResultSocket(run);
  return outstanding.size();
}

void UserSite::CloseResultSocket(QueryRun* run) {
  run->socket_closed = true;
  transport_->CloseListener(net::Endpoint{host_, run->id.reply_port});
}

void UserSite::OnMessage(QueryRun* run, const net::Endpoint& from,
                         net::MessageType type,
                         const std::vector<uint8_t>& payload) {
  if (type == net::MessageType::kAck && options_.ack_tree_termination) {
    serialize::Decoder dec(payload);
    uint64_t token = 0;
    if (!dec.GetU64(&token).ok() || !dec.ExpectAtEnd("ack").ok()) return;
    ++run->stats.root_acks_received;
    run->outstanding_root_acks.erase(token);
    MaybeComplete(run);
    return;
  }
  if (type == net::MessageType::kDeliveryAck) {
    sender_.OnAck(payload);
    return;
  }
  if (type == net::MessageType::kOverloaded) {
    // A StartNode server shed an initial clone: re-arm it on the overload
    // backoff schedule instead of retrying hot.
    sender_.OnOverloaded(payload);
    return;
  }
  if (type == net::MessageType::kSiteRetired) {
    // A StartNode site retired (§10.2): terminal — abandon the transfer.
    // The retired server's site-retired reports settle the CHT entries.
    sender_.OnSiteRetired(payload);
    return;
  }
  if (type != net::MessageType::kReport &&
      type != net::MessageType::kReportBatch) {
    WEBDIS_LOG(kWarning) << "user site ignoring message of type "
                         << net::MessageTypeToString(type);
    return;
  }
  // Report-sequence dedup: a retransmitted report whose original got
  // through must not double-count CHT deletions or rows. A batch rides one
  // transfer seq, accepted (or suppressed) whole at the carrier endpoint.
  std::vector<uint8_t> inner;
  const std::vector<uint8_t>* body = &payload;
  if (receiver_.enabled()) {
    if (!receiver_.Accept(net::Endpoint{host_, run->id.reply_port}, from,
                          payload, &inner)) {
      ++run->stats.redeliveries_suppressed;
      return;
    }
    body = &inner;
  }
  serialize::Decoder dec(*body);
  if (type == net::MessageType::kReportBatch) {
    // Cross-query sharing (PROTOCOL.md §9.3): reports for *different*
    // queries of this user site, delivered on the carrier member's socket.
    // Demultiplex by each member's QueryId.
    query::ReportBatch batch;
    Status status = query::ReportBatch::DecodeFrom(&dec, &batch);
    if (status.ok()) status = dec.ExpectAtEnd("report-batch payload");
    if (!status.ok()) {
      WEBDIS_LOG(kWarning) << "bad report batch: " << status.ToString();
      return;
    }
    ++run->stats.report_batches_received;
    run->stats.report_batch_members_received += batch.reports.size();
    for (const query::QueryReport& report : batch.reports) {
      auto it = runs_.find(report.id.Key());
      if (it == runs_.end()) {
        WEBDIS_LOG(kWarning) << "batched report for unknown query "
                             << report.id.Key();
        continue;
      }
      QueryRun* member_run = it->second.get();
      if (member_run->socket_closed) {
        // An individual send would have been refused (§2.8): the drop here
        // is that refusal, applied at demux time — the server already
        // learns of the closure from its next individual send or carrier
        // refusal on this port.
        ++member_run->stats.batch_members_dropped_closed;
        continue;
      }
      HandleReport(member_run, report);
    }
    return;
  }
  query::QueryReport report;
  Status status = query::QueryReport::DecodeFrom(&dec, &report);
  if (status.ok()) status = dec.ExpectAtEnd("report payload");
  if (!status.ok()) {
    WEBDIS_LOG(kWarning) << "bad report: " << status.ToString();
    return;
  }
  if (!(report.id == run->id)) {
    WEBDIS_LOG(kWarning) << "report for unknown query " << report.id.Key();
    return;
  }
  HandleReport(run, report);
}

void UserSite::HandleReport(QueryRun* run,
                            const query::QueryReport& report) {
  ++run->stats.reports_received;
  run->last_report_time = clock_();
  for (const query::NodeReport& nr : report.node_reports) {
    ++run->stats.node_reports;
    if (report_observer_) report_observer_(run->id, nr);
    // Mark the topmost entry (the processed node in its received state)
    // deleted. Unmatched deletes are tolerated: the entry may have been
    // suppressed by CHT dedup. (The ack-tree baseline keeps no CHT.)
    if (!options_.ack_tree_termination) {
      run->cht.MarkDeleted(nr.node_url, nr.received_state, clock_());
    }
    if (nr.duplicate_drop) {
      ++run->stats.duplicate_drop_reports;
      continue;
    }
    if (nr.undeliverable) {
      ++run->stats.undeliverable_reports;
      run->fallback_nodes.push_back(
          query::ChtEntry{nr.node_url, nr.received_state});
      continue;
    }
    if (nr.visibility == query::NodeReport::kVisibilitySiteRetired) {
      // §10.2: the node's site retired mid-run — a named degraded outcome
      // (retired_sites), deliberately NOT `partial`: partial means deadline
      // GC gave up on unreachable hosts, while retirement settles the CHT
      // cleanly. The topmost entry was already cleared above; nothing was
      // evaluated or forwarded, and the host never lands in the
      // retry/fallback path.
      ++run->stats.site_retired_reports;
      auto parsed = html::ParseUrl(nr.node_url);
      const std::string site_host =
          parsed.ok() ? parsed->host : nr.node_url;
      if (std::find(run->retired_sites.begin(), run->retired_sites.end(),
                    site_host) == run->retired_sites.end()) {
        run->retired_sites.push_back(site_host);
      }
      continue;
    }
    if (nr.visibility == query::NodeReport::kVisibilityEpochGated) {
      // §10.3: the document was spawned after this run's pinned epoch and
      // is invisible to it — by design, not a degradation.
      ++run->stats.epoch_gated_reports;
      if (std::find(run->epoch_gated_nodes.begin(),
                    run->epoch_gated_nodes.end(),
                    nr.node_url) == run->epoch_gated_nodes.end()) {
        run->epoch_gated_nodes.push_back(nr.node_url);
      }
      continue;
    }
    if (nr.doc_version != 0) {
      // §10.1: record the stamped document version for the final verdict's
      // freshness classification. Re-visits (recomputation with dedup off)
      // keep the highest stamp seen.
      uint64_t& stamped = run->node_versions[nr.node_url];
      stamped = std::max(stamped, nr.doc_version);
    }
    if (nr.budget_exceeded) {
      // Explicit degradation (PROTOCOL.md §7.1): the visit was shed,
      // expired, vetoed, or truncated. The topmost entry was already
      // cleared above; record the node so the partial outcome names it.
      // NOT a `continue`: a truncated visit still carries its surviving
      // rows and CHT entries below.
      ++run->stats.budget_exceeded_reports;
      run->budget_exhausted = true;
      if (std::find(run->budget_exceeded_nodes.begin(),
                    run->budget_exceeded_nodes.end(),
                    nr.node_url) == run->budget_exceeded_nodes.end()) {
        run->budget_exceeded_nodes.push_back(nr.node_url);
      }
    }
    if (!options_.ack_tree_termination) {
      for (const query::ChtEntry& entry : nr.next_entries) {
        run->cht.Add(entry.node_url, entry.state, clock_());
      }
    }
    for (const relational::ResultSet& rs : nr.result_sets) {
      MergeResults(run, rs);
    }
  }
  // Approximate-query budget: enough rows collected -> stop the traversal
  // via the ordinary passive-termination machinery.
  if (options_.row_limit > 0 && !run->completed && !run->cancelled) {
    size_t unique_rows = 0;
    for (const relational::ResultSet& rs : run->results) {
      unique_rows += rs.rows.size();
    }
    if (unique_rows >= options_.row_limit) {
      run->truncated = true;
      run->completed = true;
      CancelSweep(run);
      run->completion_time = clock_();
      CloseResultSocket(run);
      return;
    }
  }
  MaybeComplete(run);
}

void UserSite::MergeResults(QueryRun* run, const relational::ResultSet& rs) {
  const std::string signature = Join(rs.column_labels, "\x1f");
  std::set<std::string>& seen = seen_rows_[run->id.Key()];
  relational::ResultSet* target = nullptr;
  for (relational::ResultSet& existing : run->results) {
    if (existing.column_labels == rs.column_labels) {
      target = &existing;
      break;
    }
  }
  if (target == nullptr) {
    relational::ResultSet fresh;
    fresh.column_labels = rs.column_labels;
    run->results.push_back(std::move(fresh));
    target = &run->results.back();
  }
  for (const relational::Tuple& row : rs.rows) {
    ++run->stats.result_rows_received;
    std::string key = signature;
    for (const relational::Value& v : row) {
      key += '\x1e';
      key += v.ToString();
    }
    if (!seen.insert(std::move(key)).second) {
      // Duplicate rows reach the user when recomputation suppression is
      // disabled ("the same set of results will be received multiple times
      // and these will have to be filtered", Section 3.1).
      ++run->stats.duplicate_rows_filtered;
      continue;
    }
    target->rows.push_back(row);
  }
}

void UserSite::MaybeComplete(QueryRun* run) {
  if (run->completed || run->cancelled) return;
  if (options_.ack_tree_termination) {
    if (run->outstanding_root_acks.empty()) {
      run->completed = true;
      CancelSweep(run);
      run->completion_time = clock_();
      if (options_.close_socket_on_completion) {
        CloseResultSocket(run);
      }
    }
    return;
  }
  if (!options_.use_cht) return;
  if (run->cht.AllDeleted()) {
    run->completed = true;
    CancelSweep(run);
    run->completion_time = clock_();
    if (options_.close_socket_on_completion) {
      CloseResultSocket(run);
    }
  }
}

}  // namespace webdis::client
