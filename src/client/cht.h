#ifndef WEBDIS_CLIENT_CHT_H_
#define WEBDIS_CLIENT_CHT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "query/report.h"
#include "query/web_query.h"

namespace webdis::client {

/// The Current Hosts Table of Section 2.7.1: one per submitted query, kept
/// at the user site. Tracks every node currently hosting a clone of the
/// query, keyed by (node URL, clone state). The query is complete when every
/// entry has been matched by a deletion.
///
/// Two completion modes:
///
///  * **robust** (default, an extension): completion is balance-counted.
///    Every clone dispatched produces exactly one Add and — because servers
///    report even duplicate drops — exactly one MarkDeleted, so completion
///    is "every (node, state) key's add/delete balance is zero". This is
///    immune to cross-message reordering (a small drop-report can overtake
///    the larger report that created its entry) and to disagreement between
///    the client-side dedup mirror and the server log tables.
///
///  * **paper** mode: the original design — dedup-suppressed entries are
///    expected to be silently dropped by the target server, deletions must
///    match active entries, and unmatched deletions are ignored. Correct in
///    the common case but hangs under adversarial interleavings (see
///    DESIGN.md §5); kept for the ablation benchmarks.
///
/// With `dedup` enabled, Add() suppresses entries the paper's log-table
/// rules would drop at the target server (the "minor modification" at the
/// end of Section 3.1.1), mirroring the server-side equivalence logic.
class CurrentHostsTable {
 public:
  CurrentHostsTable(bool dedup, bool robust)
      : dedup_(dedup), robust_(robust) {}

  struct Entry {
    std::string node_url;
    query::CloneState state;
    bool deleted = false;
    /// Virtual time of the last add/delete touching this entry's key —
    /// feeds the deadline GC (DrainExpired).
    SimTime last_activity = 0;
  };

  /// Adds an entry for a clone en route to `node_url` in `state`. Returns
  /// false if suppressed as a duplicate (dedup mode only; in robust mode the
  /// suppressed add still participates in balance counting). `now` stamps
  /// the key for deadline GC (0 = caller keeps no clock).
  bool Add(const std::string& node_url, const query::CloneState& state,
           SimTime now = 0);

  /// Processes a deletion for (node_url, state). Marks the first active
  /// matching entry deleted when one exists. Returns false if no active
  /// entry matched (tolerated; in robust mode the balance still decreases).
  bool MarkDeleted(const std::string& node_url,
                   const query::CloneState& state, SimTime now = 0);

  /// Completion test (see class comment for mode semantics).
  bool AllDeleted() const;

  /// Gives up on everything still outstanding (graceful recovery from node
  /// failures, §7.1): returns one entry per outstanding (node, state) —
  /// active entries in paper mode, positive-balance keys in robust mode
  /// (which also covers dedup-suppressed clones whose drop-reports died
  /// with a crashed server) — marks everything deleted, and zeroes all
  /// balances so AllDeleted() becomes true.
  std::vector<Entry> DrainOutstanding();

  /// Deadline GC (failure handling, PROTOCOL.md): gives up on outstanding
  /// keys whose last add/delete activity is at least `deadline` old —
  /// evidence their host crashed or was partitioned away. Returns one
  /// representative entry per expired key and zeroes it so completion can
  /// be reached (as a *partial* outcome). Unlike DrainOutstanding this is
  /// selective: keys with recent activity stay live. In robust mode
  /// negative-balance keys expire too (their overtaking add will never
  /// arrive once the sender is dead).
  std::vector<Entry> DrainExpired(SimTime now, SimDuration deadline);

  size_t active_count() const { return active_; }
  size_t total_count() const { return entries_.size(); }
  /// High-water mark of concurrent active entries — the CHT memory cost the
  /// protocol pays for completion detection.
  size_t max_active() const { return max_active_; }
  uint64_t suppressed_count() const { return suppressed_; }
  uint64_t unmatched_deletes() const { return unmatched_deletes_; }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  /// Key for balance counting: node URL + canonical state rendering.
  static std::string BalanceKey(const std::string& node_url,
                                const query::CloneState& state);
  void Bump(const std::string& node_url, const query::CloneState& state,
            int delta, SimTime now);

  /// Per-key add/delete balance plus a representative (node, state) so
  /// outstanding keys can be recovered.
  struct KeyBalance {
    int64_t balance = 0;
    std::string node_url;
    query::CloneState state;
    SimTime last_activity = 0;
  };

  bool dedup_;
  bool robust_;
  std::vector<Entry> entries_;
  size_t active_ = 0;
  size_t max_active_ = 0;
  uint64_t suppressed_ = 0;
  uint64_t unmatched_deletes_ = 0;
  uint64_t total_adds_ = 0;
  /// Robust mode: per-key (adds - deletes); completion when all zero.
  std::map<std::string, KeyBalance> balance_;
  size_t nonzero_keys_ = 0;
  /// Dedup mirror: (node URL, num_q) -> logged PREs, same rules as the
  /// server-side log table.
  std::map<std::pair<std::string, uint32_t>, std::vector<pre::Pre>> mirror_;
};

}  // namespace webdis::client

#endif  // WEBDIS_CLIENT_CHT_H_
