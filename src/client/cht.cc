#include "client/cht.h"

#include <set>

#include "pre/log_equivalence.h"

namespace webdis::client {

std::string CurrentHostsTable::BalanceKey(const std::string& node_url,
                                          const query::CloneState& state) {
  return node_url + '\x1f' + std::to_string(state.num_q) + '\x1f' +
         state.rem_pre.CanonicalKey();
}

void CurrentHostsTable::Bump(const std::string& node_url,
                             const query::CloneState& state, int delta,
                             SimTime now) {
  KeyBalance& kb = balance_[BalanceKey(node_url, state)];
  if (kb.node_url.empty()) {
    kb.node_url = node_url;
    kb.state = state;
  }
  kb.last_activity = std::max(kb.last_activity, now);
  const bool was_zero = kb.balance == 0;
  kb.balance += delta;
  if (was_zero && kb.balance != 0) {
    ++nonzero_keys_;
  } else if (!was_zero && kb.balance == 0) {
    --nonzero_keys_;
  }
}

bool CurrentHostsTable::Add(const std::string& node_url,
                            const query::CloneState& state, SimTime now) {
  ++total_adds_;
  if (robust_) Bump(node_url, state, +1, now);
  if (dedup_) {
    bool suppress = false;
    bool matched = false;
    std::vector<pre::Pre>& logged = mirror_[{node_url, state.num_q}];
    for (pre::Pre& existing : logged) {
      const pre::LogDecision decision =
          pre::ComparePreForLog(state.rem_pre, existing);
      if (decision.comparison == pre::LogComparison::kDuplicate) {
        suppress = true;
        break;
      }
      if (decision.comparison == pre::LogComparison::kSupersetRewrite) {
        // The target will rewrite and process it — keep the entry, widen
        // the mirror record.
        existing = state.rem_pre;
        matched = true;
        break;
      }
    }
    if (suppress) {
      ++suppressed_;
      return false;  // the target server will drop this clone
    }
    if (!matched) logged.push_back(state.rem_pre);
  }
  entries_.push_back(Entry{node_url, state, false, now});
  ++active_;
  max_active_ = std::max(max_active_, active_);
  return true;
}

bool CurrentHostsTable::MarkDeleted(const std::string& node_url,
                                    const query::CloneState& state,
                                    SimTime now) {
  if (robust_) Bump(node_url, state, -1, now);
  for (Entry& entry : entries_) {
    if (!entry.deleted && entry.node_url == node_url &&
        entry.state.Equals(state)) {
      entry.deleted = true;
      --active_;
      return true;
    }
  }
  ++unmatched_deletes_;
  return false;
}

std::vector<CurrentHostsTable::Entry>
CurrentHostsTable::DrainOutstanding() {
  std::vector<Entry> outstanding;
  if (robust_) {
    // Positive-balance keys are exactly the clone destinations the user
    // site is still waiting on (including dedup-suppressed ones whose
    // drop-reports will never come from a dead server).
    for (auto& [key, kb] : balance_) {
      if (kb.balance > 0) {
        outstanding.push_back(Entry{kb.node_url, kb.state, false});
      }
      kb.balance = 0;
    }
    nonzero_keys_ = 0;
    for (Entry& entry : entries_) entry.deleted = true;
    active_ = 0;
    return outstanding;
  }
  for (Entry& entry : entries_) {
    if (entry.deleted) continue;
    outstanding.push_back(entry);
    entry.deleted = true;
  }
  active_ = 0;
  return outstanding;
}

std::vector<CurrentHostsTable::Entry> CurrentHostsTable::DrainExpired(
    SimTime now, SimDuration deadline) {
  std::vector<Entry> expired;
  if (robust_) {
    std::set<std::string> expired_keys;
    for (auto& [key, kb] : balance_) {
      if (kb.balance == 0) continue;
      if (now < kb.last_activity + deadline) continue;
      expired.push_back(Entry{kb.node_url, kb.state, false, kb.last_activity});
      kb.balance = 0;
      --nonzero_keys_;
      expired_keys.insert(key);
    }
    // Keep the entry list consistent with the zeroed balances so
    // active_count() reflects the GC.
    if (!expired_keys.empty()) {
      for (Entry& entry : entries_) {
        if (entry.deleted) continue;
        if (expired_keys.contains(BalanceKey(entry.node_url, entry.state))) {
          entry.deleted = true;
          --active_;
        }
      }
    }
    return expired;
  }
  for (Entry& entry : entries_) {
    if (entry.deleted) continue;
    if (now < entry.last_activity + deadline) continue;
    expired.push_back(entry);
    entry.deleted = true;
    --active_;
  }
  return expired;
}

bool CurrentHostsTable::AllDeleted() const {
  if (robust_) {
    return total_adds_ > 0 && nonzero_keys_ == 0;
  }
  return !entries_.empty() && active_ == 0;
}

}  // namespace webdis::client
