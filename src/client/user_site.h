#ifndef WEBDIS_CLIENT_USER_SITE_H_
#define WEBDIS_CLIENT_USER_SITE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/cht.h"
#include "common/clock.h"
#include "common/status.h"
#include "disql/compiler.h"
#include "net/reliable.h"
#include "net/transport.h"
#include "query/report.h"

namespace webdis::client {

/// Configuration of the WEBDIS client process (Section 4.3).
struct UserSiteOptions {
  /// Mirror the log-table rules in the CHT (Section 3.1.1's modification).
  bool cht_dedup = true;
  /// Use the CHT protocol for completion detection. When false the client
  /// records arrival times only and the harness applies a timeout rule —
  /// the strawman Section 2.7 argues against.
  bool use_cht = true;
  /// Cancel() sends explicit kTerminate messages to every active CHT host
  /// instead of the paper's passive close-the-socket scheme (ablation).
  bool active_termination = false;
  /// Balance-counted completion (robust against message reordering; see
  /// CurrentHostsTable). Requires servers to report duplicate drops. False =
  /// the paper's original entry-matching rule.
  bool robust_completion = true;
  /// Ack-tree termination detection instead of the CHT — the Related Work
  /// [4] baseline: every clone acks its parent once its whole forwarding
  /// subtree has been processed; completion = all StartNode clones acked.
  /// Reports then carry results only (no CHT entries).
  bool ack_tree_termination = false;
  /// First result-socket port; each query gets the next port.
  uint16_t first_result_port = 9000;
  /// Close the result socket as soon as completion is detected (the normal
  /// behaviour). Harnesses that replay extra clones under a completed
  /// query's id (e.g. the T6 rewrite experiment) set this to false.
  bool close_socket_on_completion = true;
  /// Approximate queries (§7.1 future work): stop after this many unique
  /// result rows. The cancel rides on passive termination — the user site
  /// simply closes its socket and the distributed traversal dies out.
  /// 0 = exact (no limit).
  uint64_t row_limit = 0;
  /// At-least-once delivery for initial clone dispatch + receipt dedup of
  /// incoming reports. Must match the servers' setting (the envelope is not
  /// self-describing); the engine enforces this.
  net::RetryOptions retry;
  /// CHT deadline GC (PROTOCOL.md "Failure handling"): a CHT key with no
  /// add/delete activity for this long is declared unreachable — its host
  /// crashed or is partitioned away — and garbage-collected so the query
  /// still completes, flagged as a *partial* outcome naming the host.
  /// 0 = disabled. Needs a timer-capable transport and use_cht.
  SimDuration entry_deadline = 0;
  /// Per-query resource budget (PROTOCOL.md §7.1), stamped on every initial
  /// clone and enforced by every server the query visits. All 0 = no budget
  /// (the seed wire bytes then end in a zero flags byte).
  /// Relative deadline, converted to an absolute virtual time at Submit.
  SimDuration budget_deadline = 0;
  /// Maximum forward hops from a StartNode (0 = unlimited).
  uint32_t budget_max_hops = 0;
  /// Total clone dispatches allowed across the whole traversal, split
  /// between the initial per-site clones (which themselves ride free — the
  /// user chose the StartNodes). 0 = unlimited.
  uint64_t budget_max_clones = 0;
  /// Result-row cap per node visit (0 = unlimited). Unlike `row_limit`
  /// above — which stops the whole query once enough rows arrived — this
  /// degrades each visit individually and the traversal continues.
  uint64_t budget_max_rows_per_visit = 0;
  /// §10.1 epoch pinning: when set, Submit stamps the current web epoch on
  /// every initial clone (budget.pinned_epoch) so servers hide documents
  /// spawned after submission. Wired to WebGraph::epoch by the engine when
  /// a mutation plan is installed; nullptr = no pin (frozen-web behavior,
  /// wire bytes unchanged).
  std::function<uint64_t()> epoch_source;
};

/// Per-query client-side statistics.
struct QueryRunStats {
  uint64_t reports_received = 0;
  uint64_t node_reports = 0;
  uint64_t duplicate_drop_reports = 0;
  uint64_t undeliverable_reports = 0;
  uint64_t result_rows_received = 0;
  uint64_t duplicate_rows_filtered = 0;
  uint64_t termination_messages_sent = 0;
  uint64_t root_acks_received = 0;  // ack-tree termination baseline
  // Failure handling (PROTOCOL.md):
  uint64_t entries_gc = 0;  // CHT keys garbage-collected past the deadline
  uint64_t redeliveries_suppressed = 0;  // duplicate report transfers absorbed
  // [[nodiscard]] audit counters — send errors that are observed (never
  // silently dropped) but where the protocol's recovery is asynchronous:
  uint64_t dispatch_send_errors = 0;     // transient initial-dispatch errors
  uint64_t termination_send_failures = 0;  // kTerminate lost; passive
                                           // termination still covers it
  // Overload & degradation (PROTOCOL.md §7):
  uint64_t budget_exceeded_reports = 0;  // visits shed/expired/truncated
  // Dynamic web & churn (PROTOCOL.md §10):
  uint64_t site_retired_reports = 0;  // node reports naming a retired site
  uint64_t epoch_gated_reports = 0;   // nodes hidden by the epoch pin
  // Cross-query sharing (PROTOCOL.md §9): batched report envelopes arriving
  // on this query's socket as the batch carrier, and members addressed to a
  // query whose result socket already closed (the batch rode the carrier's
  // open socket past the refusal an individual send would have hit; the
  // drop below IS the passive termination of §2.8 for that member).
  uint64_t report_batches_received = 0;
  uint64_t report_batch_members_received = 0;
  uint64_t batch_members_dropped_closed = 0;

  /// Human-readable dump of the non-zero counters, one `name: value` per
  /// line — degradation should be observable, not just counted.
  std::string ToText() const;
};

/// The WEBDIS client process at the user site: parses nothing itself (takes
/// a CompiledQuery), opens the listening result socket, dispatches the query
/// to the StartNode sites (Figure 2 send_query), collects results, maintains
/// the CHT (Figure 2 receive_results), detects completion, and supports both
/// passive (Section 2.8) and active termination.
class UserSite {
 public:
  /// `transport` must outlive the user site.
  UserSite(std::string host, net::Transport* transport,
           UserSiteOptions options = UserSiteOptions());

  /// Virtual-clock source for timestamps (wired to SimNetwork::now by the
  /// engine); defaults to a constant 0.
  void SetClock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  /// §10.1: late-binds the epoch source (see UserSiteOptions::epoch_source).
  /// The engine calls this when a mutation plan is installed after
  /// construction; affects queries submitted from then on.
  void SetEpochSource(std::function<uint64_t()> source) {
    options_.epoch_source = std::move(source);
  }

  /// Everything the client knows about one submitted query.
  struct QueryRun {
    query::QueryId id;
    disql::CompiledQuery compiled;
    CurrentHostsTable cht;
    /// Result sets merged by column-label signature, duplicates filtered.
    std::vector<relational::ResultSet> results;
    bool completed = false;
    bool cancelled = false;
    /// Set when the row_limit cut the query short (approximate answer).
    bool truncated = false;
    /// Set when deadline GC gave up on unreachable hosts: the query reached
    /// completion but the answer may miss rows those hosts held.
    bool partial = false;
    /// Hosts whose CHT entries were garbage-collected (deduplicated).
    std::vector<std::string> unreachable_hosts;
    /// Set when any visit was cut short by the per-query budget or shed by
    /// admission control — the answer is explicitly partial (PROTOCOL.md
    /// §7.1), in contrast to a silent stall.
    bool budget_exhausted = false;
    /// Nodes named in budget-exceeded reports (deduplicated).
    std::vector<std::string> budget_exceeded_nodes;
    /// §10.2: hosts whose query server answered site-retired mid-run
    /// (deduplicated) — a *named* degraded outcome, distinct from the
    /// unreachable (crash/partition) list above.
    std::vector<std::string> retired_sites;
    /// §10.3: nodes hidden from this run by its epoch pin (deduplicated).
    std::vector<std::string> epoch_gated_nodes;
    /// §10.1: document version each evaluated node's report was stamped
    /// with (node url -> version; stamp 0 reports are not recorded). The
    /// engine classifies these fresh / stale-consistent / superseded
    /// against the web at completion time.
    std::map<std::string, uint64_t> node_versions;
    /// §10.1: the epoch pinned at Submit (0 = unpinned).
    uint64_t pinned_epoch = 0;
    /// Pending deadline-sweep timer id (0 = none armed).
    uint64_t sweep_timer = 0;
    /// Result socket closed (completion/cancel/timeout). Individual sends
    /// to this query are refused by the transport; a batch member riding a
    /// peer's carrier socket bypasses that refusal, so the demux consults
    /// this flag to apply the same passive-termination drop (§9.3).
    bool socket_closed = false;
    SimTime submit_time = 0;
    SimTime completion_time = 0;
    SimTime last_report_time = 0;
    QueryRunStats stats;
    /// Nodes whose clones could not be delivered (non-participating sites);
    /// state captured for centralized fallback processing.
    std::vector<query::ChtEntry> fallback_nodes;
    /// Ack-tree mode: tokens of StartNode clones not yet acked.
    std::set<uint64_t> outstanding_root_acks;

    QueryRun(bool cht_dedup, bool robust) : cht(cht_dedup, robust) {}
  };

  /// Submits a compiled query on behalf of `user`: opens the result socket,
  /// enters the StartNodes into the CHT, and dispatches the initial clones
  /// (batched per StartNode site). Returns the query id.
  Result<query::QueryId> Submit(const disql::CompiledQuery& compiled,
                                const std::string& user);

  /// Lookup; nullptr if unknown.
  const QueryRun* Find(const query::QueryId& id) const;

  bool IsComplete(const query::QueryId& id) const;

  /// Cancels an ongoing query: passive mode closes the result socket (later
  /// result dispatches get connection-refused and servers purge locally);
  /// active mode additionally sends kTerminate to every active CHT host.
  void Cancel(const query::QueryId& id);

  /// Timeout-completion harness hook: marks the query complete with
  /// completion_time = last_report_time + timeout (only meaningful when
  /// use_cht is false, after the network has gone idle).
  void FinishWithTimeout(const query::QueryId& id, SimDuration timeout);

  /// Graceful recovery from node failures (§7.1 future work): gives up on
  /// every CHT entry still outstanding (e.g. held by crashed sites), moving
  /// them to the fallback list for centralized processing, and marks the
  /// query complete. Returns how many entries were abandoned.
  size_t AbandonStalled(const query::QueryId& id);

  /// §10.4 oracle hook: observes every accepted NodeReport (after receipt
  /// dedup, before CHT/merge bookkeeping). The churn oracle re-evaluates
  /// each report's rows against the historical document at its stamped
  /// version — the exact-for-its-version invariant.
  using ReportObserver = std::function<void(const query::QueryId& id,
                                            const query::NodeReport& report)>;
  void SetReportObserver(ReportObserver observer) {
    report_observer_ = std::move(observer);
  }

  const UserSiteOptions& options() const { return options_; }
  const std::string& host() const { return host_; }
  /// Client-side at-least-once delivery counters (initial clone dispatch).
  const net::RetryStats& retry_stats() const { return sender_.stats(); }

 private:
  void OnMessage(QueryRun* run, const net::Endpoint& from,
                 net::MessageType type, const std::vector<uint8_t>& payload);
  void HandleReport(QueryRun* run, const query::QueryReport& report);
  void MergeResults(QueryRun* run, const relational::ResultSet& rs);
  void MaybeComplete(QueryRun* run);
  void CloseResultSocket(QueryRun* run);
  /// Deadline GC: expires idle outstanding CHT keys, records their hosts as
  /// unreachable, and re-arms itself while the run is incomplete.
  void SweepDeadlines(QueryRun* run);
  void ScheduleSweep(QueryRun* run);
  void CancelSweep(QueryRun* run);

  // Endpoint confinement (DESIGN.md "Parallel execution"): all of the user
  // site's listeners — every per-query result socket — live on the single
  // client host, so the parallel stepper keeps them in one slice partition
  // and their handlers (and timer callbacks) run sequentially even at
  // worker_threads > 1. Fields below are confined to that partition; the
  // tools/webdis_lint.py confinement rule requires any new mutable field to
  // be WEBDIS_GUARDED_BY a mutex or audited into its allowlist.
  std::string host_;
  net::Transport* transport_;
  UserSiteOptions options_;
  net::ReliableSender sender_;
  net::ReliableReceiver receiver_;
  std::function<SimTime()> clock_;
  uint16_t next_port_;
  uint32_t next_query_number_ = 1;
  std::map<std::string, std::unique_ptr<QueryRun>> runs_;  // by QueryId::Key
  /// Per-run row filter: label signature + row rendering already seen.
  std::map<std::string, std::set<std::string>> seen_rows_;
  ReportObserver report_observer_;
};

}  // namespace webdis::client

#endif  // WEBDIS_CLIENT_USER_SITE_H_
