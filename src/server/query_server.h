#ifndef WEBDIS_SERVER_QUERY_SERVER_H_
#define WEBDIS_SERVER_QUERY_SERVER_H_

#include <deque>
#include <functional>
#include <list>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/breaker.h"
#include "net/reliable.h"
#include "net/transport.h"
#include "query/report.h"
#include "query/web_query.h"
#include "relational/table.h"
#include "server/http_server.h"
#include "server/log_table.h"
#include "server/persist.h"
#include "web/graph.h"

namespace webdis::server {

/// Admission control (PROTOCOL.md §7.2): a bounded pending-clone queue in
/// front of clone processing. Off by default — the seed processes clones
/// inline on arrival.
struct AdmissionOptions {
  /// Maximum clones queued awaiting processing. 0 = admission control off
  /// (inline processing, the seed behavior).
  size_t max_pending = 0;
  /// Per-clone service interval: the queue drains one clone per interval
  /// through the transport's timer queue, which is what makes a server
  /// saturable in the first place (and deterministic under SimNetwork).
  /// On transports without timers the queue drains inline.
  SimDuration service_time = 0;
  /// Overflow policy refinement: before rejecting a newcomer, evict the
  /// queued clone with the earliest deadline if that deadline is earlier
  /// than the newcomer's — it is the clone most likely to be dead on
  /// arrival anyway. Eviction is terminal: the evicted clone's nodes are
  /// reported budget-exceeded so the CHT settles (no silent loss).
  bool evict_earliest_deadline = true;
};

/// Feature toggles of the WEBDIS query server. Defaults are the paper's
/// design; each toggle ablates one optimization for the benchmarks.
struct QueryServerOptions {
  /// Node-query Log Table duplicate suppression (Section 3.1).
  bool dedup_enabled = true;
  /// Report duplicate drops to the user site so CHT completion detection is
  /// robust under arbitrary message interleavings (extension; see
  /// DESIGN.md §5 — the paper's CHT-side suppression alone can hang).
  /// Note this only fixes *reordering* hangs: if the duplicate-drop report
  /// itself is lost in flight, the CHT balance for that clone never settles
  /// and completion hangs anyway. Closing that hole needs at-least-once
  /// delivery — enable `retry` below (both sides); the drop report is then
  /// retransmitted until acknowledged (regression: FaultTest.
  /// DroppedDuplicateDropReportIsRetried).
  bool report_dropped_duplicates = true;
  /// At-least-once delivery for clone forwarding and report dispatch
  /// (PROTOCOL.md "Failure handling"). Must match the user site's setting —
  /// the delivery envelope is not self-describing. Off by default: the
  /// paper assumes 1999-TCP reliable-once-accepted semantics and the seed
  /// wire format stays byte-identical.
  net::RetryOptions retry;
  /// One clone per destination site carrying all target nodes (§3.2(4)).
  bool batch_clones_per_site = true;
  /// One report message per incoming clone, covering all its destination
  /// nodes (§3.2(3)); off = one message per node.
  bool batch_reports = true;
  /// Retain per-node databases instead of purging after each node-query
  /// (footnote 3 of Section 2.4).
  bool cache_databases = false;
  /// Byte budget for the retained databases (0 = unbounded, the historical
  /// behavior). When exceeded, least-recently-used entries are evicted —
  /// a site hosting many documents no longer grows its cache without bound.
  /// Sizes are Database::ApproxBytes() estimates.
  uint64_t db_cache_max_bytes = 0;
  /// Cross-query result sharing (PROTOCOL.md §9.1): cache node-query
  /// results keyed on (document, document version, canonical node-query
  /// form) so each distinct node query is evaluated against a document once
  /// per version — across *all* concurrent queries. Off by default (the
  /// paper's servers share nothing between queries). Purely a wall-clock
  /// optimization: hit or miss produce byte-identical reports.
  bool share_results = false;
  /// Byte budget for the result cache (0 = unbounded); LRU-evicted.
  uint64_t result_cache_max_bytes = 0;
  /// Cross-query batched envelopes (PROTOCOL.md §9.2): outbound clones and
  /// reports are staged per destination host and flushed after this window
  /// as kCloneBatch / kReportBatch messages (0 = off: every send goes out
  /// immediately, the seed behavior). Requires transport timer support;
  /// without timers the option is inert.
  SimDuration batch_window = 0;
  /// Maximum members per flushed envelope; larger groups are split.
  size_t batch_max_members = 64;
  /// Purge the log table after this many clone arrivals (0 = never). The
  /// paper purges periodically; an early purge costs only recomputation.
  uint64_t log_purge_every = 0;
  /// Overload protection (PROTOCOL.md §7): bounded admission queue with
  /// load shedding, and a per-destination circuit breaker on the forwarding
  /// path. Both off by default.
  AdmissionOptions admission;
  net::BreakerOptions breaker;
  /// Durable server state (PROTOCOL.md §8): snapshots + write-ahead log.
  /// Off by default; also requires a storage backend via SetPersistence.
  PersistOptions persist;
};

/// Counters exposed for tests and benchmarks.
struct QueryServerStats {
  uint64_t clones_received = 0;
  uint64_t nodes_processed = 0;
  uint64_t node_queries_evaluated = 0;
  uint64_t answers_found = 0;
  uint64_t db_constructions = 0;
  uint64_t db_cache_hits = 0;
  uint64_t db_cache_evictions = 0;  // LRU entries dropped for the byte budget
  uint64_t db_cache_bytes = 0;      // current cache footprint (approximate)
  uint64_t duplicates_dropped = 0;
  uint64_t superset_rewrites = 0;
  uint64_t clones_forwarded = 0;
  uint64_t dead_ends = 0;          // node-query evaluated and failed
  uint64_t missing_documents = 0;  // clone destination not hosted here
  uint64_t passive_terminations = 0;  // report refused -> query purged
  uint64_t active_terminations = 0;   // kTerminate received
  uint64_t undeliverable_forwards = 0;
  uint64_t decode_errors = 0;
  uint64_t acks_sent = 0;      // ack-tree termination baseline only
  uint64_t acks_received = 0;  // ack-tree termination baseline only
  uint64_t ack_send_failures = 0;  // acks lost at send time (tree may stall)
  // Transient (non-refused) transport errors. Distinct from
  // passive_terminations: only synchronous ConnectionRefused is the §2.8
  // protocol signal; an IoError mid-write must NOT purge the query — the
  // retry layer (when on) retransmits, else the CHT deadline sweep recovers.
  uint64_t report_send_errors = 0;
  uint64_t forward_send_errors = 0;
  // At-least-once delivery layer (PROTOCOL.md "Failure handling"):
  uint64_t retries = 0;            // retransmissions put on the wire
  uint64_t retry_exhausted = 0;    // transfers abandoned after max attempts
  uint64_t redeliveries_suppressed = 0;  // duplicate transfers absorbed
  // Overload protection (PROTOCOL.md §7):
  uint64_t clones_shed = 0;        // newcomers rejected at the full queue
  uint64_t clones_evicted = 0;     // queued clones evicted (earliest deadline)
  uint64_t overload_nacks_sent = 0;      // kOverloaded NACKs put on the wire
  uint64_t overload_nacks_received = 0;  // own forwards shed by a peer
  uint64_t queue_peak = 0;         // admission-queue high-water mark
  uint64_t budget_expired_clones = 0;   // dead on arrival (deadline passed)
  uint64_t budget_vetoed_forwards = 0;  // dispatches blocked by hop/clone caps
  uint64_t rows_truncated = 0;     // result rows cut by the per-visit cap
  uint64_t breaker_trips = 0;           // closed/half-open -> open
  uint64_t breaker_short_circuits = 0;  // forwards vetoed while open
  uint64_t breaker_probes = 0;          // half-open probe sends admitted
  uint64_t breaker_recoveries = 0;      // half-open -> closed
  // Durability (PROTOCOL.md §8). Like every other counter these survive
  // Crash()/Restart(): they are measurement, not recoverable state — and
  // the recovery triple below is precisely what distinguishes the three
  // Restart() outcomes (snapshot load / WAL replay / nothing durable).
  uint64_t snapshots_written = 0;
  uint64_t wal_records_appended = 0;
  uint64_t wal_append_errors = 0;       // storage refused an append/sync
  uint64_t recovered_from_snapshot = 0;  // Restart() loaded a valid snapshot
  uint64_t replayed_wal_records = 0;     // WAL records applied at recovery
  uint64_t cold_starts = 0;  // Restart() found no usable durable state
  uint64_t wal_records_discarded = 0;   // torn/corrupt WAL tail dropped
  uint64_t snapshot_load_rejected = 0;  // bad magic/version/checksum
  uint64_t recovered_clones = 0;  // pending clones re-enqueued at recovery
  // Cross-query sharing (PROTOCOL.md §9):
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  uint64_t result_cache_evictions = 0;  // LRU entries dropped for the budget
  uint64_t result_cache_bytes = 0;      // current footprint (approximate)
  uint64_t clone_batches_sent = 0;      // kCloneBatch envelopes dispatched
  uint64_t clone_batch_members_sent = 0;
  uint64_t clone_batches_received = 0;
  uint64_t clone_batch_members_received = 0;
  uint64_t report_batches_sent = 0;     // kReportBatch envelopes dispatched
  uint64_t report_batch_members_sent = 0;
  uint64_t batches_shed = 0;  // whole batch units NACKed/shed at admission
  // Dynamic web & churn (PROTOCOL.md §10):
  uint64_t site_retired_nacks_sent = 0;  // terminal NACKs sent while retired
  uint64_t site_retired_nacks_received = 0;  // own forwards hit a retired site
  uint64_t retired_reports_sent = 0;  // node reports carrying site-retired
  uint64_t epoch_gated_nodes = 0;     // destinations hidden by the epoch pin
};

/// One per-node visit, emitted to the observer hook (used by the figure
/// reproductions to trace PureRouter/ServerRouter roles and states).
struct VisitEvent {
  std::string node_url;
  query::CloneState received_state;
  bool duplicate = false;   // dropped by the log table
  bool rewritten = false;   // superset multiple-rewrite applied
  bool evaluated = false;   // acted as ServerRouter (>= 1 node-query eval)
  bool answered = false;    // >= 1 evaluation produced rows
  bool dead_end = false;    // evaluated, found nothing, nothing forwarded
  size_t forward_count = 0; // forwarding intents from this visit
};

/// The WEBDIS Query Server (Sections 2.4–2.5, 3, 4.4): a daemon at every
/// participating web site. Receives clones on the common port, recognizes
/// duplicates via the log table, constructs the per-node virtual-relation
/// database, evaluates node-queries, reports results + CHT entries to the
/// user site *before* forwarding (the ordering Section 2.7.1 requires for
/// correct completion detection), and forwards clones along the PRE.
///
/// Routing semantics note: Figure 4 read literally makes a failed node-query
/// a dead-end even when the current PRE has longer continuations, which
/// would break the paper's own sample query (a lab homepage without a
/// convener would hide its /people page under G·(L*1)). We implement the
/// reading consistent with both Figure 1 and the Section 5 sample run: a
/// node always routes along rem(p)'s continuations; only advancement to the
/// *next* (PRE, node-query) stage requires a local answer.
class QueryServer {
 public:
  /// `web` and `transport` must outlive the server.
  QueryServer(std::string host, const web::WebGraph* web,
              net::Transport* transport,
              QueryServerOptions options = QueryServerOptions());
  ~QueryServer();

  /// Binds (host, kQueryServerPort).
  Status Start();
  void Stop();

  /// Injects the clock used for budget deadlines, queue eviction and the
  /// circuit breaker (the engine passes the SimNetwork's virtual clock).
  /// Without a clock those features see time 0: deadlines never expire and
  /// a tripped breaker never reaches half-open — so deployments enabling
  /// them must provide one.
  void SetClock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  /// Installs the durability backend (PROTOCOL.md §8). `backend` must
  /// outlive the server; it is inert unless options.persist.enabled. Like
  /// the server's other state the backend is only touched from this
  /// server's own handlers, so per-server backends need no locking.
  void SetPersistence(PersistBackend* backend) { persist_ = backend; }

  /// Simulates a site crash: stops listening on the query port and loses
  /// all volatile protocol state — log table, delivery-dedup history,
  /// pending retransmissions, terminated-query set, ack bookkeeping and the
  /// database cache. Counters survive (they are measurement, not state).
  /// With persistence enabled the backend is notified (unsynced WAL bytes
  /// vanish; seeded torn-write rules may fire). The site's HTTP document
  /// server is untouched: a crashed query daemon does not take the website
  /// down.
  void Crash();
  /// Brings a crashed server back. Without persistence: empty tables
  /// (log-table loss means re-arriving clones are reprocessed; the protocol
  /// layers above absorb the duplicates). With persistence: loads the
  /// latest valid snapshot, replays the WAL idempotently on top, restores
  /// the delivery-dedup history, and re-enqueues every admitted clone whose
  /// completion record is missing (at-least-once). The recovery outcome is
  /// counted in stats (recovered_from_snapshot / replayed_wal_records /
  /// cold_starts) — a restart is never silent.
  Status Restart();

  /// §10.2: puts the server into retired mode — the site is going away for
  /// good (unlike Crash(), which models an outage that Restart() ends).
  /// The pending admission queue is shed terminally: every queued unit's
  /// sender gets the kSiteRetired NACK (terminal — retries stop) and every
  /// member's destination nodes are reported with the site-retired
  /// visibility so the user site's CHT settles with a *named* degraded
  /// outcome. The server keeps listening: later clones are answered the
  /// same way instead of vanishing into connection-refused ambiguity.
  /// Irreversible; Restart() on a retired server keeps it retired.
  void Retire();
  bool retired() const { return retired_; }

  const std::string& host() const { return host_; }
  const QueryServerStats& stats() const;
  const LogTable& log_table() const { return log_table_; }
  void PurgeLogTable() { log_table_.Purge(); }
  uint64_t pending_clones() const { return pending_clones_.size(); }
  /// Breaker state for one destination host (tests and benchmarks).
  net::HostBreakers::State BreakerState(const std::string& dest_host) {
    return breakers_.GetState(dest_host, Now());
  }

  using VisitObserver = std::function<void(const VisitEvent&)>;
  void SetVisitObserver(VisitObserver observer) {
    visit_observer_ = std::move(observer);
  }

 private:
  /// One forwarding intent: destination node plus the pipeline position the
  /// clone will be in when it arrives. `origin_report` indexes the node
  /// report of the node that generated the intent (CHT entries are
  /// attributed to it).
  struct Forward {
    std::string dest_url;
    size_t queries_consumed = 0;  // node-queries evaluated before forwarding
    pre::Pre rem;                 // derived remaining PRE
    size_t origin_report = 0;
  };

  /// One admitted transfer unit awaiting its service slot. `tracked`
  /// transfers carry the delivery seq; their ack is deferred until the
  /// dequeue commits (acking a unit that may still be shed would turn the
  /// shed into silent loss — see ReliableReceiver's deferred-acceptance
  /// API). A kWebQuery transfer holds exactly one member; a kCloneBatch
  /// transfer holds all its members in ONE unit (PROTOCOL.md §9.2) — the
  /// batch shares one seq/ack, so admission, eviction and shed are always
  /// all-or-none across the members (a partial accept under one ack would
  /// silently lose the rest).
  struct QueuedClone {
    net::Endpoint from;
    bool tracked = false;
    uint64_t seq = 0;
    std::vector<query::WebQuery> clones;
    /// Durability (PROTOCOL.md §8): id of the kCloneAdmitted WAL record
    /// covering a single clone, or the FIRST id of the kBatchAdmitted
    /// record covering a batch — member i owns wal_id + i (ids are
    /// contiguous). 0 = not persisted. With the unit durable the ack is
    /// safe to send at admission — `acked` records that, so dequeue and
    /// shed must not re-commit the transfer seq (AcceptSeq on a committed
    /// seq reads as a replay and would drop the unit).
    uint64_t wal_id = 0;
    bool acked = false;
  };

  void OnMessage(const net::Endpoint& from, net::MessageType type,
                 const std::vector<uint8_t>& payload);
  /// Admission control front door for kWebQuery (PROTOCOL.md §7.2).
  void AdmitClone(const net::Endpoint& from,
                  const std::vector<uint8_t>& payload);
  /// Admission front door for kCloneBatch (PROTOCOL.md §9.2): the batch is
  /// admitted or rejected as ONE unit — a shed batch NACKs every member.
  void AdmitBatch(const net::Endpoint& from,
                  const std::vector<uint8_t>& payload);
  void ScheduleDrain();
  void DrainOne();
  /// Terminal shed: acks tracked transfers (so the sender stops), then
  /// reports every destination node of every member budget-exceeded so the
  /// CHT settles.
  void ShedClone(QueuedClone shed);
  /// §10.2 terminal answer for one unit at a retired server: kSiteRetired
  /// NACK for unacked tracked transfers, site-retired node reports for
  /// every member so the CHT converts the participants into named degraded
  /// outcomes, and the WAL completion records so recovery never replays
  /// them.
  void RetireUnit(QueuedClone unit);
  /// Front door for kWebQuery / kCloneBatch arriving while retired.
  void HandleCloneWhileRetired(const net::Endpoint& from,
                               net::MessageType type,
                               const std::vector<uint8_t>& payload);
  /// Queued members across units (admission capacity counts members, not
  /// units — a 10-member batch occupies 10 slots).
  size_t PendingMembers() const;
  SimTime Now() const { return clock_ ? clock_() : 0; }

  // -- Cross-query sharing (PROTOCOL.md §9) --------------------------------
  /// Batching is live only on transports with timers (a flush needs a
  /// window to wait out).
  bool BatchingEnabled() const {
    return options_.batch_window > 0 && transport_->SupportsTimers();
  }
  /// Cache key: "<resource key>@<version>|<canonical node-query bytes>".
  static std::string ResultCacheKey(const web::WebGraph::Document& doc,
                                    const query::NodeQuery& nq);
  /// Evaluates one node-query against the node database, through the
  /// result cache when share_results is on. Returns false on evaluation
  /// error. Hit or miss, *out is byte-identical — the cache is a pure
  /// wall-clock optimization.
  bool EvaluateNodeQuery(const query::NodeQuery& nq,
                         const web::WebGraph::Document& doc,
                         const relational::Database& db,
                         relational::ResultSet* out);
  const relational::ResultSet* ResultCacheLookup(const std::string& key);
  void ResultCacheInsert(std::string key, const relational::ResultSet& rows);
  /// Arms the flush timer when anything is staged.
  void ScheduleFlush();
  /// Flushes staged reports first (passive terminations are discovered
  /// here and veto staged forwards of the terminated queries), then staged
  /// clones, then the deferred WAL completion records.
  void FlushBatches();

  // -- Durability (PROTOCOL.md §8) ----------------------------------------
  bool PersistEnabled() const {
    return persist_ != nullptr && options_.persist.enabled;
  }
  bool WalEnabled() const {
    return PersistEnabled() && options_.persist.wal_enabled;
  }
  /// Appends one framed record and applies the fsync policy.
  void AppendWalRecord(WalRecordType type, const serialize::Encoder& payload);
  /// Assigns a record id to an admitted clone and (when the WAL is on)
  /// logs it durably — the append that must precede the delivery ack.
  /// Returns the record id, 0 when persistence is off.
  uint64_t PersistAdmit(const net::Endpoint& from, bool tracked, uint64_t seq,
                        const query::WebQuery& clone);
  /// Batch form (PROTOCOL.md §9.2): assigns n contiguous record ids and
  /// logs ONE kBatchAdmitted record covering every member — the single
  /// append that must precede the single batch ack. Returns the first id,
  /// 0 when persistence is off.
  uint64_t PersistAdmitBatch(const net::Endpoint& from, bool tracked,
                             uint64_t seq,
                             const std::vector<query::WebQuery>& clones);
  /// FinishWalClone for every member id of one queued unit.
  void FinishWalUnit(const QueuedClone& unit);
  /// Marks an admitted clone terminally processed (kCloneCompleted) and
  /// counts it toward the snapshot cadence. No-op for wal_id == 0.
  void FinishWalClone(uint64_t wal_id);
  void MaybeSnapshot();
  void WriteSnapshotNow();
  /// Restores durable state after Restart(): snapshot load, WAL replay,
  /// re-enqueue of unfinished clones. Counts the recovery outcome.
  void Recover();

  /// ProcessClone plus the terminal kCloneCompleted record.
  void ProcessCloneDurable(query::WebQuery clone, uint64_t wal_id);

  void ProcessClone(query::WebQuery clone);
  void ProcessNode(const query::WebQuery& clone, const std::string& url,
                   query::NodeReport* report, std::vector<Forward>* forwards);
  void ProcessStage(const query::WebQuery& clone,
                    const web::WebGraph::Document& doc,
                    const relational::Database& db, size_t stage,
                    const pre::Pre& rem, query::NodeReport* report,
                    std::vector<Forward>* forwards);

  /// Builds (or fetches from cache) the node database.
  const relational::Database& NodeDatabase(
      const web::WebGraph::Document& doc);

  /// Sends a report to the clone's user site; on connection-refused performs
  /// passive termination bookkeeping. Returns whether forwarding may
  /// proceed — forwarding after a passive termination would resurrect a
  /// query the user already abandoned, hence [[nodiscard]].
  [[nodiscard]] bool DispatchReports(const query::WebQuery& clone,
                                     std::vector<query::NodeReport> reports);

  /// Ack-tree termination baseline (Related Work [4]): a clone's ack is
  /// deferred until every child clone forwarded from it has acked.
  struct PendingAck {
    net::Endpoint parent;
    uint64_t parent_token = 0;
    size_t remaining_children = 0;
    std::string query_key;  // for purging on termination
  };
  void SendAck(const net::Endpoint& parent, uint64_t token);
  void OnAck(uint64_t token);

  // Endpoint confinement (DESIGN.md "Parallel execution"): the parallel
  // stepper may run this server's handlers concurrently with OTHER hosts'
  // handlers, but never with each other — all deliveries to one host share
  // a slice partition and run sequentially. Every field below is therefore
  // either construction-time constant or touched only from this server's
  // own OnMessage/timer callbacks, and needs no locking. The invariant is
  // enforced by tools/webdis_lint.py (confinement rule): a new mutable
  // field must be WEBDIS_GUARDED_BY a mutex or audited into its allowlist.
  std::string host_;
  const web::WebGraph* web_;
  net::Transport* transport_;
  QueryServerOptions options_;
  /// Mutable: stats() lazily folds the delivery layer's counters in.
  mutable QueryServerStats stats_;
  net::ReliableSender sender_;
  net::ReliableReceiver receiver_;
  net::HostBreakers breakers_;
  std::function<SimTime()> clock_;
  std::deque<QueuedClone> pending_clones_;
  uint64_t drain_timer_ = 0;
  LogTable log_table_;
  std::set<std::string> terminated_queries_;  // by QueryId::Key()
  std::map<uint64_t, PendingAck> pending_acks_;  // by local token
  uint64_t next_ack_token_ = 1;
  /// LRU database cache (front = most recently used), bounded by
  /// options_.db_cache_max_bytes. The index maps resource key -> list node.
  struct CachedDatabase {
    std::string key;
    relational::Database db;
    uint64_t bytes = 0;
  };
  std::list<CachedDatabase> db_cache_lru_;
  std::map<std::string, std::list<CachedDatabase>::iterator> db_cache_index_;
  uint64_t db_cache_bytes_ = 0;
  relational::Database scratch_db_;  // non-cached working database
  /// Cross-query result cache (PROTOCOL.md §9.1): LRU list (front = most
  /// recently used) + index, bounded by options_.result_cache_max_bytes.
  /// Keys embed the document version, so a stale entry is never *served*
  /// (it simply ages out); the cache itself is volatile — cleared on
  /// Crash(), never snapshotted (it is recomputable, not protocol state).
  struct CachedResult {
    std::string key;
    relational::ResultSet rows;
    uint64_t bytes = 0;
  };
  std::list<CachedResult> result_cache_lru_;
  std::map<std::string, std::list<CachedResult>::iterator>
      result_cache_index_;
  uint64_t result_cache_bytes_ = 0;
  /// Cross-query batching (PROTOCOL.md §9.2): outbound envelopes staged by
  /// destination host / user-site host, flushed by flush_timer_ after
  /// options_.batch_window. Volatile (a crash loses staged sends; the WAL
  /// completion records below are deferred past the flush precisely so
  /// replay regenerates them).
  std::map<std::string, std::vector<query::WebQuery>> staged_clones_;
  std::map<std::string, std::vector<query::QueryReport>> staged_reports_;
  uint64_t flush_timer_ = 0;
  /// WAL record ids whose clones were processed but whose staged output
  /// has not been flushed yet: their kCloneCompleted records are written at
  /// the end of the next flush (crash before that replays the clones, so
  /// the staged-and-lost reports are regenerated — at-least-once).
  std::vector<uint64_t> wal_pending_flush_;
  VisitObserver visit_observer_;
  bool started_ = false;
  /// §10.2: retired mode. Deliberately NOT reset by Crash()/Restart() —
  /// retirement is permanent, not an outage.
  bool retired_ = false;
  /// Durability (PROTOCOL.md §8): storage backend (not owned), the next
  /// WAL record id (monotonic across restarts — recovered from the maximum
  /// of the snapshot's last_wal_id and the replayed records), and the
  /// terminally-processed-clone count since the last snapshot.
  PersistBackend* persist_ = nullptr;
  uint64_t next_wal_id_ = 1;
  uint64_t clones_since_snapshot_ = 0;
};

}  // namespace webdis::server

#endif  // WEBDIS_SERVER_QUERY_SERVER_H_
