#include "server/query_server.h"

#include <algorithm>
#include <iterator>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"
#include "html/url.h"
#include "relational/eval.h"
#include "serialize/encoder.h"
#include "server/db_constructor.h"

namespace webdis::server {

QueryServer::QueryServer(std::string host, const web::WebGraph* web,
                         net::Transport* transport,
                         QueryServerOptions options)
    : host_(std::move(host)),
      web_(web),
      transport_(transport),
      options_(options),
      sender_(transport, options.retry),
      receiver_(transport,
                options.retry.enabled && transport->SupportsTimers()),
      breakers_(options.breaker) {
  // Delivery outcomes feed the forwarding-path circuit breaker: an ack is
  // evidence the peer server is healthy, exhaustion/refusal-on-retry that
  // it is not. Overload NACKs are neutral (the host answered). Only peer
  // query servers are scored — report traffic to the user site's result
  // socket has its own semantics (passive termination).
  sender_.set_delivery_observer(
      [this](const net::Endpoint& to, net::DeliveryEvent event) {
        if (to.port != kQueryServerPort) return;
        switch (event) {
          case net::DeliveryEvent::kAcked:
            breakers_.RecordSuccess(to.host, Now());
            break;
          case net::DeliveryEvent::kExhausted:
          case net::DeliveryEvent::kRefusedOnRetry:
          // A kSiteRetired NACK is the strongest failure evidence there is
          // (the destination told us it is gone for good, §10.2): trip the
          // breaker so later forwards to the host short-circuit locally.
          case net::DeliveryEvent::kSiteRetired:
            breakers_.RecordFailure(to.host, Now());
            break;
          case net::DeliveryEvent::kOverloadNack:
            break;
        }
      });
}

QueryServer::~QueryServer() {
  if (drain_timer_ != 0) transport_->CancelTimer(drain_timer_);
  if (flush_timer_ != 0) transport_->CancelTimer(flush_timer_);
}

const QueryServerStats& QueryServer::stats() const {
  stats_.retries = sender_.stats().retries;
  stats_.retry_exhausted = sender_.stats().exhausted;
  stats_.redeliveries_suppressed = receiver_.suppressed_count();
  stats_.overload_nacks_received = sender_.stats().overload_nacks;
  stats_.site_retired_nacks_received = sender_.stats().site_retired;
  stats_.breaker_trips = breakers_.stats().trips;
  stats_.breaker_short_circuits = breakers_.stats().short_circuits;
  stats_.breaker_probes = breakers_.stats().probes;
  stats_.breaker_recoveries = breakers_.stats().recoveries;
  stats_.db_cache_bytes = db_cache_bytes_;
  stats_.result_cache_bytes = result_cache_bytes_;
  return stats_;
}

void QueryServer::Crash() {
  Stop();
  sender_.CancelAll();
  receiver_.Reset();
  breakers_.Reset();
  log_table_.Purge();
  terminated_queries_.clear();
  pending_acks_.clear();
  db_cache_lru_.clear();
  db_cache_index_.clear();
  db_cache_bytes_ = 0;
  // The result cache is volatile by design (PROTOCOL.md §9.1): it is
  // recomputable, not protocol state, so it is rebuilt cold — never
  // snapshotted.
  result_cache_lru_.clear();
  result_cache_index_.clear();
  result_cache_bytes_ = 0;
  // Staged envelopes die with the crash; their WAL completion records were
  // deferred past the flush, so replay regenerates the lost sends.
  staged_clones_.clear();
  staged_reports_.clear();
  wal_pending_flush_.clear();
  if (flush_timer_ != 0) {
    transport_->CancelTimer(flush_timer_);
    flush_timer_ = 0;
  }
  // Queued clones are volatile: lost with the crash, recovered by the
  // sender's retries (unacked — acks are deferred to dequeue) or, failing
  // that, by the user site's CHT deadline sweep.
  pending_clones_.clear();
  if (drain_timer_ != 0) {
    transport_->CancelTimer(drain_timer_);
    drain_timer_ = 0;
  }
  // Storage survives the crash — that is its job — but the backend models
  // power loss: unsynced WAL bytes vanish and seeded torn-write rules may
  // fire (MemoryPersistBackend; see PROTOCOL.md §8).
  if (persist_ != nullptr) persist_->OnCrash();
}

Status QueryServer::Restart() {
  WEBDIS_RETURN_IF_ERROR(Start());
  Recover();
  return Status::OK();
}

Status QueryServer::Start() {
  if (started_) return Status::InvalidArgument("QueryServer already started");
  const net::Endpoint endpoint{host_, kQueryServerPort};
  WEBDIS_RETURN_IF_ERROR(transport_->Listen(
      endpoint,
      [this](const net::Endpoint& from, net::MessageType type,
             const std::vector<uint8_t>& payload) {
        OnMessage(from, type, payload);
      }));
  started_ = true;
  return Status::OK();
}

void QueryServer::Stop() {
  if (!started_) return;
  transport_->CloseListener(net::Endpoint{host_, kQueryServerPort});
  started_ = false;
}

void QueryServer::OnMessage(const net::Endpoint& from, net::MessageType type,
                            const std::vector<uint8_t>& payload) {
  if (retired_ && (type == net::MessageType::kWebQuery ||
                   type == net::MessageType::kCloneBatch)) {
    // §10.2: a retired site never processes another clone. Answer
    // terminally — kSiteRetired NACK plus named degraded reports — so the
    // sender stops retrying and the user site's CHT settles.
    HandleCloneWhileRetired(from, type, payload);
    return;
  }
  switch (type) {
    case net::MessageType::kWebQuery: {
      if (options_.admission.max_pending != 0) {
        AdmitClone(from, payload);
        return;
      }
      // Delivery dedup MUST precede all protocol processing: a redelivered
      // clone that reached the log table would emit a second duplicate-drop
      // report and unbalance the robust CHT's add/delete counts.
      const net::Endpoint self{host_, kQueryServerPort};
      std::vector<uint8_t> inner;
      const std::vector<uint8_t>* body = &payload;
      uint64_t seq = 0;
      bool deferred = false;  // ack withheld until the WAL append (§8)
      if (receiver_.enabled()) {
        if (WalEnabled()) {
          // Ack-after-append: Accept() would ack immediately, before the
          // clone is durable — a crash in the gap would lose an acked
          // clone. Peek the envelope instead and commit (ack) only after
          // the kCloneAdmitted record is on storage.
          if (!net::ReliableReceiver::PeekSeq(payload, &seq)) return;
          if (receiver_.TestSeen(from, seq)) {
            receiver_.SendAck(self, from, seq);  // the original ack was lost
            return;
          }
          if (!net::ReliableReceiver::StripEnvelope(payload, &inner)) return;
          deferred = true;
        } else if (!receiver_.Accept(self, from, payload, &inner)) {
          return;  // replay of an already-processed transfer
        }
        body = &inner;
      }
      serialize::Decoder dec(*body);
      query::WebQuery clone;
      Status status = query::WebQuery::DecodeFrom(&dec, &clone);
      if (status.ok()) status = dec.ExpectAtEnd("clone payload");
      if (!status.ok()) {
        ++stats_.decode_errors;
        WEBDIS_LOG(kWarning) << host_ << ": bad clone: " << status.ToString();
        if (deferred) {
          // A malformed clone decodes no better on retransmission: commit
          // (ack) so the sender stops — but log the dedup commit first, or
          // a post-restart retransmission would be reprocessed.
          serialize::Encoder rec;
          WalTransferSeen{from, seq}.EncodeTo(&rec);
          AppendWalRecord(WalRecordType::kTransferSeen, rec);
          (void)receiver_.AcceptSeq(self, from, seq);
        }
        return;
      }
      const uint64_t wal_id =
          PersistAdmit(from, deferred, seq, clone);
      if (deferred && !receiver_.AcceptSeq(self, from, seq)) {
        FinishWalClone(wal_id);
        return;  // raced with another copy of the same transfer
      }
      ProcessCloneDurable(std::move(clone), wal_id);
      return;
    }
    case net::MessageType::kCloneBatch: {
      if (options_.admission.max_pending != 0) {
        AdmitBatch(from, payload);
        return;
      }
      // Mirrors the kWebQuery path: one delivery envelope covers the whole
      // batch, so dedup and the ack-after-append rule apply to the unit —
      // one kBatchAdmitted record precedes the one batch ack, and every
      // member is then processed (all-or-none admission, §9.2).
      const net::Endpoint self{host_, kQueryServerPort};
      std::vector<uint8_t> inner;
      const std::vector<uint8_t>* body = &payload;
      uint64_t seq = 0;
      bool deferred = false;
      if (receiver_.enabled()) {
        if (WalEnabled()) {
          if (!net::ReliableReceiver::PeekSeq(payload, &seq)) return;
          if (receiver_.TestSeen(from, seq)) {
            receiver_.SendAck(self, from, seq);
            return;
          }
          if (!net::ReliableReceiver::StripEnvelope(payload, &inner)) return;
          deferred = true;
        } else if (!receiver_.Accept(self, from, payload, &inner)) {
          return;
        }
        body = &inner;
      }
      serialize::Decoder dec(*body);
      query::CloneBatch batch;
      Status status = query::CloneBatch::DecodeFrom(&dec, &batch);
      if (status.ok()) status = dec.ExpectAtEnd("clone-batch payload");
      if (!status.ok()) {
        ++stats_.decode_errors;
        WEBDIS_LOG(kWarning) << host_ << ": bad clone batch: "
                             << status.ToString();
        if (deferred) {
          serialize::Encoder rec;
          WalTransferSeen{from, seq}.EncodeTo(&rec);
          AppendWalRecord(WalRecordType::kTransferSeen, rec);
          (void)receiver_.AcceptSeq(self, from, seq);
        }
        return;
      }
      const uint64_t wal_id =
          PersistAdmitBatch(from, deferred, seq, batch.clones);
      if (deferred && !receiver_.AcceptSeq(self, from, seq)) {
        for (size_t i = 0; i < batch.clones.size(); ++i) {
          FinishWalClone(wal_id == 0 ? 0 : wal_id + i);
        }
        return;  // raced with another copy of the same transfer
      }
      ++stats_.clone_batches_received;
      stats_.clone_batch_members_received += batch.clones.size();
      for (size_t i = 0; i < batch.clones.size(); ++i) {
        ProcessCloneDurable(std::move(batch.clones[i]),
                            wal_id == 0 ? 0 : wal_id + i);
      }
      return;
    }
    case net::MessageType::kDeliveryAck: {
      sender_.OnAck(payload);
      return;
    }
    case net::MessageType::kOverloaded: {
      sender_.OnOverloaded(payload);
      return;
    }
    case net::MessageType::kSiteRetired: {
      sender_.OnSiteRetired(payload);
      return;
    }
    case net::MessageType::kAck: {
      serialize::Decoder dec(payload);
      uint64_t token = 0;
      if (!dec.GetU64(&token).ok() || !dec.ExpectAtEnd("ack").ok()) {
        ++stats_.decode_errors;
        return;
      }
      OnAck(token);
      return;
    }
    case net::MessageType::kTerminate: {
      serialize::Decoder dec(payload);
      query::QueryId id;
      Status status = query::QueryId::DecodeFrom(&dec, &id);
      if (status.ok()) status = dec.ExpectAtEnd("terminate payload");
      if (!status.ok()) {
        ++stats_.decode_errors;
        return;
      }
      terminated_queries_.insert(id.Key());
      log_table_.PurgeQuery(id.Key());
      std::erase_if(pending_acks_, [&id](const auto& entry) {
        return entry.second.query_key == id.Key();
      });
      ++stats_.active_terminations;
      if (WalEnabled()) {
        // A restarted server must not resurrect a terminated query from
        // recovered clones.
        serialize::Encoder rec;
        WalQueryTerminated{id.Key()}.EncodeTo(&rec);
        AppendWalRecord(WalRecordType::kQueryTerminated, rec);
      }
      return;
    }
    default:
      WEBDIS_LOG(kWarning) << host_ << ": unexpected message type "
                           << net::MessageTypeToString(type);
  }
}

namespace {

/// Deadline used for eviction ordering: absent means "never".
SimTime EffectiveDeadline(const query::WebQuery& clone) {
  return clone.budget.has_deadline ? clone.budget.deadline
                                   : std::numeric_limits<SimTime>::max();
}

query::NodeReport MakeBudgetReport(std::string url, query::CloneState state) {
  query::NodeReport nr;
  nr.node_url = std::move(url);
  nr.received_state = std::move(state);
  nr.budget_exceeded = true;
  return nr;
}

query::NodeReport MakeRetiredReport(std::string url, query::CloneState state) {
  query::NodeReport nr;
  nr.node_url = std::move(url);
  nr.received_state = std::move(state);
  nr.visibility = query::NodeReport::kVisibilitySiteRetired;
  return nr;
}

}  // namespace

size_t QueryServer::PendingMembers() const {
  size_t members = 0;
  for (const QueuedClone& unit : pending_clones_) {
    members += unit.clones.size();
  }
  return members;
}

void QueryServer::AdmitClone(const net::Endpoint& from,
                             const std::vector<uint8_t>& payload) {
  const net::Endpoint self{host_, kQueryServerPort};
  QueuedClone entry;
  entry.from = from;
  entry.tracked = receiver_.enabled();
  std::vector<uint8_t> inner;
  const std::vector<uint8_t>* body = &payload;
  if (entry.tracked) {
    if (!net::ReliableReceiver::PeekSeq(payload, &entry.seq)) {
      return;  // malformed envelope: drop (matches Accept)
    }
    if (receiver_.TestSeen(from, entry.seq)) {
      // Retransmission of a committed transfer — its ack may have been
      // lost. Re-ack; nothing to queue.
      receiver_.SendAck(self, from, entry.seq);
      return;
    }
    if (!net::ReliableReceiver::StripEnvelope(payload, &inner)) return;
    body = &inner;
  }
  serialize::Decoder dec(*body);
  query::WebQuery decoded;
  Status decode_status = query::WebQuery::DecodeFrom(&dec, &decoded);
  if (decode_status.ok()) decode_status = dec.ExpectAtEnd("clone payload");
  if (const Status& status = decode_status; !status.ok()) {
    ++stats_.decode_errors;
    WEBDIS_LOG(kWarning) << host_ << ": bad clone: " << status.ToString();
    // A malformed clone decodes no better on retransmission: commit (ack)
    // the transfer so the sender stops. Log the dedup commit first (§8) so
    // a post-restart retransmission is re-acked, not reprocessed.
    if (entry.tracked) {
      if (WalEnabled()) {
        serialize::Encoder rec;
        WalTransferSeen{from, entry.seq}.EncodeTo(&rec);
        AppendWalRecord(WalRecordType::kTransferSeen, rec);
      }
      (void)receiver_.AcceptSeq(self, from, entry.seq);
    }
    return;
  }
  entry.clones.push_back(std::move(decoded));

  if (PendingMembers() >= options_.admission.max_pending) {
    // Overflow. Refinement first: evict the queued unit with the earliest
    // deadline when it is strictly closer to death than the newcomer (it
    // would likely expire in the queue anyway); otherwise reject-newest.
    // A unit's deadline is its most-urgent member's.
    size_t victim = pending_clones_.size();
    if (options_.admission.evict_earliest_deadline) {
      SimTime earliest = EffectiveDeadline(entry.clones.front());
      for (size_t i = 0; i < pending_clones_.size(); ++i) {
        SimTime d = std::numeric_limits<SimTime>::max();
        for (const query::WebQuery& member : pending_clones_[i].clones) {
          d = std::min(d, EffectiveDeadline(member));
        }
        if (d < earliest) {
          earliest = d;
          victim = i;
        }
      }
    }
    if (victim < pending_clones_.size()) {
      QueuedClone evicted = std::move(pending_clones_[victim]);
      pending_clones_.erase(pending_clones_.begin() +
                            static_cast<ptrdiff_t>(victim));
      stats_.clones_evicted += evicted.clones.size();
      ShedClone(std::move(evicted));
      // The newcomer takes the freed slot below.
    } else {
      ++stats_.clones_shed;
      if (entry.tracked) {
        // NACK: the sender moves the transfer to the overload backoff class
        // and retries once the queue has (hopefully) drained.
        receiver_.SendOverloaded(self, from, entry.seq);
        ++stats_.overload_nacks_sent;
      } else {
        // No retry layer to come back later — shedding silently would
        // strand the user site's CHT entries until deadline GC. Terminal
        // shed with explicit budget-exceeded reports instead.
        ShedClone(std::move(entry));
      }
      return;
    }
  }
  entry.wal_id = PersistAdmit(entry.from, entry.tracked, entry.seq,
                              entry.clones.front());
  if (entry.tracked && WalEnabled()) {
    // Durable queue: ack at admission, after the append above (§8). The
    // shed-after-ack hazard the deferred-acceptance API exists for is gone —
    // eviction shed is terminal-with-reports, and queue loss on crash is
    // recovered from the WAL instead of from the sender's retries.
    if (!receiver_.AcceptSeq(self, entry.from, entry.seq)) {
      FinishWalClone(entry.wal_id);
      return;  // raced with another copy of the same transfer
    }
    entry.acked = true;
  }
  pending_clones_.push_back(std::move(entry));
  stats_.queue_peak =
      std::max<uint64_t>(stats_.queue_peak, PendingMembers());
  ScheduleDrain();
}

void QueryServer::AdmitBatch(const net::Endpoint& from,
                             const std::vector<uint8_t>& payload) {
  const net::Endpoint self{host_, kQueryServerPort};
  QueuedClone entry;
  entry.from = from;
  entry.tracked = receiver_.enabled();
  std::vector<uint8_t> inner;
  const std::vector<uint8_t>* body = &payload;
  if (entry.tracked) {
    if (!net::ReliableReceiver::PeekSeq(payload, &entry.seq)) return;
    if (receiver_.TestSeen(from, entry.seq)) {
      receiver_.SendAck(self, from, entry.seq);
      return;
    }
    if (!net::ReliableReceiver::StripEnvelope(payload, &inner)) return;
    body = &inner;
  }
  serialize::Decoder dec(*body);
  query::CloneBatch batch;
  Status decode_status = query::CloneBatch::DecodeFrom(&dec, &batch);
  if (decode_status.ok()) {
    decode_status = dec.ExpectAtEnd("clone-batch payload");
  }
  if (const Status& status = decode_status; !status.ok()) {
    ++stats_.decode_errors;
    WEBDIS_LOG(kWarning) << host_ << ": bad clone batch: "
                         << status.ToString();
    if (entry.tracked) {
      if (WalEnabled()) {
        serialize::Encoder rec;
        WalTransferSeen{from, entry.seq}.EncodeTo(&rec);
        AppendWalRecord(WalRecordType::kTransferSeen, rec);
      }
      (void)receiver_.AcceptSeq(self, from, entry.seq);
    }
    return;
  }
  entry.clones = std::move(batch.clones);

  // Capacity is counted in members, and the batch is all-or-none: either
  // every member fits or the whole unit is NACKed (tracked) / shed with
  // explicit reports (untracked) — a partial accept under the batch's
  // single ack would silently lose the rest. An empty queue always admits,
  // whatever the batch size: without this exception a batch larger than
  // max_pending could never be admitted and a tracked sender would NACK-
  // retry it forever.
  const size_t members = PendingMembers();
  if (!pending_clones_.empty() &&
      members + entry.clones.size() > options_.admission.max_pending) {
    ++stats_.batches_shed;
    stats_.clones_shed += entry.clones.size();
    if (entry.tracked) {
      receiver_.SendOverloaded(self, from, entry.seq);
      ++stats_.overload_nacks_sent;
    } else {
      ShedClone(std::move(entry));
    }
    return;
  }
  entry.wal_id = PersistAdmitBatch(entry.from, entry.tracked, entry.seq,
                                   entry.clones);
  if (entry.tracked && WalEnabled()) {
    if (!receiver_.AcceptSeq(self, entry.from, entry.seq)) {
      FinishWalUnit(entry);
      return;  // raced with another copy of the same transfer
    }
    entry.acked = true;
  }
  ++stats_.clone_batches_received;
  stats_.clone_batch_members_received += entry.clones.size();
  pending_clones_.push_back(std::move(entry));
  stats_.queue_peak =
      std::max<uint64_t>(stats_.queue_peak, PendingMembers());
  ScheduleDrain();
}

void QueryServer::ScheduleDrain() {
  if (pending_clones_.empty() || drain_timer_ != 0) return;
  if (!transport_->SupportsTimers()) {
    // No timer queue to pace against: drain inline. Admission stays bounded
    // (the queue never exceeds max_pending mid-burst) but is not paced.
    while (!pending_clones_.empty()) DrainOne();
    return;
  }
  drain_timer_ =
      transport_->ScheduleAfter(options_.admission.service_time, [this] {
        drain_timer_ = 0;
        DrainOne();
        ScheduleDrain();
      });
}

void QueryServer::DrainOne() {
  if (pending_clones_.empty()) return;
  QueuedClone next = std::move(pending_clones_.front());
  pending_clones_.pop_front();
  if (next.tracked && !next.acked &&
      !receiver_.AcceptSeq(net::Endpoint{host_, kQueryServerPort}, next.from,
                           next.seq)) {
    FinishWalUnit(next);
    return;  // a retransmitted copy of this transfer was queued twice
  }
  // A batch unit is one service slot: its members were one wire message and
  // share one ack, so they drain together.
  for (size_t i = 0; i < next.clones.size(); ++i) {
    ProcessCloneDurable(std::move(next.clones[i]),
                        next.wal_id == 0 ? 0 : next.wal_id + i);
  }
}

void QueryServer::ShedClone(QueuedClone shed) {
  // Every path below is terminal for every member, so each member's
  // kCloneCompleted record (when persisted) is due regardless of branch.
  const net::Endpoint self{host_, kQueryServerPort};
  if (shed.tracked && !shed.acked &&
      !receiver_.AcceptSeq(self, shed.from, shed.seq)) {
    FinishWalUnit(shed);
    return;  // replay of a committed transfer: already handled once
  }
  for (size_t i = 0; i < shed.clones.size(); ++i) {
    query::WebQuery& clone = shed.clones[i];
    const uint64_t wal_id = shed.wal_id == 0 ? 0 : shed.wal_id + i;
    if (terminated_queries_.contains(clone.id.Key())) {
      FinishWalClone(wal_id);
      continue;
    }
    if (clone.ack_mode) {
      // Ack-tree baseline: a shed clone is a leaf — ack the parent so the
      // tree still completes.
      SendAck(net::Endpoint{clone.ack_parent_host, clone.ack_parent_port},
              clone.ack_token);
      FinishWalClone(wal_id);
      continue;
    }
    std::vector<query::NodeReport> reports;
    reports.reserve(clone.dest_urls.size());
    for (const std::string& url : clone.dest_urls) {
      reports.push_back(MakeBudgetReport(url, clone.State()));
    }
    (void)DispatchReports(clone, std::move(reports));
    FinishWalClone(wal_id);
  }
}

void QueryServer::Retire() {
  if (retired_) return;
  retired_ = true;
  if (drain_timer_ != 0) {
    transport_->CancelTimer(drain_timer_);
    drain_timer_ = 0;
  }
  // Shed the admission queue terminally: queued work will never be served.
  std::deque<QueuedClone> queued;
  queued.swap(pending_clones_);
  for (QueuedClone& unit : queued) {
    RetireUnit(std::move(unit));
  }
}

void QueryServer::RetireUnit(QueuedClone unit) {
  const net::Endpoint self{host_, kQueryServerPort};
  if (unit.tracked && !unit.acked) {
    // Terminal NACK instead of an ack: the sender abandons the transfer
    // immediately and feeds its breaker (§10.2).
    receiver_.SendSiteRetired(self, unit.from, unit.seq);
    ++stats_.site_retired_nacks_sent;
    // Record receipt without acking: if the NACK is lost, the
    // retransmission is answered with the NACK alone — a second round of
    // reports would double-delete the nodes' CHT entries.
    receiver_.RestoreSeen(unit.from, unit.seq);
  }
  for (size_t i = 0; i < unit.clones.size(); ++i) {
    query::WebQuery& clone = unit.clones[i];
    const uint64_t wal_id = unit.wal_id == 0 ? 0 : unit.wal_id + i;
    if (terminated_queries_.contains(clone.id.Key())) {
      FinishWalClone(wal_id);
      continue;
    }
    if (clone.ack_mode) {
      // Ack-tree baseline: a retired site is a leaf — ack the parent so
      // the tree still completes.
      SendAck(net::Endpoint{clone.ack_parent_host, clone.ack_parent_port},
              clone.ack_token);
      FinishWalClone(wal_id);
      continue;
    }
    std::vector<query::NodeReport> reports;
    reports.reserve(clone.dest_urls.size());
    for (const std::string& url : clone.dest_urls) {
      reports.push_back(MakeRetiredReport(url, clone.State()));
    }
    stats_.retired_reports_sent += reports.size();
    (void)DispatchReports(clone, std::move(reports));
    FinishWalClone(wal_id);
  }
}

void QueryServer::HandleCloneWhileRetired(
    const net::Endpoint& from, net::MessageType type,
    const std::vector<uint8_t>& payload) {
  const net::Endpoint self{host_, kQueryServerPort};
  QueuedClone unit;
  unit.from = from;
  unit.tracked = receiver_.enabled();
  std::vector<uint8_t> inner;
  const std::vector<uint8_t>* body = &payload;
  if (unit.tracked) {
    if (!net::ReliableReceiver::PeekSeq(payload, &unit.seq)) return;
    if (receiver_.TestSeen(from, unit.seq)) {
      // A transfer committed before retirement was already answered once;
      // only the terminal NACK is due (its ack may have been lost).
      receiver_.SendSiteRetired(self, from, unit.seq);
      ++stats_.site_retired_nacks_sent;
      return;
    }
    if (!net::ReliableReceiver::StripEnvelope(payload, &inner)) return;
    body = &inner;
  }
  serialize::Decoder dec(*body);
  if (type == net::MessageType::kWebQuery) {
    query::WebQuery clone;
    Status status = query::WebQuery::DecodeFrom(&dec, &clone);
    if (status.ok()) status = dec.ExpectAtEnd("clone payload");
    if (!status.ok()) {
      ++stats_.decode_errors;
      if (unit.tracked) {
        receiver_.SendSiteRetired(self, from, unit.seq);
        ++stats_.site_retired_nacks_sent;
      }
      return;
    }
    unit.clones.push_back(std::move(clone));
  } else {
    query::CloneBatch batch;
    Status status = query::CloneBatch::DecodeFrom(&dec, &batch);
    if (status.ok()) status = dec.ExpectAtEnd("clone-batch payload");
    if (!status.ok()) {
      ++stats_.decode_errors;
      if (unit.tracked) {
        receiver_.SendSiteRetired(self, from, unit.seq);
        ++stats_.site_retired_nacks_sent;
      }
      return;
    }
    unit.clones = std::move(batch.clones);
  }
  RetireUnit(std::move(unit));
}

const relational::Database& QueryServer::NodeDatabase(
    const web::WebGraph::Document& doc) {
  if (options_.cache_databases) {
    // The version stamp keeps the cache honest against UpdateDocument: an
    // edited page gets a fresh key, and the stale entry ages out via LRU.
    const std::string key =
        doc.url.ResourceKey() + "@" + std::to_string(doc.version);
    auto it = db_cache_index_.find(key);
    if (it != db_cache_index_.end()) {
      ++stats_.db_cache_hits;
      // Refresh recency: move the entry to the front of the LRU list.
      db_cache_lru_.splice(db_cache_lru_.begin(), db_cache_lru_, it->second);
      return it->second->db;
    }
    ++stats_.db_constructions;
    CachedDatabase entry;
    entry.key = key;
    entry.db = BuildNodeDatabase(doc.parsed);
    entry.bytes = entry.db.ApproxBytes();
    db_cache_bytes_ += entry.bytes;
    db_cache_lru_.push_front(std::move(entry));
    db_cache_index_[key] = db_cache_lru_.begin();
    // Evict from the cold end until the budget holds. The just-inserted
    // entry is never evicted (a reference to it is being returned), even
    // when it alone exceeds the budget.
    if (options_.db_cache_max_bytes > 0) {
      while (db_cache_bytes_ > options_.db_cache_max_bytes &&
             db_cache_lru_.size() > 1) {
        CachedDatabase& victim = db_cache_lru_.back();
        db_cache_bytes_ -= victim.bytes;
        ++stats_.db_cache_evictions;
        db_cache_index_.erase(victim.key);
        db_cache_lru_.pop_back();
      }
    }
    return db_cache_lru_.front().db;
  }
  ++stats_.db_constructions;
  // Section 2.4: constructed per node-query and purged immediately after —
  // the scratch slot is overwritten on the next visit.
  scratch_db_ = BuildNodeDatabase(doc.parsed);
  return scratch_db_;
}

std::string QueryServer::ResultCacheKey(const web::WebGraph::Document& doc,
                                        const query::NodeQuery& nq) {
  // The node-query's wire encoding IS its canonical form: two clones of
  // different queries carrying the same select hit the same entry. The
  // version stamp is the staleness rule (§9.1): an edited document changes
  // the key, so a stale result can never be served.
  serialize::Encoder enc;
  nq.EncodeTo(&enc);
  std::string key = doc.url.ResourceKey();
  key += '@';
  key += std::to_string(doc.version);
  key += '|';
  key.append(reinterpret_cast<const char*>(enc.data().data()), enc.size());
  return key;
}

const relational::ResultSet* QueryServer::ResultCacheLookup(
    const std::string& key) {
  auto it = result_cache_index_.find(key);
  if (it == result_cache_index_.end()) return nullptr;
  result_cache_lru_.splice(result_cache_lru_.begin(), result_cache_lru_,
                           it->second);
  return &it->second->rows;
}

void QueryServer::ResultCacheInsert(std::string key,
                                    const relational::ResultSet& rows) {
  CachedResult entry;
  entry.bytes = key.size() + sizeof(CachedResult);
  for (const std::string& label : rows.column_labels) {
    entry.bytes += label.size();
  }
  for (const relational::Tuple& row : rows.rows) {
    for (const relational::Value& v : row) entry.bytes += v.ApproxBytes();
  }
  entry.key = std::move(key);
  entry.rows = rows;  // empty results are cached too — misses are work
  result_cache_bytes_ += entry.bytes;
  result_cache_lru_.push_front(std::move(entry));
  result_cache_index_[result_cache_lru_.front().key] =
      result_cache_lru_.begin();
  if (options_.result_cache_max_bytes > 0) {
    // Evict cold entries until the budget holds; the just-inserted entry
    // survives even when it alone exceeds the budget (mirrors the DB
    // cache's rule — the caller holds no reference here, but evicting the
    // newest entry would make a one-entry cache thrash forever).
    while (result_cache_bytes_ > options_.result_cache_max_bytes &&
           result_cache_lru_.size() > 1) {
      CachedResult& victim = result_cache_lru_.back();
      result_cache_bytes_ -= victim.bytes;
      ++stats_.result_cache_evictions;
      result_cache_index_.erase(victim.key);
      result_cache_lru_.pop_back();
    }
  }
}

bool QueryServer::EvaluateNodeQuery(const query::NodeQuery& nq,
                                    const web::WebGraph::Document& doc,
                                    const relational::Database& db,
                                    relational::ResultSet* out) {
  std::string key;
  if (options_.share_results) {
    key = ResultCacheKey(doc, nq);
    if (const relational::ResultSet* hit = ResultCacheLookup(key)) {
      ++stats_.result_cache_hits;
      *out = *hit;
      return true;
    }
    ++stats_.result_cache_misses;
  }
  auto result = relational::Execute(nq.select, db);
  if (!result.ok()) {
    WEBDIS_LOG(kWarning) << host_ << ": node-query failed on "
                         << doc.url.ResourceKey() << ": "
                         << result.status().ToString();
    return false;
  }
  if (options_.share_results) ResultCacheInsert(std::move(key), *result);
  *out = std::move(result).value();
  return true;
}

void QueryServer::ProcessStage(const query::WebQuery& clone,
                               const web::WebGraph::Document& doc,
                               const relational::Database& db, size_t stage,
                               const pre::Pre& rem,
                               query::NodeReport* report,
                               std::vector<Forward>* forwards) {
  // ServerRouter half: the PRE admits the zero-length path here, so the
  // stage's node-query is evaluated against this node's virtual relations
  // (through the cross-query result cache when share_results is on).
  if (rem.ContainsNull()) {
    ++stats_.node_queries_evaluated;
    const query::NodeQuery& nq = clone.remaining_queries[stage];
    relational::ResultSet rows;
    if (!EvaluateNodeQuery(nq, doc, db, &rows)) {
      // Evaluation error: logged inside, nothing to report or advance.
    } else if (!rows.rows.empty()) {
      ++stats_.answers_found;
      report->result_sets.push_back(std::move(rows));
      // Advance to the next (PRE, node-query) stage from this node — only
      // from nodes that answered (Figure 1's node 7 rule).
      if (stage + 1 < clone.remaining_queries.size()) {
        const pre::Pre& next_pre = clone.future_pres[stage];
        ProcessStage(clone, doc, db, stage + 1, next_pre, report, forwards);
      }
    } else {
      ++stats_.dead_ends;
    }
  }
  // PureRouter half: continue along the current PRE's remaining paths
  // regardless of the local answer (see the class comment on routing
  // semantics).
  for (const html::LinkType link_type : rem.FirstLinks()) {
    const pre::Pre derived = rem.Derive(link_type);
    for (const html::ParsedAnchor& anchor : doc.parsed.anchors) {
      if (anchor.ltype != link_type) continue;
      forwards->push_back(
          Forward{anchor.resolved.ResourceKey(), stage, derived});
    }
  }
}

void QueryServer::ProcessNode(const query::WebQuery& clone,
                              const std::string& url,
                              query::NodeReport* report,
                              std::vector<Forward>* forwards) {
  report->node_url = url;
  report->received_state = clone.State();

  VisitEvent event;
  event.node_url = url;
  event.received_state = clone.State();

  pre::Pre rem = clone.rem_pre;
  if (options_.dedup_enabled) {
    const pre::LogDecision decision =
        log_table_.Check(url, clone.id.Key(), clone.State());
    if (decision.comparison == pre::LogComparison::kDuplicate) {
      ++stats_.duplicates_dropped;
      report->duplicate_drop = true;
      event.duplicate = true;
      if (visit_observer_) visit_observer_(event);
      return;
    }
    if (decision.comparison == pre::LogComparison::kSupersetRewrite) {
      // Process only the difference: the rewrite A·A*(m-1)·B is never
      // nullable, so this node acts as a PureRouter for this clone
      // (Section 3.1.1).
      ++stats_.superset_rewrites;
      rem = *decision.rewritten;
      event.rewritten = true;
    }
  }

  const web::WebGraph::Document* doc = web_->Find(url);
  if (doc == nullptr || doc->url.host != host_) {
    // A floating link or a mis-routed clone: report the visit (so the CHT
    // entry clears) but there is nothing to process or forward. Under churn
    // this also covers a document removed mid-run (§10) — the stamp stays
    // 0 and the verdict classifies the node superseded.
    ++stats_.missing_documents;
    if (visit_observer_) visit_observer_(event);
    return;
  }
  if (clone.budget.pinned_epoch != 0 &&
      doc->born_epoch > clone.budget.pinned_epoch) {
    // §10.3: the document was spawned after this query's pinned epoch —
    // invisible to this run. Report the visit (the CHT entry clears) with
    // the epoch-gated visibility; nothing is evaluated or forwarded, so a
    // mid-run spawn can never be half-seen.
    ++stats_.epoch_gated_nodes;
    report->visibility = query::NodeReport::kVisibilityEpochGated;
    if (visit_observer_) visit_observer_(event);
    return;
  }
  report->doc_version = doc->version;

  ++stats_.nodes_processed;
  const relational::Database& db = NodeDatabase(*doc);
  const size_t forwards_before = forwards->size();
  const size_t results_before = report->result_sets.size();
  ProcessStage(clone, *doc, db, 0, rem, report, forwards);

  event.evaluated = rem.ContainsNull();
  event.answered = report->result_sets.size() > results_before;
  event.forward_count = forwards->size() - forwards_before;
  event.dead_end = event.evaluated && !event.answered &&
                   event.forward_count == 0;
  if (visit_observer_) visit_observer_(event);
}

void QueryServer::SendAck(const net::Endpoint& parent, uint64_t token) {
  serialize::Encoder enc;
  enc.PutU64(token);
  const Status status =
      transport_->Send(net::Endpoint{host_, kQueryServerPort}, parent,
                       net::MessageType::kAck, enc.Release());
  if (status.ok()) {
    ++stats_.acks_sent;
    return;
  }
  // [[nodiscard]] audit: acks bypass the retry layer (their loss is the
  // ack-tree baseline's known weakness — the paper's CHT design exists
  // precisely because a lost ack stalls tree completion). Surface it loudly
  // instead of dropping the Status on the floor. Refusal is benign: the
  // parent purged the query (termination) and no longer wants acks.
  if (status.code() != StatusCode::kConnectionRefused) {
    ++stats_.ack_send_failures;
    WEBDIS_LOG(kWarning) << host_ << ": ack to " << parent.ToString()
                         << " failed: " << status.ToString();
  }
}

void QueryServer::OnAck(uint64_t token) {
  ++stats_.acks_received;
  auto it = pending_acks_.find(token);
  if (it == pending_acks_.end()) return;  // stale (query purged)
  PendingAck& pending = it->second;
  if (pending.remaining_children > 0) --pending.remaining_children;
  if (pending.remaining_children == 0) {
    SendAck(pending.parent, pending.parent_token);
    pending_acks_.erase(it);
  }
}

bool QueryServer::DispatchReports(const query::WebQuery& clone,
                                  std::vector<query::NodeReport> reports) {
  if (reports.empty()) return true;
  const net::Endpoint self{host_, kQueryServerPort};
  const net::Endpoint user_site{clone.id.reply_host, clone.id.reply_port};
  std::vector<query::QueryReport> messages;
  if (options_.batch_reports) {
    query::QueryReport qr;
    qr.id = clone.id;
    qr.node_reports = std::move(reports);
    messages.push_back(std::move(qr));
  } else {
    for (query::NodeReport& nr : reports) {
      query::QueryReport qr;
      qr.id = clone.id;
      qr.node_reports.push_back(std::move(nr));
      messages.push_back(std::move(qr));
    }
  }
  if (BatchingEnabled() && !clone.ack_mode) {
    // Cross-query batching (§9.2): stage for the next flush window, where
    // reports of *different* queries to the same user-site host share one
    // kReportBatch envelope. Passive-termination detection moves to flush
    // time — the flush vetoes staged forwards of terminated queries, so
    // the no-forwarding-after-termination contract still holds (§9.3).
    auto& staged = staged_reports_[clone.id.reply_host];
    for (query::QueryReport& qr : messages) {
      staged.push_back(std::move(qr));
    }
    ScheduleFlush();
    return true;
  }
  for (const query::QueryReport& qr : messages) {
    serialize::Encoder enc;
    qr.EncodeTo(&enc);
    const Status status = sender_.Send(
        self, user_site, net::MessageType::kReport, enc.Release());
    if (status.code() == StatusCode::kConnectionRefused) {
      // Passive termination (Section 2.8): the user site closed its result
      // socket; purge the query locally and do not forward. Only the
      // synchronous refusal means this — see report_send_errors below.
      ++stats_.passive_terminations;
      terminated_queries_.insert(clone.id.Key());
      log_table_.PurgeQuery(clone.id.Key());
      return false;
    }
    if (!status.ok()) {
      // Transient transport error (e.g. IoError mid-write over real TCP).
      // NOT a termination signal: purging here would strand the user site's
      // CHT entries until deadline-GC even though the site is alive. With
      // retry enabled the transfer is already armed for retransmission;
      // either way the deadline sweep is the backstop, so keep going.
      ++stats_.report_send_errors;
      WEBDIS_LOG(kWarning) << host_ << ": report to "
                           << user_site.ToString()
                           << " failed: " << status.ToString();
    }
  }
  return true;
}

void QueryServer::ProcessClone(query::WebQuery clone) {
  ++stats_.clones_received;
  if (options_.log_purge_every != 0 &&
      stats_.clones_received % options_.log_purge_every == 0) {
    log_table_.Purge();
  }
  if (terminated_queries_.contains(clone.id.Key())) {
    return;  // query was terminated; drop silently
  }
  if (const Status status = clone.Validate(); !status.ok()) {
    ++stats_.decode_errors;
    WEBDIS_LOG(kWarning) << host_ << ": invalid clone: " << status.ToString();
    return;
  }

  // -- Budget: deadline gate (PROTOCOL.md §7.1) -----------------------------
  // Checked before any evaluation: a clone that arrives past its deadline is
  // dead on arrival. Its visit is still *reported* (budget-exceeded) so the
  // user site's CHT entries clear and the degradation is named, never silent.
  const query::QueryBudget budget = clone.budget;
  if (budget.has_deadline && Now() > budget.deadline) {
    ++stats_.budget_expired_clones;
    if (clone.ack_mode) {
      SendAck(net::Endpoint{clone.ack_parent_host, clone.ack_parent_port},
              clone.ack_token);
      return;
    }
    std::vector<query::NodeReport> expired;
    expired.reserve(clone.dest_urls.size());
    for (const std::string& url : clone.dest_urls) {
      expired.push_back(MakeBudgetReport(url, clone.State()));
    }
    (void)DispatchReports(clone, std::move(expired));
    return;
  }

  std::vector<query::NodeReport> reports;
  std::vector<Forward> forwards;
  for (const std::string& url : clone.dest_urls) {
    query::NodeReport report;
    const size_t report_index = reports.size();
    const size_t forwards_before = forwards.size();
    ProcessNode(clone, url, &report, &forwards);
    // Budget: per-visit result cap. Truncation is flagged on the report —
    // the user site records the node as budget-degraded but still takes the
    // surviving rows and CHT entries.
    if (budget.has_row_limit) {
      uint64_t allowed = budget.max_rows_per_visit;
      for (relational::ResultSet& rs : report.result_sets) {
        if (rs.rows.size() > allowed) {
          stats_.rows_truncated += rs.rows.size() - allowed;
          rs.rows.resize(allowed);
          report.budget_exceeded = true;
        }
        allowed -= rs.rows.size();
      }
    }
    for (size_t i = forwards_before; i < forwards.size(); ++i) {
      forwards[i].origin_report = report_index;
    }
    reports.push_back(std::move(report));
  }

  // -- Group forwarding intents into clones ---------------------------------
  // Key: destination site (+ pipeline state). With batching off, every
  // destination node gets its own clone (ablation of §3.2(4)). A CHT entry
  // is emitted for exactly the (clone, destination) pairs actually
  // dispatched — merged duplicate intents must NOT add entries, or the user
  // site would wait for reports that can never come.
  struct OutClone {
    std::string dest_host;
    size_t queries_consumed;
    pre::Pre rem;
    std::vector<std::string> dest_urls;
  };
  std::vector<OutClone> out_clones;
  const uint32_t total_queries =
      static_cast<uint32_t>(clone.remaining_queries.size());
  for (const Forward& f : forwards) {
    auto parsed = html::ParseUrl(f.dest_url);
    if (!parsed.ok()) continue;
    const std::string& dest_host = parsed->host;
    OutClone* slot = nullptr;
    if (options_.batch_clones_per_site) {
      for (OutClone& c : out_clones) {
        if (c.dest_host == dest_host &&
            c.queries_consumed == f.queries_consumed &&
            c.rem.Equals(f.rem)) {
          slot = &c;
          break;
        }
      }
    }
    if (slot == nullptr) {
      out_clones.push_back(
          OutClone{dest_host, f.queries_consumed, f.rem, {}});
      slot = &out_clones.back();
    }
    if (std::find(slot->dest_urls.begin(), slot->dest_urls.end(),
                  f.dest_url) != slot->dest_urls.end()) {
      continue;  // merged with an earlier intent: no dispatch, no entry
    }
    slot->dest_urls.push_back(f.dest_url);
    query::ChtEntry entry;
    entry.node_url = f.dest_url;
    entry.state.num_q =
        total_queries - static_cast<uint32_t>(f.queries_consumed);
    entry.state.rem_pre = f.rem;
    reports[f.origin_report].next_entries.push_back(std::move(entry));
  }

  // The paper's original design drops duplicates silently; the robust
  // default reports them so CHT balances always settle.
  if (!options_.report_dropped_duplicates) {
    std::erase_if(reports, [](const query::NodeReport& r) {
      return r.duplicate_drop;
    });
  }
  // Ack-tree termination baseline: the CHT machinery is unused, so reports
  // carry only actual results — drop notices and next-entry lists would be
  // wasted bytes (the acks below settle completion instead).
  if (clone.ack_mode) {
    for (query::NodeReport& r : reports) r.next_entries.clear();
    std::erase_if(reports, [](const query::NodeReport& r) {
      return r.result_sets.empty();
    });
  }

  // -- Report first, then forward (Section 2.7.1's ordering) ----------------
  if (!DispatchReports(clone, std::move(reports))) {
    return;  // passive termination
  }

  // -- Budget: hop & clone-allowance gates (PROTOCOL.md §7.1) ---------------
  // The CHT entries for every out-clone were just announced above, so a
  // blocked dispatch must produce a follow-up budget-exceeded report that
  // deletes them — the same announce-then-delete pattern the undeliverable
  // path uses. A clone on its last hop (hops_left == 1) forwards nothing;
  // the clone allowance pays one unit per dispatched out-clone and splits
  // the remainder across the children, bounding the forwarding tree by the
  // value the user site stamped.
  std::vector<OutClone> vetoed;
  if (budget.has_hop_limit && budget.hops_left <= 1) {
    vetoed = std::move(out_clones);
    out_clones.clear();
  }
  if (budget.has_clone_limit && out_clones.size() > budget.clones_left) {
    const auto keep = static_cast<ptrdiff_t>(budget.clones_left);
    std::move(out_clones.begin() + keep, out_clones.end(),
              std::back_inserter(vetoed));
    out_clones.resize(budget.clones_left);
  }
  uint64_t child_alloc_base = 0;
  uint64_t child_alloc_extra = 0;
  if (budget.has_clone_limit && !out_clones.empty()) {
    const uint64_t leftover = budget.clones_left - out_clones.size();
    child_alloc_base = leftover / out_clones.size();
    child_alloc_extra = leftover % out_clones.size();
  }

  const net::Endpoint self{host_, kQueryServerPort};
  // Ack-tree mode: children forwarded from this clone ack against a fresh
  // local token; this clone's own ack to its parent is deferred until all
  // children report in (Dijkstra–Scholten).
  const uint64_t ack_token =
      clone.ack_mode ? next_ack_token_++ : 0;
  size_t ack_children = 0;
  std::vector<query::NodeReport> followup_reports;
  for (const OutClone& out : vetoed) {
    ++stats_.budget_vetoed_forwards;
    for (const std::string& url : out.dest_urls) {
      query::CloneState state;
      state.num_q =
          total_queries - static_cast<uint32_t>(out.queries_consumed);
      state.rem_pre = out.rem;
      followup_reports.push_back(MakeBudgetReport(url, std::move(state)));
    }
  }
  for (size_t out_index = 0; out_index < out_clones.size(); ++out_index) {
    const OutClone& out = out_clones[out_index];
    query::WebQuery next;
    next.id = clone.id;
    for (size_t i = out.queries_consumed;
         i < clone.remaining_queries.size(); ++i) {
      next.remaining_queries.push_back(clone.remaining_queries[i].Clone());
    }
    for (size_t i = out.queries_consumed; i < clone.future_pres.size(); ++i) {
      next.future_pres.push_back(clone.future_pres[i]);
    }
    next.rem_pre = out.rem;
    next.dest_urls = out.dest_urls;
    next.budget = budget;
    if (next.budget.has_hop_limit) --next.budget.hops_left;
    if (next.budget.has_clone_limit) {
      next.budget.clones_left =
          child_alloc_base + (out_index < child_alloc_extra ? 1 : 0);
    }
    if (clone.ack_mode) {
      next.ack_mode = true;
      next.ack_parent_host = host_;
      next.ack_parent_port = kQueryServerPort;
      next.ack_token = ack_token;
    }
    // Circuit breaker (PROTOCOL.md §7.3): a tripped destination converts
    // the dispatch into an immediate host-unreachable outcome instead of
    // burning the retry budget against a host known to be failing.
    if (!breakers_.Allow(out.dest_host, Now())) {
      ++stats_.undeliverable_forwards;
      for (const std::string& url : out.dest_urls) {
        query::NodeReport nr;
        nr.node_url = url;
        nr.received_state.num_q =
            static_cast<uint32_t>(next.remaining_queries.size());
        nr.received_state.rem_pre = next.rem_pre;
        nr.undeliverable = true;
        followup_reports.push_back(std::move(nr));
      }
      continue;
    }
    if (BatchingEnabled() && !clone.ack_mode) {
      // Cross-query batching (§9.2): stage for the next flush window, where
      // clones of *different* queries to the same destination host share
      // one kCloneBatch envelope. The breaker was consulted above; refusal
      // handling (undeliverable follow-ups) moves to flush time.
      staged_clones_[out.dest_host].push_back(std::move(next));
      ScheduleFlush();
      continue;
    }
    serialize::Encoder enc;
    next.EncodeTo(&enc);
    const Status status =
        sender_.Send(self, net::Endpoint{out.dest_host, kQueryServerPort},
                     net::MessageType::kWebQuery, enc.Release());
    if (status.code() == StatusCode::kConnectionRefused) {
      // The destination runs no query server (non-participating site, or it
      // crashed). Tell the user site so (a) its CHT entries clear and
      // (b) it can fall back to centralized processing for those nodes.
      ++stats_.undeliverable_forwards;
      breakers_.RecordFailure(out.dest_host, Now());
      for (const std::string& url : out.dest_urls) {
        query::NodeReport nr;
        nr.node_url = url;
        nr.received_state.num_q =
            static_cast<uint32_t>(next.remaining_queries.size());
        nr.received_state.rem_pre = next.rem_pre;
        nr.undeliverable = true;
        followup_reports.push_back(std::move(nr));
      }
    } else {
      if (!status.ok()) {
        // Transient error, not refusal: the clone may still arrive via the
        // retry layer, so the CHT entries stay valid — do not report the
        // nodes undeliverable (that would fall back to centralized
        // processing AND possibly process them remotely on redelivery).
        ++stats_.forward_send_errors;
        WEBDIS_LOG(kWarning) << host_ << ": forward to " << out.dest_host
                             << " failed: " << status.ToString();
      } else if (!sender_.enabled()) {
        // No delivery acks to wait for: synchronous acceptance is the best
        // evidence of destination health we will get.
        breakers_.RecordSuccess(out.dest_host, Now());
      }
      ++stats_.clones_forwarded;
      ++ack_children;
    }
  }
  if (!followup_reports.empty() && !clone.ack_mode) {
    // Deliberately dropped: this is the last action for the clone, so the
    // no-forwarding-after-termination contract has nothing left to gate.
    (void)DispatchReports(clone, std::move(followup_reports));
  }
  if (clone.ack_mode) {
    const net::Endpoint parent{clone.ack_parent_host, clone.ack_parent_port};
    if (ack_children == 0) {
      // Leaf of the forwarding tree: ack immediately.
      SendAck(parent, clone.ack_token);
    } else {
      pending_acks_[ack_token] =
          PendingAck{parent, clone.ack_token, ack_children, clone.id.Key()};
    }
  }
}

// -- Durability (PROTOCOL.md §8) ---------------------------------------------

void QueryServer::AppendWalRecord(WalRecordType type,
                                  const serialize::Encoder& payload) {
  if (!WalEnabled()) return;
  Status status = persist_->AppendWal(EncodeWalRecord(type, payload.data()));
  if (status.ok() &&
      options_.persist.fsync == WalFsyncPolicy::kEveryAppend) {
    status = persist_->SyncWal();
  }
  if (!status.ok()) {
    ++stats_.wal_append_errors;
    WEBDIS_LOG(kWarning) << host_ << ": WAL append failed: "
                         << status.ToString();
    return;
  }
  ++stats_.wal_records_appended;
}

uint64_t QueryServer::PersistAdmit(const net::Endpoint& from, bool tracked,
                                   uint64_t seq,
                                   const query::WebQuery& clone) {
  if (!PersistEnabled()) return 0;
  const uint64_t id = next_wal_id_++;
  if (WalEnabled()) {
    serialize::Encoder payload;
    WalCloneAdmitted::EncodeFields(id, from, tracked, seq, clone, &payload);
    AppendWalRecord(WalRecordType::kCloneAdmitted, payload);
  }
  return id;
}

uint64_t QueryServer::PersistAdmitBatch(
    const net::Endpoint& from, bool tracked, uint64_t seq,
    const std::vector<query::WebQuery>& clones) {
  if (!PersistEnabled()) return 0;
  const uint64_t first = next_wal_id_;
  next_wal_id_ += clones.size();
  if (WalEnabled()) {
    // One record covering every member, appended before the single batch
    // ack (§9.2): all-or-none durability matches all-or-none admission.
    serialize::Encoder payload;
    WalBatchAdmitted::EncodeFields(first, from, tracked, seq, clones,
                                   &payload);
    AppendWalRecord(WalRecordType::kBatchAdmitted, payload);
  }
  return first;
}

void QueryServer::FinishWalUnit(const QueuedClone& unit) {
  if (unit.wal_id == 0) return;
  for (size_t i = 0; i < unit.clones.size(); ++i) {
    FinishWalClone(unit.wal_id + i);
  }
}

void QueryServer::FinishWalClone(uint64_t wal_id) {
  if (wal_id == 0) return;
  if (WalEnabled()) {
    serialize::Encoder payload;
    WalCloneCompleted{wal_id}.EncodeTo(&payload);
    AppendWalRecord(WalRecordType::kCloneCompleted, payload);
  }
  ++clones_since_snapshot_;
  MaybeSnapshot();
}

void QueryServer::ProcessCloneDurable(query::WebQuery clone,
                                      uint64_t wal_id) {
  ProcessClone(std::move(clone));
  // Every exit from ProcessClone is terminal for this clone (evaluated,
  // expired, invalid, or dropped as terminated), so the completion record
  // is due unconditionally — but with batching on, the clone's output may
  // still sit in the staging maps. Writing kCloneCompleted now would make
  // a crash-in-the-gap lose the staged reports with no replay to
  // regenerate them (a CHT hang); defer the record past the next flush.
  if (wal_id != 0 && BatchingEnabled()) {
    wal_pending_flush_.push_back(wal_id);
    ScheduleFlush();
    return;
  }
  FinishWalClone(wal_id);
}

void QueryServer::ScheduleFlush() {
  if (flush_timer_ != 0) return;
  if (staged_clones_.empty() && staged_reports_.empty() &&
      wal_pending_flush_.empty()) {
    return;
  }
  flush_timer_ = transport_->ScheduleAfter(options_.batch_window, [this] {
    flush_timer_ = 0;
    FlushBatches();
  });
}

void QueryServer::FlushBatches() {
  const net::Endpoint self{host_, kQueryServerPort};
  // Take the staged state up front: refusal handling below routes through
  // DispatchReports, which may stage fresh follow-ups (flushed next
  // window) — iterating the live maps while that happens would be UB.
  std::map<std::string, std::vector<query::QueryReport>> reports;
  std::map<std::string, std::vector<query::WebQuery>> clones;
  std::vector<uint64_t> finished;
  reports.swap(staged_reports_);
  clones.swap(staged_clones_);
  finished.swap(wal_pending_flush_);

  // -- Reports first (the §2.7.1 ordering holds across the flush too) -------
  for (auto& [reply_host, members] : reports) {
    size_t begin = 0;
    while (begin < members.size()) {
      const size_t end =
          std::min(members.size(), begin + options_.batch_max_members);
      const size_t count = end - begin;
      if (count == 1) {
        // A lone member gains nothing from an envelope: send it as a plain
        // kReport with the standard refusal semantics.
        query::QueryReport& qr = members[begin];
        const net::Endpoint user_site{qr.id.reply_host, qr.id.reply_port};
        serialize::Encoder enc;
        qr.EncodeTo(&enc);
        const Status status = sender_.Send(
            self, user_site, net::MessageType::kReport, enc.Release());
        if (status.code() == StatusCode::kConnectionRefused) {
          ++stats_.passive_terminations;
          terminated_queries_.insert(qr.id.Key());
          log_table_.PurgeQuery(qr.id.Key());
        } else if (!status.ok()) {
          ++stats_.report_send_errors;
        }
        ++begin;
        continue;
      }
      // The carrier socket is the lowest member port: deterministic, and
      // any member socket works — the user site demultiplexes by QueryId.
      query::ReportBatch batch;
      uint16_t carrier_port = std::numeric_limits<uint16_t>::max();
      for (size_t i = begin; i < end; ++i) {
        carrier_port = std::min(carrier_port, members[i].id.reply_port);
        batch.reports.push_back(std::move(members[i]));
      }
      serialize::Encoder enc;
      batch.EncodeTo(&enc);
      const Status status =
          sender_.Send(self, net::Endpoint{reply_host, carrier_port},
                       net::MessageType::kReportBatch, enc.Release());
      if (status.code() == StatusCode::kConnectionRefused) {
        // Only the CARRIER socket is provably closed — terminate the
        // queries bound to that port passively (§2.8) and resend the other
        // members individually so one completed query cannot take its
        // batch peers down with it.
        for (query::QueryReport& qr : batch.reports) {
          if (qr.id.reply_port == carrier_port) {
            ++stats_.passive_terminations;
            terminated_queries_.insert(qr.id.Key());
            log_table_.PurgeQuery(qr.id.Key());
            continue;
          }
          const net::Endpoint user_site{qr.id.reply_host, qr.id.reply_port};
          serialize::Encoder single;
          qr.EncodeTo(&single);
          const Status resend =
              sender_.Send(self, user_site, net::MessageType::kReport,
                           single.Release());
          if (resend.code() == StatusCode::kConnectionRefused) {
            ++stats_.passive_terminations;
            terminated_queries_.insert(qr.id.Key());
            log_table_.PurgeQuery(qr.id.Key());
          } else if (!resend.ok()) {
            ++stats_.report_send_errors;
          }
        }
      } else if (!status.ok()) {
        ++stats_.report_send_errors;
      } else {
        ++stats_.report_batches_sent;
        stats_.report_batch_members_sent += count;
      }
      begin = end;
    }
  }

  // -- Then clones (§2.7.1: every member's reports went out above) ----------
  for (auto& [dest_host, members] : clones) {
    // Members of queries passively terminated since staging (including by
    // the report flush just above) must not be forwarded — resurrecting a
    // query the user abandoned is exactly what §2.8 forbids.
    std::erase_if(members, [this](const query::WebQuery& m) {
      return terminated_queries_.contains(m.id.Key());
    });
    size_t begin = 0;
    while (begin < members.size()) {
      const size_t end =
          std::min(members.size(), begin + options_.batch_max_members);
      const size_t count = end - begin;
      Status status = Status::OK();
      if (count == 1) {
        serialize::Encoder enc;
        members[begin].EncodeTo(&enc);
        status = sender_.Send(self,
                              net::Endpoint{dest_host, kQueryServerPort},
                              net::MessageType::kWebQuery, enc.Release());
      } else {
        query::CloneBatch batch;
        for (size_t i = begin; i < end; ++i) {
          batch.clones.push_back(std::move(members[i]));
        }
        serialize::Encoder enc;
        batch.EncodeTo(&enc);
        status = sender_.Send(self,
                              net::Endpoint{dest_host, kQueryServerPort},
                              net::MessageType::kCloneBatch, enc.Release());
        // Move the members back so the refusal path below can still name
        // every destination node in its follow-up reports.
        for (size_t i = begin; i < end; ++i) {
          members[i] = std::move(batch.clones[i - begin]);
        }
      }
      if (status.code() == StatusCode::kConnectionRefused) {
        // No query server at the destination: announce-then-delete every
        // member's CHT entries, exactly like the unbatched refusal path.
        stats_.undeliverable_forwards += count;
        breakers_.RecordFailure(dest_host, Now());
        for (size_t i = begin; i < end; ++i) {
          const query::WebQuery& member = members[i];
          std::vector<query::NodeReport> followups;
          followups.reserve(member.dest_urls.size());
          for (const std::string& url : member.dest_urls) {
            query::NodeReport nr;
            nr.node_url = url;
            nr.received_state = member.State();
            nr.undeliverable = true;
            followups.push_back(std::move(nr));
          }
          (void)DispatchReports(member, std::move(followups));
        }
      } else if (!status.ok()) {
        stats_.forward_send_errors += count;
      } else {
        if (!sender_.enabled()) breakers_.RecordSuccess(dest_host, Now());
        stats_.clones_forwarded += count;
        if (count > 1) {
          ++stats_.clone_batches_sent;
          stats_.clone_batch_members_sent += count;
        }
      }
      begin = end;
    }
  }

  // -- Deferred WAL completions: the staged output above is on the wire (or
  // explicitly reported undeliverable), so the clones are now terminal. If
  // a refusal staged fresh follow-ups, those still belong to these clones'
  // outputs — keep their completions deferred one more round, or a crash
  // before the next flush would lose the follow-ups unreplayably.
  if (staged_reports_.empty() && staged_clones_.empty()) {
    for (const uint64_t wal_id : finished) {
      FinishWalClone(wal_id);
    }
  } else {
    wal_pending_flush_.insert(wal_pending_flush_.end(), finished.begin(),
                              finished.end());
  }
  ScheduleFlush();
}

void QueryServer::MaybeSnapshot() {
  if (!PersistEnabled()) return;
  const PersistOptions& persist = options_.persist;
  const bool by_cadence =
      persist.snapshot_every_clones != 0 &&
      clones_since_snapshot_ >= persist.snapshot_every_clones;
  const bool by_size = persist.wal_enabled &&
                       persist.wal_compact_bytes != 0 &&
                       persist_->WalBytes() >= persist.wal_compact_bytes;
  if (by_cadence || by_size) WriteSnapshotNow();
}

void QueryServer::WriteSnapshotNow() {
  DurableServerState state;
  state.last_wal_id = next_wal_id_ - 1;
  state.log_table = log_table_;
  state.terminated_queries.assign(terminated_queries_.begin(),
                                  terminated_queries_.end());
  receiver_.ForEachSeen([&state](const net::Endpoint& from, uint64_t seq) {
    state.seen_transfers.emplace_back(from, seq);
  });
  for (const QueuedClone& queued : pending_clones_) {
    // Batch units flatten to one per-member entry (the snapshot codec is
    // member-granular). Carrier rule: the unit's single transfer seq rides
    // on member 0 only — a second entry re-committing it at drain time
    // would read as a replay and silently drop that member.
    for (size_t i = 0; i < queued.clones.size(); ++i) {
      DurablePendingClone pending;
      pending.record_id = queued.wal_id == 0 ? 0 : queued.wal_id + i;
      pending.from = queued.from;
      pending.tracked = queued.tracked && i == 0;
      pending.seq = i == 0 ? queued.seq : 0;
      pending.clone = queued.clones[i].Clone();
      state.pending_clones.push_back(std::move(pending));
    }
  }
  const Status status = persist_->WriteSnapshot(EncodeSnapshot(state));
  if (!status.ok()) {
    ++stats_.wal_append_errors;
    WEBDIS_LOG(kWarning) << host_ << ": snapshot write failed: "
                         << status.ToString();
    return;  // keep the WAL — it still covers everything since the last one
  }
  // A crash between the write above and this truncation is benign: replay
  // skips records at or below the snapshot's last_wal_id.
  (void)persist_->TruncateWal();
  ++stats_.snapshots_written;
  clones_since_snapshot_ = 0;
}

void QueryServer::Recover() {
  if (!PersistEnabled()) {
    ++stats_.cold_starts;
    return;
  }
  DurableServerState state;
  bool have_snapshot = false;
  auto snapshot_bytes = persist_->ReadSnapshot();
  if (snapshot_bytes.ok()) {
    const Status status = DecodeSnapshot(*snapshot_bytes, &state);
    if (status.ok()) {
      have_snapshot = true;
    } else {
      // Explicit rejection (unknown version, failed checksum, torn write):
      // fall back to cold start + WAL replay, never a silent misread.
      ++stats_.snapshot_load_rejected;
      WEBDIS_LOG(kWarning) << host_ << ": snapshot rejected: "
                           << status.ToString();
      state = DurableServerState();
    }
  }
  if (have_snapshot) {
    ++stats_.recovered_from_snapshot;
    log_table_ = std::move(state.log_table);
    for (std::string& key : state.terminated_queries) {
      terminated_queries_.insert(std::move(key));
    }
    for (const auto& [from, seq] : state.seen_transfers) {
      receiver_.RestoreSeen(from, seq);
    }
  }

  // Admitted-but-unprocessed clones: snapshot pendings, then the WAL
  // replayed idempotently on top. Records the snapshot already folded in
  // are skipped by id; completions erase their admitted record whether it
  // came from the WAL or the snapshot.
  std::map<uint64_t, DurablePendingClone> pending;
  for (DurablePendingClone& p : state.pending_clones) {
    const uint64_t id = p.record_id;
    pending.emplace(id, std::move(p));
  }
  uint64_t max_wal_id = state.last_wal_id;
  const uint64_t replayed_before = stats_.replayed_wal_records;
  if (WalEnabled()) {
    auto wal_bytes = persist_->ReadWal();
    if (wal_bytes.ok()) {
      WalReadResult wal = DecodeWal(*wal_bytes);
      stats_.wal_records_discarded += wal.discarded_records;
      for (const WalRecord& record : wal.records) {
        serialize::Decoder dec(record.payload);
        switch (record.type) {
          case WalRecordType::kCloneAdmitted: {
            WalCloneAdmitted admitted;
            if (!WalCloneAdmitted::DecodeFrom(&dec, &admitted).ok() ||
                !dec.ExpectAtEnd("WAL clone-admitted record").ok()) {
              break;
            }
            max_wal_id = std::max(max_wal_id, admitted.record_id);
            if (admitted.tracked) {
              // The pre-crash life acked this transfer right after the
              // append; restoring the receipt keeps post-restart
              // retransmissions re-acked instead of reprocessed.
              receiver_.RestoreSeen(admitted.from, admitted.seq);
            }
            if (admitted.record_id > state.last_wal_id) {
              DurablePendingClone p;
              p.record_id = admitted.record_id;
              p.from = admitted.from;
              p.tracked = admitted.tracked;
              p.seq = admitted.seq;
              p.clone = std::move(admitted.clone);
              pending.emplace(p.record_id, std::move(p));
            }
            ++stats_.replayed_wal_records;
            break;
          }
          case WalRecordType::kCloneCompleted: {
            WalCloneCompleted completed;
            if (!WalCloneCompleted::DecodeFrom(&dec, &completed).ok() ||
                !dec.ExpectAtEnd("WAL clone-completed record").ok()) {
              break;
            }
            max_wal_id = std::max(max_wal_id, completed.record_id);
            pending.erase(completed.record_id);
            ++stats_.replayed_wal_records;
            break;
          }
          case WalRecordType::kTransferSeen: {
            WalTransferSeen seen;
            if (!WalTransferSeen::DecodeFrom(&dec, &seen).ok() ||
                !dec.ExpectAtEnd("WAL transfer-seen record").ok()) {
              break;
            }
            receiver_.RestoreSeen(seen.from, seen.seq);
            ++stats_.replayed_wal_records;
            break;
          }
          case WalRecordType::kQueryTerminated: {
            WalQueryTerminated terminated;
            if (!WalQueryTerminated::DecodeFrom(&dec, &terminated).ok() ||
                !dec.ExpectAtEnd("WAL query-terminated record").ok()) {
              break;
            }
            terminated_queries_.insert(terminated.query_key);
            log_table_.PurgeQuery(terminated.query_key);
            ++stats_.replayed_wal_records;
            break;
          }
          case WalRecordType::kBatchAdmitted: {
            WalBatchAdmitted admitted;
            if (!WalBatchAdmitted::DecodeFrom(&dec, &admitted).ok() ||
                !dec.ExpectAtEnd("WAL batch-admitted record").ok()) {
              break;
            }
            max_wal_id = std::max(
                max_wal_id,
                admitted.first_record_id + admitted.clones.size() - 1);
            if (admitted.tracked) {
              receiver_.RestoreSeen(admitted.from, admitted.seq);
            }
            for (size_t i = 0; i < admitted.clones.size(); ++i) {
              const uint64_t id = admitted.first_record_id + i;
              if (id <= state.last_wal_id) continue;  // in the snapshot
              DurablePendingClone p;
              p.record_id = id;
              p.from = admitted.from;
              // Carrier rule (see WriteSnapshotNow): the unit's single seq
              // rides on member 0 only.
              p.tracked = admitted.tracked && i == 0;
              p.seq = i == 0 ? admitted.seq : 0;
              p.clone = std::move(admitted.clones[i]);
              pending.emplace(id, std::move(p));
            }
            ++stats_.replayed_wal_records;
            break;
          }
        }
      }
    }
  }
  next_wal_id_ = max_wal_id + 1;
  // The three restart paths are mutually exclusive in stats: snapshot
  // recovery and WAL replay each announce themselves above; a restart that
  // found neither (empty storage, or everything rejected as corrupt) is a
  // cold start.
  if (!have_snapshot && stats_.replayed_wal_records == replayed_before) {
    ++stats_.cold_starts;
  }

  // Re-enqueue survivors in admission order (the map is id-sorted).
  // Tracked clones were acked in the pre-crash life under the WAL's
  // ack-after-append rule; in snapshot-only mode the ack was still deferred
  // at crash time, so the drain path must commit the seq as usual.
  for (auto& [id, p] : pending) {
    ++stats_.recovered_clones;
    QueuedClone entry;
    entry.from = p.from;
    entry.tracked = p.tracked;
    entry.seq = p.seq;
    entry.clones.push_back(std::move(p.clone));
    entry.wal_id = id;
    entry.acked = p.tracked && WalEnabled();
    if (options_.admission.max_pending != 0) {
      pending_clones_.push_back(std::move(entry));
    } else {
      ProcessCloneDurable(std::move(entry.clones.front()), entry.wal_id);
    }
  }
  if (!pending_clones_.empty()) {
    stats_.queue_peak =
        std::max<uint64_t>(stats_.queue_peak, pending_clones_.size());
    ScheduleDrain();
  }
}

}  // namespace webdis::server
