#include "server/persist.h"

#include <algorithm>
#include <cstdio>

#include "serialize/encoder.h"
#include "serialize/framing.h"

#ifdef __unix__
#include <unistd.h>
#endif

namespace webdis::server {

const char* WalRecordTypeToString(WalRecordType type) {
  switch (type) {
    case WalRecordType::kCloneAdmitted:
      return "CloneAdmitted";
    case WalRecordType::kCloneCompleted:
      return "CloneCompleted";
    case WalRecordType::kTransferSeen:
      return "TransferSeen";
    case WalRecordType::kQueryTerminated:
      return "QueryTerminated";
    case WalRecordType::kBatchAdmitted:
      return "BatchAdmitted";
  }
  return "Unknown";
}

// -- WAL record payloads -----------------------------------------------------

void WalCloneAdmitted::EncodeFields(uint64_t record_id,
                                    const net::Endpoint& from, bool tracked,
                                    uint64_t seq,
                                    const query::WebQuery& clone,
                                    serialize::Encoder* enc) {
  enc->PutU64(record_id);
  enc->PutString(from.host);
  enc->PutU16(from.port);
  enc->PutBool(tracked);
  enc->PutU64(seq);
  clone.EncodeTo(enc);
}

Status WalCloneAdmitted::DecodeFrom(serialize::Decoder* dec,
                                    WalCloneAdmitted* out) {
  WEBDIS_RETURN_IF_ERROR(dec->GetU64(&out->record_id));
  WEBDIS_RETURN_IF_ERROR(dec->GetString(&out->from.host));
  WEBDIS_RETURN_IF_ERROR(dec->GetU16(&out->from.port));
  WEBDIS_RETURN_IF_ERROR(dec->GetBool(&out->tracked));
  WEBDIS_RETURN_IF_ERROR(dec->GetU64(&out->seq));
  return query::WebQuery::DecodeFrom(dec, &out->clone);
}

void WalBatchAdmitted::EncodeFields(uint64_t first_record_id,
                                    const net::Endpoint& from, bool tracked,
                                    uint64_t seq,
                                    const std::vector<query::WebQuery>& clones,
                                    serialize::Encoder* enc) {
  enc->PutU64(first_record_id);
  enc->PutString(from.host);
  enc->PutU16(from.port);
  enc->PutBool(tracked);
  enc->PutU64(seq);
  enc->PutVarint(clones.size());
  for (const query::WebQuery& clone : clones) {
    clone.EncodeTo(enc);
  }
}

Status WalBatchAdmitted::DecodeFrom(serialize::Decoder* dec,
                                    WalBatchAdmitted* out) {
  WEBDIS_RETURN_IF_ERROR(dec->GetU64(&out->first_record_id));
  WEBDIS_RETURN_IF_ERROR(dec->GetString(&out->from.host));
  WEBDIS_RETURN_IF_ERROR(dec->GetU16(&out->from.port));
  WEBDIS_RETURN_IF_ERROR(dec->GetBool(&out->tracked));
  WEBDIS_RETURN_IF_ERROR(dec->GetU64(&out->seq));
  uint64_t count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec->GetCount("admitted-batch member", 1024, /*min_bytes_per_item=*/8,
                    &count));
  if (count == 0) return Status::Corruption("empty admitted batch");
  out->clones.clear();
  for (uint64_t i = 0; i < count; ++i) {
    query::WebQuery clone;
    WEBDIS_RETURN_IF_ERROR(query::WebQuery::DecodeFrom(dec, &clone));
    out->clones.push_back(std::move(clone));
  }
  return Status::OK();
}

void WalCloneCompleted::EncodeTo(serialize::Encoder* enc) const {
  enc->PutU64(record_id);
}

Status WalCloneCompleted::DecodeFrom(serialize::Decoder* dec,
                                     WalCloneCompleted* out) {
  return dec->GetU64(&out->record_id);
}

void WalTransferSeen::EncodeTo(serialize::Encoder* enc) const {
  enc->PutString(from.host);
  enc->PutU16(from.port);
  enc->PutU64(seq);
}

Status WalTransferSeen::DecodeFrom(serialize::Decoder* dec,
                                   WalTransferSeen* out) {
  WEBDIS_RETURN_IF_ERROR(dec->GetString(&out->from.host));
  WEBDIS_RETURN_IF_ERROR(dec->GetU16(&out->from.port));
  return dec->GetU64(&out->seq);
}

void WalQueryTerminated::EncodeTo(serialize::Encoder* enc) const {
  enc->PutString(query_key);
}

Status WalQueryTerminated::DecodeFrom(serialize::Decoder* dec,
                                      WalQueryTerminated* out) {
  return dec->GetString(&out->query_key);
}

// -- WAL framing -------------------------------------------------------------

std::vector<uint8_t> EncodeWalRecord(WalRecordType type,
                                     const std::vector<uint8_t>& payload) {
  serialize::Encoder enc;
  enc.PutU8(static_cast<uint8_t>(type));
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU32(serialize::Crc32(payload));
  enc.PutRaw(payload.data(), payload.size());
  return enc.Release();
}

WalReadResult DecodeWal(const std::vector<uint8_t>& bytes) {
  constexpr size_t kRecordHeader = 9;  // u8 type + u32 length + u32 crc
  WalReadResult result;
  size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeader) break;  // torn header
    serialize::Decoder dec(bytes.data() + pos, kRecordHeader);
    uint8_t type = 0;
    uint32_t length = 0;
    uint32_t crc = 0;
    (void)dec.GetU8(&type);
    (void)dec.GetU32(&length);
    (void)dec.GetU32(&crc);
    if (type < static_cast<uint8_t>(WalRecordType::kCloneAdmitted) ||
        type > static_cast<uint8_t>(WalRecordType::kBatchAdmitted)) {
      break;  // corrupt: unknown record type
    }
    if (bytes.size() - pos - kRecordHeader < length) break;  // torn payload
    const uint8_t* payload = bytes.data() + pos + kRecordHeader;
    if (serialize::Crc32(payload, length) != crc) break;  // torn/bit-rotted
    WalRecord record;
    record.type = static_cast<WalRecordType>(type);
    record.payload.assign(payload, payload + length);
    result.records.push_back(std::move(record));
    pos += kRecordHeader + length;
  }
  if (pos < bytes.size()) {
    // Everything from the first unreadable record on is discarded: record
    // boundaries beyond it are unknowable. The ack-after-append rule makes
    // this safe only for the *final* (torn) record — hence fsync-per-append
    // is the default policy.
    result.discarded_records = 1;
    result.discarded_bytes = bytes.size() - pos;
  }
  return result;
}

// -- Snapshot codec ----------------------------------------------------------

std::vector<uint8_t> EncodeSnapshot(const DurableServerState& state) {
  serialize::Encoder body;
  body.PutU64(state.last_wal_id);
  state.log_table.EncodeTo(&body);
  body.PutVarint(state.terminated_queries.size());
  for (const std::string& key : state.terminated_queries) {
    body.PutString(key);
  }
  body.PutVarint(state.seen_transfers.size());
  for (const auto& [from, seq] : state.seen_transfers) {
    body.PutString(from.host);
    body.PutU16(from.port);
    body.PutVarint(seq);
  }
  body.PutVarint(state.pending_clones.size());
  for (const DurablePendingClone& pending : state.pending_clones) {
    body.PutU64(pending.record_id);
    body.PutString(pending.from.host);
    body.PutU16(pending.from.port);
    body.PutBool(pending.tracked);
    body.PutU64(pending.seq);
    pending.clone.EncodeTo(&body);
  }
  const std::vector<uint8_t> body_bytes = body.Release();

  serialize::Encoder out;
  out.PutU32(kSnapshotMagic);
  out.PutU8(kSnapshotVersion);
  out.PutU32(static_cast<uint32_t>(body_bytes.size()));
  out.PutU32(serialize::Crc32(body_bytes));
  out.PutRaw(body_bytes.data(), body_bytes.size());
  return out.Release();
}

Status DecodeSnapshot(const std::vector<uint8_t>& bytes,
                      DurableServerState* out) {
  if (bytes.size() < kSnapshotHeaderSize) {
    return Status::Corruption("snapshot shorter than header");
  }
  serialize::Decoder header(bytes.data(), kSnapshotHeaderSize);
  uint32_t magic = 0;
  WEBDIS_RETURN_IF_ERROR(header.GetU32(&magic));
  if (magic != kSnapshotMagic) {
    return Status::Corruption("bad snapshot magic");
  }
  uint8_t version = 0;
  WEBDIS_RETURN_IF_ERROR(header.GetU8(&version));
  if (version != kSnapshotVersion) {
    // Explicit rejection, never a silent misread: there is exactly one
    // version so far, so there is no migration path to apply. When
    // kSnapshotVersion is bumped, add the migration here and keep rejecting
    // versions newer than the binary.
    return Status::Corruption(
        "unsupported snapshot version " + std::to_string(version) +
        " (expected " + std::to_string(kSnapshotVersion) + ")");
  }
  uint32_t length = 0;
  uint32_t crc = 0;
  WEBDIS_RETURN_IF_ERROR(header.GetU32(&length));
  WEBDIS_RETURN_IF_ERROR(header.GetU32(&crc));
  if (length > kMaxSnapshotLength) {
    return Status::Corruption("snapshot length exceeds limit");
  }
  if (bytes.size() != kSnapshotHeaderSize + length) {
    return Status::Corruption("snapshot length mismatch");
  }
  const uint8_t* body = bytes.data() + kSnapshotHeaderSize;
  if (serialize::Crc32(body, length) != crc) {
    return Status::Corruption("snapshot checksum mismatch");
  }

  DurableServerState state;
  serialize::Decoder dec(body, length);
  WEBDIS_RETURN_IF_ERROR(dec.GetU64(&state.last_wal_id));
  WEBDIS_RETURN_IF_ERROR(LogTable::DecodeFrom(&dec, &state.log_table));
  uint64_t count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec.GetCount("terminated query", 10000000, /*min_bytes_per_item=*/1,
                   &count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    WEBDIS_RETURN_IF_ERROR(dec.GetString(&key));
    state.terminated_queries.push_back(std::move(key));
  }
  WEBDIS_RETURN_IF_ERROR(
      dec.GetCount("seen transfer", 10000000, /*min_bytes_per_item=*/4,
                   &count));
  for (uint64_t i = 0; i < count; ++i) {
    net::Endpoint from;
    uint64_t seq = 0;
    WEBDIS_RETURN_IF_ERROR(dec.GetString(&from.host));
    WEBDIS_RETURN_IF_ERROR(dec.GetU16(&from.port));
    WEBDIS_RETURN_IF_ERROR(dec.GetVarint(&seq));
    state.seen_transfers.emplace_back(std::move(from), seq);
  }
  WEBDIS_RETURN_IF_ERROR(
      dec.GetCount("pending clone", 1000000, /*min_bytes_per_item=*/15,
                   &count));
  for (uint64_t i = 0; i < count; ++i) {
    DurablePendingClone pending;
    WEBDIS_RETURN_IF_ERROR(dec.GetU64(&pending.record_id));
    WEBDIS_RETURN_IF_ERROR(dec.GetString(&pending.from.host));
    WEBDIS_RETURN_IF_ERROR(dec.GetU16(&pending.from.port));
    WEBDIS_RETURN_IF_ERROR(dec.GetBool(&pending.tracked));
    WEBDIS_RETURN_IF_ERROR(dec.GetU64(&pending.seq));
    WEBDIS_RETURN_IF_ERROR(
        query::WebQuery::DecodeFrom(&dec, &pending.clone));
    state.pending_clones.push_back(std::move(pending));
  }
  WEBDIS_RETURN_IF_ERROR(dec.ExpectAtEnd("snapshot body"));
  *out = std::move(state);
  return Status::OK();
}

// -- MemoryPersistBackend ----------------------------------------------------

Status MemoryPersistBackend::WriteSnapshot(const std::vector<uint8_t>& bytes) {
  snapshot_ = bytes;
  has_snapshot_ = true;
  ++stats_.snapshots;
  return Status::OK();
}

Result<std::vector<uint8_t>> MemoryPersistBackend::ReadSnapshot() {
  if (!has_snapshot_) return Status::NotFound("no snapshot");
  if (rules_.short_read_prob > 0 && rng_.Bernoulli(rules_.short_read_prob) &&
      !snapshot_.empty()) {
    ++stats_.short_reads;
    const uint64_t lost = rng_.UniformRange(1, snapshot_.size());
    return std::vector<uint8_t>(
        snapshot_.begin(),
        snapshot_.end() - static_cast<ptrdiff_t>(lost));
  }
  return snapshot_;
}

Status MemoryPersistBackend::AppendWal(const std::vector<uint8_t>& bytes) {
  wal_buffer_.insert(wal_buffer_.end(), bytes.begin(), bytes.end());
  ++stats_.appends;
  return Status::OK();
}

Status MemoryPersistBackend::SyncWal() {
  wal_.insert(wal_.end(), wal_buffer_.begin(), wal_buffer_.end());
  wal_buffer_.clear();
  ++stats_.syncs;
  return Status::OK();
}

Result<std::vector<uint8_t>> MemoryPersistBackend::ReadWal() { return wal_; }

Status MemoryPersistBackend::TruncateWal() {
  wal_.clear();
  wal_buffer_.clear();
  ++stats_.truncations;
  return Status::OK();
}

uint64_t MemoryPersistBackend::WalBytes() const {
  return wal_.size() + wal_buffer_.size();
}

void MemoryPersistBackend::OnCrash() {
  ++stats_.crashes;
  // Power-loss model: bytes never synced are simply gone.
  stats_.unsynced_bytes_lost += wal_buffer_.size();
  wal_buffer_.clear();
  // Seeded torn-write rules (all detectable by checksum on recovery).
  if (rules_.torn_wal_tail_prob > 0 && !wal_.empty() &&
      rng_.Bernoulli(rules_.torn_wal_tail_prob)) {
    ++stats_.torn_wal_tails;
    const uint64_t lost = rng_.UniformRange(
        1, std::min<uint64_t>(rules_.max_torn_bytes, wal_.size()));
    wal_.resize(wal_.size() - lost);
  }
  if (rules_.torn_snapshot_prob > 0 && has_snapshot_ &&
      !snapshot_.empty() && rng_.Bernoulli(rules_.torn_snapshot_prob)) {
    ++stats_.torn_snapshots;
    const uint64_t lost = rng_.UniformRange(1, snapshot_.size());
    snapshot_.resize(snapshot_.size() - lost);
  }
}

// -- FilePersistBackend ------------------------------------------------------

namespace {

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no file: " + path);
  out->clear();
  uint8_t buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("read failed: " + path);
  return Status::OK();
}

Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes, bool append) {
  std::FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (f == nullptr) return Status::IoError("open failed: " + path);
  Status status = Status::OK();
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    status = Status::IoError("write failed: " + path);
  }
  if (status.ok() && std::fflush(f) != 0) {
    status = Status::IoError("flush failed: " + path);
  }
#ifdef __unix__
  if (status.ok() && ::fsync(fileno(f)) != 0) {
    status = Status::IoError("fsync failed: " + path);
  }
#endif
  std::fclose(f);
  return status;
}

}  // namespace

FilePersistBackend::FilePersistBackend(std::string dir)
    : dir_(std::move(dir)) {
  std::vector<uint8_t> existing;
  if (ReadFileBytes(WalPath(), &existing).ok()) {
    wal_file_bytes_ = existing.size();
  }
}

Status FilePersistBackend::WriteSnapshot(const std::vector<uint8_t>& bytes) {
  // Write-to-temp + rename: a crash mid-write leaves the old snapshot
  // intact; rename is atomic on POSIX filesystems.
  const std::string tmp = SnapshotPath() + ".tmp";
  WEBDIS_RETURN_IF_ERROR(WriteFileBytes(tmp, bytes, /*append=*/false));
  if (std::rename(tmp.c_str(), SnapshotPath().c_str()) != 0) {
    return Status::IoError("rename failed: " + tmp);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> FilePersistBackend::ReadSnapshot() {
  std::vector<uint8_t> bytes;
  WEBDIS_RETURN_IF_ERROR(ReadFileBytes(SnapshotPath(), &bytes));
  return bytes;
}

Status FilePersistBackend::AppendWal(const std::vector<uint8_t>& bytes) {
  wal_buffer_.insert(wal_buffer_.end(), bytes.begin(), bytes.end());
  return Status::OK();
}

Status FilePersistBackend::SyncWal() {
  if (wal_buffer_.empty()) return Status::OK();
  WEBDIS_RETURN_IF_ERROR(
      WriteFileBytes(WalPath(), wal_buffer_, /*append=*/true));
  wal_file_bytes_ += wal_buffer_.size();
  wal_buffer_.clear();
  return Status::OK();
}

Result<std::vector<uint8_t>> FilePersistBackend::ReadWal() {
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(WalPath(), &bytes).ok()) {
    bytes.clear();  // no WAL yet: an empty log, not an error
  }
  return bytes;
}

Status FilePersistBackend::TruncateWal() {
  wal_buffer_.clear();
  wal_file_bytes_ = 0;
  return WriteFileBytes(WalPath(), {}, /*append=*/false);
}

uint64_t FilePersistBackend::WalBytes() const {
  return wal_file_bytes_ + wal_buffer_.size();
}

}  // namespace webdis::server
