#include "server/log_table.h"

namespace webdis::server {

pre::LogDecision LogTable::Check(const std::string& node_url,
                                 const std::string& query_key,
                                 const query::CloneState& state) {
  ++stats_.checks;
  const Key key{node_url, query_key, state.num_q};
  std::vector<pre::Pre>& logged = entries_[key];
  for (pre::Pre& existing : logged) {
    const pre::LogDecision decision =
        pre::ComparePreForLog(state.rem_pre, existing);
    switch (decision.comparison) {
      case pre::LogComparison::kDuplicate:
        ++stats_.duplicates;
        return decision;
      case pre::LogComparison::kSupersetRewrite:
        // Replace the covered entry with the wider incoming PRE
        // (Section 3.1.1 step 1), then continue with the rewrite.
        existing = state.rem_pre;
        ++stats_.superset_rewrites;
        return decision;
      case pre::LogComparison::kUnrelated:
        break;
    }
  }
  logged.push_back(state.rem_pre);
  ++stats_.new_entries;
  return pre::LogDecision{};  // kUnrelated: process normally
}

void LogTable::PurgeQuery(const std::string& query_key) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.query_key == query_key) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t LogTable::size() const {
  size_t total = 0;
  for (const auto& [key, pres] : entries_) total += pres.size();
  return total;
}

}  // namespace webdis::server
