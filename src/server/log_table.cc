#include "server/log_table.h"

namespace webdis::server {

pre::LogDecision LogTable::Check(const std::string& node_url,
                                 const std::string& query_key,
                                 const query::CloneState& state) {
  ++stats_.checks;
  const Key key{node_url, query_key, state.num_q};
  std::vector<LoggedPre>& logged = entries_[key];
  pre::LogPreForm incoming_form = pre::MakeLogPreForm(state.rem_pre);
  for (LoggedPre& existing : logged) {
    const pre::LogDecision decision =
        pre::ComparePreForLog(state.rem_pre, incoming_form, existing.form);
    switch (decision.comparison) {
      case pre::LogComparison::kDuplicate:
        ++stats_.duplicates;
        return decision;
      case pre::LogComparison::kSupersetRewrite:
        // Replace the covered entry with the wider incoming PRE
        // (Section 3.1.1 step 1), then continue with the rewrite.
        existing.pre = state.rem_pre;
        existing.form = std::move(incoming_form);
        ++stats_.superset_rewrites;
        return decision;
      case pre::LogComparison::kUnrelated:
        break;
    }
  }
  logged.push_back(LoggedPre{state.rem_pre, std::move(incoming_form)});
  ++stats_.new_entries;
  return pre::LogDecision{};  // kUnrelated: process normally
}

void LogTable::PurgeQuery(const std::string& query_key) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.query_key == query_key) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t LogTable::size() const {
  size_t total = 0;
  for (const auto& [key, pres] : entries_) total += pres.size();
  return total;
}

}  // namespace webdis::server
