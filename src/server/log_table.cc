#include "server/log_table.h"

#include "serialize/encoder.h"

namespace webdis::server {

pre::LogPreForm LogTable::CanonicalFormFor(const pre::Pre& pre) {
  serialize::Encoder enc;
  pre.EncodeTo(&enc);
  std::string memo_key(reinterpret_cast<const char*>(enc.data().data()),
                       enc.size());
  auto it = form_memo_.find(memo_key);
  if (it != form_memo_.end()) {
    ++stats_.form_memo_hits;
    return it->second;
  }
  if (form_memo_.size() >= kFormMemoMax) form_memo_.clear();
  pre::LogPreForm form = pre::MakeLogPreForm(pre);
  form_memo_.emplace(std::move(memo_key), form);
  return form;
}

pre::LogDecision LogTable::Check(const std::string& node_url,
                                 const std::string& query_key,
                                 const query::CloneState& state) {
  ++stats_.checks;
  const Key key{node_url, query_key, state.num_q};
  std::vector<LoggedPre>& logged = entries_[key];
  pre::LogPreForm incoming_form = CanonicalFormFor(state.rem_pre);
  for (LoggedPre& existing : logged) {
    const pre::LogDecision decision =
        pre::ComparePreForLog(state.rem_pre, incoming_form, existing.form);
    switch (decision.comparison) {
      case pre::LogComparison::kDuplicate:
        ++stats_.duplicates;
        return decision;
      case pre::LogComparison::kSupersetRewrite:
        // Replace the covered entry with the wider incoming PRE
        // (Section 3.1.1 step 1), then continue with the rewrite.
        existing.pre = state.rem_pre;
        existing.form = std::move(incoming_form);
        ++stats_.superset_rewrites;
        return decision;
      case pre::LogComparison::kUnrelated:
        break;
    }
  }
  logged.push_back(LoggedPre{state.rem_pre, std::move(incoming_form)});
  ++stats_.new_entries;
  return pre::LogDecision{};  // kUnrelated: process normally
}

void LogTable::PurgeQuery(const std::string& query_key) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.query_key == query_key) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t LogTable::size() const {
  size_t total = 0;
  for (const auto& [key, pres] : entries_) total += pres.size();
  return total;
}

void LogTable::EncodeTo(serialize::Encoder* enc) const {
  enc->PutVarint(entries_.size());
  for (const auto& [key, pres] : entries_) {
    enc->PutString(key.node_url);
    enc->PutString(key.query_key);
    enc->PutU32(key.num_q);
    enc->PutVarint(pres.size());
    for (const LoggedPre& logged : pres) {
      logged.pre.EncodeTo(enc);
    }
  }
}

Status LogTable::DecodeFrom(serialize::Decoder* dec, LogTable* out) {
  out->entries_.clear();
  uint64_t group_count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec->GetCount("log-table group", 10000000, /*min_bytes_per_item=*/7,
                    &group_count));
  for (uint64_t g = 0; g < group_count; ++g) {
    Key key;
    WEBDIS_RETURN_IF_ERROR(dec->GetString(&key.node_url));
    WEBDIS_RETURN_IF_ERROR(dec->GetString(&key.query_key));
    WEBDIS_RETURN_IF_ERROR(dec->GetU32(&key.num_q));
    uint64_t pre_count = 0;
    WEBDIS_RETURN_IF_ERROR(
        dec->GetCount("logged PRE", 10000000, /*min_bytes_per_item=*/1,
                      &pre_count));
    std::vector<LoggedPre> logged;
    logged.reserve(pre_count);
    for (uint64_t i = 0; i < pre_count; ++i) {
      auto pre = pre::Pre::DecodeFrom(dec);
      if (!pre.ok()) return pre.status();
      pre::LogPreForm form = pre::MakeLogPreForm(*pre);
      logged.push_back(LoggedPre{std::move(pre).value(), std::move(form)});
    }
    out->entries_[key] = std::move(logged);
  }
  return Status::OK();
}

}  // namespace webdis::server
