#ifndef WEBDIS_SERVER_PERSIST_H_
#define WEBDIS_SERVER_PERSIST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/transport.h"
#include "query/web_query.h"
#include "server/log_table.h"

namespace webdis::server {

/// Durable server state (PROTOCOL.md §8): snapshots + write-ahead log.
///
/// A crashed QueryServer loses its volatile protocol state — the log table,
/// the delivery-dedup history and the pending-clone admission queue — and
/// recovery then leans on sender retries and CHT deadline GC, which degrades
/// in-flight queries to explicit partial results. The persistence layer
/// records that state durably so Restart() brings the server back as a
/// first-class participant:
///
///   * a *snapshot* captures the full durable state at one instant, and
///   * the *WAL* records every accepted-but-unprocessed clone transfer (and
///     dedup-state commit) between snapshots, appended BEFORE the delivery
///     ack goes out (the ack-after-append rule: once a sender has seen the
///     ack and stopped retrying, the clone must be recoverable from storage
///     or it is silently lost).
///
/// Replaying the WAL on top of the latest snapshot is idempotent
/// (at-least-once): records the snapshot already folded in are skipped by
/// record id, and re-enqueued clones that were in fact processed just before
/// the crash re-report results the user site's CHT absorbs as duplicates.

// -- On-disk snapshot format -------------------------------------------------
//
//   magic    u32  'SNAP'
//   version  u8   kSnapshotVersion
//   length   u32  body byte count
//   crc      u32  CRC-32 of the body bytes
//   body     length bytes (see DurableServerState codec)
//
// A reader MUST validate magic, version and checksum before decoding: an
// unknown version or a failed checksum is an explicit rejection (the server
// falls back to cold start + WAL replay), never a silent misread.
constexpr uint32_t kSnapshotMagic = 0x50414E53;  // "SNAP" little-endian
constexpr uint8_t kSnapshotVersion = 1;
constexpr size_t kSnapshotHeaderSize = 13;
/// Defensive cap, mirroring serialize::kMaxFrameLength: a snapshot body
/// larger than this is corruption, not an allocation request.
constexpr uint32_t kMaxSnapshotLength = 256u * 1024u * 1024u;

// -- WAL record types --------------------------------------------------------
// Each record is framed as `u8 type, u32 length, u32 crc, payload` (see
// EncodeWalRecord). The payload annotations below are machine-checked by
// tools/webdis_lint.py (wal-parity): every type must keep its codec pair,
// golden byte image and PROTOCOL.md §8 entry in lockstep.
enum class WalRecordType : uint8_t {
  /// A clone transfer was admitted (queued or about to be processed). The
  /// record is appended — and, under WalFsyncPolicy::kEveryAppend, synced —
  /// before the transfer's delivery ack is sent.
  kCloneAdmitted = 1,  // payload: struct server::WalCloneAdmitted
  /// The admitted clone with this record id finished terminal processing
  /// (evaluated, shed with reports, expired, or dropped as terminated);
  /// replay must not re-enqueue it.
  kCloneCompleted = 2,  // payload: struct server::WalCloneCompleted
  /// A transfer seq was committed to the dedup history without an admitted
  /// clone (e.g. a malformed payload acked to stop the sender). Restoring
  /// it on replay keeps post-restart retransmissions re-acked, not
  /// reprocessed.
  kTransferSeen = 3,  // payload: struct server::WalTransferSeen
  /// The query was terminated (kTerminate received); a restarted server
  /// must not resurrect it from recovered clones.
  kQueryTerminated = 4,  // payload: struct server::WalQueryTerminated
  /// A batched clone envelope (PROTOCOL.md §9.2) was admitted atomically:
  /// one record covering every member, appended before the single batch
  /// ack. Members take record ids first_record_id .. first_record_id+n-1,
  /// so per-member kCloneCompleted records match individually on replay.
  kBatchAdmitted = 5,  // payload: struct server::WalBatchAdmitted
};

const char* WalRecordTypeToString(WalRecordType type);

// -- WAL record payloads -----------------------------------------------------

/// Payload of WalRecordType::kCloneAdmitted.
struct WalCloneAdmitted {
  uint64_t record_id = 0;  // per-server, monotonically increasing
  net::Endpoint from;      // sender, for the recovered dedup history
  bool tracked = false;    // carried a delivery envelope
  uint64_t seq = 0;        // transfer seq (meaningful iff tracked)
  query::WebQuery clone;

  void EncodeTo(serialize::Encoder* enc) const {
    EncodeFields(record_id, from, tracked, seq, clone, enc);
  }
  /// Field-wise encoder so the hot path can log a clone it does not own
  /// (query::WebQuery is deep-copy-only).
  static void EncodeFields(uint64_t record_id, const net::Endpoint& from,
                           bool tracked, uint64_t seq,
                           const query::WebQuery& clone,
                           serialize::Encoder* enc);
  static Status DecodeFrom(serialize::Decoder* dec, WalCloneAdmitted* out);
};

/// Payload of WalRecordType::kBatchAdmitted. One atomic admission covering
/// every member of a kCloneBatch transfer: member i owns record id
/// `first_record_id + i`. The batch shares one delivery envelope, so one
/// (from, seq) pair covers the whole unit.
struct WalBatchAdmitted {
  uint64_t first_record_id = 0;
  net::Endpoint from;
  bool tracked = false;
  uint64_t seq = 0;
  std::vector<query::WebQuery> clones;

  void EncodeTo(serialize::Encoder* enc) const {
    EncodeFields(first_record_id, from, tracked, seq, clones, enc);
  }
  /// Field-wise encoder so the hot path can log members it does not own.
  static void EncodeFields(uint64_t first_record_id, const net::Endpoint& from,
                           bool tracked, uint64_t seq,
                           const std::vector<query::WebQuery>& clones,
                           serialize::Encoder* enc);
  static Status DecodeFrom(serialize::Decoder* dec, WalBatchAdmitted* out);
};

/// Payload of WalRecordType::kCloneCompleted.
struct WalCloneCompleted {
  uint64_t record_id = 0;  // the kCloneAdmitted record this completes

  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, WalCloneCompleted* out);
};

/// Payload of WalRecordType::kTransferSeen.
struct WalTransferSeen {
  net::Endpoint from;
  uint64_t seq = 0;

  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, WalTransferSeen* out);
};

/// Payload of WalRecordType::kQueryTerminated.
struct WalQueryTerminated {
  std::string query_key;  // query::QueryId::Key()

  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, WalQueryTerminated* out);
};

// -- WAL framing -------------------------------------------------------------

/// Frames one record: `u8 type, u32 payload length, u32 payload CRC-32,
/// payload`. The per-record checksum is what makes a torn tail detectable.
std::vector<uint8_t> EncodeWalRecord(WalRecordType type,
                                     const std::vector<uint8_t>& payload);

struct WalRecord {
  WalRecordType type = WalRecordType::kCloneAdmitted;
  std::vector<uint8_t> payload;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  /// Torn or corrupt suffix: parsing stops at the first record whose frame
  /// is truncated or whose checksum fails (later offsets are unknowable).
  uint64_t discarded_records = 0;
  uint64_t discarded_bytes = 0;
};

/// Parses a raw WAL byte stream into records, tolerating a torn tail.
WalReadResult DecodeWal(const std::vector<uint8_t>& bytes);

// -- Durable state + snapshot codec ------------------------------------------

/// One admitted-but-unprocessed clone, as stored in a snapshot. Keeps its
/// WAL record id so a later kCloneCompleted still matches after the WAL was
/// compacted away beneath it.
struct DurablePendingClone {
  uint64_t record_id = 0;
  net::Endpoint from;
  bool tracked = false;
  uint64_t seq = 0;
  query::WebQuery clone;
};

/// Everything durable about one QueryServer, as moved to/from storage.
struct DurableServerState {
  /// Highest WAL record id folded into this snapshot; replay skips admitted
  /// records at or below it (they are either pending below or completed).
  uint64_t last_wal_id = 0;
  LogTable log_table;
  std::vector<std::string> terminated_queries;           // QueryId::Key()s
  std::vector<std::pair<net::Endpoint, uint64_t>> seen_transfers;
  std::vector<DurablePendingClone> pending_clones;
};

/// Serializes state into a full snapshot image (header + checksummed body).
std::vector<uint8_t> EncodeSnapshot(const DurableServerState& state);

/// Validates and decodes a snapshot image. Magic/version/length/checksum
/// failures return Corruption (version mismatch names the versions) and
/// leave *out untouched.
Status DecodeSnapshot(const std::vector<uint8_t>& bytes,
                      DurableServerState* out);

// -- Storage backends --------------------------------------------------------

/// Storage abstraction the server persists through. One backend instance
/// belongs to one server and, like the server's other state, is only
/// touched from that server's handlers (endpoint confinement) — backends
/// need no locking.
class PersistBackend {
 public:
  virtual ~PersistBackend() = default;

  /// Atomically replaces the stored snapshot (all-or-nothing on crash).
  virtual Status WriteSnapshot(const std::vector<uint8_t>& bytes) = 0;
  /// NotFound when no snapshot has been written.
  virtual Result<std::vector<uint8_t>> ReadSnapshot() = 0;
  /// Appends bytes to the WAL buffer; durable only after SyncWal (fsync).
  virtual Status AppendWal(const std::vector<uint8_t>& bytes) = 0;
  /// Makes all appended WAL bytes durable.
  virtual Status SyncWal() = 0;
  /// Reads the durable WAL bytes, possibly ending in a torn record.
  virtual Result<std::vector<uint8_t>> ReadWal() = 0;
  /// Drops the WAL (after its contents were folded into a snapshot).
  virtual Status TruncateWal() = 0;
  /// Appended WAL bytes (synced + unsynced), for size-triggered compaction.
  virtual uint64_t WalBytes() const = 0;
  /// Crash notification: models power loss (unsynced bytes vanish; seeded
  /// fault rules may additionally tear stored state). No-op by default.
  virtual void OnCrash() {}
};

/// Seeded storage-fault rules for the in-memory backend: deterministic under
/// SimNetwork, so every crash-point schedule replays byte-identically.
struct PersistFaultRules {
  uint64_t seed = 1;
  /// On crash: probability that the *synced* WAL loses 1..max_torn_bytes
  /// from its tail (a torn final write, detected by the record checksum).
  double torn_wal_tail_prob = 0.0;
  uint64_t max_torn_bytes = 24;
  /// On crash: probability that the stored snapshot loses bytes from its
  /// tail (a non-atomic snapshot writer caught mid-replace; the checksum
  /// rejects it and recovery falls back to cold start + WAL replay).
  double torn_snapshot_prob = 0.0;
  /// On read: probability that ReadSnapshot returns a truncated view (a
  /// short read; rejected by the checksum like a torn write).
  double short_read_prob = 0.0;
};

/// In-memory backend for the simulator: deterministic, fault-injectable.
class MemoryPersistBackend : public PersistBackend {
 public:
  explicit MemoryPersistBackend(PersistFaultRules rules = PersistFaultRules())
      : rules_(rules), rng_(rules.seed) {}

  Status WriteSnapshot(const std::vector<uint8_t>& bytes) override;
  Result<std::vector<uint8_t>> ReadSnapshot() override;
  Status AppendWal(const std::vector<uint8_t>& bytes) override;
  Status SyncWal() override;
  Result<std::vector<uint8_t>> ReadWal() override;
  Status TruncateWal() override;
  uint64_t WalBytes() const override;
  void OnCrash() override;

  struct Stats {
    uint64_t appends = 0;
    uint64_t syncs = 0;
    uint64_t snapshots = 0;
    uint64_t truncations = 0;
    uint64_t crashes = 0;
    uint64_t unsynced_bytes_lost = 0;  // dropped WAL-buffer bytes on crash
    uint64_t torn_wal_tails = 0;
    uint64_t torn_snapshots = 0;
    uint64_t short_reads = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  PersistFaultRules rules_;
  Rng rng_;
  bool has_snapshot_ = false;
  std::vector<uint8_t> snapshot_;
  std::vector<uint8_t> wal_;         // synced (durable) bytes
  std::vector<uint8_t> wal_buffer_;  // appended since the last sync
  Stats stats_;
};

/// File-backed backend for TCP-mode deployments: `<dir>/snapshot.bin`
/// replaced via write-to-temp + rename, `<dir>/wal.bin` appended on sync.
/// The directory must exist; existing files are picked up on construction
/// (that is the point — state outlives the process).
class FilePersistBackend : public PersistBackend {
 public:
  explicit FilePersistBackend(std::string dir);

  Status WriteSnapshot(const std::vector<uint8_t>& bytes) override;
  Result<std::vector<uint8_t>> ReadSnapshot() override;
  Status AppendWal(const std::vector<uint8_t>& bytes) override;
  Status SyncWal() override;
  Result<std::vector<uint8_t>> ReadWal() override;
  Status TruncateWal() override;
  uint64_t WalBytes() const override;
  /// A real process crash loses the user-space buffer for free; OnCrash
  /// models the same for in-process tests.
  void OnCrash() override { wal_buffer_.clear(); }

 private:
  std::string SnapshotPath() const { return dir_ + "/snapshot.bin"; }
  std::string WalPath() const { return dir_ + "/wal.bin"; }

  std::string dir_;
  std::vector<uint8_t> wal_buffer_;  // appended since the last sync
  uint64_t wal_file_bytes_ = 0;      // bytes already synced to wal.bin
};

// -- Server-facing knobs -----------------------------------------------------

enum class WalFsyncPolicy : uint8_t {
  /// Sync before every delivery ack (the ack-after-append rule holds even
  /// against power loss). The default.
  kEveryAppend,
  /// Sync only at snapshot time: cheaper, but a crash can lose acked clones
  /// appended since the last snapshot — acceptable only where the CHT
  /// deadline sweep is an acceptable backstop.
  kOnSnapshot,
};

/// Durability knobs, carried in QueryServerOptions (and so configurable
/// per-host through EngineOptions::server_overrides).
struct PersistOptions {
  /// Master switch; also requires a backend via QueryServer::SetPersistence.
  bool enabled = false;
  /// Write the WAL (ack-after-append). Off = snapshot-only mode: recovery
  /// rolls back to the last snapshot and the retry/GC layers absorb the gap.
  bool wal_enabled = true;
  /// Snapshot after this many terminally processed clones (0 = never by
  /// cadence).
  uint64_t snapshot_every_clones = 64;
  /// Snapshot (and truncate the WAL) when it exceeds this size (0 = never
  /// by size).
  uint64_t wal_compact_bytes = 256 * 1024;
  WalFsyncPolicy fsync = WalFsyncPolicy::kEveryAppend;
};

}  // namespace webdis::server

#endif  // WEBDIS_SERVER_PERSIST_H_
