#ifndef WEBDIS_SERVER_HTTP_SERVER_H_
#define WEBDIS_SERVER_HTTP_SERVER_H_

#include <string>

#include "common/status.h"
#include "net/transport.h"
#include "web/graph.h"

namespace webdis::server {

/// Well-known ports of the simulated deployment.
inline constexpr uint16_t kHttpPort = 80;
/// The "common pre-specified port number" every WEBDIS query server listens
/// on (Section 4.4).
inline constexpr uint16_t kQueryServerPort = 7000;

/// A plain document server: answers kFetchRequest with the raw HTML of a
/// local resource. Every host runs one (this is "the web"); only
/// WEBDIS-participating hosts additionally run a QueryServer. The
/// data-shipping baseline and the non-participant fallback path are built on
/// these fetches.
class HttpServer {
 public:
  /// `web` must outlive the server.
  HttpServer(std::string host, const web::WebGraph* web,
             net::Transport* transport);

  /// Binds (host, kHttpPort).
  Status Start();
  void Stop();

  uint64_t fetches_served() const { return fetches_served_; }
  uint64_t bytes_served() const { return bytes_served_; }
  uint64_t not_found_count() const { return not_found_; }

  /// Wire helpers shared with clients of the fetch protocol.
  static std::vector<uint8_t> EncodeFetchRequest(const std::string& url);
  static Status DecodeFetchRequest(const std::vector<uint8_t>& payload,
                                   std::string* url);
  struct FetchResponse {
    std::string url;
    bool found = false;
    std::string html;
  };
  static std::vector<uint8_t> EncodeFetchResponse(const FetchResponse& resp);
  static Status DecodeFetchResponse(const std::vector<uint8_t>& payload,
                                    FetchResponse* out);

 private:
  void OnMessage(const net::Endpoint& from, net::MessageType type,
                 const std::vector<uint8_t>& payload);

  std::string host_;
  const web::WebGraph* web_;
  net::Transport* transport_;
  bool started_ = false;
  uint64_t fetches_served_ = 0;
  uint64_t bytes_served_ = 0;
  uint64_t not_found_ = 0;
};

}  // namespace webdis::server

#endif  // WEBDIS_SERVER_HTTP_SERVER_H_
