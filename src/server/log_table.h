#ifndef WEBDIS_SERVER_LOG_TABLE_H_
#define WEBDIS_SERVER_LOG_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pre/log_equivalence.h"
#include "query/web_query.h"

namespace webdis::server {

/// The Node-query Log Table of Section 3.1.1. Records, per (node URL, query
/// id, num_q), the remaining-PRE states of clones that have already visited,
/// and decides for each new arrival whether it is a duplicate (purge), a
/// strict superset (replace the entry and continue with the multiple-rewrite
/// PRE), or unrelated (log it and process normally).
class LogTable {
 public:
  LogTable() = default;

  /// Per-arrival statistics.
  struct Stats {
    uint64_t checks = 0;
    uint64_t duplicates = 0;
    uint64_t superset_rewrites = 0;
    uint64_t new_entries = 0;
    /// Cross-query sharing (PROTOCOL.md §9): arrivals whose PRE
    /// canonicalization was served from the form memo instead of recomputed
    /// — batched clones of different queries often carry identical PREs.
    uint64_t form_memo_hits = 0;
  };

  /// Applies the paper's rules for a clone arriving at `node_url` in
  /// `state`. Side effects: logs/replaces entries as the rules dictate.
  pre::LogDecision Check(const std::string& node_url,
                         const std::string& query_key,
                         const query::CloneState& state);

  /// Drops every entry (the periodic purge of Section 3.1.1). An
  /// early purge can only cause duplicate recomputation, never wrong
  /// results — tested as a property. The form memo goes too: it is a
  /// derived cache with the same lifetime rules.
  void Purge() {
    entries_.clear();
    form_memo_.clear();
  }

  /// Drops entries of one query (e.g. after its termination).
  void PurgeQuery(const std::string& query_key);

  size_t size() const;
  const Stats& stats() const { return stats_; }

  /// Snapshot codec (server/persist): entries only, not the arrival
  /// counters — stats are measurement, not recoverable protocol state.
  /// Each entry serializes its PRE; the canonical LogPreForm is recomputed
  /// on load (it is a derived cache, and re-deriving it is cheaper than
  /// freezing its internal representation into the on-disk format).
  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, LogTable* out);

 private:
  struct Key {
    std::string node_url;
    std::string query_key;
    uint32_t num_q;
    bool operator<(const Key& other) const {
      if (node_url != other.node_url) return node_url < other.node_url;
      if (query_key != other.query_key) return query_key < other.query_key;
      return num_q < other.num_q;
    }
  };

  // One (node, query, num_q) can hold several unrelated PREs. Each entry
  // carries its precomputed canonical form, so an arrival canonicalizes its
  // own PRE once and every logged comparison is string compares — the old
  // path re-canonicalized both sides per logged entry (asserted equivalent
  // in pre_test).
  struct LoggedPre {
    pre::Pre pre;
    pre::LogPreForm form;
  };
  /// Canonicalizes `pre` through the memo: the wire encoding is the memo
  /// key (deterministic and cheaper to produce than CanonicalKey +
  /// DecomposeStarPrefix), so clones of *different* queries sharing a PRE
  /// canonicalize it once per purge cycle.
  pre::LogPreForm CanonicalFormFor(const pre::Pre& pre);

  std::map<Key, std::vector<LoggedPre>> entries_;
  /// Bounded memo of PRE wire encoding -> canonical form; cleared wholesale
  /// past kFormMemoMax (PREs are tiny — the bound only guards pathology).
  static constexpr size_t kFormMemoMax = 4096;
  std::map<std::string, pre::LogPreForm> form_memo_;
  Stats stats_;
};

}  // namespace webdis::server

#endif  // WEBDIS_SERVER_LOG_TABLE_H_
