#ifndef WEBDIS_SERVER_DB_CONSTRUCTOR_H_
#define WEBDIS_SERVER_DB_CONSTRUCTOR_H_

#include "html/parser.h"
#include "relational/table.h"

namespace webdis::server {

/// The Database Constructor of Section 4.4: a single pass over one parsed
/// document materializes the per-node in-memory database of virtual
/// relations —
///   DOCUMENT(url, title, text, length)   — exactly one row
///   ANCHOR(label, base, href, ltype)     — one row per hyperlink
///   RELINFON(delimiter, url, text, length) — one row per rel-infon
/// The query server builds this before evaluating a node-query and purges it
/// afterwards (Section 2.4), unless database caching is enabled
/// (footnote 3 of the paper).
relational::Database BuildNodeDatabase(const html::ParsedDocument& doc);

}  // namespace webdis::server

#endif  // WEBDIS_SERVER_DB_CONSTRUCTOR_H_
