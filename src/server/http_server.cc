#include "server/http_server.h"

#include "common/logging.h"
#include "serialize/encoder.h"

namespace webdis::server {

HttpServer::HttpServer(std::string host, const web::WebGraph* web,
                       net::Transport* transport)
    : host_(std::move(host)), web_(web), transport_(transport) {}

Status HttpServer::Start() {
  if (started_) return Status::InvalidArgument("HttpServer already started");
  const net::Endpoint endpoint{host_, kHttpPort};
  WEBDIS_RETURN_IF_ERROR(transport_->Listen(
      endpoint,
      [this](const net::Endpoint& from, net::MessageType type,
             const std::vector<uint8_t>& payload) {
        OnMessage(from, type, payload);
      }));
  started_ = true;
  return Status::OK();
}

void HttpServer::Stop() {
  if (!started_) return;
  transport_->CloseListener(net::Endpoint{host_, kHttpPort});
  started_ = false;
}

void HttpServer::OnMessage(const net::Endpoint& from, net::MessageType type,
                           const std::vector<uint8_t>& payload) {
  if (type != net::MessageType::kFetchRequest) {
    WEBDIS_LOG(kWarning) << "http server on " << host_
                         << " ignoring message of type "
                         << net::MessageTypeToString(type);
    return;
  }
  std::string url;
  if (const Status status = DecodeFetchRequest(payload, &url); !status.ok()) {
    WEBDIS_LOG(kWarning) << "bad fetch request: " << status.ToString();
    return;
  }
  FetchResponse resp;
  resp.url = url;
  const web::WebGraph::Document* doc = web_->Find(url);
  // Only serve resources actually hosted here (a real web server would not
  // proxy other sites).
  if (doc != nullptr && doc->url.host == host_) {
    resp.found = true;
    resp.html = doc->raw_html;
    ++fetches_served_;
    bytes_served_ += resp.html.size();
  } else {
    ++not_found_;
  }
  const Status send_status =
      transport_->Send(net::Endpoint{host_, kHttpPort}, from,
                       net::MessageType::kFetchResponse,
                       EncodeFetchResponse(resp));
  if (!send_status.ok()) {
    WEBDIS_LOG(kInfo) << "fetch response to " << from.ToString()
                      << " failed: " << send_status.ToString();
  }
}

std::vector<uint8_t> HttpServer::EncodeFetchRequest(const std::string& url) {
  serialize::Encoder enc;
  enc.PutString(url);
  return enc.Release();
}

Status HttpServer::DecodeFetchRequest(const std::vector<uint8_t>& payload,
                                      std::string* url) {
  serialize::Decoder dec(payload);
  WEBDIS_RETURN_IF_ERROR(dec.GetString(url));
  return dec.ExpectAtEnd("fetch request");
}

std::vector<uint8_t> HttpServer::EncodeFetchResponse(
    const FetchResponse& resp) {
  serialize::Encoder enc;
  enc.PutString(resp.url);
  enc.PutBool(resp.found);
  enc.PutString(resp.html);
  return enc.Release();
}

Status HttpServer::DecodeFetchResponse(const std::vector<uint8_t>& payload,
                                       FetchResponse* out) {
  serialize::Decoder dec(payload);
  WEBDIS_RETURN_IF_ERROR(dec.GetString(&out->url));
  WEBDIS_RETURN_IF_ERROR(dec.GetBool(&out->found));
  WEBDIS_RETURN_IF_ERROR(dec.GetString(&out->html));
  return dec.ExpectAtEnd("fetch response");
}

}  // namespace webdis::server
