#include "server/db_constructor.h"

#include "common/logging.h"

namespace webdis::server {

namespace {

using relational::Table;
using relational::Tuple;
using relational::Value;

void MustInsert(Table* table, Tuple tuple) {
  const Status status = table->Insert(std::move(tuple));
  WEBDIS_CHECK(status.ok()) << status.ToString();
}

}  // namespace

relational::Database BuildNodeDatabase(const html::ParsedDocument& doc) {
  relational::Database db;

  Table document(relational::DocumentSchema());
  MustInsert(&document,
             {Value(doc.url.ResourceKey()), Value(doc.title), Value(doc.text),
              Value(static_cast<int64_t>(doc.length))});
  db.Put(std::string(relational::kDocumentRelation), std::move(document));

  Table anchor(relational::AnchorSchema());
  for (const html::ParsedAnchor& a : doc.anchors) {
    MustInsert(&anchor,
               {Value(a.label), Value(doc.url.ResourceKey()),
                Value(a.resolved.ResourceKey()),
                Value(std::string(1, html::LinkTypeSymbol(a.ltype)))});
  }
  db.Put(std::string(relational::kAnchorRelation), std::move(anchor));

  Table relinfon(relational::RelInfonSchema());
  for (const html::ParsedRelInfon& r : doc.rel_infons) {
    MustInsert(&relinfon,
               {Value(r.delimiter), Value(doc.url.ResourceKey()),
                Value(r.text), Value(static_cast<int64_t>(r.text.size()))});
  }
  db.Put(std::string(relational::kRelInfonRelation), std::move(relinfon));

  return db;
}

}  // namespace webdis::server
