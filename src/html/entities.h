#ifndef WEBDIS_HTML_ENTITIES_H_
#define WEBDIS_HTML_ENTITIES_H_

#include <string>
#include <string_view>

namespace webdis::html {

/// Decodes the HTML 2.0 character entities that appear in the synthetic web
/// (&amp; &lt; &gt; &quot; &nbsp; and numeric &#NN;). Unknown entities are
/// passed through verbatim, as browsers of the paper's era did.
std::string DecodeEntities(std::string_view s);

/// Escapes &, <, > and " for embedding text into generated HTML.
std::string EscapeForHtml(std::string_view s);

}  // namespace webdis::html

#endif  // WEBDIS_HTML_ENTITIES_H_
