#ifndef WEBDIS_HTML_TOKENIZER_H_
#define WEBDIS_HTML_TOKENIZER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace webdis::html {

/// HTML token kinds produced by the tokenizer. The grammar targeted is
/// HTML 2.0 (RFC 1866) — the paper's node model assumes documents of that
/// era — but the tokenizer is tolerant of malformed input: it never fails,
/// it only degrades (real web pages were already broken in 1999).
enum class TokenKind : uint8_t {
  kText,      // character data between tags
  kStartTag,  // <name attr="v" ...> ; self_closing for <name/>
  kEndTag,    // </name>
  kComment,   // <!-- ... -->
  kDoctype,   // <!DOCTYPE ...> and other <! ...> declarations
};

/// One attribute on a start tag. Names are lower-cased; values are raw
/// (entity decoding is the parser's job).
struct Attribute {
  std::string name;
  std::string value;
};

/// A single HTML token.
struct Token {
  TokenKind kind = TokenKind::kText;
  std::string text;                   // text / comment body / tag name
  std::vector<Attribute> attributes;  // start tags only
  bool self_closing = false;          // start tags only

  /// Returns the attribute value, or empty string_view if absent.
  std::string_view Attr(std::string_view name) const;
};

/// Tokenizes an entire HTML document. Never fails; unterminated constructs
/// are emitted as best-effort text.
std::vector<Token> Tokenize(std::string_view html);

}  // namespace webdis::html

#endif  // WEBDIS_HTML_TOKENIZER_H_
