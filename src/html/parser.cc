#include "html/parser.h"

#include <algorithm>
#include <cstddef>

#include "common/strings.h"
#include "html/entities.h"
#include "html/tokenizer.h"

namespace webdis::html {

namespace {

constexpr std::string_view kContainerTags[] = {
    "b", "i", "em", "strong", "h1", "h2", "h3", "h4", "h5", "h6",
    "p", "li", "td", "th", "pre", "center", "font", "blockquote",
};

constexpr std::string_view kSeparatorTags[] = {"hr", "br"};

bool IsContainerTag(std::string_view name) {
  return std::find(std::begin(kContainerTags), std::end(kContainerTags),
                   name) != std::end(kContainerTags);
}

bool IsSeparatorTag(std::string_view name) {
  return std::find(std::begin(kSeparatorTags), std::end(kSeparatorTags),
                   name) != std::end(kSeparatorTags);
}

/// An open container element awaiting its end tag.
struct OpenElement {
  std::string tag;
  size_t text_offset;  // offset into the raw text accumulator when opened
};

}  // namespace

ParsedDocument ParseDocument(const Url& url, std::string_view html) {
  ParsedDocument doc;
  doc.url = url;
  doc.length = html.size();

  const std::vector<Token> tokens = Tokenize(html);

  std::string text;             // raw visible text accumulator
  std::vector<OpenElement> open_stack;
  bool in_title = false;
  bool in_skip = false;         // inside <script>/<style>
  std::string skip_tag;
  bool in_anchor = false;
  ParsedAnchor current_anchor;
  std::string anchor_label;
  // Per-separator-tag mark of where the current block began.
  size_t hr_mark = 0;
  size_t br_mark = 0;

  for (const Token& token : tokens) {
    switch (token.kind) {
      case TokenKind::kText: {
        if (in_skip) break;
        if (in_title) {
          doc.title += DecodeEntities(token.text);
          break;
        }
        text += DecodeEntities(token.text);
        if (in_anchor) anchor_label += DecodeEntities(token.text);
        break;
      }
      case TokenKind::kStartTag: {
        const std::string& tag = token.text;
        if (in_skip) break;
        if (tag == "script" || tag == "style") {
          in_skip = true;
          skip_tag = tag;
          break;
        }
        if (tag == "title") {
          in_title = true;
          break;
        }
        if (tag == "a") {
          const std::string_view href = token.Attr("href");
          if (!href.empty()) {
            in_anchor = true;
            anchor_label.clear();
            current_anchor = ParsedAnchor();
            current_anchor.href = std::string(href);
          }
          break;
        }
        // Frames and image-map areas hyperlink documents exactly like
        // anchors did in 1999-era sites; they enter the ANCHOR relation
        // with the tag name as label.
        if (tag == "frame" || tag == "iframe" || tag == "area") {
          const std::string_view href =
              tag == "area" ? token.Attr("href") : token.Attr("src");
          if (!href.empty()) {
            ParsedAnchor anchor;
            anchor.href = std::string(href);
            anchor.label = "[" + tag + "]";
            auto resolved = ResolveUrl(url, anchor.href);
            if (resolved.ok()) {
              anchor.resolved = std::move(resolved).value();
              anchor.ltype = ClassifyLink(url, anchor.resolved);
              doc.anchors.push_back(std::move(anchor));
            }
          }
          break;
        }
        if (IsSeparatorTag(tag)) {
          size_t& mark = (tag == "hr") ? hr_mark : br_mark;
          const std::string block =
              CollapseWhitespace(std::string_view(text).substr(mark));
          if (!block.empty()) {
            doc.rel_infons.push_back({tag, block});
          }
          mark = text.size();
          // <br> also ends the running line for <hr> purposes? No: the
          // paper's hr rel-infon spans the visual block above the rule,
          // which may contain line breaks, so hr_mark is left untouched.
          break;
        }
        if (IsContainerTag(tag) && !token.self_closing) {
          open_stack.push_back({tag, text.size()});
        }
        break;
      }
      case TokenKind::kEndTag: {
        const std::string& tag = token.text;
        if (in_skip) {
          if (tag == skip_tag) in_skip = false;
          break;
        }
        if (tag == "title") {
          in_title = false;
          break;
        }
        if (tag == "a") {
          if (in_anchor) {
            in_anchor = false;
            current_anchor.label = CollapseWhitespace(anchor_label);
            auto resolved = ResolveUrl(url, current_anchor.href);
            if (resolved.ok()) {
              current_anchor.resolved = std::move(resolved).value();
              current_anchor.ltype =
                  ClassifyLink(url, current_anchor.resolved);
              doc.anchors.push_back(std::move(current_anchor));
            }
            // Unresolvable hrefs (e.g. "mailto:") are dropped: they are not
            // part of the paper's web graph model.
          }
          break;
        }
        if (IsContainerTag(tag)) {
          // Pop to the innermost matching open element, discarding
          // mis-nested entries (tolerant recovery).
          for (size_t i = open_stack.size(); i > 0; --i) {
            if (open_stack[i - 1].tag == tag) {
              const std::string body = CollapseWhitespace(
                  std::string_view(text).substr(open_stack[i - 1].text_offset));
              if (!body.empty()) {
                doc.rel_infons.push_back({tag, body});
              }
              open_stack.erase(open_stack.begin() +
                                   static_cast<std::ptrdiff_t>(i - 1),
                               open_stack.end());
              break;
            }
          }
        }
        break;
      }
      case TokenKind::kComment:
      case TokenKind::kDoctype:
        break;
    }
  }

  doc.title = CollapseWhitespace(doc.title);
  doc.text = CollapseWhitespace(text);
  return doc;
}

}  // namespace webdis::html
