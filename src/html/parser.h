#ifndef WEBDIS_HTML_PARSER_H_
#define WEBDIS_HTML_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "html/url.h"

namespace webdis::html {

/// One hyperlink extracted from a document: the source of a row in the
/// paper's ANCHOR(label, base, href, ltype) virtual relation.
struct ParsedAnchor {
  std::string label;   // hypertext between <a> and </a>, entity-decoded
  std::string href;    // raw href attribute as written
  Url resolved;        // href resolved against the document URL
  LinkType ltype = LinkType::kGlobal;
};

/// One rel-infon (Section 2.2): a homogeneous region of a document delimited
/// by tag information, e.g. the text inside <b>...</b>, or — for separator
/// tags such as <hr> — the text block preceding the separator.
struct ParsedRelInfon {
  std::string delimiter;  // lower-cased tag name ("b", "hr", "h1", ...)
  std::string text;       // entity-decoded, whitespace-collapsed
};

/// Complete parse of one HTML document: everything the DatabaseConstructor
/// needs to materialize the DOCUMENT / ANCHOR / RELINFON virtual relations.
struct ParsedDocument {
  Url url;
  std::string title;               // <title> content
  std::string text;                // visible text, whitespace-collapsed
  uint64_t length = 0;             // raw HTML byte count
  std::vector<ParsedAnchor> anchors;
  std::vector<ParsedRelInfon> rel_infons;
};

/// Parses `html` as the contents of the resource at `url`. Tolerant: never
/// fails on malformed HTML (unclosed tags, bad nesting, unterminated
/// comments); the result is simply the best-effort extraction.
///
/// Rel-infon rules:
///  * container tags (b, i, em, strong, h1..h6, p, li, td, th, pre, center,
///    font, blockquote): the enclosed text is one rel-infon per element;
///  * separator tags (hr, br): the text accumulated since the previous
///    same-tag separator (or document start) is the rel-infon — this is what
///    makes the paper's "convener succeeded by a horizontal line" query work.
ParsedDocument ParseDocument(const Url& url, std::string_view html);

}  // namespace webdis::html

#endif  // WEBDIS_HTML_PARSER_H_
