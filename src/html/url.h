#ifndef WEBDIS_HTML_URL_H_
#define WEBDIS_HTML_URL_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace webdis::html {

/// Hyperlink categories from Section 2 of the paper. A link is Interior if
/// its destination is within the same web resource (a fragment), Local if on
/// the same server, Global if on a different server. Null denotes the
/// resource itself and appears only inside PREs, never on real anchors.
enum class LinkType : uint8_t {
  kInterior = 0,  // 'I'
  kLocal = 1,     // 'L'
  kGlobal = 2,    // 'G'
  kNull = 3,      // 'N'
};

/// Single-character symbol used in PRE syntax: I, L, G, N.
char LinkTypeSymbol(LinkType t);

/// Parses a PRE link symbol. Fails on anything but I/L/G/N.
Result<LinkType> LinkTypeFromSymbol(char c);

/// A parsed absolute URL: scheme://host/path#fragment. Query strings are not
/// modeled (the paper's web model has none).
struct Url {
  std::string scheme = "http";
  std::string host;
  std::string path = "/";      // always begins with '/'
  std::string fragment;        // without '#'

  /// Canonical string form. Omits the scheme-default port and empty
  /// fragment.
  std::string ToString() const;

  /// The URL without its fragment — identifies the web resource (Node).
  std::string ResourceKey() const;

  bool operator==(const Url& other) const {
    return scheme == other.scheme && host == other.host &&
           path == other.path && fragment == other.fragment;
  }
};

/// Parses an absolute URL. Accepts "host/path" without a scheme for
/// convenience (scheme defaults to http). Fails on empty host.
Result<Url> ParseUrl(std::string_view s);

/// Resolves `href` against `base` per the subset of RFC 1808 the synthetic
/// web needs: absolute URLs, host-relative ("/a/b"), document-relative
/// ("b.html", "../c.html") and pure fragments ("#sec").
Result<Url> ResolveUrl(const Url& base, std::string_view href);

/// Classifies the link from document `base` to destination `dest`:
/// same-resource+fragment => Interior, same host => Local, else Global.
LinkType ClassifyLink(const Url& base, const Url& dest);

}  // namespace webdis::html

#endif  // WEBDIS_HTML_URL_H_
