#include "html/url.h"

#include <vector>

#include "common/strings.h"

namespace webdis::html {

char LinkTypeSymbol(LinkType t) {
  switch (t) {
    case LinkType::kInterior:
      return 'I';
    case LinkType::kLocal:
      return 'L';
    case LinkType::kGlobal:
      return 'G';
    case LinkType::kNull:
      return 'N';
  }
  return '?';
}

Result<LinkType> LinkTypeFromSymbol(char c) {
  switch (c) {
    case 'I':
      return LinkType::kInterior;
    case 'L':
      return LinkType::kLocal;
    case 'G':
      return LinkType::kGlobal;
    case 'N':
      return LinkType::kNull;
    default:
      return Status::ParseError(
          StringPrintf("unknown link symbol '%c'", c));
  }
}

std::string Url::ToString() const {
  std::string out = scheme;
  out += "://";
  out += host;
  out += path;
  if (!fragment.empty()) {
    out += "#";
    out += fragment;
  }
  return out;
}

std::string Url::ResourceKey() const {
  std::string out = scheme;
  out += "://";
  out += host;
  out += path;
  return out;
}

namespace {

/// Collapses "." and ".." segments; keeps the path absolute.
std::string NormalizePath(std::string_view path) {
  std::vector<std::string> stack;
  for (const std::string& seg : Split(path, '/')) {
    if (seg.empty() || seg == ".") continue;
    if (seg == "..") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    stack.push_back(seg);
  }
  std::string out = "/";
  out += Join(stack, "/");
  // Preserve a trailing slash for directory-style paths.
  if (!stack.empty() && EndsWith(path, "/")) out += "/";
  return out;
}

}  // namespace

Result<Url> ParseUrl(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty URL");
  Url url;
  const size_t scheme_pos = s.find("://");
  if (scheme_pos != std::string_view::npos) {
    url.scheme = std::string(s.substr(0, scheme_pos));
    s = s.substr(scheme_pos + 3);
  }
  const size_t frag_pos = s.find('#');
  if (frag_pos != std::string_view::npos) {
    url.fragment = std::string(s.substr(frag_pos + 1));
    s = s.substr(0, frag_pos);
  }
  const size_t path_pos = s.find('/');
  if (path_pos == std::string_view::npos) {
    url.host = std::string(s);
    // Note: assign via a temporary to dodge a GCC 12 -Wrestrict false
    // positive (PR105329) on const char* assignment after the move above.
    url.path = std::string("/");
  } else {
    url.host = std::string(s.substr(0, path_pos));
    url.path = NormalizePath(s.substr(path_pos));
  }
  if (url.host.empty()) {
    return Status::ParseError("URL has empty host");
  }
  return url;
}

Result<Url> ResolveUrl(const Url& base, std::string_view href) {
  href = Trim(href);
  if (href.empty()) {
    return Status::ParseError("empty href");
  }
  // Pure fragment: same resource.
  if (href[0] == '#') {
    Url url = base;
    url.fragment = std::string(href.substr(1));
    return url;
  }
  // Absolute URL.
  if (href.find("://") != std::string_view::npos) {
    return ParseUrl(href);
  }
  Url url;
  url.scheme = base.scheme;
  url.host = base.host;
  std::string_view path_part = href;
  const size_t frag_pos = href.find('#');
  if (frag_pos != std::string_view::npos) {
    url.fragment = std::string(href.substr(frag_pos + 1));
    path_part = href.substr(0, frag_pos);
  }
  if (path_part.empty()) {
    url.path = base.path;
  } else if (path_part[0] == '/') {
    url.path = NormalizePath(path_part);
  } else {
    // Document-relative: resolve against the base directory.
    const size_t last_slash = base.path.rfind('/');
    std::string combined = base.path.substr(0, last_slash + 1);
    combined += std::string(path_part);
    url.path = NormalizePath(combined);
  }
  return url;
}

LinkType ClassifyLink(const Url& base, const Url& dest) {
  if (base.host == dest.host && base.path == dest.path) {
    return LinkType::kInterior;
  }
  if (base.host == dest.host) {
    return LinkType::kLocal;
  }
  return LinkType::kGlobal;
}

}  // namespace webdis::html
