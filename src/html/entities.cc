#include "html/entities.h"

#include <cctype>
#include <cstdint>

namespace webdis::html {

namespace {

struct NamedEntity {
  const char* name;
  char value;
};

constexpr NamedEntity kEntities[] = {
    {"amp", '&'}, {"lt", '<'},   {"gt", '>'},
    {"quot", '"'}, {"apos", '\''}, {"nbsp", ' '},
};

}  // namespace

std::string DecodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] != '&') {
      out.push_back(s[i++]);
      continue;
    }
    const size_t semi = s.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 10) {
      out.push_back(s[i++]);
      continue;
    }
    const std::string_view body = s.substr(i + 1, semi - i - 1);
    bool decoded = false;
    if (!body.empty() && body[0] == '#') {
      uint32_t code = 0;
      bool valid = body.size() > 1;
      for (size_t j = 1; j < body.size(); ++j) {
        if (!std::isdigit(static_cast<unsigned char>(body[j]))) {
          valid = false;
          break;
        }
        code = code * 10 + static_cast<uint32_t>(body[j] - '0');
        if (code > 0x10FFFF) {
          valid = false;
          break;
        }
      }
      if (valid && code > 0 && code < 128) {
        out.push_back(static_cast<char>(code));
        decoded = true;
      } else if (valid) {
        out.push_back('?');  // non-ASCII: placeholder, like 1990s terminals
        decoded = true;
      }
    } else {
      for (const NamedEntity& e : kEntities) {
        if (body == e.name) {
          out.push_back(e.value);
          decoded = true;
          break;
        }
      }
    }
    if (decoded) {
      i = semi + 1;
    } else {
      out.push_back(s[i++]);
    }
  }
  return out;
}

std::string EscapeForHtml(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace webdis::html
