#include "html/tokenizer.h"

#include <cctype>

#include "common/strings.h"

namespace webdis::html {

std::string_view Token::Attr(std::string_view name) const {
  for (const Attribute& a : attributes) {
    if (a.name == name) return a.value;
  }
  return {};
}

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}

/// Parses attributes from the inside of a tag (after the name, before '>').
void ParseAttributes(std::string_view s, Token* token) {
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i >= s.size()) break;
    if (s[i] == '/') {
      token->self_closing = true;
      ++i;
      continue;
    }
    // Attribute name.
    const size_t name_start = i;
    while (i < s.size() && IsNameChar(s[i])) ++i;
    if (i == name_start) {
      ++i;  // skip junk byte
      continue;
    }
    Attribute attr;
    attr.name = ToLower(s.substr(name_start, i - name_start));
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i < s.size() && s[i] == '=') {
      ++i;
      while (i < s.size() &&
             std::isspace(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
      if (i < s.size() && (s[i] == '"' || s[i] == '\'')) {
        const char quote = s[i++];
        const size_t val_start = i;
        while (i < s.size() && s[i] != quote) ++i;
        attr.value = std::string(s.substr(val_start, i - val_start));
        if (i < s.size()) ++i;  // closing quote
      } else {
        const size_t val_start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])) &&
               s[i] != '/') {
          ++i;
        }
        attr.value = std::string(s.substr(val_start, i - val_start));
      }
    }
    token->attributes.push_back(std::move(attr));
  }
}

}  // namespace

std::vector<Token> Tokenize(std::string_view html) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < html.size()) {
    if (html[i] != '<') {
      const size_t start = i;
      while (i < html.size() && html[i] != '<') ++i;
      Token t;
      t.kind = TokenKind::kText;
      t.text = std::string(html.substr(start, i - start));
      tokens.push_back(std::move(t));
      continue;
    }
    // Comment.
    if (html.substr(i).starts_with("<!--")) {
      const size_t end = html.find("-->", i + 4);
      Token t;
      t.kind = TokenKind::kComment;
      if (end == std::string_view::npos) {
        t.text = std::string(html.substr(i + 4));
        i = html.size();
      } else {
        t.text = std::string(html.substr(i + 4, end - i - 4));
        i = end + 3;
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Declaration (<!DOCTYPE ...>).
    if (i + 1 < html.size() && html[i + 1] == '!') {
      const size_t end = html.find('>', i);
      Token t;
      t.kind = TokenKind::kDoctype;
      if (end == std::string_view::npos) {
        t.text = std::string(html.substr(i + 2));
        i = html.size();
      } else {
        t.text = std::string(html.substr(i + 2, end - i - 2));
        i = end + 1;
      }
      tokens.push_back(std::move(t));
      continue;
    }
    const size_t end = html.find('>', i);
    if (end == std::string_view::npos) {
      // Unterminated tag: emit the rest as text.
      Token t;
      t.kind = TokenKind::kText;
      t.text = std::string(html.substr(i));
      tokens.push_back(std::move(t));
      break;
    }
    std::string_view inside = html.substr(i + 1, end - i - 1);
    i = end + 1;
    const bool is_end = !inside.empty() && inside[0] == '/';
    if (is_end) inside = inside.substr(1);
    // Tag name.
    size_t j = 0;
    while (j < inside.size() && IsNameChar(inside[j])) ++j;
    if (j == 0) {
      // "<>" or "< junk": treat as literal text.
      Token t;
      t.kind = TokenKind::kText;
      t.text = "<" + std::string(inside) + ">";
      tokens.push_back(std::move(t));
      continue;
    }
    Token t;
    t.kind = is_end ? TokenKind::kEndTag : TokenKind::kStartTag;
    t.text = ToLower(inside.substr(0, j));
    if (!is_end) {
      ParseAttributes(inside.substr(j), &t);
    }
    tokens.push_back(std::move(t));
  }
  return tokens;
}

}  // namespace webdis::html
