#include "web/mutation.h"

#include <algorithm>

#include "common/strings.h"

namespace webdis::web {

namespace {

/// The anchor text MutationPlan emits; RemoveLink searches for the href
/// attribute only, so it also strips anchors a generator produced.
std::string AnchorHtml(const std::string& target_url) {
  return "<li><a href=\"" + target_url + "\">churned link</a></li>";
}

}  // namespace

void MutationPlan::Add(Mutation m) {
  auto it = std::upper_bound(
      mutations_.begin() + static_cast<ptrdiff_t>(applied_), mutations_.end(),
      m.at, [](SimTime t, const Mutation& other) { return t < other.at; });
  mutations_.insert(it, std::move(m));
}

std::vector<SimTime> MutationPlan::PendingTimes() const {
  std::vector<SimTime> times;
  for (size_t i = applied_; i < mutations_.size(); ++i) {
    if (times.empty() || times.back() != mutations_[i].at) {
      times.push_back(mutations_[i].at);
    }
  }
  return times;
}

std::vector<Mutation> MutationPlan::ApplyDue(WebGraph* web, SimTime now) {
  std::vector<Mutation> batch;
  bool bumped = false;
  while (applied_ < mutations_.size() && mutations_[applied_].at <= now) {
    const Mutation& m = mutations_[applied_];
    ++applied_;
    if (!bumped) {
      // One epoch per batch: spawned documents below are born into the new
      // epoch, so queries pinned earlier never see them (§10.3).
      web->AdvanceEpoch();
      ++stats_.epochs_advanced;
      bumped = true;
    }
    switch (m.kind) {
      case Mutation::Kind::kEditPage: {
        const WebGraph::Document* doc = web->Find(m.url);
        if (doc == nullptr) {
          ++stats_.skipped;
          continue;
        }
        std::string html = doc->raw_html + "\n<p>" + m.html + "</p>";
        if (!web->UpdateDocument(m.url, std::move(html)).ok()) {
          ++stats_.skipped;
          continue;
        }
        ++stats_.pages_edited;
        break;
      }
      case Mutation::Kind::kAddLink: {
        const WebGraph::Document* doc = web->Find(m.url);
        if (doc == nullptr) {
          ++stats_.skipped;
          continue;
        }
        std::string html = doc->raw_html + "\n" + AnchorHtml(m.target_url);
        if (!web->UpdateDocument(m.url, std::move(html)).ok()) {
          ++stats_.skipped;
          continue;
        }
        ++stats_.links_added;
        break;
      }
      case Mutation::Kind::kRemoveLink: {
        const WebGraph::Document* doc = web->Find(m.url);
        if (doc == nullptr) {
          ++stats_.skipped;
          continue;
        }
        const std::string needle = "<a href=\"" + m.target_url + "\"";
        std::string html = doc->raw_html;
        const size_t start = html.find(needle);
        if (start == std::string::npos) {
          ++stats_.skipped;
          continue;
        }
        size_t end = html.find("</a>", start);
        end = end == std::string::npos ? html.size() : end + 4;
        html.erase(start, end - start);
        if (!web->UpdateDocument(m.url, std::move(html)).ok()) {
          ++stats_.skipped;
          continue;
        }
        ++stats_.links_removed;
        break;
      }
      case Mutation::Kind::kSpawnSite: {
        if (!web->AddDocument(m.url, m.html).ok()) {
          ++stats_.skipped;
          continue;
        }
        ++stats_.sites_spawned;
        break;
      }
      case Mutation::Kind::kRetireSite: {
        if (!web->RetireHost(m.host).ok()) {
          ++stats_.skipped;
          continue;
        }
        ++stats_.sites_retired;
        break;
      }
    }
    batch.push_back(m);
  }
  return batch;
}

MutationPlan MutationPlan::Random(const WebGraph& web,
                                  const RandomOptions& opts) {
  MutationPlan plan;
  Rng rng(opts.seed);
  const std::vector<std::string> urls = web.AllUrls();
  std::vector<std::string> hosts = web.Hosts();
  const auto protectd = [&](const std::string& h) {
    return std::find(opts.protected_hosts.begin(), opts.protected_hosts.end(),
                     h) != opts.protected_hosts.end();
  };
  hosts.erase(std::remove_if(hosts.begin(), hosts.end(), protectd),
              hosts.end());
  const auto pick_time = [&] {
    return static_cast<SimTime>(rng.UniformRange(
        static_cast<uint64_t>(opts.window_start),
        static_cast<uint64_t>(opts.window_end)));
  };

  if (urls.empty()) return plan;
  for (int i = 0; i < opts.edits; ++i) {
    Mutation m;
    m.kind = Mutation::Kind::kEditPage;
    m.at = pick_time();
    m.url = rng.Pick(urls);
    m.html = StringPrintf("churn edit %d token%llu", i,
                          static_cast<unsigned long long>(rng.Uniform(1000)));
    plan.Add(std::move(m));
  }
  for (int i = 0; i < opts.link_adds; ++i) {
    Mutation m;
    m.kind = Mutation::Kind::kAddLink;
    m.at = pick_time();
    m.url = rng.Pick(urls);
    m.target_url = rng.Pick(urls);
    plan.Add(std::move(m));
  }
  for (int i = 0; i < opts.link_removes; ++i) {
    // Remove a link we first add ourselves, so the anchor format is known;
    // scheduled strictly after the add when possible.
    Mutation add;
    add.kind = Mutation::Kind::kAddLink;
    add.at = pick_time();
    add.url = rng.Pick(urls);
    add.target_url = rng.Pick(urls);
    Mutation remove;
    remove.kind = Mutation::Kind::kRemoveLink;
    remove.at = std::max(add.at + 1, pick_time());
    remove.url = add.url;
    remove.target_url = add.target_url;
    plan.Add(std::move(add));
    plan.Add(std::move(remove));
  }
  for (int i = 0; i < opts.spawns; ++i) {
    Mutation spawn;
    spawn.kind = Mutation::Kind::kSpawnSite;
    spawn.at = pick_time();
    const std::string host =
        StringPrintf("spawn%d-s%llu.example", i,
                     static_cast<unsigned long long>(opts.seed));
    spawn.url = "http://" + host + "/index.html";
    spawn.html = StringPrintf(
        "<html><head><title>Spawned site %d</title></head>"
        "<body><p>born of churn seed %llu</p></body></html>",
        i, static_cast<unsigned long long>(opts.seed));
    // Pair with a link from an existing page so the new site is reachable
    // to queries pinned at or after the spawn epoch.
    Mutation link;
    link.kind = Mutation::Kind::kAddLink;
    link.at = spawn.at;
    link.url = rng.Pick(urls);
    link.target_url = spawn.url;
    plan.Add(std::move(spawn));
    plan.Add(std::move(link));
  }
  for (int i = 0; i < opts.retires && !hosts.empty(); ++i) {
    Mutation m;
    m.kind = Mutation::Kind::kRetireSite;
    m.at = pick_time();
    const size_t idx = static_cast<size_t>(rng.Uniform(hosts.size()));
    m.host = hosts[idx];
    hosts.erase(hosts.begin() + static_cast<ptrdiff_t>(idx));
    plan.Add(std::move(m));
  }
  return plan;
}

}  // namespace webdis::web
