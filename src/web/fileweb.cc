#include "web/fileweb.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace webdis::web {

namespace fs = std::filesystem;

namespace {

bool IsHtmlFile(const fs::path& path) {
  const std::string ext = ToLower(path.extension().string());
  // Extension-less files are common for web documents ("/Labs", "/people")
  // and are treated as HTML; anything with a non-HTML extension is skipped.
  return ext.empty() || ext == ".html" || ext == ".htm";
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError(
        StringPrintf("cannot open %s", path.string().c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

/// Derives the URL for a file relative to its host directory:
/// "index.html" leaves map to their directory URL.
std::string UrlFor(const std::string& host, const fs::path& relative) {
  std::string path = "/";
  const fs::path parent = relative.parent_path();
  if (!parent.empty()) {
    path += parent.generic_string() + "/";
  }
  const std::string filename = relative.filename().string();
  if (ToLower(filename) != "index.html" && ToLower(filename) != "index.htm") {
    path += filename;
  }
  return "http://" + host + path;
}

}  // namespace

Result<LoadStats> LoadWebFromDirectory(const std::string& root_dir,
                                       WebGraph* web) {
  std::error_code ec;
  if (!fs::is_directory(root_dir, ec)) {
    return Status::NotFound(
        StringPrintf("'%s' is not a directory", root_dir.c_str()));
  }
  LoadStats stats;
  for (const fs::directory_entry& host_entry :
       fs::directory_iterator(root_dir, ec)) {
    if (ec) {
      return Status::IoError(
          StringPrintf("reading %s: %s", root_dir.c_str(),
                       ec.message().c_str()));
    }
    if (!host_entry.is_directory()) {
      ++stats.files_skipped;
      continue;
    }
    const std::string host = host_entry.path().filename().string();
    ++stats.hosts;
    for (const fs::directory_entry& entry :
         fs::recursive_directory_iterator(host_entry.path(), ec)) {
      if (ec) {
        return Status::IoError(StringPrintf(
            "reading %s: %s", host_entry.path().string().c_str(),
            ec.message().c_str()));
      }
      if (!entry.is_regular_file()) continue;
      if (!IsHtmlFile(entry.path())) {
        ++stats.files_skipped;
        continue;
      }
      std::string html;
      WEBDIS_ASSIGN_OR_RETURN(html, ReadFile(entry.path()));
      const fs::path relative =
          fs::relative(entry.path(), host_entry.path());
      WEBDIS_RETURN_IF_ERROR(
          web->AddDocument(UrlFor(host, relative), std::move(html)));
      ++stats.documents_loaded;
    }
  }
  if (stats.documents_loaded == 0) {
    return Status::NotFound(StringPrintf(
        "no HTML documents under '%s' (expected <root>/<host>/<file>.html)",
        root_dir.c_str()));
  }
  return stats;
}

Result<size_t> SaveWebToDirectory(const WebGraph& web,
                                  const std::string& root_dir) {
  // Detect documents whose URL path is also a directory prefix of another
  // document (e.g. "/lab" and "/lab/projects") — those cannot map onto a
  // filesystem where a name is either a file or a directory.
  const std::vector<std::string> urls = web.AllUrls();
  for (const std::string& url : urls) {
    const std::string prefix = url + "/";
    for (const std::string& other : urls) {
      if (other.size() > prefix.size() &&
          other.compare(0, prefix.size(), prefix) == 0) {
        return Status::InvalidArgument(StringPrintf(
            "'%s' is both a document and a path prefix of '%s'; such webs "
            "cannot be exported to a directory tree",
            url.c_str(), other.c_str()));
      }
    }
  }
  size_t written = 0;
  for (const std::string& url : urls) {
    const WebGraph::Document* doc = web.Find(url);
    std::string path = doc->url.path;
    if (path.empty() || path.back() == '/') path += "index.html";
    const fs::path file = fs::path(root_dir) / doc->url.host /
                          fs::path(path.substr(1));  // drop leading '/'
    std::error_code ec;
    fs::create_directories(file.parent_path(), ec);
    if (ec) {
      return Status::IoError(StringPrintf(
          "mkdir %s: %s", file.parent_path().string().c_str(),
          ec.message().c_str()));
    }
    std::ofstream out(file, std::ios::binary);
    if (!out) {
      return Status::IoError(
          StringPrintf("cannot write %s", file.string().c_str()));
    }
    out << doc->raw_html;
    if (!out.good()) {
      return Status::IoError(
          StringPrintf("write failed for %s", file.string().c_str()));
    }
    ++written;
  }
  if (written == 0) {
    return Status::InvalidArgument("web has no documents to save");
  }
  return written;
}

}  // namespace webdis::web
