#ifndef WEBDIS_WEB_GRAPH_H_
#define WEBDIS_WEB_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "html/parser.h"

namespace webdis::web {

/// The simulated Web: a set of HTML resources keyed by URL, partitioned
/// across hosts (sites). This substitutes for the live campus web the paper
/// evaluated on — all protocol behaviour depends only on the hyperlink graph
/// and document contents, which this class controls deterministically.
class WebGraph {
 public:
  /// One web resource (Node in the paper's model).
  struct Document {
    html::Url url;
    std::string raw_html;
    html::ParsedDocument parsed;  // parse is cached at insertion
    /// Monotonic edit counter, bumped by UpdateDocument. The cross-query
    /// result cache (PROTOCOL.md §9.1) keys on it: a cached node-query
    /// result is valid only for the exact version it was computed against.
    uint64_t version = 1;
    /// §10.3: the web epoch this document first existed in. Documents
    /// present at construction carry epoch 1; spawned documents carry the
    /// epoch current at spawn time, so servers can hide them from queries
    /// pinned to an earlier epoch.
    uint64_t born_epoch = 1;
  };

  WebGraph() = default;
  WebGraph(WebGraph&&) = default;
  WebGraph& operator=(WebGraph&&) = default;
  WebGraph(const WebGraph&) = delete;
  WebGraph& operator=(const WebGraph&) = delete;

  /// Parses and stores a document. Fails on an unparsable URL or duplicate
  /// resource.
  Status AddDocument(std::string_view url, std::string html);

  /// Replaces an existing document's contents, re-parses, and bumps its
  /// version stamp. Fails if the URL names no stored resource.
  Status UpdateDocument(std::string_view url, std::string html);

  /// §10: removes one document for good. Fails if the URL names no stored
  /// resource. Later Finds return nullptr — from a query's view the node
  /// is superseded.
  Status RemoveDocument(std::string_view url);

  /// §10.2: retires a whole site — removes every document on `host` and
  /// records the host as permanently gone (HostRetired distinguishes "never
  /// existed" from "retired mid-run" for verdict classification). Fails if
  /// the host has no documents and was not previously retired.
  Status RetireHost(std::string_view host);

  /// True if RetireHost(host) ran.
  bool HostRetired(std::string_view host) const;

  /// §10.1: the current web epoch, starting at 1 for the frozen pre-churn
  /// web. A MutationPlan bumps it once per applied mutation batch; queries
  /// submitted under epoch E pin E and never see documents born later.
  uint64_t epoch() const { return epoch_; }

  /// Advances the epoch by one and returns the new value.
  uint64_t AdvanceEpoch() { return ++epoch_; }

  /// §10.4 oracle support: when enabled, every document body is recorded
  /// per (resource key, version) — including versions later overwritten or
  /// removed — so a test oracle can re-evaluate a node exactly as it stood
  /// at a report's stamped version. Off by default (benches pay nothing).
  void EnableHistory();

  /// The recorded body for (url, version), or nullptr when history is off
  /// or the pair was never recorded.
  const std::string* HistoricalHtml(std::string_view url,
                                    uint64_t version) const;

  /// Looks up by resource key (URL without fragment); nullptr if absent.
  const Document* Find(std::string_view url) const;

  /// True if the URL names a stored resource.
  bool Has(std::string_view url) const;

  /// All resource keys in insertion-independent (sorted) order.
  std::vector<std::string> AllUrls() const;

  /// All hosts, sorted.
  std::vector<std::string> Hosts() const;

  /// Resource keys of documents on one host, sorted.
  std::vector<std::string> UrlsOnHost(std::string_view host) const;

  size_t num_documents() const { return docs_.size(); }

  /// Sum of raw HTML sizes — what a data-shipping engine would download in
  /// the worst case.
  size_t TotalHtmlBytes() const;

 private:
  std::map<std::string, Document, std::less<>> docs_;  // key: ResourceKey
  std::set<std::string, std::less<>> retired_hosts_;
  uint64_t epoch_ = 1;
  bool history_enabled_ = false;
  std::map<std::pair<std::string, uint64_t>, std::string> history_;
};

}  // namespace webdis::web

#endif  // WEBDIS_WEB_GRAPH_H_
