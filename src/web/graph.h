#ifndef WEBDIS_WEB_GRAPH_H_
#define WEBDIS_WEB_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "html/parser.h"

namespace webdis::web {

/// The simulated Web: a set of HTML resources keyed by URL, partitioned
/// across hosts (sites). This substitutes for the live campus web the paper
/// evaluated on — all protocol behaviour depends only on the hyperlink graph
/// and document contents, which this class controls deterministically.
///
/// Memory representation (DESIGN.md §8 "Web scale & memory representation"):
/// URL keys and host names live once in an arena-backed string-interning
/// pool; the document table and the per-host secondary index store 4-byte
/// interned ids and arena views, never `std::string` copies. Documents may
/// be *lazy*: added as (url, generator-aux) pairs and materialized — HTML
/// rendered, parsed, cached — on first `Find`. Materialization is memoized,
/// thread-safe (lock-free compare-exchange publication, safe under the
/// parallel stepper's concurrent partitions), and deterministic, so a lazy
/// web behaves byte-identically to an eager one while holding 10⁵–10⁶
/// documents in tens of bytes each until they are actually fetched.
class WebGraph {
 public:
  /// One web resource (Node in the paper's model).
  struct Document {
    html::Url url;
    std::string raw_html;
    html::ParsedDocument parsed;  // parse is cached at materialization
    /// Monotonic edit counter, bumped by UpdateDocument. The cross-query
    /// result cache (PROTOCOL.md §9.1) keys on it: a cached node-query
    /// result is valid only for the exact version it was computed against.
    uint64_t version = 1;
    /// §10.3: the web epoch this document first existed in. Documents
    /// present at construction carry epoch 1; spawned documents carry the
    /// epoch current at spawn time, so servers can hide them from queries
    /// pinned to an earlier epoch.
    uint64_t born_epoch = 1;
  };

  /// Renders the HTML body of a lazy document on first fetch. `key` is the
  /// document's resource key; the two aux words are whatever the registrar
  /// stashed in AddLazyDocument (web/synth.cc stores captured RNG states,
  /// so regeneration replays the exact draws of an eager build).
  using PageGenerator = std::function<std::string(
      std::string_view key, uint64_t aux0, uint64_t aux1)>;

  WebGraph() = default;
  // Hand-written: the materialization atomics delete the implicit moves.
  // Deque moves steal nodes whole, so entry addresses (and the arena views
  // in the indexes) survive a move intact.
  WebGraph(WebGraph&& other) noexcept;
  WebGraph& operator=(WebGraph&& other) noexcept;
  WebGraph(const WebGraph&) = delete;
  WebGraph& operator=(const WebGraph&) = delete;
  ~WebGraph();

  /// Parses and stores a document eagerly. Fails on an unparsable URL or
  /// duplicate resource.
  Status AddDocument(std::string_view url, std::string html);

  /// Installs the generator lazy documents render through. Must be set
  /// before the first lazy Find; one function serves the whole graph (per-
  /// document state rides in the aux words, keeping entries compact).
  void SetPageGenerator(PageGenerator generator);

  /// Registers a document whose HTML is produced by the page generator on
  /// first fetch. Fails on an unparsable URL or duplicate resource.
  Status AddLazyDocument(std::string_view url, uint64_t aux0, uint64_t aux1);

  /// Replaces an existing document's contents, re-parses, and bumps its
  /// version stamp (materializing it first if still lazy). Fails if the URL
  /// names no stored resource.
  Status UpdateDocument(std::string_view url, std::string html);

  /// §10: removes one document for good. Fails if the URL names no stored
  /// resource. Later Finds return nullptr — from a query's view the node
  /// is superseded.
  Status RemoveDocument(std::string_view url);

  /// §10.2: retires a whole site — removes every document on `host` and
  /// records the host as permanently gone (HostRetired distinguishes "never
  /// existed" from "retired mid-run" for verdict classification). Fails if
  /// the host has no documents and was not previously retired.
  Status RetireHost(std::string_view host);

  /// True if RetireHost(host) ran.
  bool HostRetired(std::string_view host) const;

  /// §10.1: the current web epoch, starting at 1 for the frozen pre-churn
  /// web. A MutationPlan bumps it once per applied mutation batch; queries
  /// submitted under epoch E pin E and never see documents born later.
  uint64_t epoch() const { return epoch_; }

  /// Advances the epoch by one and returns the new value.
  uint64_t AdvanceEpoch() { return ++epoch_; }

  /// §10.4 oracle support: when enabled, every document body is recorded
  /// per (resource key, version) — including versions later overwritten or
  /// removed — so a test oracle can re-evaluate a node exactly as it stood
  /// at a report's stamped version. Off by default (benches pay nothing).
  /// Materializes every lazy document (history needs the bodies), so enable
  /// it only on oracle-scale webs.
  void EnableHistory();

  /// The recorded body for (url, version), or nullptr when history is off
  /// or the pair was never recorded.
  const std::string* HistoricalHtml(std::string_view url,
                                    uint64_t version) const;

  /// Looks up by resource key (URL without fragment); nullptr if absent.
  /// Materializes a lazy document on first call (memoized; safe from
  /// concurrent stepper partitions).
  const Document* Find(std::string_view url) const;

  /// True if the URL names a stored resource. Never materializes.
  bool Has(std::string_view url) const;

  /// All resource keys in insertion-independent (sorted) order.
  std::vector<std::string> AllUrls() const;

  /// All hosts, sorted.
  std::vector<std::string> Hosts() const;

  /// Resource keys of documents on one host, sorted. Served from the
  /// per-host secondary index: O(log hosts + k), never a full-table scan.
  std::vector<std::string> UrlsOnHost(std::string_view host) const;

  size_t num_documents() const { return live_count_; }

  /// Documents whose HTML is currently materialized (eager adds plus lazy
  /// first-fetches) — the working-set observability counter for the lazy
  /// representation.
  size_t num_materialized() const {
    return materialized_.load(std::memory_order_relaxed);
  }

  /// Sum of raw HTML sizes — what a data-shipping engine would download in
  /// the worst case. Materializes every lazy document; meaningful on
  /// baseline-scale webs only.
  size_t TotalHtmlBytes() const;

  /// Approximate resident footprint of the table machinery itself (interner
  /// arena, document entries, index nodes) — excludes materialized document
  /// bodies. The numerator of the at-rest bytes-per-document bench gate.
  size_t ApproxTableBytes() const;

 private:
  /// Table slot: everything the graph knows about a document before (and
  /// besides) its materialized body. ~64 bytes, URL stored as interned ids.
  struct DocEntry {
    uint32_t key_id = common::StringInterner::kInvalidId;
    uint32_t host_id = common::StringInterner::kInvalidId;
    uint64_t born_epoch = 1;
    uint64_t aux0 = 0;  // PageGenerator parameters (lazy entries)
    uint64_t aux1 = 0;
    bool lazy = false;
    /// Materialized body, published with a release CAS on first fetch;
    /// readers acquire-load. Mutable: materialization is a memoization,
    /// observable only through the const Find path.
    mutable std::atomic<Document*> doc{nullptr};
  };

  /// Common head of AddDocument / AddLazyDocument: parses the URL (into
  /// `parsed_out`), interns the key/host, appends the entry, and wires both
  /// indexes. Returns the new entry.
  Result<DocEntry*> AddEntry(std::string_view url, html::Url* parsed_out);
  /// Renders, parses, and publishes a lazy entry's Document (memoized).
  Document* Materialize(const DocEntry& entry) const;
  /// Looks an entry up by resource key; nullptr if absent.
  const DocEntry* EntryFor(std::string_view url) const;
  /// Unlinks one entry from both indexes and frees its document.
  void EraseEntry(uint32_t index);

  common::StringInterner strings_;
  std::deque<DocEntry> entries_;  // stable addresses; tombstoned on erase
  // -- arena-backed document tables ------------------------------------
  // webdis-lint: interned-tables-begin
  // Keys are views into the interner arena and values are interned ids /
  // entry indexes — never std::string copies (enforced by the
  // web-interned-tables lint rule).
  std::map<std::string_view, uint32_t> by_key_;  // resource key -> entry
  std::map<std::string_view, std::map<std::string_view, uint32_t>>
      host_index_;  // host -> (resource key -> entry), the per-host index
  std::set<uint32_t> retired_hosts_;  // interned host ids
  // webdis-lint: interned-tables-end
  size_t live_count_ = 0;
  mutable std::atomic<size_t> materialized_{0};
  PageGenerator generator_;
  uint64_t epoch_ = 1;
  bool history_enabled_ = false;
  /// Opt-in oracle storage (tests only — full bodies by design, exempt from
  /// the interned-tables rule).
  std::map<std::pair<std::string, uint64_t>, std::string> history_;
};

}  // namespace webdis::web

#endif  // WEBDIS_WEB_GRAPH_H_
