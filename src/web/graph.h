#ifndef WEBDIS_WEB_GRAPH_H_
#define WEBDIS_WEB_GRAPH_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "html/parser.h"

namespace webdis::web {

/// The simulated Web: a set of HTML resources keyed by URL, partitioned
/// across hosts (sites). This substitutes for the live campus web the paper
/// evaluated on — all protocol behaviour depends only on the hyperlink graph
/// and document contents, which this class controls deterministically.
class WebGraph {
 public:
  /// One web resource (Node in the paper's model).
  struct Document {
    html::Url url;
    std::string raw_html;
    html::ParsedDocument parsed;  // parse is cached at insertion
    /// Monotonic edit counter, bumped by UpdateDocument. The cross-query
    /// result cache (PROTOCOL.md §9.1) keys on it: a cached node-query
    /// result is valid only for the exact version it was computed against.
    uint64_t version = 1;
  };

  WebGraph() = default;
  WebGraph(WebGraph&&) = default;
  WebGraph& operator=(WebGraph&&) = default;
  WebGraph(const WebGraph&) = delete;
  WebGraph& operator=(const WebGraph&) = delete;

  /// Parses and stores a document. Fails on an unparsable URL or duplicate
  /// resource.
  Status AddDocument(std::string_view url, std::string html);

  /// Replaces an existing document's contents, re-parses, and bumps its
  /// version stamp. Fails if the URL names no stored resource.
  Status UpdateDocument(std::string_view url, std::string html);

  /// Looks up by resource key (URL without fragment); nullptr if absent.
  const Document* Find(std::string_view url) const;

  /// True if the URL names a stored resource.
  bool Has(std::string_view url) const;

  /// All resource keys in insertion-independent (sorted) order.
  std::vector<std::string> AllUrls() const;

  /// All hosts, sorted.
  std::vector<std::string> Hosts() const;

  /// Resource keys of documents on one host, sorted.
  std::vector<std::string> UrlsOnHost(std::string_view host) const;

  size_t num_documents() const { return docs_.size(); }

  /// Sum of raw HTML sizes — what a data-shipping engine would download in
  /// the worst case.
  size_t TotalHtmlBytes() const;

 private:
  std::map<std::string, Document, std::less<>> docs_;  // key: ResourceKey
};

}  // namespace webdis::web

#endif  // WEBDIS_WEB_GRAPH_H_
