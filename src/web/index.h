#ifndef WEBDIS_WEB_INDEX_H_
#define WEBDIS_WEB_INDEX_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "web/graph.h"

namespace webdis::web {

/// A small inverted index over a WebGraph: word -> sorted URLs whose title
/// or body text contains the word. Implements the paper's future-work item
/// of sourcing StartNodes from "existing search-indices" instead of user
/// domain knowledge (Section 1.1 / 7.1).
class SearchIndex {
 public:
  /// Builds the index by scanning every document's parsed title and text.
  explicit SearchIndex(const WebGraph& web);

  /// URLs of documents containing the (lower-cased) word. Empty if none.
  std::vector<std::string> Lookup(std::string_view word) const;

  /// URLs containing ALL of the given words (conjunctive query).
  std::vector<std::string> LookupAll(
      const std::vector<std::string>& words) const;

  size_t num_terms() const { return postings_.size(); }

 private:
  std::map<std::string, std::vector<std::string>, std::less<>> postings_;
};

}  // namespace webdis::web

#endif  // WEBDIS_WEB_INDEX_H_
