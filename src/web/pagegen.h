#ifndef WEBDIS_WEB_PAGEGEN_H_
#define WEBDIS_WEB_PAGEGEN_H_

#include <string>
#include <vector>

namespace webdis::web {

/// Declarative description of a synthetic HTML page; RenderHtml turns it
/// into period-appropriate HTML 2.0-ish markup that the webdis HTML parser
/// (and any 1999 browser) understands.
struct PageSpec {
  struct LinkSpec {
    std::string href;
    std::string label;
  };
  /// A section rendered as <h2>heading</h2><p>body</p>.
  struct SectionSpec {
    std::string heading;
    std::string body;
  };

  std::string title;
  std::vector<std::string> paragraphs;       // <p> blocks
  std::vector<SectionSpec> sections;
  std::vector<LinkSpec> links;               // rendered as a <ul> of <a>
  /// Text blocks each terminated by a horizontal rule — the construct behind
  /// the paper's `relinfon r such that r.delimiter = "hr"` query.
  std::vector<std::string> hr_blocks;
  /// Bold call-outs, one <b> element each (rel-infons with delimiter "b").
  std::vector<std::string> bold_notes;
};

/// Renders the page as HTML.
std::string RenderHtml(const PageSpec& spec);

}  // namespace webdis::web

#endif  // WEBDIS_WEB_PAGEGEN_H_
