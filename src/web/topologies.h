#ifndef WEBDIS_WEB_TOPOLOGIES_H_
#define WEBDIS_WEB_TOPOLOGIES_H_

#include <string>
#include <vector>

#include "web/graph.h"

namespace webdis::web {

/// A paper-figure scenario: the web plus the DISQL query the figure
/// discusses and its StartNode.
struct Scenario {
  WebGraph web;
  std::string disql;
  std::string start_url;
  /// URLs playing each role in the figure (for assertions in tests/benches).
  std::vector<std::string> pure_router_urls;
  std::vector<std::string> server_router_urls;
  std::vector<std::string> dead_end_urls;
};

/// Figure 1: web traversal for Q = S G·(G|L) q1 (G|L) q2 over 8 nodes.
/// Nodes 1–3 act as PureRouters, 4–8 as ServerRouters; node 4 acts twice
/// (once for q1, once for q2); node 7 is a dead-end (fails q1).
/// URL scheme: http://site<k>.example/node<k> for node k.
Scenario BuildFig1Scenario();

/// Figure 5: same query shape; node 4 is visited five times (a–e) along
/// different paths; visits c, d, e arrive in the *same* state, so the
/// Node-query Log Table suppresses two of the three q2 recomputations.
Scenario BuildFig5Scenario();

/// The campus web of Section 5 / Figures 7–8: the CSA department homepage,
/// its Laboratories page (title contains "lab"), lab homepages one global
/// link away, and convener names inside hr-delimited rel-infons within one
/// local link of each lab homepage. Extra non-matching pages provide
/// dead-ends. The DISQL query is the paper's Example Query 2; the expected
/// result rows are those of Figure 8.
struct CampusScenario {
  WebGraph web;
  std::string disql;
  std::string start_url;
  /// The (d1.url, convener-name-fragment) pairs of Figure 8.
  std::vector<std::pair<std::string, std::string>> expected_conveners;
};
CampusScenario BuildCampusScenario();

}  // namespace webdis::web

#endif  // WEBDIS_WEB_TOPOLOGIES_H_
