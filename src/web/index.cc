#include "web/index.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/strings.h"

namespace webdis::web {

namespace {

/// Splits text into lower-cased alphanumeric words.
std::vector<std::string> Words(std::string_view text) {
  std::vector<std::string> out;
  std::string word;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      word.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!word.empty()) {
      out.push_back(std::move(word));
      word.clear();
    }
  }
  if (!word.empty()) out.push_back(std::move(word));
  return out;
}

}  // namespace

SearchIndex::SearchIndex(const WebGraph& web) {
  std::map<std::string, std::set<std::string>> building;
  for (const std::string& url : web.AllUrls()) {
    const WebGraph::Document* doc = web.Find(url);
    for (const std::string& word : Words(doc->parsed.title)) {
      building[word].insert(url);
    }
    for (const std::string& word : Words(doc->parsed.text)) {
      building[word].insert(url);
    }
  }
  for (auto& [word, urls] : building) {
    postings_.emplace(word,
                      std::vector<std::string>(urls.begin(), urls.end()));
  }
}

std::vector<std::string> SearchIndex::Lookup(std::string_view word) const {
  auto it = postings_.find(ToLower(word));
  return it == postings_.end() ? std::vector<std::string>{} : it->second;
}

std::vector<std::string> SearchIndex::LookupAll(
    const std::vector<std::string>& words) const {
  if (words.empty()) return {};
  std::vector<std::string> result = Lookup(words[0]);
  for (size_t i = 1; i < words.size() && !result.empty(); ++i) {
    const std::vector<std::string> next = Lookup(words[i]);
    std::vector<std::string> merged;
    std::set_intersection(result.begin(), result.end(), next.begin(),
                          next.end(), std::back_inserter(merged));
    result = std::move(merged);
  }
  return result;
}

}  // namespace webdis::web
