#include "web/synth.h"

#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "web/pagegen.h"

namespace webdis::web {

namespace {

/// Small vocabulary for filler text; deliberately avoids the planted
/// keywords so selectivity is controlled exactly by the plant probabilities.
constexpr std::string_view kVocabulary[] = {
    "research", "system",   "network", "server",  "archive", "project",
    "group",    "seminar",  "student", "faculty", "report",  "annual",
    "index",    "document", "page",    "result",  "method",  "design",
    "study",    "campus",   "gamma",   "delta",   "epsilon", "theta",
};

std::string FillerParagraph(Rng* rng, int words) {
  constexpr size_t kVocabSize = std::size(kVocabulary);
  std::string out;
  for (int w = 0; w < words; ++w) {
    if (w > 0) out += " ";
    out += kVocabulary[rng->Uniform(kVocabSize)];
  }
  return out;
}

/// Performs one document's generator draws and builds its page spec. This is
/// the single source of truth for per-document draw order: the eager build,
/// the lazy build pass (which discards the spec but must advance `rng`
/// through the same data-dependent structure draws), and lazy first-fetch
/// replay all run it, so the three paths cannot drift apart.
///
/// With want_text=false the filler paragraphs are not generated; `text_rng`
/// is advanced past them in O(1) (each word costs exactly one draw), which
/// is what makes the lazy build pass cheap at 10⁵–10⁶ documents.
PageSpec BuildPageSpec(const SynthWebOptions& options, int site, int doc,
                       Rng* rng, Rng* text_rng, bool want_text) {
  PageSpec spec;
  const bool title_hit = rng->Bernoulli(options.title_keyword_prob);
  const bool body_hit = rng->Bernoulli(options.body_keyword_prob);
  spec.title = StringPrintf(
      "%sdocument %d on site %d",
      title_hit ? std::string(kTitleKeyword).append(" ").c_str() : "",
      doc, site);
  if (want_text) {
    for (int p = 0; p < options.filler_paragraphs; ++p) {
      spec.paragraphs.push_back(
          FillerParagraph(text_rng, options.words_per_paragraph));
    }
  } else {
    text_rng->Skip(static_cast<uint64_t>(options.filler_paragraphs) *
                   static_cast<uint64_t>(options.words_per_paragraph));
  }
  spec.hr_blocks.push_back(body_hit
                               ? std::string(kBodyKeyword) + " marker block"
                               : "plain marker block");
  // Local links: to other documents on this site (never self).
  for (int l = 0; l < options.local_links_per_doc; ++l) {
    if (options.docs_per_site < 2) break;
    int target = doc;
    while (target == doc) {
      target = static_cast<int>(
          rng->Uniform(static_cast<uint64_t>(options.docs_per_site)));
    }
    spec.links.push_back({SynthUrl(site, target), "local link"});
  }
  // Global links: to documents on other sites.
  for (int g = 0; g < options.global_links_per_doc; ++g) {
    if (options.num_sites < 2) break;
    int target_site = site;
    while (target_site == site) {
      target_site = static_cast<int>(
          rng->Uniform(static_cast<uint64_t>(options.num_sites)));
    }
    const int target_doc = static_cast<int>(
        rng->Uniform(static_cast<uint64_t>(options.docs_per_site)));
    spec.links.push_back({SynthUrl(target_site, target_doc), "global link"});
  }
  return spec;
}

/// Recovers (site, doc) from a synthetic resource key.
bool ParseSynthKey(std::string_view key, int* site, int* doc) {
  const std::string copy(key);  // sscanf needs NUL termination
  return std::sscanf(copy.c_str(), "http://site%d.example/doc%d", site,
                     doc) == 2;
}

}  // namespace

std::string SynthHost(int site) {
  return StringPrintf("site%d.example", site);
}

std::string SynthUrl(int site, int doc) {
  return StringPrintf("http://site%d.example/doc%d", site, doc);
}

WebGraph GenerateSynthWeb(const SynthWebOptions& options) {
  WEBDIS_CHECK(options.num_sites > 0);
  WEBDIS_CHECK(options.docs_per_site > 0);
  WebGraph web;
  if (options.lazy_pages) {
    // First-fetch replay: resume both streams from the states captured
    // below and redo this document's draws, text included.
    web.SetPageGenerator([options](std::string_view key, uint64_t aux0,
                                   uint64_t aux1) {
      int site = 0;
      int doc = 0;
      WEBDIS_CHECK(ParseSynthKey(key, &site, &doc));
      Rng rng = Rng::FromState(aux0);
      Rng text_rng = Rng::FromState(aux1);
      return RenderHtml(
          BuildPageSpec(options, site, doc, &rng, &text_rng,
                        /*want_text=*/true));
    });
  }
  // Structure/keyword draws and filler-text draws come from independent
  // streams so changing document *size* never changes the link graph or
  // which documents match (T8 holds answers fixed while pages grow).
  Rng rng(options.seed);
  Rng text_rng(options.seed ^ 0x9E3779B97F4A7C15ULL);

  for (int site = 0; site < options.num_sites; ++site) {
    for (int doc = 0; doc < options.docs_per_site; ++doc) {
      // Captured before this document's draws; a lazy page re-runs the
      // generator from exactly here, so it renders byte-identical to the
      // eager build no matter which documents were fetched before it.
      const uint64_t structure_state = rng.State();
      const uint64_t text_state = text_rng.State();
      if (options.lazy_pages) {
        // Advance both streams past this document without rendering.
        (void)BuildPageSpec(options, site, doc, &rng, &text_rng,
                            /*want_text=*/false);
        const Status status = web.AddLazyDocument(
            SynthUrl(site, doc), structure_state, text_state);
        WEBDIS_CHECK(status.ok()) << status.ToString();
      } else {
        PageSpec spec = BuildPageSpec(options, site, doc, &rng, &text_rng,
                                      /*want_text=*/true);
        const Status status =
            web.AddDocument(SynthUrl(site, doc), RenderHtml(spec));
        WEBDIS_CHECK(status.ok()) << status.ToString();
      }
    }
  }
  return web;
}

}  // namespace webdis::web
