#ifndef WEBDIS_WEB_FILEWEB_H_
#define WEBDIS_WEB_FILEWEB_H_

#include <string>

#include "common/status.h"
#include "web/graph.h"

namespace webdis::web {

/// Loads a WebGraph from a directory tree of real HTML files, so WEBDIS can
/// run over content a downstream user actually has. Layout convention:
///
///   <root>/<host>/<path...>          ->  http://<host>/<path...>
///   <root>/<host>/index.html         ->  http://<host>/
///   <root>/<host>/<dir>/index.html   ->  http://<host>/<dir>/
///
/// Only files with an .html or .htm extension are loaded; everything else
/// is skipped (the paper's node model covers HTML resources). Relative
/// hrefs inside the documents resolve against the derived URLs, so a
/// self-contained site on disk becomes a correctly linked web.
struct LoadStats {
  size_t documents_loaded = 0;
  size_t files_skipped = 0;
  size_t hosts = 0;
};

/// Loads every host directory under `root_dir` into `web`. Fails if the
/// directory does not exist or a document fails to insert (e.g. duplicate
/// URL); already-inserted documents remain in `web`.
Result<LoadStats> LoadWebFromDirectory(const std::string& root_dir,
                                       WebGraph* web);

/// The inverse: dumps every document of `web` as
/// `<root>/<host>/<path...>` (directory-style URLs become index.html), so
/// generated webs can be exported, inspected in a browser, versioned, and
/// round-tripped through LoadWebFromDirectory. Creates directories as
/// needed; fails on I/O errors.
Result<size_t> SaveWebToDirectory(const WebGraph& web,
                                  const std::string& root_dir);

}  // namespace webdis::web

#endif  // WEBDIS_WEB_FILEWEB_H_
