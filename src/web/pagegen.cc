#include "web/pagegen.h"

#include "html/entities.h"

namespace webdis::web {

std::string RenderHtml(const PageSpec& spec) {
  using html::EscapeForHtml;
  std::string out;
  out += "<!DOCTYPE HTML PUBLIC \"-//IETF//DTD HTML 2.0//EN\">\n";
  out += "<html>\n<head>\n<title>" + EscapeForHtml(spec.title) +
         "</title>\n</head>\n<body>\n";
  out += "<h1>" + EscapeForHtml(spec.title) + "</h1>\n";
  for (const std::string& p : spec.paragraphs) {
    out += "<p>" + EscapeForHtml(p) + "</p>\n";
  }
  for (const PageSpec::SectionSpec& s : spec.sections) {
    out += "<h2>" + EscapeForHtml(s.heading) + "</h2>\n";
    out += "<p>" + EscapeForHtml(s.body) + "</p>\n";
  }
  for (const std::string& b : spec.bold_notes) {
    out += "<b>" + EscapeForHtml(b) + "</b>\n";
  }
  if (!spec.hr_blocks.empty()) {
    // A leading rule isolates the first block, so each hr-delimited
    // rel-infon contains exactly its own block text (cf. Figure 8, where the
    // convener rel-infon is just "CONVENER <name>").
    out += "<hr>\n";
    for (const std::string& block : spec.hr_blocks) {
      out += EscapeForHtml(block) + "\n<hr>\n";
    }
  }
  if (!spec.links.empty()) {
    out += "<ul>\n";
    for (const PageSpec::LinkSpec& link : spec.links) {
      out += "<li><a href=\"" + link.href + "\">" +
             EscapeForHtml(link.label) + "</a></li>\n";
    }
    out += "</ul>\n";
  }
  out += "</body>\n</html>\n";
  return out;
}

}  // namespace webdis::web
