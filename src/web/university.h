#ifndef WEBDIS_WEB_UNIVERSITY_H_
#define WEBDIS_WEB_UNIVERSITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "web/graph.h"

namespace webdis::web {

/// Parameters of the hierarchical "university" web — a scaled-up version of
/// the paper's Section 5 campus: one university homepage, D department
/// sites, L labs per department (each lab its own site, one global link
/// from the department's Labs page), and per-lab people/projects pages.
/// Conveners sit in hr-delimited rel-infons within one local link of the
/// lab homepage — exactly the shape Example Query 2 traverses — and a
/// configurable fraction of links rot (floating links) for the maintenance
/// application.
struct UniversityOptions {
  uint64_t seed = 7;
  int departments = 4;
  int labs_per_department = 3;
  /// Extra filler pages per department site (course pages etc.).
  int filler_pages_per_department = 4;
  /// Probability that a lab's convener sits on the lab homepage itself
  /// (like the System Software Lab in Figure 8) rather than on /people.
  double convener_on_homepage_prob = 0.25;
  /// Probability that a filler page contains a floating link.
  double floating_link_prob = 0.2;
  /// Body paragraphs per page (era-realistic pages are a few KB of prose;
  /// this is what data shipping must download and query shipping does not).
  int paragraphs_per_page = 4;
  int words_per_paragraph = 60;
};

/// The generated university plus ground truth for assertions.
struct UniversityWeb {
  WebGraph web;
  std::string root_url;  // the university homepage
  /// Every (document URL, convener name) pair planted in the web.
  std::vector<std::pair<std::string, std::string>> conveners;
  /// Every floating (dangling) href planted.
  std::vector<std::string> floating_links;
  /// The Example-Query-2 analogue over this web, starting at a department
  /// homepage reached from the root: find each department's Labs page, then
  /// every convener within one local link of each lab homepage.
  std::string convener_disql;
};

UniversityWeb GenerateUniversityWeb(const UniversityOptions& options);

}  // namespace webdis::web

#endif  // WEBDIS_WEB_UNIVERSITY_H_
