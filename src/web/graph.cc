#include "web/graph.h"

#include <memory>

#include "common/logging.h"
#include "common/strings.h"

namespace webdis::web {

WebGraph::~WebGraph() {
  for (DocEntry& entry : entries_) {
    delete entry.doc.load(std::memory_order_relaxed);
  }
}

WebGraph::WebGraph(WebGraph&& other) noexcept
    : strings_(std::move(other.strings_)),
      entries_(std::move(other.entries_)),
      by_key_(std::move(other.by_key_)),
      host_index_(std::move(other.host_index_)),
      retired_hosts_(std::move(other.retired_hosts_)),
      live_count_(other.live_count_),
      materialized_(other.materialized_.load(std::memory_order_relaxed)),
      generator_(std::move(other.generator_)),
      epoch_(other.epoch_),
      history_enabled_(other.history_enabled_),
      history_(std::move(other.history_)) {
  other.entries_.clear();  // moved-from deque is empty, but be explicit
  other.by_key_.clear();
  other.host_index_.clear();
  other.live_count_ = 0;
  other.materialized_.store(0, std::memory_order_relaxed);
}

WebGraph& WebGraph::operator=(WebGraph&& other) noexcept {
  if (this == &other) return *this;
  for (DocEntry& entry : entries_) {
    delete entry.doc.load(std::memory_order_relaxed);
  }
  strings_ = std::move(other.strings_);
  entries_ = std::move(other.entries_);
  by_key_ = std::move(other.by_key_);
  host_index_ = std::move(other.host_index_);
  retired_hosts_ = std::move(other.retired_hosts_);
  live_count_ = other.live_count_;
  materialized_.store(other.materialized_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  generator_ = std::move(other.generator_);
  epoch_ = other.epoch_;
  history_enabled_ = other.history_enabled_;
  history_ = std::move(other.history_);
  other.entries_.clear();
  other.by_key_.clear();
  other.host_index_.clear();
  other.live_count_ = 0;
  other.materialized_.store(0, std::memory_order_relaxed);
  return *this;
}

Result<WebGraph::DocEntry*> WebGraph::AddEntry(std::string_view url,
                                               html::Url* parsed_out) {
  WEBDIS_ASSIGN_OR_RETURN(*parsed_out, html::ParseUrl(url));
  const std::string key = parsed_out->ResourceKey();
  if (by_key_.find(key) != by_key_.end()) {
    return Status::InvalidArgument(
        StringPrintf("duplicate document '%s'", key.c_str()));
  }
  const uint32_t key_id = strings_.Intern(key);
  const uint32_t host_id = strings_.Intern(parsed_out->host);
  const uint32_t index = static_cast<uint32_t>(entries_.size());
  DocEntry& entry = entries_.emplace_back();
  entry.key_id = key_id;
  entry.host_id = host_id;
  entry.born_epoch = epoch_;
  by_key_.emplace(strings_.View(key_id), index);
  host_index_[strings_.View(host_id)].emplace(strings_.View(key_id), index);
  ++live_count_;
  return &entry;
}

Status WebGraph::AddDocument(std::string_view url, std::string html) {
  html::Url parsed_url;
  DocEntry* entry = nullptr;
  WEBDIS_ASSIGN_OR_RETURN(entry, AddEntry(url, &parsed_url));
  auto doc = std::make_unique<Document>();
  doc->url = std::move(parsed_url);
  doc->parsed = html::ParseDocument(doc->url, html);
  doc->raw_html = std::move(html);
  doc->born_epoch = entry->born_epoch;
  if (history_enabled_) {
    history_[{doc->url.ResourceKey(), doc->version}] = doc->raw_html;
  }
  entry->doc.store(doc.release(), std::memory_order_release);
  materialized_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void WebGraph::SetPageGenerator(PageGenerator generator) {
  generator_ = std::move(generator);
}

Status WebGraph::AddLazyDocument(std::string_view url, uint64_t aux0,
                                 uint64_t aux1) {
  html::Url parsed_url;
  DocEntry* entry = nullptr;
  WEBDIS_ASSIGN_OR_RETURN(entry, AddEntry(url, &parsed_url));
  entry->lazy = true;
  entry->aux0 = aux0;
  entry->aux1 = aux1;
  if (history_enabled_) {
    // History needs every body; a lazy add during oracle recording is
    // materialized on the spot so the (key, version) record exists.
    Document* doc = Materialize(*entry);
    history_[{doc->url.ResourceKey(), doc->version}] = doc->raw_html;
  }
  return Status::OK();
}

WebGraph::Document* WebGraph::Materialize(const DocEntry& entry) const {
  Document* existing = entry.doc.load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  WEBDIS_CHECK(entry.lazy);
  WEBDIS_CHECK(generator_ != nullptr);
  const std::string_view key = strings_.View(entry.key_id);
  auto parsed = html::ParseUrl(key);
  WEBDIS_CHECK(parsed.ok());  // the key round-trips: it was parsed at add
  auto doc = std::make_unique<Document>();
  doc->url = std::move(parsed).value();
  std::string html = generator_(key, entry.aux0, entry.aux1);
  doc->parsed = html::ParseDocument(doc->url, html);
  doc->raw_html = std::move(html);
  doc->born_epoch = entry.born_epoch;
  // Publish with a compare-exchange: concurrent stepper partitions may race
  // to materialize the same document, but generation is deterministic, so
  // both candidates hold identical bytes — the loser just frees its copy.
  Document* expected = nullptr;
  Document* fresh = doc.get();
  if (entry.doc.compare_exchange_strong(expected, fresh,
                                        std::memory_order_release,
                                        std::memory_order_acquire)) {
    doc.release();
    materialized_.fetch_add(1, std::memory_order_relaxed);
    return fresh;
  }
  return expected;
}

const WebGraph::DocEntry* WebGraph::EntryFor(std::string_view url) const {
  auto parsed = html::ParseUrl(url);
  if (!parsed.ok()) return nullptr;
  auto it = by_key_.find(parsed->ResourceKey());
  return it == by_key_.end() ? nullptr : &entries_[it->second];
}

void WebGraph::EraseEntry(uint32_t index) {
  DocEntry& entry = entries_[index];
  Document* doc = entry.doc.exchange(nullptr, std::memory_order_relaxed);
  if (doc != nullptr) {
    materialized_.fetch_sub(1, std::memory_order_relaxed);
    delete doc;
  }
  const std::string_view key = strings_.View(entry.key_id);
  const std::string_view host = strings_.View(entry.host_id);
  by_key_.erase(key);
  auto hit = host_index_.find(host);
  if (hit != host_index_.end()) {
    hit->second.erase(key);
    if (hit->second.empty()) host_index_.erase(hit);
  }
  entry.key_id = common::StringInterner::kInvalidId;  // tombstone
  entry.lazy = false;
  --live_count_;
}

Status WebGraph::UpdateDocument(std::string_view url, std::string html) {
  html::Url parsed_url;
  WEBDIS_ASSIGN_OR_RETURN(parsed_url, html::ParseUrl(url));
  const std::string key = parsed_url.ResourceKey();
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    return Status::InvalidArgument(
        StringPrintf("no such document '%s'", key.c_str()));
  }
  const DocEntry& entry = entries_[it->second];
  Document* doc = entry.doc.load(std::memory_order_acquire);
  if (doc == nullptr) doc = Materialize(entry);
  doc->parsed = html::ParseDocument(doc->url, html);
  doc->raw_html = std::move(html);
  ++doc->version;
  if (history_enabled_) {
    history_[{key, doc->version}] = doc->raw_html;
  }
  return Status::OK();
}

Status WebGraph::RemoveDocument(std::string_view url) {
  html::Url parsed_url;
  WEBDIS_ASSIGN_OR_RETURN(parsed_url, html::ParseUrl(url));
  const std::string key = parsed_url.ResourceKey();
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    return Status::InvalidArgument(
        StringPrintf("no such document '%s'", key.c_str()));
  }
  EraseEntry(it->second);
  return Status::OK();
}

Status WebGraph::RetireHost(std::string_view host) {
  auto hit = host_index_.find(host);
  const bool removed_any = hit != host_index_.end();
  if (!removed_any && !HostRetired(host)) {
    return Status::InvalidArgument(
        StringPrintf("no documents on host '%.*s'",
                     static_cast<int>(host.size()), host.data()));
  }
  if (removed_any) {
    // Snapshot the entry indexes first: EraseEntry rewrites the bucket and
    // drops it once empty.
    std::vector<uint32_t> indexes;
    indexes.reserve(hit->second.size());
    for (const auto& [key, index] : hit->second) indexes.push_back(index);
    for (uint32_t index : indexes) EraseEntry(index);
  }
  retired_hosts_.insert(strings_.Intern(host));
  return Status::OK();
}

bool WebGraph::HostRetired(std::string_view host) const {
  const uint32_t id = strings_.Lookup(host);
  return id != common::StringInterner::kInvalidId &&
         retired_hosts_.find(id) != retired_hosts_.end();
}

void WebGraph::EnableHistory() {
  if (history_enabled_) return;
  history_enabled_ = true;
  // Backfill current versions so every live (key, version) pair resolves —
  // materializing lazy documents, since history stores full bodies.
  for (const auto& [key, index] : by_key_) {
    const DocEntry& entry = entries_[index];
    Document* doc = entry.doc.load(std::memory_order_acquire);
    if (doc == nullptr) doc = Materialize(entry);
    history_[{std::string(key), doc->version}] = doc->raw_html;
  }
}

const std::string* WebGraph::HistoricalHtml(std::string_view url,
                                            uint64_t version) const {
  auto parsed = html::ParseUrl(url);
  if (!parsed.ok()) return nullptr;
  auto it = history_.find({parsed->ResourceKey(), version});
  return it == history_.end() ? nullptr : &it->second;
}

const WebGraph::Document* WebGraph::Find(std::string_view url) const {
  const DocEntry* entry = EntryFor(url);
  if (entry == nullptr) return nullptr;
  Document* doc = entry->doc.load(std::memory_order_acquire);
  return doc != nullptr ? doc : Materialize(*entry);
}

bool WebGraph::Has(std::string_view url) const {
  return EntryFor(url) != nullptr;
}

std::vector<std::string> WebGraph::AllUrls() const {
  std::vector<std::string> urls;
  urls.reserve(by_key_.size());
  for (const auto& [key, index] : by_key_) urls.emplace_back(key);
  return urls;
}

std::vector<std::string> WebGraph::Hosts() const {
  std::vector<std::string> hosts;
  hosts.reserve(host_index_.size());
  for (const auto& [host, bucket] : host_index_) hosts.emplace_back(host);
  return hosts;
}

std::vector<std::string> WebGraph::UrlsOnHost(std::string_view host) const {
  std::vector<std::string> urls;
  auto hit = host_index_.find(host);
  if (hit == host_index_.end()) return urls;
  urls.reserve(hit->second.size());
  for (const auto& [key, index] : hit->second) urls.emplace_back(key);
  return urls;
}

size_t WebGraph::TotalHtmlBytes() const {
  size_t total = 0;
  for (const auto& [key, index] : by_key_) {
    const DocEntry& entry = entries_[index];
    Document* doc = entry.doc.load(std::memory_order_acquire);
    if (doc == nullptr) doc = Materialize(entry);
    total += doc->raw_html.size();
  }
  return total;
}

size_t WebGraph::ApproxTableBytes() const {
  // Red-black-tree node overhead estimate, matching StringInterner's.
  constexpr size_t kNode = 40;
  size_t bytes = strings_.ApproxBytes();
  bytes += entries_.size() * sizeof(DocEntry);
  bytes += by_key_.size() *
           (sizeof(std::string_view) + sizeof(uint32_t) + kNode);
  for (const auto& [host, bucket] : host_index_) {
    bytes += sizeof(std::string_view) + kNode +
             bucket.size() * (sizeof(std::string_view) + sizeof(uint32_t) +
                              kNode);
  }
  bytes += retired_hosts_.size() * (sizeof(uint32_t) + kNode);
  return bytes;
}

}  // namespace webdis::web
