#include "web/graph.h"

#include <set>

#include "common/strings.h"

namespace webdis::web {

Status WebGraph::AddDocument(std::string_view url, std::string html) {
  html::Url parsed_url;
  WEBDIS_ASSIGN_OR_RETURN(parsed_url, html::ParseUrl(url));
  const std::string key = parsed_url.ResourceKey();
  if (docs_.contains(key)) {
    return Status::InvalidArgument(
        StringPrintf("duplicate document '%s'", key.c_str()));
  }
  Document doc;
  doc.url = parsed_url;
  doc.parsed = html::ParseDocument(parsed_url, html);
  doc.raw_html = std::move(html);
  doc.born_epoch = epoch_;
  if (history_enabled_) {
    history_[{key, doc.version}] = doc.raw_html;
  }
  docs_.emplace(key, std::move(doc));
  return Status::OK();
}

Status WebGraph::UpdateDocument(std::string_view url, std::string html) {
  html::Url parsed_url;
  WEBDIS_ASSIGN_OR_RETURN(parsed_url, html::ParseUrl(url));
  const std::string key = parsed_url.ResourceKey();
  auto it = docs_.find(key);
  if (it == docs_.end()) {
    return Status::InvalidArgument(
        StringPrintf("no such document '%s'", key.c_str()));
  }
  Document& doc = it->second;
  doc.parsed = html::ParseDocument(doc.url, html);
  doc.raw_html = std::move(html);
  ++doc.version;
  if (history_enabled_) {
    history_[{key, doc.version}] = doc.raw_html;
  }
  return Status::OK();
}

Status WebGraph::RemoveDocument(std::string_view url) {
  html::Url parsed_url;
  WEBDIS_ASSIGN_OR_RETURN(parsed_url, html::ParseUrl(url));
  const std::string key = parsed_url.ResourceKey();
  auto it = docs_.find(key);
  if (it == docs_.end()) {
    return Status::InvalidArgument(
        StringPrintf("no such document '%s'", key.c_str()));
  }
  docs_.erase(it);
  return Status::OK();
}

Status WebGraph::RetireHost(std::string_view host) {
  bool removed_any = false;
  for (auto it = docs_.begin(); it != docs_.end();) {
    if (it->second.url.host == host) {
      it = docs_.erase(it);
      removed_any = true;
    } else {
      ++it;
    }
  }
  if (!removed_any && retired_hosts_.find(host) == retired_hosts_.end()) {
    return Status::InvalidArgument(
        StringPrintf("no documents on host '%.*s'",
                     static_cast<int>(host.size()), host.data()));
  }
  retired_hosts_.emplace(host);
  return Status::OK();
}

bool WebGraph::HostRetired(std::string_view host) const {
  return retired_hosts_.find(host) != retired_hosts_.end();
}

void WebGraph::EnableHistory() {
  if (history_enabled_) return;
  history_enabled_ = true;
  // Backfill current versions so every live (key, version) pair resolves.
  for (const auto& [key, doc] : docs_) {
    history_[{key, doc.version}] = doc.raw_html;
  }
}

const std::string* WebGraph::HistoricalHtml(std::string_view url,
                                            uint64_t version) const {
  auto parsed = html::ParseUrl(url);
  if (!parsed.ok()) return nullptr;
  auto it = history_.find({parsed->ResourceKey(), version});
  return it == history_.end() ? nullptr : &it->second;
}

const WebGraph::Document* WebGraph::Find(std::string_view url) const {
  auto parsed = html::ParseUrl(url);
  if (!parsed.ok()) return nullptr;
  auto it = docs_.find(parsed->ResourceKey());
  return it == docs_.end() ? nullptr : &it->second;
}

bool WebGraph::Has(std::string_view url) const { return Find(url) != nullptr; }

std::vector<std::string> WebGraph::AllUrls() const {
  std::vector<std::string> urls;
  urls.reserve(docs_.size());
  for (const auto& [key, doc] : docs_) urls.push_back(key);
  return urls;
}

std::vector<std::string> WebGraph::Hosts() const {
  std::set<std::string> hosts;
  for (const auto& [key, doc] : docs_) hosts.insert(doc.url.host);
  return {hosts.begin(), hosts.end()};
}

std::vector<std::string> WebGraph::UrlsOnHost(std::string_view host) const {
  std::vector<std::string> urls;
  for (const auto& [key, doc] : docs_) {
    if (doc.url.host == host) urls.push_back(key);
  }
  return urls;
}

size_t WebGraph::TotalHtmlBytes() const {
  size_t total = 0;
  for (const auto& [key, doc] : docs_) total += doc.raw_html.size();
  return total;
}

}  // namespace webdis::web
