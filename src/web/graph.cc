#include "web/graph.h"

#include <set>

#include "common/strings.h"

namespace webdis::web {

Status WebGraph::AddDocument(std::string_view url, std::string html) {
  html::Url parsed_url;
  WEBDIS_ASSIGN_OR_RETURN(parsed_url, html::ParseUrl(url));
  const std::string key = parsed_url.ResourceKey();
  if (docs_.contains(key)) {
    return Status::InvalidArgument(
        StringPrintf("duplicate document '%s'", key.c_str()));
  }
  Document doc;
  doc.url = parsed_url;
  doc.parsed = html::ParseDocument(parsed_url, html);
  doc.raw_html = std::move(html);
  docs_.emplace(key, std::move(doc));
  return Status::OK();
}

Status WebGraph::UpdateDocument(std::string_view url, std::string html) {
  html::Url parsed_url;
  WEBDIS_ASSIGN_OR_RETURN(parsed_url, html::ParseUrl(url));
  const std::string key = parsed_url.ResourceKey();
  auto it = docs_.find(key);
  if (it == docs_.end()) {
    return Status::InvalidArgument(
        StringPrintf("no such document '%s'", key.c_str()));
  }
  Document& doc = it->second;
  doc.parsed = html::ParseDocument(doc.url, html);
  doc.raw_html = std::move(html);
  ++doc.version;
  return Status::OK();
}

const WebGraph::Document* WebGraph::Find(std::string_view url) const {
  auto parsed = html::ParseUrl(url);
  if (!parsed.ok()) return nullptr;
  auto it = docs_.find(parsed->ResourceKey());
  return it == docs_.end() ? nullptr : &it->second;
}

bool WebGraph::Has(std::string_view url) const { return Find(url) != nullptr; }

std::vector<std::string> WebGraph::AllUrls() const {
  std::vector<std::string> urls;
  urls.reserve(docs_.size());
  for (const auto& [key, doc] : docs_) urls.push_back(key);
  return urls;
}

std::vector<std::string> WebGraph::Hosts() const {
  std::set<std::string> hosts;
  for (const auto& [key, doc] : docs_) hosts.insert(doc.url.host);
  return {hosts.begin(), hosts.end()};
}

std::vector<std::string> WebGraph::UrlsOnHost(std::string_view host) const {
  std::vector<std::string> urls;
  for (const auto& [key, doc] : docs_) {
    if (doc.url.host == host) urls.push_back(key);
  }
  return urls;
}

size_t WebGraph::TotalHtmlBytes() const {
  size_t total = 0;
  for (const auto& [key, doc] : docs_) total += doc.raw_html.size();
  return total;
}

}  // namespace webdis::web
