#include "web/topologies.h"

#include "common/logging.h"
#include "common/strings.h"
#include "web/pagegen.h"

namespace webdis::web {

namespace {

/// Adds a rendered page, aborting on error (topologies are compiled-in and
/// must be well-formed).
void MustAdd(WebGraph* web, const std::string& url, const PageSpec& spec) {
  const Status status = web->AddDocument(url, RenderHtml(spec));
  WEBDIS_CHECK(status.ok()) << status.ToString();
}

std::string NodeUrl(int k) {
  return StringPrintf("http://site%d.example/node%d", k, k);
}

}  // namespace

Scenario BuildFig1Scenario() {
  Scenario s;
  // Q = S G·(G|L) q1 (G|L) q2 with q1: title contains "alpha",
  // q2: text contains "beta".
  s.disql =
      "select d1.url, d2.url\n"
      "from document d1 such that \"" +
      NodeUrl(1) +
      "\" G.(G|L) d1,\n"
      "where d1.title contains \"alpha\"\n"
      "     document d2 such that d1 (G|L) d2,\n"
      "where d2.text contains \"beta\"\n";
  s.start_url = NodeUrl(1);

  // Node 1 (StartNode, PureRouter): global links to nodes 2 and 3.
  {
    PageSpec p;
    p.title = "Node one index";
    p.paragraphs = {"Gateway page; routes the query onward."};
    p.links = {{NodeUrl(2), "node two"}, {NodeUrl(3), "node three"}};
    MustAdd(&s.web, NodeUrl(1), p);
  }
  // Nodes 2, 3 (PureRouters after the first G).
  {
    PageSpec p;
    p.title = "Node two hub";
    p.links = {{NodeUrl(4), "node four"}, {NodeUrl(5), "node five"}};
    MustAdd(&s.web, NodeUrl(2), p);
  }
  {
    PageSpec p;
    p.title = "Node three hub";
    p.links = {{NodeUrl(6), "node six"}, {NodeUrl(7), "node seven"}};
    MustAdd(&s.web, NodeUrl(3), p);
  }
  // Node 4: answers q1 AND q2; acts as ServerRouter twice (q1 on the first
  // visit, q2 later via node 5's forward).
  {
    PageSpec p;
    p.title = "alpha laboratory four";
    p.paragraphs = {"This page discusses beta decay at length."};
    p.links = {{NodeUrl(8), "node eight"}};
    MustAdd(&s.web, NodeUrl(4), p);
  }
  // Node 5: answers q1; forwards q2 back to node 4.
  {
    PageSpec p;
    p.title = "alpha archive five";
    p.paragraphs = {"Mostly administrative content."};
    p.links = {{NodeUrl(4), "node four"}};
    MustAdd(&s.web, NodeUrl(5), p);
  }
  // Node 6: answers q1; its only link points at a missing resource
  // (a "floating link"), so its q2 forward dies at the target site.
  {
    PageSpec p;
    p.title = "alpha report six";
    p.paragraphs = {"Annual report."};
    p.links = {{"http://site9.example/missing", "stale link"}};
    MustAdd(&s.web, NodeUrl(6), p);
  }
  // Node 7: fails q1 (no "alpha" in the title) -> dead-end.
  {
    PageSpec p;
    p.title = "gamma misc seven";
    p.paragraphs = {"Unrelated content."};
    p.links = {{NodeUrl(1), "home"}};
    MustAdd(&s.web, NodeUrl(7), p);
  }
  // Node 8: answers q2 (text contains "beta").
  {
    PageSpec p;
    p.title = "results eight";
    p.paragraphs = {"A beta release of the software is available."};
    MustAdd(&s.web, NodeUrl(8), p);
  }

  s.pure_router_urls = {NodeUrl(1), NodeUrl(2), NodeUrl(3)};
  s.server_router_urls = {NodeUrl(4), NodeUrl(5), NodeUrl(6), NodeUrl(7),
                          NodeUrl(8)};
  s.dead_end_urls = {NodeUrl(7)};
  return s;
}

Scenario BuildFig5Scenario() {
  Scenario s;
  s.disql =
      "select d1.url, d2.url\n"
      "from document d1 such that \"" +
      NodeUrl(1) +
      "\" G.(G|L) d1,\n"
      "where d1.title contains \"alpha\"\n"
      "     document d2 such that d1 (G|L) d2,\n"
      "where d2.text contains \"beta\"\n";
  s.start_url = NodeUrl(1);

  // Node 1: G links to node 2 and node 4. The direct link produces visit
  // (a) at node 4 in state (2, G|L); the indirect path through node 2
  // produces visit (b) in state (2, N).
  {
    PageSpec p;
    p.title = "Node one index";
    p.links = {{NodeUrl(2), "node two"}, {NodeUrl(4), "node four"}};
    MustAdd(&s.web, NodeUrl(1), p);
  }
  {
    PageSpec p;
    p.title = "Node two hub";
    p.links = {{NodeUrl(4), "node four"}};
    MustAdd(&s.web, NodeUrl(2), p);
  }
  // Node 4: answers q1 and q2; fans out to nodes 5, 6, 7, each of which
  // answers q1 and links straight back to node 4 — producing visits
  // (c), (d), (e), all in the identical state (1, N).
  {
    PageSpec p;
    p.title = "alpha nexus four";
    p.paragraphs = {"The beta pages live here."};
    p.links = {{NodeUrl(5), "node five"},
               {NodeUrl(6), "node six"},
               {NodeUrl(7), "node seven"}};
    MustAdd(&s.web, NodeUrl(4), p);
  }
  for (int k = 5; k <= 7; ++k) {
    PageSpec p;
    p.title = StringPrintf("alpha satellite %d", k);
    p.paragraphs = {"Satellite page; also mentions beta once."};
    p.links = {{NodeUrl(4), "back to node four"}};
    MustAdd(&s.web, NodeUrl(k), p);
  }

  s.pure_router_urls = {NodeUrl(1), NodeUrl(2)};
  s.server_router_urls = {NodeUrl(4), NodeUrl(5), NodeUrl(6), NodeUrl(7)};
  return s;
}

CampusScenario BuildCampusScenario() {
  CampusScenario s;
  const std::string csa = "http://www.csa.iisc.ernet.in/";
  // The paper's Example Query 2 verbatim (modulo string quoting).
  s.disql =
      "select d0.url, d1.url, r.text\n"
      "from document d0 such that \"" +
      csa +
      "\" L d0,\n"
      "where d0.title contains \"lab\"\n"
      "    document d1 such that d0 G.(L*1) d1,\n"
      "    relinfon r such that r.delimiter = \"hr\",\n"
      "where (r.text contains \"convener\")\n";
  s.start_url = csa;

  // --- CSA department site -------------------------------------------------
  {
    PageSpec p;
    p.title = "Department of Computer Science and Automation";
    p.paragraphs = {
        "The Department of Computer Science and Automation at the Indian "
        "Institute of Science conducts research in all areas of computing."};
    p.links = {{"/Labs", "Laboratories"},
               {"/people", "Faculty and staff"},
               {"/research", "Research areas"},
               {"/courses", "Course listings"}};
    MustAdd(&s.web, csa, p);
  }
  {
    PageSpec p;
    p.title = "Laboratories of the CSA department";  // contains "lab" -> q1
    p.paragraphs = {"The department hosts several research laboratories."};
    p.links = {
        {"http://dsl.serc.iisc.ernet.in/", "Database Systems Lab"},
        {"http://www-compiler.csa.iisc.ernet.in/", "Compiler Lab"},
        {"http://www2.csa.iisc.ernet.in/~gang/lab", "System Software Lab"},
        {"http://physics.iisc.ernet.in/", "(misc) Physics department"},
    };
    MustAdd(&s.web, "http://www.csa.iisc.ernet.in/Labs", p);
  }
  // Non-matching siblings of the Labs page (fail q1 -> dead-ends).
  {
    PageSpec p;
    p.title = "People of CSA";
    p.paragraphs = {"Faculty directory."};
    MustAdd(&s.web, "http://www.csa.iisc.ernet.in/people", p);
  }
  {
    PageSpec p;
    p.title = "Research areas";
    p.paragraphs = {"Databases, compilers, systems, theory."};
    MustAdd(&s.web, "http://www.csa.iisc.ernet.in/research", p);
  }
  {
    PageSpec p;
    p.title = "Courses";
    p.paragraphs = {"Course catalogue."};
    MustAdd(&s.web, "http://www.csa.iisc.ernet.in/courses", p);
  }

  // --- Database Systems Lab (convener one local link away) ---------------
  {
    PageSpec p;
    p.title = "Database Systems Lab";
    p.paragraphs = {"Welcome to the DSL at IISc."};
    p.links = {{"/people", "People"}, {"/projects", "Projects"}};
    MustAdd(&s.web, "http://dsl.serc.iisc.ernet.in/", p);
  }
  {
    PageSpec p;
    p.title = "Database Systems Lab People";
    p.hr_blocks = {"CONVENER Jayant Haritsa",
                   "MEMBERS Nalin Gupta, Maya Ramanath"};
    MustAdd(&s.web, "http://dsl.serc.iisc.ernet.in/people", p);
  }
  {
    PageSpec p;
    p.title = "DSL Projects";
    p.paragraphs = {"DIASPORA, WEBDIS and friends."};
    MustAdd(&s.web, "http://dsl.serc.iisc.ernet.in/projects", p);
  }

  // --- Compiler Lab (convener one local link away) ------------------------
  {
    PageSpec p;
    p.title = "Compiler Laboratory at IISc";
    p.paragraphs = {"Compiler research group."};
    p.links = {{"/people", "Students and staff"}};
    MustAdd(&s.web, "http://www-compiler.csa.iisc.ernet.in/", p);
  }
  {
    PageSpec p;
    p.title = "Students of the Compiler Lab at IISc";
    p.hr_blocks = {"Convener Prof. Y.N. Srikant",
                   "STUDENTS A long list of students"};
    MustAdd(&s.web, "http://www-compiler.csa.iisc.ernet.in/people", p);
  }

  // --- System Software Lab (convener on the homepage itself) --------------
  {
    PageSpec p;
    p.title = "HOMEPAGE: SYSTEM SOFTWARE LAB";
    p.hr_blocks = {"Convener : Prof. D. K. Subramanian"};
    p.links = {{"/~gang/lab/projects", "Projects"}};
    MustAdd(&s.web, "http://www2.csa.iisc.ernet.in/~gang/lab", p);
  }
  {
    PageSpec p;
    p.title = "System Software Lab Projects";
    p.paragraphs = {"Operating systems projects."};
    MustAdd(&s.web, "http://www2.csa.iisc.ernet.in/~gang/lab/projects", p);
  }

  // --- A non-lab site reachable from the Labs page (fails q2 everywhere) --
  {
    PageSpec p;
    p.title = "Department of Physics";
    p.paragraphs = {"Physics at IISc."};
    p.links = {{"/seminars", "Seminars"}};
    MustAdd(&s.web, "http://physics.iisc.ernet.in/", p);
  }
  {
    PageSpec p;
    p.title = "Physics seminars";
    p.paragraphs = {"Weekly seminar schedule."};
    MustAdd(&s.web, "http://physics.iisc.ernet.in/seminars", p);
  }

  s.expected_conveners = {
      {"http://dsl.serc.iisc.ernet.in/people", "Jayant Haritsa"},
      {"http://www-compiler.csa.iisc.ernet.in/people", "Y.N. Srikant"},
      {"http://www2.csa.iisc.ernet.in/~gang/lab", "D. K. Subramanian"},
  };
  return s;
}

}  // namespace webdis::web
