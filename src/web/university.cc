#include "web/university.h"

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "web/pagegen.h"

namespace webdis::web {

namespace {

constexpr std::string_view kDepartmentNames[] = {
    "Computer Science", "Physics",   "Mathematics", "Chemistry",
    "Biology",          "Economics", "History",     "Linguistics",
    "Astronomy",        "Geology",
};

constexpr std::string_view kLabThemes[] = {
    "Database Systems", "Compiler",    "System Software", "Networks",
    "Graphics",         "Theory",      "Robotics",        "Learning",
    "Architecture",     "Verification",
};

constexpr std::string_view kSurnames[] = {
    "Haritsa", "Srikant",  "Subramanian", "Rao",    "Iyer",  "Gupta",
    "Mehta",   "Chandran", "Bose",        "Pillai", "Joshi", "Nair",
};

void MustAdd(WebGraph* web, const std::string& url, const PageSpec& spec) {
  const Status status = web->AddDocument(url, RenderHtml(spec));
  WEBDIS_CHECK(status.ok()) << url << ": " << status.ToString();
}

constexpr std::string_view kProse[] = {
    "department", "university", "research", "teaching", "faculty",
    "seminar",    "colloquium", "semester", "project",  "thesis",
    "laboratory", "publication", "course",  "student",  "campus",
    "committee",  "workshop",   "journal",  "archive",  "bulletin",
};

void AddProse(Rng* rng, const UniversityOptions& options, PageSpec* spec) {
  for (int p = 0; p < options.paragraphs_per_page; ++p) {
    std::string paragraph;
    for (int w = 0; w < options.words_per_paragraph; ++w) {
      if (w > 0) paragraph += " ";
      paragraph += kProse[rng->Uniform(std::size(kProse))];
    }
    spec->paragraphs.push_back(std::move(paragraph));
  }
}

}  // namespace

UniversityWeb GenerateUniversityWeb(const UniversityOptions& options) {
  WEBDIS_CHECK(options.departments >= 1);
  WEBDIS_CHECK(options.labs_per_department >= 1);
  UniversityWeb uni;
  Rng rng(options.seed);
  uni.root_url = "http://www.uni.example/";

  // --- University homepage -------------------------------------------------
  PageSpec root;
  root.title = "Example University";
  root.paragraphs = {"Welcome to Example University."};
  AddProse(&rng, options, &root);
  for (int d = 0; d < options.departments; ++d) {
    root.links.push_back(
        {StringPrintf("http://dept%d.uni.example/", d),
         std::string(kDepartmentNames[static_cast<size_t>(d) %
                                      std::size(kDepartmentNames)]) +
             " department"});
  }
  MustAdd(&uni.web, uni.root_url, root);

  for (int d = 0; d < options.departments; ++d) {
    const std::string dept_host = StringPrintf("dept%d.uni.example", d);
    const std::string dept_name(
        kDepartmentNames[static_cast<size_t>(d) % std::size(kDepartmentNames)]);

    // --- Department homepage ---------------------------------------------
    PageSpec home;
    home.title = "Department of " + dept_name;
    home.paragraphs = {"Research and teaching in " + dept_name + "."};
    AddProse(&rng, options, &home);
    home.links.push_back({"/Labs", "Laboratories"});
    for (int f = 0; f < options.filler_pages_per_department; ++f) {
      home.links.push_back(
          {StringPrintf("/page%d", f), StringPrintf("Info page %d", f)});
    }
    MustAdd(&uni.web, "http://" + dept_host + "/", home);

    // --- Labs page (the q1 target: title contains "laborator") ------------
    PageSpec labs;
    labs.title = "Laboratories of the " + dept_name + " department";
    labs.paragraphs = {"The department hosts these laboratories."};
    AddProse(&rng, options, &labs);
    for (int l = 0; l < options.labs_per_department; ++l) {
      labs.links.push_back(
          {StringPrintf("http://lab%d-%d.uni.example/", d, l),
           std::string(kLabThemes[static_cast<size_t>(l) %
                                  std::size(kLabThemes)]) +
               " Lab"});
    }
    MustAdd(&uni.web, "http://" + dept_host + "/Labs", labs);

    // --- Filler pages (dead-ends for q1, floating-link habitat) -----------
    for (int f = 0; f < options.filler_pages_per_department; ++f) {
      PageSpec filler;
      filler.title = StringPrintf("%s info page %d", dept_name.c_str(), f);
      filler.paragraphs = {"Administrative content of no research value."};
      AddProse(&rng, options, &filler);
      filler.links.push_back({"/", "department home"});
      if (rng.Bernoulli(options.floating_link_prob)) {
        const std::string dangling =
            StringPrintf("http://%s/removed%d.html", dept_host.c_str(), f);
        filler.links.push_back({dangling, "stale link"});
        uni.floating_links.push_back(dangling);
      }
      MustAdd(&uni.web, StringPrintf("http://%s/page%d", dept_host.c_str(), f),
              filler);
    }

    // --- Lab sites ---------------------------------------------------------
    for (int l = 0; l < options.labs_per_department; ++l) {
      const std::string lab_host =
          StringPrintf("lab%d-%d.uni.example", d, l);
      const std::string theme(
          kLabThemes[static_cast<size_t>(l) % std::size(kLabThemes)]);
      const std::string convener = StringPrintf(
          "Prof. %c. %s", static_cast<char>('A' + (d + l) % 26),
          std::string(kSurnames[rng.Uniform(std::size(kSurnames))]).c_str());
      const bool on_homepage =
          rng.Bernoulli(options.convener_on_homepage_prob);

      PageSpec lab_home;
      lab_home.title = theme + " Lab";
      lab_home.paragraphs = {"Welcome to the " + theme + " Lab."};
      AddProse(&rng, options, &lab_home);
      lab_home.links.push_back({"/projects", "Projects"});
      if (on_homepage) {
        lab_home.hr_blocks = {"Convener : " + convener};
        uni.conveners.emplace_back("http://" + lab_host + "/", convener);
      } else {
        lab_home.links.push_back({"/people", "People"});
      }
      MustAdd(&uni.web, "http://" + lab_host + "/", lab_home);

      if (!on_homepage) {
        PageSpec people;
        people.title = theme + " Lab People";
        AddProse(&rng, options, &people);
        people.hr_blocks = {"CONVENER " + convener,
                            "MEMBERS students and staff"};
        uni.conveners.emplace_back("http://" + lab_host + "/people",
                                   convener);
        MustAdd(&uni.web, "http://" + lab_host + "/people", people);
      }

      PageSpec projects;
      projects.title = theme + " Lab Projects";
      projects.paragraphs = {"Current projects of the " + theme + " Lab."};
      AddProse(&rng, options, &projects);
      MustAdd(&uni.web, "http://" + lab_host + "/projects", projects);
    }
  }

  uni.convener_disql =
      "select d0.url, d1.url, r.text\n"
      "from document d0 such that \"" +
      uni.root_url +
      "\" G.L d0,\n"
      "where d0.title contains \"laborator\"\n"
      "     document d1 such that d0 G.(L*1) d1,\n"
      "     relinfon r such that r.delimiter = \"hr\",\n"
      "where r.text contains \"convener\"\n";
  return uni;
}

}  // namespace webdis::web
