#ifndef WEBDIS_WEB_MUTATION_H_
#define WEBDIS_WEB_MUTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "web/graph.h"

namespace webdis::web {

/// One scheduled edit to the live web (PROTOCOL.md §10.1).
struct Mutation {
  enum class Kind {
    /// Appends a visible paragraph to `url` (bumps its version — cached
    /// node-query results for the old version stay valid *for* that
    /// version but are never served for the new one).
    kEditPage,
    /// Appends an anchor `url` -> `target_url` (bumps `url`'s version).
    kAddLink,
    /// Strips the first anchor `url` -> `target_url` (bumps the version).
    /// Skipped (counted, not fatal) when no such anchor exists.
    kRemoveLink,
    /// Adds document `url` with body `html`. The document's born_epoch is
    /// the epoch *after* the batch's bump, so queries already running under
    /// the old pin never see it (§10.3). The engine starts a query server
    /// for the new host.
    kSpawnSite,
    /// Removes every document on `host` for good (§10.2). The engine puts
    /// the host's query server into retired mode.
    kRetireSite,
  };
  Kind kind;
  /// Virtual time the mutation takes effect.
  SimTime at = 0;
  std::string url;         // kEditPage / kAddLink / kRemoveLink / kSpawnSite
  std::string target_url;  // kAddLink / kRemoveLink
  std::string html;        // kSpawnSite body; kEditPage appended text
  std::string host;        // kRetireSite
};

struct MutationStats {
  uint64_t pages_edited = 0;
  uint64_t links_added = 0;
  uint64_t links_removed = 0;
  uint64_t sites_spawned = 0;
  uint64_t sites_retired = 0;
  /// Mutations whose target vanished before they applied (e.g. an edit to
  /// a page whose site a same-plan retire removed first).
  uint64_t skipped = 0;
  /// Epoch bumps: one per ApplyDue call that applied anything.
  uint64_t epochs_advanced = 0;
};

/// A seeded schedule of web mutations, mirroring net::FaultPlan: built up
/// front (declaratively or via Random), then applied against the live
/// WebGraph at virtual times as the run advances. The engine drives
/// ApplyDue from simulation timers and orchestrates the server-side
/// consequences (starting spawned sites, retiring gone ones).
///
/// Mutations touch WebGraph state that every query server reads, so churn
/// runs must use the sequential stepper (EngineOptions.workers == 0); the
/// parallel stepper's endpoint confinement does not cover a mutating web.
class MutationPlan {
 public:
  MutationPlan() = default;

  /// Appends one mutation. Call before the run starts; the schedule is
  /// kept sorted by `at` (stable for equal times).
  void Add(Mutation m);

  bool empty() const { return mutations_.empty(); }
  size_t size() const { return mutations_.size(); }

  /// Distinct virtual times of not-yet-applied mutations, ascending — the
  /// engine schedules one timer per entry.
  std::vector<SimTime> PendingTimes() const;

  /// Applies every not-yet-applied mutation with `at` <= now, in schedule
  /// order. If anything applies, the web epoch advances once *before* the
  /// batch so spawned documents are born into the new epoch. Returns the
  /// mutations applied this call so the engine can orchestrate
  /// spawn/retire side effects (the returned list includes skipped
  /// mutations only in stats, not in the vector).
  std::vector<Mutation> ApplyDue(WebGraph* web, SimTime now);

  const MutationStats& stats() const { return stats_; }

  /// Options for a seeded random plan over an existing web.
  struct RandomOptions {
    uint64_t seed = 1;
    int edits = 3;
    int link_adds = 1;
    int link_removes = 1;
    int spawns = 1;
    int retires = 1;
    /// Mutations land uniformly in [window_start, window_end].
    SimTime window_start = 0;
    SimTime window_end = 1 * kSecond;
    /// Hosts never retired (the client host and the start host, usually).
    std::vector<std::string> protected_hosts;
  };

  /// Builds a seeded random plan: page edits and link adds/removes over
  /// the web's current documents, spawns of fresh single-page sites (each
  /// paired with a link from an existing page so the new site is
  /// reachable), and whole-site retirements of non-protected hosts.
  static MutationPlan Random(const WebGraph& web, const RandomOptions& opts);

 private:
  std::vector<Mutation> mutations_;  // sorted by `at`
  size_t applied_ = 0;               // prefix of mutations_ already applied
  MutationStats stats_;
};

}  // namespace webdis::web

#endif  // WEBDIS_WEB_MUTATION_H_
