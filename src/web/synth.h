#ifndef WEBDIS_WEB_SYNTH_H_
#define WEBDIS_WEB_SYNTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "web/graph.h"

namespace webdis::web {

/// Parameters of the random synthetic web used by the benchmarks. The
/// generator plants keywords with controlled probabilities so query
/// selectivity is a tunable workload knob, and controls per-document local
/// and global out-degree so traversal fan-out is too.
struct SynthWebOptions {
  uint64_t seed = 42;
  int num_sites = 8;
  int docs_per_site = 16;
  /// Out-degree knobs: links to documents on the same site / other sites.
  int local_links_per_doc = 3;
  int global_links_per_doc = 1;
  /// Probability that a document's title carries the planted title keyword
  /// ("alpha") / its body the planted body keyword ("beta").
  double title_keyword_prob = 0.3;
  double body_keyword_prob = 0.3;
  /// Padding paragraphs per document (controls document size, and therefore
  /// the data-shipping baseline's download volume).
  int filler_paragraphs = 3;
  /// Words per filler paragraph.
  int words_per_paragraph = 40;
  /// When set, documents are registered lazily: the build pass records each
  /// document's captured RNG states instead of rendering HTML, and the page
  /// is materialized on first fetch by replaying exactly the draws an eager
  /// build would have made. Pages are byte-identical to lazy_pages=false —
  /// only memory timing changes — which is what lets benchmarks hold
  /// 10⁵–10⁶ documents without rendering them all up front.
  bool lazy_pages = false;
};

/// Keywords the generator plants; queries in the benchmarks filter on them.
inline constexpr std::string_view kTitleKeyword = "alpha";
inline constexpr std::string_view kBodyKeyword = "beta";

/// Deterministically generates a random web. Document URLs follow
/// http://site<i>.example/doc<j>. Every document also receives an
/// hr-delimited rel-infon block; with probability body_keyword_prob it
/// mentions the body keyword.
WebGraph GenerateSynthWeb(const SynthWebOptions& options);

/// Host name of synthetic site i.
std::string SynthHost(int site);
/// URL of synthetic document j on site i.
std::string SynthUrl(int site, int doc);

}  // namespace webdis::web

#endif  // WEBDIS_WEB_SYNTH_H_
