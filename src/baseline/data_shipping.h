#ifndef WEBDIS_BASELINE_DATA_SHIPPING_H_
#define WEBDIS_BASELINE_DATA_SHIPPING_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "disql/compiler.h"
#include "net/sim.h"
#include "query/report.h"
#include "web/graph.h"

namespace webdis::baseline {

/// Options of the centralized engine.
struct DataShippingOptions {
  /// Cache fetched documents at the client (a revisit along another path
  /// costs no second download). Off = the naive engine.
  bool cache_documents = true;
  /// Client-side fetch port (listens for kFetchResponse).
  uint16_t fetch_port = 8080;
};

/// Outcome and cost accounting of a centralized run.
struct DataShippingOutcome {
  bool completed = false;
  std::vector<relational::ResultSet> results;
  uint64_t documents_fetched = 0;
  uint64_t fetch_bytes = 0;        // HTML payload bytes downloaded
  uint64_t fetch_failures = 0;     // missing documents / dead hosts
  uint64_t cache_hits = 0;
  uint64_t node_queries_evaluated = 0;
  uint64_t nodes_visited = 0;
  SimTime start_time = 0;
  SimTime finish_time = 0;
};

/// The data-shipping comparator (Section 1): every document along the PRE
/// traversal is downloaded to the client site over HTTP and all node-queries
/// are evaluated locally — the WebSQL/W3QS-style centralized architecture
/// the paper's distributed scheme is motivated against. Also reused by the
/// WEBDIS engine as the §7.1 fallback for non-participating sites.
///
/// Works against HttpServer fetch responders over a SimNetwork it pumps
/// synchronously (one outstanding fetch at a time, as 1999 clients did).
class DataShippingEngine {
 public:
  /// `network` must outlive the engine; HttpServers must already be
  /// listening on the web's hosts (core::Engine starts them).
  DataShippingEngine(std::string client_host, net::SimNetwork* network,
                     DataShippingOptions options = DataShippingOptions());
  ~DataShippingEngine();

  DataShippingEngine(const DataShippingEngine&) = delete;
  DataShippingEngine& operator=(const DataShippingEngine&) = delete;

  /// Runs the compiled query centrally from its StartNodes.
  Result<DataShippingOutcome> Run(const disql::CompiledQuery& compiled);

  /// Continues a query centrally from explicit (node, state) pairs — the
  /// fallback path for clones that could not be delivered to
  /// non-participating sites.
  Result<DataShippingOutcome> RunFrom(
      const disql::CompiledQuery& compiled,
      const std::vector<query::ChtEntry>& entries);

 private:
  struct WorkItem {
    std::string url;
    size_t stage = 0;
    pre::Pre rem;
  };

  Result<DataShippingOutcome> Execute(const disql::CompiledQuery& compiled,
                                      std::vector<WorkItem> frontier);

  /// Fetches a document's HTML via the HTTP fetch protocol; pumps the
  /// network until the response lands. Returns NotFound for missing
  /// documents and ConnectionRefused for dead hosts.
  Result<std::string> FetchDocument(const std::string& url,
                                    DataShippingOutcome* outcome);

  std::string client_host_;
  net::SimNetwork* network_;
  DataShippingOptions options_;
  bool listening_ = false;
  /// Response slot for the single outstanding fetch.
  bool response_pending_ = false;
  bool response_found_ = false;
  std::string response_html_;
  std::map<std::string, std::string> document_cache_;
};

}  // namespace webdis::baseline

#endif  // WEBDIS_BASELINE_DATA_SHIPPING_H_
