#include "baseline/data_shipping.h"

#include <deque>
#include <set>

#include "common/logging.h"
#include "common/strings.h"
#include "html/parser.h"
#include "html/url.h"
#include "relational/eval.h"
#include "server/db_constructor.h"
#include "server/http_server.h"

namespace webdis::baseline {

DataShippingEngine::DataShippingEngine(std::string client_host,
                                       net::SimNetwork* network,
                                       DataShippingOptions options)
    : client_host_(std::move(client_host)),
      network_(network),
      options_(options) {}

DataShippingEngine::~DataShippingEngine() {
  if (listening_) {
    network_->CloseListener(
        net::Endpoint{client_host_, options_.fetch_port});
  }
}

Result<std::string> DataShippingEngine::FetchDocument(
    const std::string& url, DataShippingOutcome* outcome) {
  if (options_.cache_documents) {
    auto it = document_cache_.find(url);
    if (it != document_cache_.end()) {
      ++outcome->cache_hits;
      return it->second;
    }
  }
  if (!listening_) {
    WEBDIS_RETURN_IF_ERROR(network_->Listen(
        net::Endpoint{client_host_, options_.fetch_port},
        [this](const net::Endpoint& from, net::MessageType type,
               const std::vector<uint8_t>& payload) {
          (void)from;
          if (type != net::MessageType::kFetchResponse) return;
          server::HttpServer::FetchResponse resp;
          if (!server::HttpServer::DecodeFetchResponse(payload, &resp).ok()) {
            return;
          }
          response_pending_ = false;
          response_found_ = resp.found;
          response_html_ = std::move(resp.html);
        }));
    listening_ = true;
  }
  auto parsed = html::ParseUrl(url);
  if (!parsed.ok()) return parsed.status();
  response_pending_ = true;
  response_found_ = false;
  response_html_.clear();
  const Status send_status = network_->Send(
      net::Endpoint{client_host_, options_.fetch_port},
      net::Endpoint{parsed->host, server::kHttpPort},
      net::MessageType::kFetchRequest,
      server::HttpServer::EncodeFetchRequest(url));
  if (!send_status.ok()) {
    ++outcome->fetch_failures;
    return send_status;
  }
  // Single outstanding fetch: pump until the response handler fires.
  while (response_pending_ && network_->RunOne()) {
  }
  if (response_pending_) {
    ++outcome->fetch_failures;
    return Status::NetworkError(
        StringPrintf("fetch of %s got no response", url.c_str()));
  }
  if (!response_found_) {
    ++outcome->fetch_failures;
    return Status::NotFound(StringPrintf("no document at %s", url.c_str()));
  }
  ++outcome->documents_fetched;
  outcome->fetch_bytes += response_html_.size();
  if (options_.cache_documents) {
    document_cache_[url] = response_html_;
  }
  return response_html_;
}

Result<DataShippingOutcome> DataShippingEngine::Run(
    const disql::CompiledQuery& compiled) {
  std::vector<WorkItem> frontier;
  for (const std::string& url : compiled.start_urls) {
    auto parsed = html::ParseUrl(url);
    if (!parsed.ok()) return parsed.status();
    frontier.push_back(
        WorkItem{parsed->ResourceKey(), 0, compiled.web_query.rem_pre});
  }
  return Execute(compiled, std::move(frontier));
}

Result<DataShippingOutcome> DataShippingEngine::RunFrom(
    const disql::CompiledQuery& compiled,
    const std::vector<query::ChtEntry>& entries) {
  const size_t total = compiled.web_query.remaining_queries.size();
  std::vector<WorkItem> frontier;
  for (const query::ChtEntry& entry : entries) {
    if (entry.state.num_q == 0 || entry.state.num_q > total) {
      return Status::InvalidArgument(StringPrintf(
          "fallback entry with bad num_q %u",
          static_cast<unsigned>(entry.state.num_q)));
    }
    frontier.push_back(WorkItem{entry.node_url, total - entry.state.num_q,
                                entry.state.rem_pre});
  }
  return Execute(compiled, std::move(frontier));
}

Result<DataShippingOutcome> DataShippingEngine::Execute(
    const disql::CompiledQuery& compiled, std::vector<WorkItem> frontier) {
  DataShippingOutcome outcome;
  outcome.start_time = network_->now();
  const query::WebQuery& wq = compiled.web_query;
  const size_t num_stages = wq.remaining_queries.size();

  std::deque<WorkItem> queue(frontier.begin(), frontier.end());
  std::set<std::string> visited;  // url \x1f stage \x1f rem key
  std::set<std::string> seen_rows;

  const auto merge_results = [&](const relational::ResultSet& rs) {
    relational::ResultSet* target = nullptr;
    for (relational::ResultSet& existing : outcome.results) {
      if (existing.column_labels == rs.column_labels) {
        target = &existing;
        break;
      }
    }
    if (target == nullptr) {
      relational::ResultSet fresh;
      fresh.column_labels = rs.column_labels;
      outcome.results.push_back(std::move(fresh));
      target = &outcome.results.back();
    }
    const std::string signature = Join(rs.column_labels, "\x1f");
    for (const relational::Tuple& row : rs.rows) {
      std::string key = signature;
      for (const relational::Value& v : row) {
        key += '\x1e';
        key += v.ToString();
      }
      if (seen_rows.insert(std::move(key)).second) {
        target->rows.push_back(row);
      }
    }
  };

  while (!queue.empty()) {
    WorkItem item = std::move(queue.front());
    queue.pop_front();
    const std::string visit_key = item.url + '\x1f' +
                                  std::to_string(item.stage) + '\x1f' +
                                  item.rem.CanonicalKey();
    if (!visited.insert(visit_key).second) continue;

    auto html_result = FetchDocument(item.url, &outcome);
    if (!html_result.ok()) continue;  // floating link or dead host
    ++outcome.nodes_visited;

    auto parsed_url = html::ParseUrl(item.url);
    if (!parsed_url.ok()) continue;
    const html::ParsedDocument doc =
        html::ParseDocument(parsed_url.value(), html_result.value());
    const relational::Database db = server::BuildNodeDatabase(doc);

    if (item.rem.ContainsNull()) {
      ++outcome.node_queries_evaluated;
      auto rs = relational::Execute(wq.remaining_queries[item.stage].select,
                                    db);
      if (rs.ok() && !rs->rows.empty()) {
        merge_results(rs.value());
        if (item.stage + 1 < num_stages) {
          queue.push_back(WorkItem{item.url, item.stage + 1,
                                   wq.future_pres[item.stage]});
        }
      }
    }
    for (const html::LinkType link_type : item.rem.FirstLinks()) {
      const pre::Pre derived = item.rem.Derive(link_type);
      for (const html::ParsedAnchor& anchor : doc.anchors) {
        if (anchor.ltype != link_type) continue;
        queue.push_back(
            WorkItem{anchor.resolved.ResourceKey(), item.stage, derived});
      }
    }
  }
  outcome.completed = true;
  outcome.finish_time = network_->now();
  return outcome;
}

}  // namespace webdis::baseline
