#include "serialize/encoder.h"

#include <cstring>

#include "common/strings.h"

namespace webdis::serialize {

void Encoder::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v & 0xFF));
  buf_.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
}

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void Encoder::PutString(std::string_view s) {
  PutVarint(s.size());
  PutRaw(s.data(), s.size());
}

void Encoder::PutRaw(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

Status Decoder::Need(size_t n) {
  if (remaining() < n) {
    return Status::Corruption(
        StringPrintf("truncated input: need %zu bytes, have %zu at offset %zu",
                     n, remaining(), pos_));
  }
  return Status::OK();
}

Status Decoder::GetU8(uint8_t* out) {
  WEBDIS_RETURN_IF_ERROR(Need(1));
  *out = data_[pos_++];
  return Status::OK();
}

Status Decoder::GetU16(uint16_t* out) {
  WEBDIS_RETURN_IF_ERROR(Need(2));
  *out = static_cast<uint16_t>(data_[pos_] |
                               (static_cast<uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return Status::OK();
}

Status Decoder::GetU32(uint32_t* out) {
  WEBDIS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status Decoder::GetU64(uint64_t* out) {
  WEBDIS_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status Decoder::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (shift > 63) {
      return Status::Corruption("varint too long");
    }
    uint8_t byte = 0;
    WEBDIS_RETURN_IF_ERROR(GetU8(&byte));
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::OK();
}

Status Decoder::GetCount(const char* what, uint64_t max_count,
                         size_t min_bytes_per_item, uint64_t* out) {
  uint64_t count = 0;
  WEBDIS_RETURN_IF_ERROR(GetVarint(&count));
  if (count > max_count) {
    return Status::Corruption(StringPrintf(
        "%s count %llu exceeds limit %llu", what,
        static_cast<unsigned long long>(count),
        static_cast<unsigned long long>(max_count)));
  }
  // Feasibility gate, phrased as a division so count * min_bytes_per_item
  // cannot overflow: if the remaining bytes cannot possibly hold `count`
  // items, the prefix is corrupt — reject before any allocation.
  if (min_bytes_per_item > 0 &&
      count > remaining() / min_bytes_per_item) {
    return Status::Corruption(StringPrintf(
        "%s count %llu needs >= %zu byte(s) per item but only %zu remain",
        what, static_cast<unsigned long long>(count), min_bytes_per_item,
        remaining()));
  }
  *out = count;
  return Status::OK();
}

Status Decoder::ExpectAtEnd(const char* what) const {
  if (pos_ != len_) {
    return Status::Corruption(StringPrintf(
        "%zu trailing byte(s) after %s", remaining(), what));
  }
  return Status::OK();
}

Status Decoder::GetString(std::string* out) {
  uint64_t len = 0;
  WEBDIS_RETURN_IF_ERROR(GetVarint(&len));
  WEBDIS_RETURN_IF_ERROR(Need(len));
  out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::OK();
}

Status Decoder::GetBool(bool* out) {
  uint8_t v = 0;
  WEBDIS_RETURN_IF_ERROR(GetU8(&v));
  if (v > 1) {
    return Status::Corruption("bool byte out of range");
  }
  *out = (v == 1);
  return Status::OK();
}

}  // namespace webdis::serialize
