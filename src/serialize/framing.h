#ifndef WEBDIS_SERIALIZE_FRAMING_H_
#define WEBDIS_SERIALIZE_FRAMING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace webdis::serialize {

/// Every WEBDIS wire message is wrapped in a frame so that both the simulated
/// network and the real TCP transport can delimit and validate messages:
///
///   magic   u32  'WDIS'
///   version u8   kWireVersion
///   type    u8   application message type (opaque to this layer)
///   length  u32  payload byte count
///   payload length bytes
///
/// The frame header is intentionally fixed-size (10 bytes) so stream
/// transports can read it before knowing the payload length.
constexpr uint32_t kFrameMagic = 0x57444953;  // "WDIS"
constexpr uint8_t kWireVersion = 1;
constexpr size_t kFrameHeaderSize = 10;
/// Defensive cap: a frame larger than this is treated as corruption rather
/// than an allocation request.
constexpr uint32_t kMaxFrameLength = 64u * 1024u * 1024u;

/// Wraps a payload into a full frame.
std::vector<uint8_t> EncodeFrame(uint8_t type,
                                 const std::vector<uint8_t>& payload);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte span.
/// Used by the durability layer (server/persist) to validate snapshot bodies
/// and WAL records: storage, unlike the simulated wire, can hand back torn
/// or bit-rotted bytes, and a checksum mismatch must read as "corrupt",
/// never as a parseable record.
uint32_t Crc32(const uint8_t* data, size_t len);
inline uint32_t Crc32(const std::vector<uint8_t>& data) {
  return Crc32(data.data(), data.size());
}

/// Parsed view of a decoded frame.
struct Frame {
  uint8_t type = 0;
  std::vector<uint8_t> payload;
};

/// Decodes one complete frame from `data`; fails on bad magic, version,
/// length, or trailing garbage.
Result<Frame> DecodeFrame(const std::vector<uint8_t>& data);

/// Incremental frame assembler for stream transports (TCP): feed arbitrary
/// chunks, pop complete frames.
class FrameReader {
 public:
  /// Appends raw stream bytes.
  void Feed(const uint8_t* data, size_t len);

  /// Extracts the next complete frame if one is buffered. Returns:
  ///  - ok(true)  : *out filled
  ///  - ok(false) : need more bytes
  ///  - error     : stream corrupt (caller should drop the connection)
  Result<bool> Next(Frame* out);

  size_t buffered_bytes() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

}  // namespace webdis::serialize

#endif  // WEBDIS_SERIALIZE_FRAMING_H_
