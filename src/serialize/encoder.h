#ifndef WEBDIS_SERIALIZE_ENCODER_H_
#define WEBDIS_SERIALIZE_ENCODER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace webdis::serialize {

/// Append-only binary encoder. WEBDIS ships query clones, CHT reports and
/// result batches between sites; the paper relied on Java object
/// serialization, which we replace with this explicit little-endian format:
///   - fixed-width u8/u16/u32/u64
///   - LEB128 varints for counts and small integers
///   - length(varint)-prefixed byte strings
/// Byte counts are exact and deterministic, which makes the network-traffic
/// benchmarks (T1/T4) meaningful.
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Unsigned LEB128.
  void PutVarint(uint64_t v);
  /// Varint length followed by raw bytes.
  void PutString(std::string_view s);
  /// Raw bytes with no length prefix (caller knows the length).
  void PutRaw(const void* data, size_t len);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  const std::vector<uint8_t>& data() const { return buf_; }
  size_t size() const { return buf_.size(); }
  std::vector<uint8_t> Release() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Cursor-based binary decoder over a borrowed byte span. Every read is
/// bounds-checked and returns Status on truncation/corruption — malformed
/// network input must never crash a query server.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit Decoder(const std::vector<uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  Status GetU8(uint8_t* out);
  Status GetU16(uint16_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetVarint(uint64_t* out);
  Status GetString(std::string* out);
  Status GetBool(bool* out);

  /// Bounds/overflow-checked length-prefix read: decodes a varint count and
  /// validates it against an explicit cap AND against the bytes actually
  /// remaining (each counted item needs at least `min_bytes_per_item` bytes
  /// of encoding), so a crafted prefix can neither drive a huge allocation
  /// (reserve/resize) nor a long decode loop before the truncation is
  /// noticed. Every repeated-field decoder in the wire/WAL/snapshot codecs
  /// reads its count through this helper; `what` names the field in the
  /// Corruption message so fuzzer crashes and corrupt-frame logs are
  /// attributable.
  Status GetCount(const char* what, uint64_t max_count,
                  size_t min_bytes_per_item, uint64_t* out);

  /// Corruption unless every byte has been consumed. Full-message decoders
  /// call this after their last field: a frame with trailing garbage is
  /// rejected outright, never silently truncated to its parseable prefix
  /// (PROTOCOL.md §1: decoders reject, they do not repair).
  Status ExpectAtEnd(const char* what) const;

  /// Bytes not yet consumed.
  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n);

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace webdis::serialize

#endif  // WEBDIS_SERIALIZE_ENCODER_H_
