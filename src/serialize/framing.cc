#include "serialize/framing.h"

#include <array>
#include <cstring>

#include "serialize/encoder.h"

namespace webdis::serialize {

uint32_t Crc32(const uint8_t* data, size_t len) {
  // Table-driven CRC-32; the table is computed once from the reflected
  // polynomial so the constant block stays small and auditable.
  static const auto kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<uint8_t> EncodeFrame(uint8_t type,
                                 const std::vector<uint8_t>& payload) {
  Encoder enc;
  enc.PutU32(kFrameMagic);
  enc.PutU8(kWireVersion);
  enc.PutU8(type);
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutRaw(payload.data(), payload.size());
  return enc.Release();
}

namespace {

/// Parses a header from at least kFrameHeaderSize bytes. Returns the payload
/// length via *length.
Status ParseHeader(const uint8_t* data, uint8_t* type, uint32_t* length) {
  Decoder dec(data, kFrameHeaderSize);
  uint32_t magic = 0;
  WEBDIS_RETURN_IF_ERROR(dec.GetU32(&magic));
  if (magic != kFrameMagic) {
    return Status::Corruption("bad frame magic");
  }
  uint8_t version = 0;
  WEBDIS_RETURN_IF_ERROR(dec.GetU8(&version));
  if (version != kWireVersion) {
    return Status::Corruption("unsupported wire version");
  }
  WEBDIS_RETURN_IF_ERROR(dec.GetU8(type));
  WEBDIS_RETURN_IF_ERROR(dec.GetU32(length));
  if (*length > kMaxFrameLength) {
    return Status::Corruption("frame length exceeds limit");
  }
  return Status::OK();
}

}  // namespace

Result<Frame> DecodeFrame(const std::vector<uint8_t>& data) {
  if (data.size() < kFrameHeaderSize) {
    return Status::Corruption("frame shorter than header");
  }
  uint8_t type = 0;
  uint32_t length = 0;
  WEBDIS_RETURN_IF_ERROR(ParseHeader(data.data(), &type, &length));
  if (data.size() != kFrameHeaderSize + length) {
    return Status::Corruption("frame length mismatch");
  }
  Frame frame;
  frame.type = type;
  frame.payload.assign(data.begin() + kFrameHeaderSize, data.end());
  return frame;
}

void FrameReader::Feed(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

Result<bool> FrameReader::Next(Frame* out) {
  if (buf_.size() < kFrameHeaderSize) return false;
  uint8_t type = 0;
  uint32_t length = 0;
  WEBDIS_RETURN_IF_ERROR(ParseHeader(buf_.data(), &type, &length));
  const size_t total = kFrameHeaderSize + length;
  if (buf_.size() < total) return false;
  out->type = type;
  out->payload.assign(buf_.begin() + kFrameHeaderSize, buf_.begin() + total);
  buf_.erase(buf_.begin(), buf_.begin() + total);
  return true;
}

}  // namespace webdis::serialize
