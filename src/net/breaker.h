#ifndef WEBDIS_NET_BREAKER_H_
#define WEBDIS_NET_BREAKER_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/clock.h"
#include "common/rng.h"

namespace webdis::net {

/// Tuning for the per-destination circuit breaker (PROTOCOL.md §7.3).
/// Disabled by default: the seed forwarding path is unchanged unless a
/// deployment opts in.
struct BreakerOptions {
  bool enabled = false;
  /// Consecutive delivery failures to one host that trip its breaker.
  uint32_t failure_threshold = 3;
  /// How long a tripped breaker stays open before the first half-open
  /// probe is admitted.
  SimDuration open_timeout = 2 * kSecond;
  /// The open interval is multiplied by a uniform factor in
  /// [1 - j/2, 1 + j/2] per trip, so breakers tripped by the same outage
  /// do not probe in lockstep.
  double open_timeout_jitter = 0.25;
  /// Consecutive probe successes required in half-open to close again.
  uint32_t half_open_probes = 1;
  /// Seed for the jitter stream (deterministic under SimNetwork).
  uint64_t seed = 1;
};

/// Aggregate breaker activity across all destination hosts.
struct BreakerStats {
  uint64_t trips = 0;           // closed/half-open -> open transitions
  uint64_t short_circuits = 0;  // sends vetoed while open (or probe-capped)
  uint64_t probes = 0;          // half-open sends admitted
  uint64_t recoveries = 0;      // half-open -> closed transitions
};

/// Per-destination-host circuit breaker bank, consulted on the forwarding
/// path. Classic three-state machine:
///
///   closed ──(failure_threshold consecutive failures)──▶ open
///   open ──(open_timeout elapsed; next Allow)──▶ half-open
///   half-open ──(half_open_probes successes)──▶ closed
///   half-open ──(any failure)──▶ open (fresh jittered timeout)
///
/// "Failure" is delivery-layer evidence the host is unreachable: a
/// synchronous ConnectionRefused on first attempt, retry exhaustion, or
/// refusal on a retransmission (DeliveryEvent). An Overloaded NACK is NOT a
/// failure — the host answered. Time is injected by the caller (the owning
/// server's clock), so the machine is deterministic under SimNetwork and
/// never reads a wall clock.
class HostBreakers {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit HostBreakers(BreakerOptions options)
      : options_(options), jitter_rng_(options.seed) {}

  bool enabled() const { return options_.enabled; }

  /// Returns true if a send to `host` may proceed now. Transitions
  /// open -> half-open when the open interval has elapsed, and admits (and
  /// counts) half-open probes up to the configured limit; further sends
  /// short-circuit until a probe outcome arrives.
  bool Allow(const std::string& host, SimTime now);

  /// Delivery succeeded (synchronous accept confirmed by ack, or plain
  /// send success on transports without delivery tracking).
  void RecordSuccess(const std::string& host, SimTime now);

  /// Delivery failed (refused / exhausted). May trip the breaker.
  void RecordFailure(const std::string& host, SimTime now);

  /// Current state, with the open -> half-open time transition applied.
  State GetState(const std::string& host, SimTime now);

  /// Forgets everything (crash semantics: breaker state is volatile).
  void Reset() { hosts_.clear(); }

  const BreakerStats& stats() const { return stats_; }

 private:
  struct Breaker {
    State state = State::kClosed;
    uint32_t consecutive_failures = 0;
    SimTime open_until = 0;
    uint32_t probes_in_flight = 0;
    uint32_t probe_successes = 0;
  };

  void Trip(Breaker* b, SimTime now);

  BreakerOptions options_;
  Rng jitter_rng_;
  std::map<std::string, Breaker> hosts_;
  BreakerStats stats_;
};

}  // namespace webdis::net

#endif  // WEBDIS_NET_BREAKER_H_
