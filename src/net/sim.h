#ifndef WEBDIS_NET_SIM_H_
#define WEBDIS_NET_SIM_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/transport.h"

namespace webdis::common {
class ThreadPool;
}  // namespace webdis::common

namespace webdis::net {

class FaultPlan;

/// Cost model for the simulated network. Delivery time of a message is
/// latency(from,to) + bytes / bandwidth. Defaults model a late-90s setting:
/// sub-millisecond within a host, tens of milliseconds across sites, and
/// ~1 MB/s of usable bandwidth.
struct SimNetworkOptions {
  SimDuration same_host_latency = 100 * kMicrosecond;
  SimDuration inter_host_latency = 20 * kMillisecond;
  uint64_t bandwidth_bytes_per_sec = 1'000'000;
  /// Uniform random extra delay in [0, latency_jitter] added per message
  /// (seeded, deterministic). Non-zero jitter shuffles delivery order —
  /// the stress tests use it to exercise protocol robustness against
  /// reordering.
  SimDuration latency_jitter = 0;
  uint64_t jitter_seed = 1;
  /// Safety valve: RunUntilIdle aborts after this many deliveries (protects
  /// against runaway forwarding loops in buggy configurations).
  uint64_t max_deliveries = 50'000'000;

  /// Optional processing-cost model: how long the receiving endpoint takes
  /// to handle one message. Deliveries to an endpoint are serialized (each
  /// daemon "sequentially processes the queue of pending web-queries",
  /// §4.4), so a loaded endpoint queues — this is what makes the client-
  /// site-bottleneck claim of Section 1 measurable. Null = zero-cost
  /// handling (the default).
  using ServiceTimeModel = std::function<SimDuration(
      const Endpoint& to, MessageType type, size_t wire_bytes)>;
  ServiceTimeModel service_time;

  /// Deterministic parallel stepper (DESIGN.md "Parallel execution").
  /// 0 = the classic single-threaded event loop. N >= 1 = time-stepped
  /// execution with N concurrent executors (N-1 pool threads plus the
  /// driving thread): each time-slice — all queued events sharing the
  /// minimum virtual timestamp — is partitioned by destination host, the
  /// partitions' handlers run concurrently with all outbound Send /
  /// ScheduleAfter / Listen effects buffered per worker, and the buffers
  /// are replayed into the event queue in original (time, sequence) order.
  /// Any N >= 1 therefore produces bit-identical results, traffic stats and
  /// delivery order; N = 1 is the sequential reference for that guarantee.
  size_t worker_threads = 0;

  /// Parallelism floors for the stepper: a slice with fewer distinct
  /// destination partitions or fewer events than these runs through the
  /// legacy serial dispatch instead — forking the pool and buffering ops
  /// for one or two events costs more than it saves. Results are identical
  /// either way (the legacy loop and the stepper are equivalent); only the
  /// execution strategy changes.
  size_t min_parallel_partitions = 2;
  size_t min_parallel_events = 2;

  /// Adaptive slice coalescing (DESIGN.md "Parallel execution"): after a
  /// slice runs, the stepper keeps extending the same batch with the next
  /// queued slice as long as no buffered effect could land before it (and
  /// no listener mutation or timer cancellation is pending), deferring the
  /// replay/commit to the batch boundary. Off = commit after every slice
  /// (the pre-coalescing behaviour, kept as the equivalence reference).
  bool coalesce_slices = true;
  /// Cap on slices merged into one batch (bounds buffered-op memory).
  size_t max_coalesce_slices = 64;
};

/// Counters describing how much concurrency the time-stepped stepper
/// actually found (all zero when worker_threads == 0).
struct ParallelStats {
  uint64_t slices = 0;           // time-slices stepped
  uint64_t parallel_slices = 0;  // slices with >= 2 host partitions
  uint64_t events = 0;           // events dispatched by the stepper
  uint64_t parallel_events = 0;  // events inside parallel slices
  uint64_t max_slice_events = 0;
  uint64_t max_slice_partitions = 0;
  /// Coalescing: batches that merged >= 2 slices into one commit, and the
  /// total slices they absorbed (coalesced_slices / coalesced_batches is
  /// the mean merge depth).
  uint64_t coalesced_batches = 0;
  uint64_t coalesced_slices = 0;
  /// Threshold fallback: slices dispatched through the legacy serial loop
  /// because they were under the min_parallel_* floors (or contained a
  /// driver-context timer), and the events they carried.
  uint64_t serial_slices = 0;
  uint64_t serial_events = 0;

  /// Fraction of events that ran inside a parallel slice — how much of the
  /// workload was eligible for multi-core execution.
  double Occupancy() const {
    return events == 0 ? 0.0
                       : static_cast<double>(parallel_events) /
                             static_cast<double>(events);
  }
};

/// Traffic counters, overall and per message type.
struct TrafficStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;

  void Add(uint64_t message_bytes) {
    ++messages;
    bytes += message_bytes;
  }
};

/// Deterministic discrete-event network. Single-threaded: Send() enqueues a
/// delivery event; RunUntilIdle() drains events in (time, sequence) order,
/// invoking listener handlers inline (handlers may Send more messages).
///
/// This is the measurement substrate for every benchmark: it meters exactly
/// the bytes and messages each protocol variant puts on the wire, and its
/// virtual clock gives reproducible response-time and completion-detection
/// numbers — the quantities the paper argues about qualitatively.
class SimNetwork : public Transport {
 public:
  explicit SimNetwork(SimNetworkOptions options = SimNetworkOptions());
  ~SimNetwork() override;

  // -- Transport ------------------------------------------------------------
  Status Listen(const Endpoint& endpoint, MessageHandler handler) override;
  void CloseListener(const Endpoint& endpoint) override;
  Status Send(const Endpoint& from, const Endpoint& to, MessageType type,
              std::vector<uint8_t> payload) override;

  /// Timers share the event queue: a timer scheduled for t fires in
  /// (time, sequence) order with message deliveries and advances the
  /// virtual clock. RunUntilIdle drains timers too.
  uint64_t ScheduleAfter(SimDuration delay, std::function<void()> fn) override;
  bool CancelTimer(uint64_t id) override;
  bool SupportsTimers() const override { return true; }

  // -- Simulation control ---------------------------------------------------

  /// Delivers the earliest pending message; false if none pending.
  bool RunOne();

  /// Drains all pending messages (including ones enqueued by handlers).
  void RunUntilIdle();

  /// Current virtual time (microseconds).
  SimTime now() const { return now_; }

  /// True if no messages are in flight.
  bool Idle() const { return events_.empty(); }

  // -- Fault injection ------------------------------------------------------

  /// Filter invoked per accepted message; return true to silently drop it
  /// (models loss *after* the connection was accepted — the failure window
  /// the paper's report-then-forward ordering defends against).
  using DropFilter =
      std::function<bool(const Endpoint& from, const Endpoint& to,
                         MessageType type)>;
  void SetDropFilter(DropFilter filter) { drop_filter_ = std::move(filter); }

  /// Attaches a composable fault schedule (see net/fault.h), consulted per
  /// accepted message after the drop filter. The plan decides drop /
  /// duplication / extra delay and is passed the virtual clock, so its
  /// time-phased rules work. Not owned; pass nullptr to detach.
  void SetFaultPlan(FaultPlan* plan) { fault_plan_ = plan; }

  /// Closes every listener on the host (models a site crash).
  void KillHost(const std::string& host);

  /// Adds a fixed extra delay to every message to or from `host` — models
  /// the "considerable heterogeneity in network and site characteristics"
  /// (Section 2.7) that makes timeout-based completion untenable: a single
  /// slow site forces the global timeout up.
  void SetHostExtraLatency(const std::string& host, SimDuration extra);

  // -- Metrics --------------------------------------------------------------

  const TrafficStats& total_traffic() const { return total_; }
  const TrafficStats& traffic_for(MessageType type) const;
  /// Traffic that actually crossed hosts (excludes same-host messages).
  const TrafficStats& inter_host_traffic() const { return inter_host_; }
  uint64_t connection_refused_count() const { return refused_; }
  uint64_t dropped_count() const { return dropped_; }
  uint64_t delivered_count() const { return delivered_; }
  /// Stepper concurrency counters (zeros under the legacy event loop).
  const ParallelStats& parallel_stats() const { return parallel_stats_; }

  void ResetMetrics();

 private:
  struct Event {
    SimTime deliver_at;
    uint64_t sequence;  // tie-break for determinism
    Endpoint from;
    Endpoint to;
    MessageType type;
    std::vector<uint8_t> payload;
    // Timer events: non-null `timer` marks the event as a scheduled
    // callback rather than a message delivery.
    std::function<void()> timer;
    uint64_t timer_id = 0;
    // Stepper partition the timer fires on: the host whose handler armed
    // it, or "" for driver-context timers, whose slices run serially.
    // Message deliveries partition by `to.host` instead.
    std::string affinity;
  };
  /// The event queue, ordered by (deliver_at, sequence). An ordered map
  /// rather than a priority queue: the coalescing stepper needs to peek at
  /// the *next* slice's time and contents without committing to popping it,
  /// and to extract events without the const-top copy a priority_queue
  /// forces.
  using EventQueue = std::map<std::pair<SimTime, uint64_t>, Event>;

  // -- Parallel stepper internals (parallel_sim.cc) -------------------------
  // During a time-slice, worker threads divert every Transport call into
  // their partition's SliceContext (buffered ops + listener overlay); the
  // driving thread replays the buffers in (sequence, issue-index) order
  // after the slice barrier, which reproduces the sequential evolution of
  // the jitter RNG, per-endpoint serial queues, sequence numbers and
  // traffic meters bit for bit.
  struct SliceContext;
  struct BatchState;
  static SliceContext*& ThreadSliceContext();
  /// The calling thread's slice context, iff it belongs to `net` (a handler
  /// may legitimately drive a second, independent SimNetwork — that one
  /// keeps legacy semantics).
  static SliceContext* CurrentSliceContext(const SimNetwork* net);
  Status SliceSend(SliceContext* ctx, const Endpoint& from, const Endpoint& to,
                   MessageType type, std::vector<uint8_t> payload);
  Status SliceListen(SliceContext* ctx, const Endpoint& endpoint,
                     MessageHandler handler);
  void SliceCloseListener(SliceContext* ctx, const Endpoint& endpoint);
  uint64_t SliceScheduleAfter(SliceContext* ctx, SimDuration delay,
                              std::function<void()> fn);
  bool SliceCancelTimer(SliceContext* ctx, uint64_t id);
  void DispatchSlice(SliceContext* ctx);
  void RunStepped();
  /// One stepper iteration: pops the earliest slice, dispatches it (legacy
  /// path if under the parallelism floors or driver-bound), and — when
  /// coalescing is on — keeps absorbing subsequent non-interacting slices
  /// into the same batch before a single commit.
  void StepBatch();
  /// Extracts every queued event at the minimum timestamp; stores it in
  /// `*t_out`.
  std::vector<Event> PopSlice(SimTime* t_out);
  /// Runs one already-popped slice inside `batch`: advances the clock,
  /// assigns events to (new or existing) partitions, and fork/joins the
  /// active ones.
  void RunBatchSlice(BatchState* batch, std::vector<Event> slice, SimTime t);
  /// True if the next queued slice may join `batch` without changing
  /// observable behaviour (the non-interaction rule, DESIGN.md §8).
  bool CanExtendBatch(const BatchState& batch) const;
  /// The batch barrier: merges counters, retires fired timers, and replays
  /// all buffered ops in (issue-time, sequence, issue-index) order.
  void CommitBatch(BatchState* batch);
  /// The body of RunOne after the pop: legacy inline dispatch. Used by the
  /// event loop and by stepper slices containing driver-context timers.
  void DispatchEventLegacy(Event event);
  /// Queues an event keyed by (deliver_at, sequence).
  void PushEvent(Event event);

  void EnqueueDelivery(const Endpoint& from, const Endpoint& to,
                       MessageType type, std::vector<uint8_t> payload,
                       SimDuration extra_delay, uint64_t wire_bytes);
  /// The tail of Send after the synchronous refusal check (metering, fault
  /// decisions, enqueue). Slice replay calls this directly: workers already
  /// resolved refusal against their slice view.
  Status SendAccepted(const Endpoint& from, const Endpoint& to,
                      MessageType type, std::vector<uint8_t> payload);

  SimNetworkOptions options_;
  Rng jitter_rng_;
  SimTime now_ = 0;
  uint64_t next_sequence_ = 0;
  uint64_t delivered_ = 0;
  uint64_t refused_ = 0;
  uint64_t dropped_ = 0;
  uint64_t timers_fired_ = 0;
  /// Atomic: timer ids are handed out from worker threads during a slice.
  /// Their *values* may differ between worker counts; they are opaque
  /// handles and never observable in results or stats.
  std::atomic<uint64_t> next_timer_id_ = 1;
  std::set<uint64_t> pending_timers_;
  EventQueue events_;
  std::map<Endpoint, MessageHandler> listeners_;
  std::map<Endpoint, SimTime> busy_until_;  // per-listener serial queue
  std::map<std::string, SimDuration> host_extra_latency_;
  DropFilter drop_filter_;
  FaultPlan* fault_plan_ = nullptr;
  TrafficStats total_;
  TrafficStats inter_host_;
  std::map<MessageType, TrafficStats> by_type_;
  ParallelStats parallel_stats_;
  std::unique_ptr<common::ThreadPool> pool_;  // created on first stepped run
};

}  // namespace webdis::net

#endif  // WEBDIS_NET_SIM_H_
