#include "net/fault.h"

#include <algorithm>

namespace webdis::net {

namespace {

std::pair<std::string, std::string> OrderedPair(const std::string& a,
                                                const std::string& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

void FaultPlan::Partition(const std::string& host_a,
                          const std::string& host_b) {
  partitions_.insert(OrderedPair(host_a, host_b));
}

void FaultPlan::Heal(const std::string& host_a, const std::string& host_b) {
  partitions_.erase(OrderedPair(host_a, host_b));
}

bool FaultPlan::Partitioned(const std::string& host_a,
                            const std::string& host_b) const {
  return partitions_.contains(OrderedPair(host_a, host_b));
}

FaultDecision FaultPlan::Decide(const Endpoint& from, const Endpoint& to,
                                MessageType type, SimTime now) {
  FaultDecision decision;
  if (Partitioned(from.host, to.host)) {
    decision.drop = true;
    ++stats_.partition_drops;
    ++stats_.dropped;
    return decision;
  }
  for (RuleState& state : rules_) {
    const Rule& rule = state.rule;
    if (rule.type && *rule.type != type) continue;
    if (!rule.from_host.empty() && rule.from_host != from.host) continue;
    if (!rule.to_host.empty() && rule.to_host != to.host) continue;
    if (now < rule.active_from || now > rule.active_until) continue;
    const uint64_t match_index = state.matches++;
    if (match_index < rule.skip_first) continue;
    if (state.faults >= rule.max_faults) continue;
    bool faulted = false;
    if (rng_.Bernoulli(rule.drop_prob)) {
      decision.drop = true;
      faulted = true;
    }
    if (rng_.Bernoulli(rule.duplicate_prob)) {
      ++decision.duplicates;
      faulted = true;
    }
    if (rule.delay > 0 && rng_.Bernoulli(rule.delay_prob)) {
      decision.extra_delay += rule.delay;
      faulted = true;
    }
    if (faulted) ++state.faults;
  }
  if (decision.drop) {
    // A drop swallows the message; any duplication/delay decided alongside
    // it is moot.
    decision.duplicates = 0;
    decision.extra_delay = 0;
    ++stats_.dropped;
  } else {
    if (decision.duplicates > 0) stats_.duplicated += decision.duplicates;
    if (decision.extra_delay > 0) ++stats_.delayed;
  }
  return decision;
}

Status FaultyTransport::Send(const Endpoint& from, const Endpoint& to,
                             MessageType type, std::vector<uint8_t> payload) {
  FaultDecision decision = plan_->Decide(from, to, type);
  if (decision.drop) {
    // Swallowed in flight. Over a real transport we cannot probe acceptance
    // without delivering, so a dropped message also suppresses synchronous
    // refusal for this one send — the retry layer's timeout (or the next
    // undropped attempt's refusal) covers both losses the same way.
    return Status::OK();
  }
  for (uint32_t i = 0; i < decision.duplicates; ++i) {
    std::vector<uint8_t> copy = payload;
    // Ignore duplicate-delivery failures; the original's status is what the
    // caller acts on.
    (void)base_->Send(from, to, type, std::move(copy));
  }
  if (decision.extra_delay > 0 && base_->SupportsTimers()) {
    std::vector<uint8_t> delayed = std::move(payload);
    Transport* base = base_;
    base_->ScheduleAfter(
        decision.extra_delay,
        [base, from, to, type, delayed = std::move(delayed)]() mutable {
          (void)base->Send(from, to, type, std::move(delayed));
        });
    // The caller cannot observe refusal of a delayed message — same as a
    // connect that succeeds now against a host that dies before delivery.
    return Status::OK();
  }
  return base_->Send(from, to, type, std::move(payload));
}

}  // namespace webdis::net
