#include "net/reliable.h"

#include <algorithm>
#include <utility>

#include "serialize/encoder.h"

namespace webdis::net {

Status ReliableSender::Send(const Endpoint& from, const Endpoint& to,
                            MessageType type, std::vector<uint8_t> payload) {
  if (!enabled()) {
    return transport_->Send(from, to, type, std::move(payload));
  }
  const uint64_t seq = next_seq_++;
  serialize::Encoder enc;
  enc.PutU64(seq);
  enc.PutRaw(payload.data(), payload.size());
  std::vector<uint8_t> enveloped = enc.Release();

  Status status = transport_->Send(from, to, type, enveloped);
  if (status.code() == StatusCode::kConnectionRefused) {
    // First-attempt refusal is synchronous protocol signal (passive
    // termination, crashed next hop) — report it, track nothing.
    return status;
  }
  ++stats_.tracked;
  Pending pending;
  pending.from = from;
  pending.to = to;
  pending.type = type;
  pending.enveloped = std::move(enveloped);
  pending.attempts = 1;
  pending.timeout = options_.initial_timeout;
  pending_.emplace(seq, std::move(pending));
  Arm(seq);
  return status;
}

void ReliableSender::Arm(uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  it->second.timer = transport_->ScheduleAfter(
      it->second.timeout, [this, seq] { OnTimeout(seq); });
}

void ReliableSender::OnTimeout(uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // acked while the timer was in flight
  Pending& pending = it->second;
  if (pending.attempts >= options_.max_attempts) {
    ++stats_.exhausted;
    const Endpoint to = pending.to;
    pending_.erase(it);
    Notify(to, DeliveryEvent::kExhausted);
    return;
  }
  ++pending.attempts;
  ++stats_.retries;
  Status resend = transport_->Send(pending.from, pending.to, pending.type,
                                   pending.enveloped);
  if (resend.code() == StatusCode::kConnectionRefused) {
    // The destination is gone (crashed, or the user site closed its result
    // socket after completion). The original Send already succeeded from
    // the caller's view; stop retrying quietly.
    ++stats_.refused_on_retry;
    const Endpoint to = pending.to;
    pending_.erase(it);
    Notify(to, DeliveryEvent::kRefusedOnRetry);
    return;
  }
  if (!pending.overloaded) {
    pending.timeout = std::min<SimDuration>(
        static_cast<SimDuration>(static_cast<double>(pending.timeout) *
                                 options_.backoff_factor),
        options_.max_timeout);
  }
  // Overloaded transfers keep their interval here: growth happens in
  // OnOverloaded, where the NACK confirms the destination is still shedding.
  Arm(seq);
}

void ReliableSender::OnAck(const std::vector<uint8_t>& payload) {
  serialize::Decoder dec(payload);
  uint64_t seq = 0;
  if (!dec.GetU64(&seq).ok() || !dec.ExpectAtEnd("delivery ack").ok()) {
    return;  // malformed ack: ignore
  }
  auto it = pending_.find(seq);
  if (it == pending_.end()) {
    ++stats_.duplicate_acks;
    return;
  }
  if (it->second.timer != 0) transport_->CancelTimer(it->second.timer);
  const Endpoint to = it->second.to;
  pending_.erase(it);
  ++stats_.acked;
  Notify(to, DeliveryEvent::kAcked);
}

void ReliableSender::OnOverloaded(const std::vector<uint8_t>& payload) {
  serialize::Decoder dec(payload);
  uint64_t seq = 0;
  if (!dec.GetU64(&seq).ok() || !dec.ExpectAtEnd("overload nack").ok()) {
    return;  // malformed NACK: ignore
  }
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // already acked, NACKed, or abandoned
  Pending& pending = it->second;
  ++stats_.overload_nacks;
  if (pending.timer != 0) transport_->CancelTimer(pending.timer);
  pending.timer = 0;
  if (!pending.overloaded) {
    // Class change: restart the schedule at the (longer) overload base.
    pending.overloaded = true;
    pending.timeout = options_.overload_initial_timeout;
  } else {
    pending.timeout = static_cast<SimDuration>(
        static_cast<double>(pending.timeout) * options_.overload_backoff_factor);
  }
  pending.timeout = JitterOverload(pending.timeout);
  Arm(seq);
  Notify(pending.to, DeliveryEvent::kOverloadNack);
}

void ReliableSender::OnSiteRetired(const std::vector<uint8_t>& payload) {
  serialize::Decoder dec(payload);
  uint64_t seq = 0;
  if (!dec.GetU64(&seq).ok() || !dec.ExpectAtEnd("site-retired nack").ok()) {
    return;  // malformed NACK: ignore
  }
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // already acked, NACKed, or abandoned
  // Terminal: the site is gone for good. Cancel the retransmission timer
  // and drop the transfer — retrying against a retired site only burns
  // attempts that the retired side will NACK again.
  if (it->second.timer != 0) transport_->CancelTimer(it->second.timer);
  const Endpoint to = it->second.to;
  pending_.erase(it);
  ++stats_.site_retired;
  Notify(to, DeliveryEvent::kSiteRetired);
}

SimDuration ReliableSender::JitterOverload(SimDuration timeout) {
  const double j = options_.overload_jitter;
  if (j > 0.0) {
    const double factor = 1.0 - j / 2.0 + j * jitter_rng_.NextDouble();
    timeout = static_cast<SimDuration>(static_cast<double>(timeout) * factor);
  }
  if (timeout < 1) timeout = 1;
  return std::min(timeout, options_.overload_max_timeout);
}

void ReliableSender::CancelAll() {
  for (auto& [seq, pending] : pending_) {
    if (pending.timer != 0) transport_->CancelTimer(pending.timer);
  }
  pending_.clear();
}

bool ReliableReceiver::Accept(const Endpoint& self, const Endpoint& from,
                              const std::vector<uint8_t>& payload,
                              std::vector<uint8_t>* inner) {
  if (!enabled_) {
    *inner = payload;
    return true;
  }
  serialize::Decoder dec(payload);
  uint64_t seq = 0;
  if (!dec.GetU64(&seq).ok()) return false;  // malformed envelope: drop
  // Always acknowledge — the sender may be retrying because the previous
  // ack was lost. Refusal is fine: the sender may already be gone.
  serialize::Encoder ack;
  ack.PutU64(seq);
  (void)transport_->Send(self, from, MessageType::kDeliveryAck,
                         ack.Release());
  if (!seen_[from].insert(seq).second) {
    ++suppressed_;
    return false;  // replay: already processed
  }
  inner->assign(payload.begin() + dec.position(), payload.end());
  return true;
}

bool ReliableReceiver::PeekSeq(const std::vector<uint8_t>& payload,
                               uint64_t* seq) {
  serialize::Decoder dec(payload);
  return dec.GetU64(seq).ok();
}

bool ReliableReceiver::StripEnvelope(const std::vector<uint8_t>& payload,
                                     std::vector<uint8_t>* inner) {
  serialize::Decoder dec(payload);
  uint64_t seq = 0;
  if (!dec.GetU64(&seq).ok()) return false;
  inner->assign(payload.begin() + dec.position(), payload.end());
  return true;
}

bool ReliableReceiver::TestSeen(const Endpoint& from, uint64_t seq) const {
  auto it = seen_.find(from);
  return it != seen_.end() && it->second.count(seq) != 0;
}

void ReliableReceiver::SendAck(const Endpoint& self, const Endpoint& from,
                               uint64_t seq) {
  serialize::Encoder ack;
  ack.PutU64(seq);
  // Refusal is fine: the sender may already be gone.
  (void)transport_->Send(self, from, MessageType::kDeliveryAck, ack.Release());
}

void ReliableReceiver::SendOverloaded(const Endpoint& self,
                                      const Endpoint& from, uint64_t seq) {
  serialize::Encoder nack;
  nack.PutU64(seq);
  (void)transport_->Send(self, from, MessageType::kOverloaded, nack.Release());
}

void ReliableReceiver::SendSiteRetired(const Endpoint& self,
                                       const Endpoint& from, uint64_t seq) {
  serialize::Encoder nack;
  nack.PutU64(seq);
  // Refusal is fine: the sender may already be gone.
  (void)transport_->Send(self, from, MessageType::kSiteRetired,
                         nack.Release());
}

bool ReliableReceiver::AcceptSeq(const Endpoint& self, const Endpoint& from,
                                 uint64_t seq) {
  SendAck(self, from, seq);
  if (!seen_[from].insert(seq).second) {
    ++suppressed_;
    return false;
  }
  return true;
}

}  // namespace webdis::net
