// Deterministic time-stepped parallel mode for SimNetwork ("ParallelSimNetwork",
// enabled by SimNetworkOptions::worker_threads; see DESIGN.md "Parallel
// execution").
//
// The loop: take every queued event sharing the minimum virtual timestamp (a
// *time-slice*), partition the slice by destination host — the paper's own
// serialization unit, since each site's daemon "sequentially processes the
// queue of pending web-queries" (§4.4) — and run the partitions concurrently
// on a common::ThreadPool. While a slice runs, worker threads never mutate
// shared network state: every Transport call they make is diverted into their
// partition's SliceContext, which buffers the operation tagged with
// (issue virtual time, issuing event sequence, issue index). After the
// barrier, the driving thread replays all buffers in that tag order, which is
// exactly the order a sequential stepper would have issued them — so the
// jitter RNG stream, the per-endpoint busy_until_ queues, sequence-number
// assignment, fault-plan decisions and traffic meters evolve bit-identically
// for any worker count.
//
// Adaptive slice coalescing: committing after every slice makes the driving
// thread the bottleneck on workloads whose wavefronts split into many small
// sub-slices (e.g. 100 µs same-host echoes between 20 ms inter-host hops).
// So after a slice runs, the stepper *extends the batch*: the next queued
// slice joins the same set of partitions — no commit in between — whenever
// it provably cannot interact with anything the batch has buffered:
//
//   1. No buffered effect may land before the next slice's time t'. For a
//      buffered send the earliest landing is issue_time + base latency
//      (jitter, bandwidth, per-host extra latency and service queueing only
//      add); for a buffered timer it is exactly issue_time + delay. Landing
//      *at* t' is safe: the replayed event enters the queue with a sequence
//      above every pre-existing t' event and runs in a later batch at the
//      same virtual time — the order the sequential stepper produces.
//   2. No listener mutation may be buffered. Cross-slice sends resolve
//      refusal against the frozen listener table; a buffered Listen/Close
//      would make that table stale (refused vs silently dropped changes
//      §2.8 passive-termination behaviour).
//   3. The next slice may not contain a timer event whose id any batch
//      partition has cancelled — the cancel has not committed, so the stale
//      timer would fire.
//   4. Driver-context timers (empty affinity) always break the batch: they
//      run through the legacy path with direct access to global state.
//
// Within a batch, same-host events of successive slices land in the *same*
// partition, preserving per-host order; the virtual clock advances per
// slice between fork/joins, so handlers observe the same now() as under
// sequential stepping. The batch barrier then merges counters and replays
// every buffered op once, sorted by (issue time, sequence, index).
//
// Slices under SimNetworkOptions::min_parallel_{partitions,events} skip all
// of this and dispatch through the legacy serial loop — buffering and
// fork/join overhead only pays above a minimum width.
//
// Visibility rule: a partition sees its *own* listener mutations immediately
// (via a per-partition overlay) and everyone else's from the start of the
// batch; mutations commit globally at the batch barrier. Handlers must
// confine their state to their endpoint's host (the confinement rule checked
// by tools/webdis_lint.py); timers carry the affinity of the context that
// armed them.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "net/sim.h"

namespace webdis::net {

namespace {
constexpr SimTime kNeverLands = std::numeric_limits<SimTime>::max();
}  // namespace

struct SimNetwork::SliceContext {
  struct Op {
    enum Kind {
      kSend,
      kListen,
      kCloseListener,
      kScheduleTimer,
      kCancelTimer,
    };
    Kind kind;
    SimTime issue_time = 0;  // virtual time of the slice that issued the op
    uint64_t seq = 0;    // sequence of the slice event that issued the op
    uint32_t index = 0;  // issue order within that event's handler
    Endpoint from;
    Endpoint to;  // also the endpoint for kListen / kCloseListener
    MessageType type{};
    std::vector<uint8_t> payload;
    MessageHandler handler;          // kListen
    SimDuration delay = 0;           // kScheduleTimer
    std::function<void()> timer_fn;  // kScheduleTimer
    uint64_t timer_id = 0;           // kScheduleTimer / kCancelTimer
    std::string affinity;            // kScheduleTimer
  };

  SimNetwork* net = nullptr;
  std::string key;            // partition affinity (destination host)
  std::vector<Event> events;  // the *current* slice's events, sequence order
  // Listener changes made by this partition during the batch: engaged =
  // (re)bound handler, nullopt = closed. Own mutations are visible to the
  // partition immediately; the base map stays frozen until the barrier.
  std::map<Endpoint, std::optional<MessageHandler>> listener_overlay;
  std::set<uint64_t> scheduled;  // timer ids armed during this batch
  std::set<uint64_t> cancelled;  // timer ids cancelled during this batch
  std::set<uint64_t> fired;      // timer ids fired during this batch
  std::vector<Op> ops;
  uint64_t current_seq = 0;
  uint32_t op_index = 0;
  uint64_t delivered = 0;
  uint64_t refused = 0;
  uint64_t dropped = 0;
  uint64_t timers_fired = 0;
  /// Earliest virtual time any effect buffered by this partition could
  /// enter the event queue — the quantity the batch-extension rule compares
  /// against the next slice's timestamp.
  SimTime min_effect_landing = kNeverLands;
  /// Set when the partition buffered a Listen/CloseListener; any such op
  /// ends batch extension (rule 2 above).
  bool has_listener_ops = false;

  Op& PushOp(Op::Kind kind) {
    Op& op = ops.emplace_back();
    op.kind = kind;
    op.issue_time = net->now_;
    op.seq = current_seq;
    op.index = op_index++;
    return op;
  }
};

/// Everything a coalesced batch accumulates between its first slice and its
/// commit: the partition set (grown as new hosts appear, never reset), the
/// timer events it consumed, and the clock bookkeeping.
struct SimNetwork::BatchState {
  std::map<std::string, size_t> part_index;
  std::vector<std::unique_ptr<SliceContext>> parts;
  /// Ids of every timer event dispatched by the batch (fired or stale);
  /// all leave pending_timers_ at commit.
  std::vector<uint64_t> timer_event_ids;
  SimTime end_time = 0;      // time of the last slice that advanced now_
  bool any_advance = false;  // did any slice advance now_?
  size_t num_slices = 0;
};

SimNetwork::SliceContext*& SimNetwork::ThreadSliceContext() {
  thread_local SliceContext* ctx = nullptr;
  return ctx;
}

SimNetwork::SliceContext* SimNetwork::CurrentSliceContext(
    const SimNetwork* net) {
  SliceContext* ctx = ThreadSliceContext();
  return (ctx != nullptr && ctx->net == net) ? ctx : nullptr;
}

Status SimNetwork::SliceSend(SliceContext* ctx, const Endpoint& from,
                             const Endpoint& to, MessageType type,
                             std::vector<uint8_t> payload) {
  // Same synchronous refusal semantics as the legacy path, resolved against
  // the slice view: own overlay first, then the frozen base map.
  bool listening;
  auto ov = ctx->listener_overlay.find(to);
  if (ov != ctx->listener_overlay.end()) {
    listening = ov->second.has_value();
  } else {
    listening = listeners_.contains(to);
  }
  if (!listening) {
    ++ctx->refused;
    return Status::ConnectionRefused(
        StringPrintf("no listener at %s", to.ToString().c_str()));
  }
  // Earliest possible landing: base latency only — jitter, bandwidth
  // transfer, per-host extra latency and service queueing are all >= 0.
  const SimDuration base_latency = (from.host == to.host)
                                       ? options_.same_host_latency
                                       : options_.inter_host_latency;
  ctx->min_effect_landing =
      std::min(ctx->min_effect_landing, now_ + base_latency);
  SliceContext::Op& op = ctx->PushOp(SliceContext::Op::kSend);
  op.from = from;
  op.to = to;
  op.type = type;
  op.payload = std::move(payload);
  return Status::OK();
}

Status SimNetwork::SliceListen(SliceContext* ctx, const Endpoint& endpoint,
                               MessageHandler handler) {
  bool bound;
  auto ov = ctx->listener_overlay.find(endpoint);
  if (ov != ctx->listener_overlay.end()) {
    bound = ov->second.has_value();
  } else {
    bound = listeners_.contains(endpoint);
  }
  if (bound) {
    return Status::InvalidArgument(StringPrintf(
        "endpoint %s already bound", endpoint.ToString().c_str()));
  }
  ctx->has_listener_ops = true;
  SliceContext::Op& op = ctx->PushOp(SliceContext::Op::kListen);
  op.to = endpoint;
  op.handler = handler;
  ctx->listener_overlay[endpoint] = std::move(handler);
  return Status::OK();
}

void SimNetwork::SliceCloseListener(SliceContext* ctx,
                                    const Endpoint& endpoint) {
  ctx->has_listener_ops = true;
  SliceContext::Op& op = ctx->PushOp(SliceContext::Op::kCloseListener);
  op.to = endpoint;
  ctx->listener_overlay[endpoint] = std::nullopt;
}

uint64_t SimNetwork::SliceScheduleAfter(SliceContext* ctx, SimDuration delay,
                                        std::function<void()> fn) {
  const uint64_t id = next_timer_id_.fetch_add(1, std::memory_order_relaxed);
  ctx->scheduled.insert(id);
  // A timer's landing is exact: issue time + delay, no cost model applies.
  ctx->min_effect_landing = std::min(ctx->min_effect_landing, now_ + delay);
  SliceContext::Op& op = ctx->PushOp(SliceContext::Op::kScheduleTimer);
  op.delay = delay;
  op.timer_fn = std::move(fn);
  op.timer_id = id;
  op.affinity = ctx->key;  // the new timer fires on the arming partition
  return id;
}

bool SimNetwork::SliceCancelTimer(SliceContext* ctx, uint64_t id) {
  if (ctx->cancelled.contains(id)) return false;  // already cancelled
  if (ctx->fired.contains(id)) return false;      // fired earlier this batch
  const bool was_pending =
      ctx->scheduled.contains(id) || pending_timers_.contains(id);
  if (!was_pending) return false;
  ctx->cancelled.insert(id);
  ctx->PushOp(SliceContext::Op::kCancelTimer).timer_id = id;
  return true;
}

void SimNetwork::DispatchSlice(SliceContext* ctx) {
  for (Event& event : ctx->events) {
    ctx->current_seq = event.sequence;
    ctx->op_index = 0;
    if (event.timer) {
      // Skip timers cancelled before this batch (no longer pending) or by
      // an earlier event of this partition; same rule as the legacy loop.
      // Cross-partition cancels cannot reach here: a slice containing a
      // batch-cancelled timer id refuses to join the batch.
      if (!pending_timers_.contains(event.timer_id) ||
          ctx->cancelled.contains(event.timer_id)) {
        continue;
      }
      ctx->fired.insert(event.timer_id);
      ++ctx->timers_fired;
      event.timer();
      continue;
    }
    ++ctx->delivered;
    MessageHandler handler;  // copied: the handler may close/re-register
    auto ov = ctx->listener_overlay.find(event.to);
    if (ov != ctx->listener_overlay.end()) {
      if (!ov->second.has_value()) {
        ++ctx->dropped;
        continue;
      }
      handler = *ov->second;
    } else {
      auto it = listeners_.find(event.to);
      if (it == listeners_.end()) {
        ++ctx->dropped;
        continue;
      }
      handler = it->second;
    }
    handler(event.from, event.type, event.payload);
  }
}

std::vector<SimNetwork::Event> SimNetwork::PopSlice(SimTime* t_out) {
  const SimTime t = events_.begin()->first.first;
  std::vector<Event> slice;
  auto it = events_.begin();
  while (it != events_.end() && it->first.first == t) {
    slice.push_back(std::move(it->second));
    it = events_.erase(it);
  }
  *t_out = t;
  return slice;
}

void SimNetwork::RunBatchSlice(BatchState* batch, std::vector<Event> slice,
                               SimTime t) {
  // Advance the clock exactly when the legacy loop would: the first event
  // that actually runs does it. A slice of nothing but stale cancelled
  // timers leaves `now_` untouched. Workers read now_ during the fork/join;
  // the driving thread only writes it here, between barriers.
  const bool advances =
      std::any_of(slice.begin(), slice.end(), [this](const Event& e) {
        return e.timer == nullptr || pending_timers_.contains(e.timer_id);
      });
  if (advances) {
    now_ = t;
    batch->end_time = t;
    batch->any_advance = true;
  }

  // Assign events to partitions, first-appearance (= sequence) order.
  // Partitions persist across the batch's slices: a host revisited by a
  // later slice reuses its context, preserving per-host op/effect order.
  std::vector<SliceContext*> active;
  for (Event& event : slice) {
    const std::string& key = event.timer ? event.affinity : event.to.host;
    if (event.timer) batch->timer_event_ids.push_back(event.timer_id);
    auto [it, inserted] = batch->part_index.try_emplace(key,
                                                        batch->parts.size());
    if (inserted) {
      batch->parts.push_back(std::make_unique<SliceContext>());
      batch->parts.back()->net = this;
      batch->parts.back()->key = key;
    }
    SliceContext* ctx = batch->parts[it->second].get();
    if (ctx->events.empty()) active.push_back(ctx);
    ctx->events.push_back(std::move(event));
  }
  parallel_stats_.max_slice_partitions = std::max<uint64_t>(
      parallel_stats_.max_slice_partitions, active.size());
  if (active.size() >= 2) {
    ++parallel_stats_.parallel_slices;
    size_t slice_events = 0;
    for (const SliceContext* ctx : active) slice_events += ctx->events.size();
    parallel_stats_.parallel_events += slice_events;
  }

  if (active.size() == 1) {
    ThreadSliceContext() = active[0];
    DispatchSlice(active[0]);
    ThreadSliceContext() = nullptr;
  } else {
    if (pool_ == nullptr) {
      pool_ =
          std::make_unique<common::ThreadPool>(options_.worker_threads - 1);
    }
    pool_->RunBatch(active.size(), [this, &active](size_t i) {
      ThreadSliceContext() = active[i];
      DispatchSlice(active[i]);
      ThreadSliceContext() = nullptr;
    });
  }

  // Contexts keep their overlays, timer sets, counters and buffered ops for
  // the rest of the batch; only the per-slice event list resets.
  for (SliceContext* ctx : active) ctx->events.clear();
  ++batch->num_slices;
}

bool SimNetwork::CanExtendBatch(const BatchState& batch) const {
  if (events_.empty()) return false;
  SimTime min_landing = kNeverLands;
  for (const auto& ctx : batch.parts) {
    if (ctx->has_listener_ops) return false;  // rule 2
    min_landing = std::min(min_landing, ctx->min_effect_landing);
  }
  const SimTime t_next = events_.begin()->first.first;
  if (min_landing < t_next) return false;  // rule 1 (equality is safe)
  for (auto it = events_.begin();
       it != events_.end() && it->first.first == t_next; ++it) {
    const Event& e = it->second;
    if (e.timer == nullptr) continue;
    if (e.affinity.empty()) return false;  // rule 4: driver timer
    for (const auto& ctx : batch.parts) {  // rule 3: uncommitted cancel
      if (ctx->cancelled.contains(e.timer_id)) return false;
    }
  }
  return true;
}

void SimNetwork::CommitBatch(BatchState* batch) {
  for (const auto& ctx : batch->parts) {
    delivered_ += ctx->delivered;
    refused_ += ctx->refused;
    dropped_ += ctx->dropped;
    timers_fired_ += ctx->timers_fired;
  }
  WEBDIS_CHECK(delivered_ + timers_fired_ <= options_.max_deliveries)
      << "simulated network exceeded max_deliveries — runaway forwarding?";
  // Every timer event the batch consumed leaves the pending set, whether it
  // fired or had been cancelled (erase is idempotent).
  for (const uint64_t id : batch->timer_event_ids) {
    pending_timers_.erase(id);
  }
  // Replay buffered ops in (issue time, sequence, issue-index) order — the
  // order the sequential stepper would have issued them. now_ tracks each
  // op's issue time during the replay so the jitter draw, fault decision
  // and busy_until_ arithmetic see the clock their issuer saw.
  std::vector<SliceContext::Op*> ops;
  for (const auto& ctx : batch->parts) {
    for (SliceContext::Op& op : ctx->ops) ops.push_back(&op);
  }
  std::sort(ops.begin(), ops.end(),
            [](const SliceContext::Op* a, const SliceContext::Op* b) {
              if (a->issue_time != b->issue_time)
                return a->issue_time < b->issue_time;
              if (a->seq != b->seq) return a->seq < b->seq;
              return a->index < b->index;
            });
  for (SliceContext::Op* op : ops) {
    switch (op->kind) {
      case SliceContext::Op::kSend: {
        now_ = op->issue_time;
        // Refusal was already resolved by the issuing worker; the accepted
        // path always returns OK.
        const Status accepted =
            SendAccepted(op->from, op->to, op->type, std::move(op->payload));
        WEBDIS_CHECK(accepted.ok());
        break;
      }
      case SliceContext::Op::kListen:
        // First listener wins on a (cross-partition) conflict, matching the
        // sequential rule that later Listen calls are refused.
        listeners_.emplace(op->to, std::move(op->handler));
        break;
      case SliceContext::Op::kCloseListener:
        listeners_.erase(op->to);
        busy_until_.erase(op->to);
        break;
      case SliceContext::Op::kScheduleTimer: {
        Event event;
        event.deliver_at = op->issue_time + op->delay;
        event.sequence = next_sequence_++;
        event.timer = std::move(op->timer_fn);
        event.timer_id = op->timer_id;
        event.affinity = std::move(op->affinity);
        pending_timers_.insert(op->timer_id);
        PushEvent(std::move(event));
        break;
      }
      case SliceContext::Op::kCancelTimer:
        pending_timers_.erase(op->timer_id);
        break;
    }
  }
  // Leave the clock where the last slice that ran anything put it.
  if (batch->any_advance) now_ = batch->end_time;
}

void SimNetwork::StepBatch() {
  SimTime t = 0;
  std::vector<Event> slice = PopSlice(&t);
  ++parallel_stats_.slices;
  parallel_stats_.events += slice.size();
  parallel_stats_.max_slice_events =
      std::max<uint64_t>(parallel_stats_.max_slice_events, slice.size());

  // Driver-context timers (empty affinity: sweeps, completion strawmen,
  // crash/restart schedules) may touch global state such as listener tables
  // directly, so their slice keeps exact legacy semantics, serially.
  const bool driver_slice =
      std::any_of(slice.begin(), slice.end(), [](const Event& e) {
        return e.timer != nullptr && e.affinity.empty();
      });
  size_t partitions = 0;
  if (!driver_slice) {
    std::set<std::string_view> keys;
    for (const Event& event : slice) {
      keys.insert(event.timer ? std::string_view(event.affinity)
                              : std::string_view(event.to.host));
    }
    partitions = keys.size();
  }
  if (driver_slice || partitions < options_.min_parallel_partitions ||
      slice.size() < options_.min_parallel_events) {
    // Too narrow to pay for buffering and a fork/join (or driver-bound):
    // the legacy loop is both correct and faster here.
    parallel_stats_.max_slice_partitions =
        std::max<uint64_t>(parallel_stats_.max_slice_partitions,
                           driver_slice ? 1 : partitions);
    ++parallel_stats_.serial_slices;
    parallel_stats_.serial_events += slice.size();
    for (Event& event : slice) DispatchEventLegacy(std::move(event));
    return;
  }

  BatchState batch;
  RunBatchSlice(&batch, std::move(slice), t);
  while (options_.coalesce_slices &&
         batch.num_slices < options_.max_coalesce_slices &&
         CanExtendBatch(batch)) {
    slice = PopSlice(&t);
    ++parallel_stats_.slices;
    parallel_stats_.events += slice.size();
    parallel_stats_.max_slice_events =
        std::max<uint64_t>(parallel_stats_.max_slice_events, slice.size());
    RunBatchSlice(&batch, std::move(slice), t);
  }
  if (batch.num_slices >= 2) {
    ++parallel_stats_.coalesced_batches;
    parallel_stats_.coalesced_slices += batch.num_slices;
  }
  CommitBatch(&batch);
}

void SimNetwork::RunStepped() {
  while (!events_.empty()) {
    StepBatch();
  }
}

}  // namespace webdis::net
