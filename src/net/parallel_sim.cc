// Deterministic time-stepped parallel mode for SimNetwork ("ParallelSimNetwork",
// enabled by SimNetworkOptions::worker_threads; see DESIGN.md "Parallel
// execution").
//
// The loop: take every queued event sharing the minimum virtual timestamp (a
// *time-slice*), partition the slice by destination host — the paper's own
// serialization unit, since each site's daemon "sequentially processes the
// queue of pending web-queries" (§4.4) — and run the partitions concurrently
// on a common::ThreadPool. While a slice runs, worker threads never mutate
// shared network state: every Transport call they make is diverted into their
// partition's SliceContext, which buffers the operation tagged with
// (issuing event sequence, issue index). After the barrier, the driving
// thread replays all buffers in that tag order, which is exactly the order a
// sequential stepper would have issued them — so the jitter RNG stream, the
// per-endpoint busy_until_ queues, sequence-number assignment, fault-plan
// decisions and traffic meters evolve bit-identically for any worker count.
//
// Visibility rule: a partition sees its *own* listener mutations immediately
// (via a per-partition overlay) and everyone else's from the start of the
// slice; mutations commit globally at the slice barrier. Handlers must
// confine their state to their endpoint's host (the confinement rule checked
// by tools/webdis_lint.py); timers carry the affinity of the context that
// armed them, and driver-context timers (empty affinity) force their whole
// slice to run serially through the legacy dispatch path.

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "net/sim.h"

namespace webdis::net {

struct SimNetwork::SliceContext {
  struct Op {
    enum Kind {
      kSend,
      kListen,
      kCloseListener,
      kScheduleTimer,
      kCancelTimer,
    };
    Kind kind;
    uint64_t seq = 0;    // sequence of the slice event that issued the op
    uint32_t index = 0;  // issue order within that event's handler
    Endpoint from;
    Endpoint to;  // also the endpoint for kListen / kCloseListener
    MessageType type{};
    std::vector<uint8_t> payload;
    MessageHandler handler;          // kListen
    SimDuration delay = 0;           // kScheduleTimer
    std::function<void()> timer_fn;  // kScheduleTimer
    uint64_t timer_id = 0;           // kScheduleTimer / kCancelTimer
    std::string affinity;            // kScheduleTimer
  };

  SimNetwork* net = nullptr;
  std::string key;            // partition affinity (destination host)
  std::vector<Event> events;  // this partition's slice, in sequence order
  // Listener changes made by this partition during the slice: engaged =
  // (re)bound handler, nullopt = closed. Own mutations are visible to the
  // partition immediately; the base map stays frozen until the barrier.
  std::map<Endpoint, std::optional<MessageHandler>> listener_overlay;
  std::set<uint64_t> scheduled;  // timer ids armed during this slice
  std::set<uint64_t> cancelled;  // timer ids cancelled during this slice
  std::set<uint64_t> fired;      // timer ids fired during this slice
  std::vector<Op> ops;
  uint64_t current_seq = 0;
  uint32_t op_index = 0;
  uint64_t delivered = 0;
  uint64_t refused = 0;
  uint64_t dropped = 0;
  uint64_t timers_fired = 0;

  Op& PushOp(Op::Kind kind) {
    Op& op = ops.emplace_back();
    op.kind = kind;
    op.seq = current_seq;
    op.index = op_index++;
    return op;
  }
};

SimNetwork::SliceContext*& SimNetwork::ThreadSliceContext() {
  thread_local SliceContext* ctx = nullptr;
  return ctx;
}

SimNetwork::SliceContext* SimNetwork::CurrentSliceContext(
    const SimNetwork* net) {
  SliceContext* ctx = ThreadSliceContext();
  return (ctx != nullptr && ctx->net == net) ? ctx : nullptr;
}

Status SimNetwork::SliceSend(SliceContext* ctx, const Endpoint& from,
                             const Endpoint& to, MessageType type,
                             std::vector<uint8_t> payload) {
  // Same synchronous refusal semantics as the legacy path, resolved against
  // the slice view: own overlay first, then the frozen base map.
  bool listening;
  auto ov = ctx->listener_overlay.find(to);
  if (ov != ctx->listener_overlay.end()) {
    listening = ov->second.has_value();
  } else {
    listening = listeners_.contains(to);
  }
  if (!listening) {
    ++ctx->refused;
    return Status::ConnectionRefused(
        StringPrintf("no listener at %s", to.ToString().c_str()));
  }
  SliceContext::Op& op = ctx->PushOp(SliceContext::Op::kSend);
  op.from = from;
  op.to = to;
  op.type = type;
  op.payload = std::move(payload);
  return Status::OK();
}

Status SimNetwork::SliceListen(SliceContext* ctx, const Endpoint& endpoint,
                               MessageHandler handler) {
  bool bound;
  auto ov = ctx->listener_overlay.find(endpoint);
  if (ov != ctx->listener_overlay.end()) {
    bound = ov->second.has_value();
  } else {
    bound = listeners_.contains(endpoint);
  }
  if (bound) {
    return Status::InvalidArgument(StringPrintf(
        "endpoint %s already bound", endpoint.ToString().c_str()));
  }
  SliceContext::Op& op = ctx->PushOp(SliceContext::Op::kListen);
  op.to = endpoint;
  op.handler = handler;
  ctx->listener_overlay[endpoint] = std::move(handler);
  return Status::OK();
}

void SimNetwork::SliceCloseListener(SliceContext* ctx,
                                    const Endpoint& endpoint) {
  SliceContext::Op& op = ctx->PushOp(SliceContext::Op::kCloseListener);
  op.to = endpoint;
  ctx->listener_overlay[endpoint] = std::nullopt;
}

uint64_t SimNetwork::SliceScheduleAfter(SliceContext* ctx, SimDuration delay,
                                        std::function<void()> fn) {
  const uint64_t id = next_timer_id_.fetch_add(1, std::memory_order_relaxed);
  ctx->scheduled.insert(id);
  SliceContext::Op& op = ctx->PushOp(SliceContext::Op::kScheduleTimer);
  op.delay = delay;
  op.timer_fn = std::move(fn);
  op.timer_id = id;
  op.affinity = ctx->key;  // the new timer fires on the arming partition
  return id;
}

bool SimNetwork::SliceCancelTimer(SliceContext* ctx, uint64_t id) {
  if (ctx->cancelled.contains(id)) return false;  // already cancelled
  if (ctx->fired.contains(id)) return false;      // fired earlier this slice
  const bool was_pending =
      ctx->scheduled.contains(id) || pending_timers_.contains(id);
  if (!was_pending) return false;
  ctx->cancelled.insert(id);
  ctx->PushOp(SliceContext::Op::kCancelTimer).timer_id = id;
  return true;
}

void SimNetwork::DispatchSlice(SliceContext* ctx) {
  for (Event& event : ctx->events) {
    ctx->current_seq = event.sequence;
    ctx->op_index = 0;
    if (event.timer) {
      // Skip timers cancelled in an earlier slice (no longer pending) or by
      // an earlier event of this partition; same rule as the legacy loop.
      if (!pending_timers_.contains(event.timer_id) ||
          ctx->cancelled.contains(event.timer_id)) {
        continue;
      }
      ctx->fired.insert(event.timer_id);
      ++ctx->timers_fired;
      event.timer();
      continue;
    }
    ++ctx->delivered;
    MessageHandler handler;  // copied: the handler may close/re-register
    auto ov = ctx->listener_overlay.find(event.to);
    if (ov != ctx->listener_overlay.end()) {
      if (!ov->second.has_value()) {
        ++ctx->dropped;
        continue;
      }
      handler = *ov->second;
    } else {
      auto it = listeners_.find(event.to);
      if (it == listeners_.end()) {
        ++ctx->dropped;
        continue;
      }
      handler = it->second;
    }
    handler(event.from, event.type, event.payload);
  }
}

void SimNetwork::StepSlice() {
  const SimTime t = events_.top().deliver_at;
  std::vector<Event> slice;
  while (!events_.empty() && events_.top().deliver_at == t) {
    // priority_queue::top() is const; copy out (payloads are modest).
    slice.push_back(events_.top());
    events_.pop();
  }
  ++parallel_stats_.slices;
  parallel_stats_.events += slice.size();
  parallel_stats_.max_slice_events =
      std::max<uint64_t>(parallel_stats_.max_slice_events, slice.size());

  // Driver-context timers (empty affinity: sweeps, completion strawmen,
  // crash/restart schedules) may touch global state such as listener tables
  // directly, so their slice keeps exact legacy semantics, serially.
  const bool driver_slice =
      std::any_of(slice.begin(), slice.end(), [](const Event& e) {
        return e.timer != nullptr && e.affinity.empty();
      });
  if (driver_slice) {
    parallel_stats_.max_slice_partitions =
        std::max<uint64_t>(parallel_stats_.max_slice_partitions, 1);
    for (Event& event : slice) DispatchEventLegacy(std::move(event));
    return;
  }

  // Advance the clock exactly when the legacy loop would: the first event
  // that actually runs does it. A slice of nothing but stale cancelled
  // timers leaves `now_` untouched.
  const bool advances =
      std::any_of(slice.begin(), slice.end(), [this](const Event& e) {
        return e.timer == nullptr || pending_timers_.contains(e.timer_id);
      });
  if (advances) now_ = t;

  // Partition by affinity, first-appearance (= sequence) order.
  std::map<std::string, size_t> part_index;
  std::vector<std::unique_ptr<SliceContext>> parts;
  for (Event& event : slice) {
    const std::string& key = event.timer ? event.affinity : event.to.host;
    auto [it, inserted] = part_index.try_emplace(key, parts.size());
    if (inserted) {
      parts.push_back(std::make_unique<SliceContext>());
      parts.back()->net = this;
      parts.back()->key = key;
    }
    parts[it->second]->events.push_back(std::move(event));
  }
  parallel_stats_.max_slice_partitions = std::max<uint64_t>(
      parallel_stats_.max_slice_partitions, parts.size());
  if (parts.size() >= 2) {
    ++parallel_stats_.parallel_slices;
    parallel_stats_.parallel_events += slice.size();
  }

  if (parts.size() == 1) {
    ThreadSliceContext() = parts[0].get();
    DispatchSlice(parts[0].get());
    ThreadSliceContext() = nullptr;
  } else {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<common::ThreadPool>(options_.worker_threads - 1);
    }
    pool_->RunBatch(parts.size(), [this, &parts](size_t i) {
      ThreadSliceContext() = parts[i].get();
      DispatchSlice(parts[i].get());
      ThreadSliceContext() = nullptr;
    });
  }

  // -- Barrier passed: merge, on the driving thread. ------------------------
  for (const auto& ctx : parts) {
    delivered_ += ctx->delivered;
    refused_ += ctx->refused;
    dropped_ += ctx->dropped;
    timers_fired_ += ctx->timers_fired;
  }
  WEBDIS_CHECK(delivered_ + timers_fired_ <= options_.max_deliveries)
      << "simulated network exceeded max_deliveries — runaway forwarding?";
  // Every timer event of this slice leaves the pending set, whether it
  // fired or had been cancelled (erase is idempotent).
  for (const auto& ctx : parts) {
    for (const Event& event : ctx->events) {
      if (event.timer) pending_timers_.erase(event.timer_id);
    }
  }
  // Replay buffered ops in (sequence, issue-index) order — the order the
  // sequential stepper would have issued them.
  std::vector<SliceContext::Op*> ops;
  for (const auto& ctx : parts) {
    for (SliceContext::Op& op : ctx->ops) ops.push_back(&op);
  }
  std::sort(ops.begin(), ops.end(),
            [](const SliceContext::Op* a, const SliceContext::Op* b) {
              if (a->seq != b->seq) return a->seq < b->seq;
              return a->index < b->index;
            });
  for (SliceContext::Op* op : ops) {
    switch (op->kind) {
      case SliceContext::Op::kSend: {
        // Refusal was already resolved by the issuing worker; the accepted
        // path always returns OK.
        const Status accepted =
            SendAccepted(op->from, op->to, op->type, std::move(op->payload));
        WEBDIS_CHECK(accepted.ok());
        break;
      }
      case SliceContext::Op::kListen:
        // First listener wins on a (cross-partition) conflict, matching the
        // sequential rule that later Listen calls are refused.
        listeners_.emplace(op->to, std::move(op->handler));
        break;
      case SliceContext::Op::kCloseListener:
        listeners_.erase(op->to);
        busy_until_.erase(op->to);
        break;
      case SliceContext::Op::kScheduleTimer: {
        Event event;
        event.deliver_at = t + op->delay;
        event.sequence = next_sequence_++;
        event.timer = std::move(op->timer_fn);
        event.timer_id = op->timer_id;
        event.affinity = std::move(op->affinity);
        pending_timers_.insert(op->timer_id);
        events_.push(std::move(event));
        break;
      }
      case SliceContext::Op::kCancelTimer:
        pending_timers_.erase(op->timer_id);
        break;
    }
  }
}

void SimNetwork::RunStepped() {
  while (!events_.empty()) {
    StepSlice();
  }
}

}  // namespace webdis::net
