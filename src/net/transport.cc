#include "net/transport.h"

#include "common/strings.h"

namespace webdis::net {

std::string_view MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kWebQuery:
      return "WebQuery";
    case MessageType::kReport:
      return "Report";
    case MessageType::kTerminate:
      return "Terminate";
    case MessageType::kFetchRequest:
      return "FetchRequest";
    case MessageType::kFetchResponse:
      return "FetchResponse";
    case MessageType::kAck:
      return "Ack";
  }
  return "Unknown";
}

std::string Endpoint::ToString() const {
  return StringPrintf("%s:%u", host.c_str(), static_cast<unsigned>(port));
}

}  // namespace webdis::net
