#include "net/transport.h"

#include "common/strings.h"

namespace webdis::net {

std::string_view MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kWebQuery:
      return "WebQuery";
    case MessageType::kReport:
      return "Report";
    case MessageType::kTerminate:
      return "Terminate";
    case MessageType::kFetchRequest:
      return "FetchRequest";
    case MessageType::kFetchResponse:
      return "FetchResponse";
    case MessageType::kAck:
      return "Ack";
    case MessageType::kDeliveryAck:
      return "DeliveryAck";
    case MessageType::kOverloaded:
      return "Overloaded";
    case MessageType::kCloneBatch:
      return "CloneBatch";
    case MessageType::kReportBatch:
      return "ReportBatch";
    case MessageType::kSiteRetired:
      return "SiteRetired";
  }
  return "Unknown";
}

uint64_t Transport::ScheduleAfter(SimDuration delay,
                                  std::function<void()> fn) {
  (void)delay;
  (void)fn;
  return 0;  // no timer support
}

bool Transport::CancelTimer(uint64_t id) {
  (void)id;
  return false;
}

std::string Endpoint::ToString() const {
  return StringPrintf("%s:%u", host.c_str(), static_cast<unsigned>(port));
}

}  // namespace webdis::net
