#ifndef WEBDIS_NET_RELIABLE_H_
#define WEBDIS_NET_RELIABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/transport.h"

namespace webdis::net {

/// Tuning for the at-least-once delivery layer. Disabled by default: the
/// paper assumes reliable-once-accepted 1999 TCP, and the seed protocol
/// (including its golden wire format) stays byte-identical unless a
/// deployment opts in.
struct RetryOptions {
  bool enabled = false;
  /// First retransmission fires this long after the original send.
  SimDuration initial_timeout = 200 * kMillisecond;
  /// Timeout grows by this factor per retransmission, capped below.
  double backoff_factor = 2.0;
  SimDuration max_timeout = 2 * kSecond;
  /// Total attempts (original + retransmissions). When exhausted the
  /// transfer is abandoned — recovery then falls to the receiver side
  /// (CHT deadline GC at the user site).
  uint32_t max_attempts = 5;

  /// Overload backoff class (PROTOCOL.md §7.2). A transfer NACKed with
  /// MessageType::kOverloaded proved the host is *alive but saturated* —
  /// retrying on the loss-recovery schedule above would pile on. Once
  /// NACKed, a transfer re-arms on this longer, jittered schedule instead.
  SimDuration overload_initial_timeout = 800 * kMillisecond;
  double overload_backoff_factor = 2.0;
  SimDuration overload_max_timeout = 8 * kSecond;
  /// Timeout is multiplied by a uniform factor in [1 - j/2, 1 + j/2] so a
  /// cohort of shed senders does not retry in lockstep. The cap above is
  /// applied *after* jitter, so it is a hard bound.
  double overload_jitter = 0.5;
  /// Seed for the jitter stream (deterministic under SimNetwork).
  uint64_t jitter_seed = 1;
};

struct RetryStats {
  uint64_t tracked = 0;          // transfers sent with delivery tracking
  uint64_t retries = 0;          // retransmissions put on the wire
  uint64_t acked = 0;            // transfers confirmed by a DeliveryAck
  uint64_t duplicate_acks = 0;   // acks for transfers no longer tracked
  uint64_t exhausted = 0;        // transfers abandoned after max_attempts
  uint64_t refused_on_retry = 0; // retransmissions refused at connect time
  uint64_t overload_nacks = 0;   // kOverloaded NACKs received
  uint64_t site_retired = 0;     // kSiteRetired terminal NACKs received
};

/// Terminal (or class-changing) per-transfer outcomes, surfaced to the
/// delivery observer so the owner can feed a circuit breaker: an ack is
/// evidence the destination is healthy; exhaustion and refusal-on-retry are
/// evidence it is not. An overload NACK is deliberately *neither* — the
/// host answered, it is alive, just saturated.
enum class DeliveryEvent {
  kAcked,
  kExhausted,
  kRefusedOnRetry,
  kOverloadNack,
  /// §10.2: the destination answered kSiteRetired — it is gone for good.
  /// Terminal like kRefusedOnRetry (retrying is futile), and the owner
  /// should feed it to the breaker as failure evidence so later sends to
  /// the host short-circuit.
  kSiteRetired,
};

/// Sender half of at-least-once delivery for clone forwarding and report
/// dispatch. Each tracked Send prepends a `u64 transfer_seq` envelope and
/// arms a retransmission timer with capped exponential backoff; the timer
/// is disarmed when the matching MessageType::kDeliveryAck arrives (the
/// owner routes those to OnAck).
///
/// Failure semantics are preserved where the protocol depends on them: a
/// synchronous ConnectionRefused on the *first* attempt passes through
/// untracked, because passive termination (§2.8) and the crashed-next-hop
/// report path both act on it. Refusal on a retransmission stops the timer
/// silently — by then the original Send already reported success.
///
/// Inert unless both options.enabled and the transport supports timers;
/// when inert, Send is a plain pass-through with no envelope.
class ReliableSender {
 public:
  ReliableSender(Transport* transport, RetryOptions options)
      : transport_(transport),
        options_(options),
        jitter_rng_(options.jitter_seed) {}
  ~ReliableSender() { CancelAll(); }

  ReliableSender(const ReliableSender&) = delete;
  ReliableSender& operator=(const ReliableSender&) = delete;

  bool enabled() const {
    return options_.enabled && transport_->SupportsTimers();
  }

  /// Sends `payload` as `type`, tracked for redelivery when enabled().
  /// `from` must be an endpoint this sender's owner listens on: acks come
  /// back to it.
  Status Send(const Endpoint& from, const Endpoint& to, MessageType type,
              std::vector<uint8_t> payload);

  /// Routes a received kDeliveryAck payload (u64 transfer_seq) here.
  void OnAck(const std::vector<uint8_t>& payload);

  /// Routes a received kOverloaded payload (u64 transfer_seq) here: the
  /// receiver shed the transfer. The pending entry moves to the overload
  /// backoff class and re-arms with a longer, jittered timeout.
  void OnOverloaded(const std::vector<uint8_t>& payload);

  /// Routes a received kSiteRetired payload (u64 transfer_seq) here: the
  /// destination site retired (§10.2). Unlike kOverloaded this is
  /// *terminal* — the transfer is abandoned immediately, like a
  /// synchronous ConnectionRefused, and no further retransmission is ever
  /// scheduled. The retired site already converted the transfer's nodes
  /// into named degraded reports, so nothing is silently lost.
  void OnSiteRetired(const std::vector<uint8_t>& payload);

  /// Observes per-transfer outcomes (see DeliveryEvent). Called with the
  /// destination endpoint; the owner typically feeds a HostBreakers.
  void set_delivery_observer(
      std::function<void(const Endpoint& to, DeliveryEvent event)> observer) {
    observer_ = std::move(observer);
  }

  /// Drops all in-flight tracking and cancels timers (crash semantics:
  /// pending retransmissions are volatile state).
  void CancelAll();

  const RetryStats& stats() const { return stats_; }
  uint64_t pending_count() const { return pending_.size(); }

 private:
  struct Pending {
    Endpoint from;
    Endpoint to;
    MessageType type;
    std::vector<uint8_t> enveloped;  // seq header + payload, as wired
    uint32_t attempts = 1;
    SimDuration timeout = 0;
    uint64_t timer = 0;
    bool overloaded = false;  // NACKed at least once: overload backoff class
  };

  void Arm(uint64_t seq);
  void OnTimeout(uint64_t seq);
  void Notify(const Endpoint& to, DeliveryEvent event) {
    if (observer_) observer_(to, event);
  }
  /// Applies the overload jitter factor, then the overload cap.
  SimDuration JitterOverload(SimDuration timeout);

  Transport* transport_;
  RetryOptions options_;
  uint64_t next_seq_ = 1;
  std::map<uint64_t, Pending> pending_;
  RetryStats stats_;
  std::function<void(const Endpoint& to, DeliveryEvent event)> observer_;
  Rng jitter_rng_;
};

/// Receiver half: strips the transfer envelope, acknowledges every copy,
/// and reports replays so the owner can drop them *before* any protocol
/// processing. Exact-duplicate suppression must happen ahead of the log
/// table: a redelivered clone that reached the log-table check would emit a
/// second duplicate-drop report and unbalance the robust CHT's add/delete
/// counts.
class ReliableReceiver {
 public:
  /// `enabled` must match the sender side's enabled() — the envelope is not
  /// self-describing.
  ReliableReceiver(Transport* transport, bool enabled)
      : transport_(transport), enabled_(enabled) {}

  /// Decodes one received payload. Returns true with the inner payload in
  /// `*inner` when the owner should process it; false for replays (already
  /// acknowledged) and malformed envelopes. When disabled, passes the
  /// payload through untouched. `self` is the endpoint the message arrived
  /// on (the ack's source), `from` the sender to ack back to.
  bool Accept(const Endpoint& self, const Endpoint& from,
              const std::vector<uint8_t>& payload,
              std::vector<uint8_t>* inner);

  /// --- Deferred-acceptance API (admission control, PROTOCOL.md §7.2) ---
  /// An admission-controlled server must NOT ack a transfer it may still
  /// shed: the ack would stop the sender's retries and turn the shed into
  /// silent loss. Instead it peeks the envelope on arrival, decides
  /// admission, and acks only when the clone is actually dequeued for
  /// processing (AcceptSeq) — or NACKs it (SendOverloaded).

  /// Decodes the u64 transfer_seq from an enveloped payload without acking
  /// or recording anything. False on a malformed envelope.
  static bool PeekSeq(const std::vector<uint8_t>& payload, uint64_t* seq);

  /// Copies the inner payload (envelope stripped) without acking or
  /// recording anything. False on a malformed envelope.
  static bool StripEnvelope(const std::vector<uint8_t>& payload,
                            std::vector<uint8_t>* inner);

  /// True if this transfer was already accepted (a retransmission).
  bool TestSeen(const Endpoint& from, uint64_t seq) const;

  /// Acks without recording: used to re-ack a replay whose original ack may
  /// have been lost.
  void SendAck(const Endpoint& self, const Endpoint& from, uint64_t seq);

  /// Sends the kOverloaded NACK for a shed transfer: the sender moves it to
  /// the overload backoff class and retries later.
  void SendOverloaded(const Endpoint& self, const Endpoint& from,
                      uint64_t seq);

  /// Sends the terminal kSiteRetired NACK (§10.2): this site retired and
  /// will never process the transfer. The sender abandons it immediately.
  void SendSiteRetired(const Endpoint& self, const Endpoint& from,
                       uint64_t seq);

  /// Commits acceptance of a peeked transfer: acks it and records the seq.
  /// Returns false for a replay (a retransmitted copy of a transfer that
  /// was already committed — the queue can briefly hold both).
  bool AcceptSeq(const Endpoint& self, const Endpoint& from, uint64_t seq);

  /// Forgets all receipt history (crash semantics: the dedup table is
  /// volatile, like the log table — after restart, redelivered transfers
  /// are processed anew and the protocol layers above absorb them).
  void Reset() { seen_.clear(); }

  /// --- Durability hooks (server/persist) ---
  /// The receipt history is exactly the state that makes "never process an
  /// acked transfer twice" survive a restart: a server that persists it can
  /// re-ack post-crash retransmissions instead of reprocessing them.

  /// Visits every (sender, transfer_seq) receipt in deterministic order.
  void ForEachSeen(
      const std::function<void(const Endpoint& from, uint64_t seq)>& fn)
      const {
    for (const auto& [from, seqs] : seen_) {
      for (uint64_t seq : seqs) fn(from, seq);
    }
  }

  /// Re-records one receipt during recovery (no ack, no counters: the ack
  /// already happened in the pre-crash life; a retransmission arriving
  /// later is re-acked through the normal TestSeen path).
  void RestoreSeen(const Endpoint& from, uint64_t seq) {
    seen_[from].insert(seq);
  }

  bool enabled() const { return enabled_; }
  uint64_t suppressed_count() const { return suppressed_; }

 private:
  Transport* transport_;
  bool enabled_;
  std::map<Endpoint, std::set<uint64_t>> seen_;
  uint64_t suppressed_ = 0;
};

}  // namespace webdis::net

#endif  // WEBDIS_NET_RELIABLE_H_
