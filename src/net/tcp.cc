#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "common/strings.h"
#include "serialize/encoder.h"
#include "serialize/framing.h"

namespace webdis::net {

namespace {

/// Writes the whole buffer, retrying on partial writes / EINTR.
Status WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(
          StringPrintf("write failed: %s", std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

struct TcpTransport::Listener {
  Endpoint endpoint;
  MessageHandler handler;  // immutable after Listen() publishes the listener
  int fd = -1;             // owned by the accept thread after publication
  std::thread accept_thread;
  std::atomic<bool> stopping{false};
};

TcpTransport::TcpTransport() = default;

TcpTransport::~TcpTransport() {
  std::vector<Endpoint> endpoints;
  {
    MutexLock lock(&mu_);
    for (const auto& [ep, listener] : listeners_) endpoints.push_back(ep);
  }
  for (const Endpoint& ep : endpoints) CloseListener(ep);
}

Status TcpTransport::Listen(const Endpoint& endpoint,
                            MessageHandler handler) {
  auto listener = std::make_unique<Listener>();
  listener->endpoint = endpoint;
  listener->handler = std::move(handler);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(
        StringPrintf("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral: the registry maps symbolic -> real
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Status::IoError(StringPrintf(
        "bind %s: %s", endpoint.ToString().c_str(), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    const Status status = Status::IoError(
        StringPrintf("getsockname: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    const Status status = Status::IoError(
        StringPrintf("listen: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  listener->fd = fd;

  {
    MutexLock lock(&mu_);
    if (listeners_.contains(endpoint)) {
      ::close(fd);
      return Status::InvalidArgument(StringPrintf(
          "endpoint %s already bound", endpoint.ToString().c_str()));
    }
    real_ports_[endpoint] = ntohs(bound.sin_port);
    Listener* raw = listener.get();
    raw->accept_thread = std::thread([this, raw] { AcceptLoop(raw); });
    listeners_.emplace(endpoint, std::move(listener));
  }
  return Status::OK();
}

uint16_t TcpTransport::ResolvePort(const Endpoint& endpoint) const {
  MutexLock lock(&mu_);
  auto it = real_ports_.find(endpoint);
  return it == real_ports_.end() ? 0 : it->second;
}

void TcpTransport::CloseListener(const Endpoint& endpoint) {
  std::unique_ptr<Listener> listener;
  {
    MutexLock lock(&mu_);
    auto it = listeners_.find(endpoint);
    if (it == listeners_.end()) return;
    listener = std::move(it->second);
    listeners_.erase(it);
    real_ports_.erase(endpoint);
  }
  listener->stopping.store(true);
  // shutdown unblocks the accept() call.
  ::shutdown(listener->fd, SHUT_RDWR);
  if (listener->accept_thread.joinable()) listener->accept_thread.join();
  // Closed only after the accept thread exits: closing a live fd would let
  // the kernel recycle the descriptor number for a concurrent Send()'s
  // socket while accept() still references it.
  ::close(listener->fd);
}

void TcpTransport::AcceptLoop(Listener* listener) {
  while (!listener->stopping.load()) {
    const int conn = ::accept(listener->fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    ReadConnection(conn, listener);
    ::close(conn);
  }
}

void TcpTransport::ReadConnection(int fd, Listener* listener) {
  serialize::FrameReader reader;
  uint8_t buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (n == 0) break;  // EOF
    reader.Feed(buf, static_cast<size_t>(n));
  }
  serialize::Frame frame;
  while (true) {
    auto next = reader.Next(&frame);
    if (!next.ok() || !next.value()) break;
    // Frame payload layout: from_host, from_port, application payload.
    serialize::Decoder dec(frame.payload);
    Delivery delivery;
    if (!dec.GetString(&delivery.from.host).ok()) continue;
    uint16_t from_port = 0;
    if (!dec.GetU16(&from_port).ok()) continue;
    delivery.from.port = from_port;
    delivery.to = listener->endpoint;
    delivery.type = static_cast<MessageType>(frame.type);
    delivery.payload.assign(
        frame.payload.begin() + static_cast<ssize_t>(dec.position()),
        frame.payload.end());
    {
      MutexLock lock(&mu_);
      pending_.push_back(std::move(delivery));
    }
    cv_.notify_all();
  }
}

Status TcpTransport::Send(const Endpoint& from, const Endpoint& to,
                          MessageType type, std::vector<uint8_t> payload) {
  const uint16_t real_port = ResolvePort(to);
  if (real_port == 0) {
    return Status::ConnectionRefused(StringPrintf(
        "no listener registered for %s", to.ToString().c_str()));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(
        StringPrintf("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(real_port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    if (err == ECONNREFUSED) {
      return Status::ConnectionRefused(StringPrintf(
          "connect %s: %s", to.ToString().c_str(), std::strerror(err)));
    }
    return Status::NetworkError(StringPrintf(
        "connect %s: %s", to.ToString().c_str(), std::strerror(err)));
  }
  serialize::Encoder body;
  body.PutString(from.host);
  body.PutU16(from.port);
  body.PutRaw(payload.data(), payload.size());
  const std::vector<uint8_t> frame =
      serialize::EncodeFrame(static_cast<uint8_t>(type), body.data());
  const Status status = WriteAll(fd, frame.data(), frame.size());
  ::shutdown(fd, SHUT_WR);
  // Wait for the peer to finish reading (it closes when done).
  uint8_t sink;
  while (::read(fd, &sink, 1) > 0) {
  }
  ::close(fd);
  return status;
}

uint64_t TcpTransport::ScheduleAfter(SimDuration delay,
                                     std::function<void()> fn) {
  MutexLock lock(&mu_);
  const uint64_t id = next_timer_id_++;
  timers_[id] = Timer{
      std::chrono::steady_clock::now() + std::chrono::microseconds(delay),
      std::move(fn)};
  return id;
}

bool TcpTransport::CancelTimer(uint64_t id) {
  MutexLock lock(&mu_);
  return timers_.erase(id) > 0;
}

size_t TcpTransport::FireDueTimers() {
  size_t fired = 0;
  while (true) {
    std::function<void()> fn;
    {
      MutexLock lock(&mu_);
      const auto now = std::chrono::steady_clock::now();
      auto due = timers_.end();
      for (auto it = timers_.begin(); it != timers_.end(); ++it) {
        if (it->second.due <= now &&
            (due == timers_.end() || it->second.due < due->second.due)) {
          due = it;
        }
      }
      if (due == timers_.end()) break;
      fn = std::move(due->second.fn);
      timers_.erase(due);
    }
    fn();  // outside the lock: the callback may Send or re-schedule
    ++fired;
  }
  return fired;
}

size_t TcpTransport::ProcessPending() {
  size_t dispatched = 0;
  FireDueTimers();
  while (true) {
    Delivery delivery;
    MessageHandler handler;
    {
      MutexLock lock(&mu_);
      if (pending_.empty()) break;
      delivery = std::move(pending_.front());
      pending_.pop_front();
      auto it = listeners_.find(delivery.to);
      if (it == listeners_.end()) continue;  // listener closed: drop
      handler = it->second->handler;
    }
    handler(delivery.from, delivery.type, delivery.payload);
    ++dispatched;
  }
  return dispatched;
}

size_t TcpTransport::PumpUntilIdle(int quiesce_ms) {
  size_t total = 0;
  while (true) {
    total += ProcessPending();
    MutexLock lock(&mu_);
    if (!pending_.empty()) continue;
    // Wake early if a timer comes due before the quiesce window closes, so
    // retransmissions fire while we wait for traffic to settle.
    auto wait_until =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(quiesce_ms);
    bool timer_due_first = false;
    for (const auto& [id, timer] : timers_) {
      if (timer.due < wait_until) {
        wait_until = timer.due;
        timer_due_first = true;
      }
    }
    // cv_ waits on mu_ itself (condition_variable_any over the annotated
    // BasicLockable); a spurious wakeup just re-enters the loop and
    // restarts the quiesce window, which only ever waits longer.
    const std::cv_status wait_status = cv_.wait_until(mu_, wait_until);
    const bool got_more = !pending_.empty();
    if (!got_more && !timer_due_first &&
        wait_status == std::cv_status::timeout) {
      break;
    }
    // Either a delivery arrived or a timer is (about to be) due; loop to
    // pump both.
  }
  return total;
}

}  // namespace webdis::net
