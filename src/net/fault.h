#ifndef WEBDIS_NET_FAULT_H_
#define WEBDIS_NET_FAULT_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "net/transport.h"

namespace webdis::net {

/// What a FaultPlan decided for one accepted message.
struct FaultDecision {
  bool drop = false;          // lose the message in flight
  uint32_t duplicates = 0;    // extra copies to deliver besides the original
  SimDuration extra_delay = 0;  // added to every delivered copy
};

/// A composable fault schedule, consulted per accepted message. Faults model
/// loss *after* the connection was accepted — the window the paper's
/// report-then-forward ordering defends against (connection refusal is
/// already modelled synchronously by every Transport).
///
/// Three composable mechanisms:
///  * **Rules** — probabilistic or exact-count drop / duplication / delay,
///    scoped by message type, source/destination host, a match-count window
///    (`skip_first` / `max_faults`, for "lose exactly the 3rd clone"-style
///    phase targeting) and a virtual-time window (`active_from`/`active_until`,
///    honoured by SimNetwork which passes its clock).
///  * **Partitions** — symmetric host pairs whose traffic is dropped entirely
///    until healed (models a network partition; heal models its repair).
///  * A seeded RNG, so every randomized fault schedule is reproducible.
///
/// Attach to the simulated network with SimNetwork::SetFaultPlan, or wrap
/// any transport (including TcpTransport) in a FaultyTransport.
class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 1) : rng_(seed) {}

  struct Rule {
    /// Match scope; unset/empty fields match anything.
    std::optional<MessageType> type;
    std::string from_host;
    std::string to_host;
    /// Count-phase scope: let the first N matching messages through
    /// unfaulted, and stop faulting after `max_faults` faults.
    uint64_t skip_first = 0;
    uint64_t max_faults = std::numeric_limits<uint64_t>::max();
    /// Time-phase scope (virtual time; only enforced when the caller passes
    /// a clock, as SimNetwork does).
    SimTime active_from = 0;
    SimTime active_until = std::numeric_limits<SimTime>::max();
    /// Fault probabilities per matching message.
    double drop_prob = 0.0;
    double duplicate_prob = 0.0;
    double delay_prob = 0.0;
    SimDuration delay = 0;
  };

  /// Appends a rule; rules are consulted in insertion order and their
  /// effects combine (any drop wins; duplicates and delays accumulate).
  void AddRule(Rule rule) { rules_.push_back(RuleState{std::move(rule), 0, 0}); }

  /// Cuts all traffic between the two hosts (both directions) until healed.
  void Partition(const std::string& host_a, const std::string& host_b);
  void Heal(const std::string& host_a, const std::string& host_b);
  void HealAll() { partitions_.clear(); }
  bool Partitioned(const std::string& host_a, const std::string& host_b) const;

  /// Decides the fate of one accepted message. `now` is the caller's clock
  /// (0 when the transport keeps no virtual time).
  FaultDecision Decide(const Endpoint& from, const Endpoint& to,
                       MessageType type, SimTime now = 0);

  struct Stats {
    uint64_t dropped = 0;
    uint64_t duplicated = 0;
    uint64_t delayed = 0;
    uint64_t partition_drops = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct RuleState {
    Rule rule;
    uint64_t matches = 0;
    uint64_t faults = 0;
  };

  Rng rng_;
  std::vector<RuleState> rules_;
  std::set<std::pair<std::string, std::string>> partitions_;  // ordered pairs
  Stats stats_;
};

/// Transport decorator applying a FaultPlan to every Send — the way to
/// inject faults over transports without a native hook (e.g. real TCP).
/// Listen passes through untouched. Unlike SimNetwork's native hook (which
/// checks the listener first), a dropped send cannot probe acceptance over a
/// real transport, so it also suppresses synchronous refusal for that one
/// message; the retry layer's timeout covers both losses identically. Delay
/// needs timer support on the base transport; without it, delayed messages
/// are sent immediately.
class FaultyTransport : public Transport {
 public:
  /// Both must outlive the decorator. `plan` may be shared with other
  /// transports (its RNG then interleaves deterministically per call order).
  FaultyTransport(Transport* base, FaultPlan* plan)
      : base_(base), plan_(plan) {}

  Status Listen(const Endpoint& endpoint, MessageHandler handler) override {
    return base_->Listen(endpoint, std::move(handler));
  }
  void CloseListener(const Endpoint& endpoint) override {
    base_->CloseListener(endpoint);
  }
  Status Send(const Endpoint& from, const Endpoint& to, MessageType type,
              std::vector<uint8_t> payload) override;

  uint64_t ScheduleAfter(SimDuration delay, std::function<void()> fn) override {
    return base_->ScheduleAfter(delay, std::move(fn));
  }
  bool CancelTimer(uint64_t id) override { return base_->CancelTimer(id); }
  bool SupportsTimers() const override { return base_->SupportsTimers(); }

 private:
  Transport* base_;
  FaultPlan* plan_;
};

}  // namespace webdis::net

#endif  // WEBDIS_NET_FAULT_H_
