#include "net/breaker.h"

namespace webdis::net {

void HostBreakers::Trip(Breaker* b, SimTime now) {
  b->state = State::kOpen;
  b->consecutive_failures = 0;
  b->probes_in_flight = 0;
  b->probe_successes = 0;
  SimDuration interval = options_.open_timeout;
  const double j = options_.open_timeout_jitter;
  if (j > 0.0) {
    const double factor = 1.0 - j / 2.0 + j * jitter_rng_.NextDouble();
    interval = static_cast<SimDuration>(static_cast<double>(interval) * factor);
  }
  if (interval < 1) interval = 1;
  b->open_until = now + interval;
  ++stats_.trips;
}

bool HostBreakers::Allow(const std::string& host, SimTime now) {
  if (!options_.enabled) return true;
  auto it = hosts_.find(host);
  if (it == hosts_.end()) return true;  // no history: closed
  Breaker& b = it->second;
  switch (b.state) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now < b.open_until) {
        ++stats_.short_circuits;
        return false;
      }
      b.state = State::kHalfOpen;
      b.probes_in_flight = 0;
      b.probe_successes = 0;
      [[fallthrough]];
    case State::kHalfOpen:
      if (b.probes_in_flight >= options_.half_open_probes) {
        // Probe budget in flight; wait for an outcome.
        ++stats_.short_circuits;
        return false;
      }
      ++b.probes_in_flight;
      ++stats_.probes;
      return true;
  }
  return true;
}

void HostBreakers::RecordSuccess(const std::string& host, SimTime now) {
  (void)now;
  if (!options_.enabled) return;
  auto it = hosts_.find(host);
  if (it == hosts_.end()) return;  // closed with no failures: nothing to do
  Breaker& b = it->second;
  switch (b.state) {
    case State::kClosed:
      b.consecutive_failures = 0;
      break;
    case State::kOpen:
      // Ack for a send admitted before the trip; the trip stands.
      break;
    case State::kHalfOpen:
      ++b.probe_successes;
      if (b.probes_in_flight > 0) --b.probes_in_flight;
      if (b.probe_successes >= options_.half_open_probes) {
        b = Breaker{};  // closed, history cleared
        ++stats_.recoveries;
      }
      break;
  }
}

void HostBreakers::RecordFailure(const std::string& host, SimTime now) {
  if (!options_.enabled) return;
  Breaker& b = hosts_[host];
  switch (b.state) {
    case State::kClosed:
      if (++b.consecutive_failures >= options_.failure_threshold) {
        Trip(&b, now);
      }
      break;
    case State::kOpen:
      // Late failure from a pre-trip send; the trip stands.
      break;
    case State::kHalfOpen:
      Trip(&b, now);  // probe failed: back to open with a fresh interval
      break;
  }
}

HostBreakers::State HostBreakers::GetState(const std::string& host,
                                           SimTime now) {
  if (!options_.enabled) return State::kClosed;
  auto it = hosts_.find(host);
  if (it == hosts_.end()) return State::kClosed;
  Breaker& b = it->second;
  if (b.state == State::kOpen && now >= b.open_until) {
    // Report what Allow() would see: the probe window is open.
    return State::kHalfOpen;
  }
  return b.state;
}

}  // namespace webdis::net
