#ifndef WEBDIS_NET_TRANSPORT_H_
#define WEBDIS_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace webdis::net {

/// Application-level message types carried over the transport.
///
/// The trailing `payload:` annotations are machine-read by tools/webdis_lint
/// (wire-parity invariant): every constant must name its payload codec —
/// `struct <Type>` (EncodeTo/DecodeFrom pair), `codec <Enc>/<Dec>` (free
/// function pair), or a primitive like `u64 <field>` — and must have a
/// golden frame in tests/wire_golden_test.cc plus a "<Name> (type <N>)"
/// entry in PROTOCOL.md. Adding a constant without all three fails CI.
enum class MessageType : uint8_t {
  // A clone, sent to a query-server's well-known port.
  kWebQuery = 1,  // payload: struct query::WebQuery
  // Results + CHT entries, sent to the user-site result socket.
  kReport = 2,  // payload: struct query::QueryReport
  // Active termination (ablation of §2.8's passive mode).
  kTerminate = 3,  // payload: struct query::QueryId
  // Data-shipping baseline: document request.
  kFetchRequest = 4,  // payload: codec EncodeFetchRequest/DecodeFetchRequest
  // Data-shipping baseline: document contents.
  kFetchResponse = 5,  // payload: codec EncodeFetchResponse/DecodeFetchResponse
  // Ack-tree termination baseline (Related Work [4]).
  kAck = 6,  // payload: u64 ack_token
  // Per-transfer receipt of the at-least-once layer (PROTOCOL.md §6.1).
  kDeliveryAck = 7,  // payload: u64 transfer_seq
  // Admission-control NACK (PROTOCOL.md §7.2): the receiver shed the
  // transfer instead of processing it; the sender re-arms it under the
  // overload backoff class instead of retrying hot.
  kOverloaded = 8,  // payload: u64 transfer_seq
  // Cross-query sharing (PROTOCOL.md §9): clones of *different* queries
  // bound for the same destination host, carried in one framed message and
  // admitted atomically (all members or none).
  kCloneBatch = 9,  // payload: struct query::CloneBatch
  // Cross-query sharing (PROTOCOL.md §9): reports for different queries
  // bound for the same user-site host, batched per flush window.
  kReportBatch = 10,  // payload: struct query::ReportBatch
  // Site-churn NACK (PROTOCOL.md §10): the destination site retired — a
  // *terminal* outcome, unlike kOverloaded. The sender abandons the
  // transfer immediately instead of backing off to cap against a site
  // that will never come back.
  kSiteRetired = 11,  // payload: u64 transfer_seq
};

std::string_view MessageTypeToString(MessageType type);

/// A network address: host + port. In the simulated network hosts are
/// symbolic names; in the TCP transport every host maps to 127.0.0.1 and
/// ports distinguish the parties.
struct Endpoint {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const;

  bool operator==(const Endpoint& other) const {
    return host == other.host && port == other.port;
  }
  bool operator<(const Endpoint& other) const {
    if (host != other.host) return host < other.host;
    return port < other.port;
  }
};

/// Invoked on message delivery. `from` identifies the sender's endpoint.
using MessageHandler = std::function<void(
    const Endpoint& from, MessageType type,
    const std::vector<uint8_t>& payload)>;

/// Message transport between sites. Connection semantics mirror 1999 TCP as
/// the paper relies on them:
///  * Send() fails synchronously with ConnectionRefused when nothing listens
///    on the target endpoint — this is what makes the paper's *passive query
///    termination* (§2.8) work: the user site closes its result socket and
///    every later result dispatch fails at connect time;
///  * once accepted, delivery is asynchronous (the simulated network can be
///    told to drop accepted messages for failure-injection tests).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers a listener. Fails if the endpoint is already bound.
  [[nodiscard]] virtual Status Listen(const Endpoint& endpoint,
                                      MessageHandler handler) = 0;

  /// Stops listening; subsequent Sends to the endpoint are refused.
  virtual void CloseListener(const Endpoint& endpoint) = 0;

  /// Sends one message. See class comment for failure semantics. The result
  /// is load-bearing: synchronous ConnectionRefused drives both passive
  /// termination and the crashed-next-hop fallback, so it must be inspected
  /// (or explicitly voided with a reason) at every call site.
  [[nodiscard]] virtual Status Send(const Endpoint& from, const Endpoint& to,
                                    MessageType type,
                                    std::vector<uint8_t> payload) = 0;

  // -- Timers ---------------------------------------------------------------
  // Optional: the retry/recovery layers (net/reliable.h) need to schedule
  // retransmissions and deadline sweeps. Transports that cannot schedule
  // callbacks report !SupportsTimers() and those layers degrade to plain
  // fire-and-forget sends.

  /// Schedules `fn` to run after `delay` on the transport's dispatch context
  /// (the simulated clock for SimNetwork, wall time for TcpTransport).
  /// Returns a nonzero timer id, or 0 if the transport has no timer support.
  virtual uint64_t ScheduleAfter(SimDuration delay, std::function<void()> fn);

  /// Cancels a pending timer; returns true if it had not fired yet.
  virtual bool CancelTimer(uint64_t id);

  /// True if ScheduleAfter actually schedules.
  virtual bool SupportsTimers() const { return false; }
};

}  // namespace webdis::net

#endif  // WEBDIS_NET_TRANSPORT_H_
