#include "net/sim.h"

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "net/fault.h"
#include "serialize/framing.h"

namespace webdis::net {

SimNetwork::SimNetwork(SimNetworkOptions options)
    : options_(std::move(options)), jitter_rng_(options_.jitter_seed) {}

SimNetwork::~SimNetwork() = default;

Status SimNetwork::Listen(const Endpoint& endpoint, MessageHandler handler) {
  if (SliceContext* ctx = CurrentSliceContext(this); ctx != nullptr) {
    return SliceListen(ctx, endpoint, std::move(handler));
  }
  if (listeners_.contains(endpoint)) {
    return Status::InvalidArgument(StringPrintf(
        "endpoint %s already bound", endpoint.ToString().c_str()));
  }
  listeners_.emplace(endpoint, std::move(handler));
  return Status::OK();
}

void SimNetwork::CloseListener(const Endpoint& endpoint) {
  if (SliceContext* ctx = CurrentSliceContext(this); ctx != nullptr) {
    SliceCloseListener(ctx, endpoint);
    return;
  }
  listeners_.erase(endpoint);
  busy_until_.erase(endpoint);
}

Status SimNetwork::Send(const Endpoint& from, const Endpoint& to,
                        MessageType type, std::vector<uint8_t> payload) {
  if (SliceContext* ctx = CurrentSliceContext(this); ctx != nullptr) {
    return SliceSend(ctx, from, to, type, std::move(payload));
  }
  // Connect-time check: no listener means connection refused, which the
  // caller observes synchronously (like a failed TCP connect).
  if (!listeners_.contains(to)) {
    ++refused_;
    return Status::ConnectionRefused(StringPrintf(
        "no listener at %s", to.ToString().c_str()));
  }
  return SendAccepted(from, to, type, std::move(payload));
}

Status SimNetwork::SendAccepted(const Endpoint& from, const Endpoint& to,
                                MessageType type,
                                std::vector<uint8_t> payload) {
  // Meter the wire cost: payload plus the frame header every transport
  // prepends.
  const uint64_t wire_bytes =
      payload.size() + serialize::kFrameHeaderSize;
  total_.Add(wire_bytes);
  by_type_[type].Add(wire_bytes);
  const bool crosses_hosts = from.host != to.host;
  if (crosses_hosts) inter_host_.Add(wire_bytes);

  if (drop_filter_ && drop_filter_(from, to, type)) {
    ++dropped_;
    return Status::OK();  // accepted, then lost in flight
  }

  FaultDecision fault;
  if (fault_plan_ != nullptr) {
    fault = fault_plan_->Decide(from, to, type, now_);
    if (fault.drop) {
      ++dropped_;
      return Status::OK();  // accepted, then lost in flight
    }
  }
  // Duplicated messages model a retransmission racing its original: each
  // copy takes an independent trip through latency jitter and the serial
  // receive queue.
  for (uint32_t i = 0; i < fault.duplicates; ++i) {
    EnqueueDelivery(from, to, type, payload, fault.extra_delay, wire_bytes);
  }
  EnqueueDelivery(from, to, type, std::move(payload), fault.extra_delay,
                  wire_bytes);
  return Status::OK();
}

void SimNetwork::EnqueueDelivery(const Endpoint& from, const Endpoint& to,
                                 MessageType type,
                                 std::vector<uint8_t> payload,
                                 SimDuration extra_delay,
                                 uint64_t wire_bytes) {
  SimDuration latency = (from.host != to.host) ? options_.inter_host_latency
                                               : options_.same_host_latency;
  latency += extra_delay;
  if (options_.latency_jitter > 0) {
    latency += jitter_rng_.Uniform(options_.latency_jitter + 1);
  }
  if (!host_extra_latency_.empty()) {
    auto from_extra = host_extra_latency_.find(from.host);
    if (from_extra != host_extra_latency_.end()) {
      latency += from_extra->second;
    }
    auto to_extra = host_extra_latency_.find(to.host);
    if (to_extra != host_extra_latency_.end()) {
      latency += to_extra->second;
    }
  }
  const SimDuration transfer =
      options_.bandwidth_bytes_per_sec == 0
          ? 0
          : (wire_bytes * kSecond) / options_.bandwidth_bytes_per_sec;
  Event event;
  SimTime deliver_at = now_ + latency + transfer;
  if (options_.service_time) {
    // The receiving endpoint is a serial queue: handling starts when both
    // the message has arrived and the previous message is done.
    const SimDuration service =
        options_.service_time(to, type, wire_bytes);
    SimTime& busy_until = busy_until_[to];
    deliver_at = std::max(deliver_at, busy_until) + service;
    busy_until = deliver_at;
  }
  event.deliver_at = deliver_at;
  event.sequence = next_sequence_++;
  event.from = from;
  event.to = to;
  event.type = type;
  event.payload = std::move(payload);
  PushEvent(std::move(event));
}

void SimNetwork::PushEvent(Event event) {
  const auto key = std::make_pair(event.deliver_at, event.sequence);
  events_.emplace(key, std::move(event));
}

uint64_t SimNetwork::ScheduleAfter(SimDuration delay,
                                   std::function<void()> fn) {
  if (SliceContext* ctx = CurrentSliceContext(this); ctx != nullptr) {
    return SliceScheduleAfter(ctx, delay, std::move(fn));
  }
  Event event;
  event.deliver_at = now_ + delay;
  event.sequence = next_sequence_++;
  event.timer = std::move(fn);
  event.timer_id = next_timer_id_++;
  pending_timers_.insert(event.timer_id);
  const uint64_t id = event.timer_id;
  PushEvent(std::move(event));
  return id;
}

bool SimNetwork::CancelTimer(uint64_t id) {
  if (SliceContext* ctx = CurrentSliceContext(this); ctx != nullptr) {
    return SliceCancelTimer(ctx, id);
  }
  // The queued event stays; RunOne skips it when the id is no longer
  // pending.
  return pending_timers_.erase(id) > 0;
}

bool SimNetwork::RunOne() {
  if (events_.empty()) return false;
  auto it = events_.begin();
  Event event = std::move(it->second);
  events_.erase(it);
  DispatchEventLegacy(std::move(event));
  return true;
}

void SimNetwork::DispatchEventLegacy(Event event) {
  if (event.timer) {
    if (pending_timers_.erase(event.timer_id) == 0) {
      return;  // cancelled while queued
    }
    now_ = event.deliver_at;
    ++timers_fired_;
    WEBDIS_CHECK(delivered_ + timers_fired_ <= options_.max_deliveries)
        << "simulated network exceeded max_deliveries — runaway timers?";
    event.timer();
    return;
  }
  now_ = event.deliver_at;
  ++delivered_;
  WEBDIS_CHECK(delivered_ + timers_fired_ <= options_.max_deliveries)
      << "simulated network exceeded max_deliveries — runaway forwarding?";
  auto it = listeners_.find(event.to);
  if (it == listeners_.end()) {
    // Listener closed while the message was in flight: silently dropped,
    // exactly like packets racing a socket close.
    ++dropped_;
    return;
  }
  // Copy the handler: the handler itself may close/re-register listeners.
  MessageHandler handler = it->second;
  handler(event.from, event.type, event.payload);
}

void SimNetwork::RunUntilIdle() {
  if (options_.worker_threads > 0) {
    RunStepped();
    return;
  }
  while (RunOne()) {
  }
}

void SimNetwork::SetHostExtraLatency(const std::string& host,
                                     SimDuration extra) {
  host_extra_latency_[host] = extra;
}

void SimNetwork::KillHost(const std::string& host) {
  for (auto it = listeners_.begin(); it != listeners_.end();) {
    if (it->first.host == host) {
      it = listeners_.erase(it);
    } else {
      ++it;
    }
  }
}

const TrafficStats& SimNetwork::traffic_for(MessageType type) const {
  static const TrafficStats kEmpty;
  auto it = by_type_.find(type);
  return it == by_type_.end() ? kEmpty : it->second;
}

void SimNetwork::ResetMetrics() {
  total_ = TrafficStats();
  inter_host_ = TrafficStats();
  by_type_.clear();
  refused_ = 0;
  dropped_ = 0;
  delivered_ = 0;
}

}  // namespace webdis::net
