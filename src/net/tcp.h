#ifndef WEBDIS_NET_TCP_H_
#define WEBDIS_NET_TCP_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <thread>

#include "common/thread_annotations.h"
#include "net/transport.h"

namespace webdis::net {

/// Real-socket transport over localhost. Symbolic endpoints (host, port) are
/// mapped to ephemeral 127.0.0.1 ports via an in-process registry, so many
/// "hosts" can all listen on the WEBDIS well-known port concurrently (as a
/// real deployment would across machines). Messages are frames
/// (serialize/framing.h) carrying the sender endpoint plus the payload, one
/// connection per message — the paper's WEBDIS used exactly this
/// one-shot-socket style between Java sites.
///
/// Threading model: accept/read happen on background threads, but handler
/// dispatch is *pumped by the caller* via ProcessPending()/PumpUntilIdle(),
/// so client/server code stays single-threaded like with SimNetwork. All
/// state shared with the background threads is guarded by mu_ and annotated
/// for Clang's -Wthread-safety analysis.
class TcpTransport : public Transport {
 public:
  TcpTransport();
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // -- Transport ------------------------------------------------------------
  /// Binds an ephemeral 127.0.0.1 port and registers it for the symbolic
  /// endpoint.
  Status Listen(const Endpoint& endpoint, MessageHandler handler) override
      WEBDIS_EXCLUDES(mu_);
  void CloseListener(const Endpoint& endpoint) override WEBDIS_EXCLUDES(mu_);
  /// Resolves the symbolic endpoint, connects, writes one frame, closes.
  /// Synchronous ConnectionRefused when nothing is listening (unregistered
  /// endpoints count too — exactly the semantics passive termination needs).
  Status Send(const Endpoint& from, const Endpoint& to, MessageType type,
              std::vector<uint8_t> payload) override WEBDIS_EXCLUDES(mu_);

  /// Wall-clock timers, fired from the caller's pump (ProcessPending /
  /// PumpUntilIdle) — never from a background thread, preserving the
  /// single-threaded dispatch model.
  uint64_t ScheduleAfter(SimDuration delay, std::function<void()> fn) override
      WEBDIS_EXCLUDES(mu_);
  bool CancelTimer(uint64_t id) override WEBDIS_EXCLUDES(mu_);
  bool SupportsTimers() const override { return true; }

  /// The real 127.0.0.1 port bound for a symbolic endpoint (0 if none).
  uint16_t ResolvePort(const Endpoint& endpoint) const WEBDIS_EXCLUDES(mu_);

  // -- Dispatch pump --------------------------------------------------------
  /// Dispatches all received-but-undelivered messages. Returns how many.
  size_t ProcessPending() WEBDIS_EXCLUDES(mu_);

  /// Pumps until no message arrives for `quiesce_ms` milliseconds. Returns
  /// total dispatched. Use after submitting work to let the exchange settle.
  size_t PumpUntilIdle(int quiesce_ms = 200) WEBDIS_EXCLUDES(mu_);

 private:
  struct Listener;
  struct Delivery {
    Endpoint from;
    Endpoint to;
    MessageType type;
    std::vector<uint8_t> payload;
  };
  struct Timer {
    // webdis-lint: allow(clock) — the TCP transport is the one component
    // whose timers are *defined* to be wall-clock (common/clock.h).
    std::chrono::steady_clock::time_point due;
    std::function<void()> fn;
  };

  void AcceptLoop(Listener* listener) WEBDIS_EXCLUDES(mu_);
  void ReadConnection(int fd, Listener* listener) WEBDIS_EXCLUDES(mu_);
  /// Fires every due timer; returns how many fired.
  size_t FireDueTimers() WEBDIS_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::map<Endpoint, std::unique_ptr<Listener>> listeners_
      WEBDIS_GUARDED_BY(mu_);
  // symbolic -> bound 127.0.0.1 port
  std::map<Endpoint, uint16_t> real_ports_ WEBDIS_GUARDED_BY(mu_);
  std::deque<Delivery> pending_ WEBDIS_GUARDED_BY(mu_);
  uint64_t next_timer_id_ WEBDIS_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, Timer> timers_ WEBDIS_GUARDED_BY(mu_);
};

}  // namespace webdis::net

#endif  // WEBDIS_NET_TCP_H_
