#ifndef WEBDIS_NET_TCP_H_
#define WEBDIS_NET_TCP_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "net/transport.h"

namespace webdis::net {

/// Real-socket transport over localhost. Symbolic endpoints (host, port) are
/// mapped to ephemeral 127.0.0.1 ports via an in-process registry, so many
/// "hosts" can all listen on the WEBDIS well-known port concurrently (as a
/// real deployment would across machines). Messages are frames
/// (serialize/framing.h) carrying the sender endpoint plus the payload, one
/// connection per message — the paper's WEBDIS used exactly this
/// one-shot-socket style between Java sites.
///
/// Threading model: accept/read happen on background threads, but handler
/// dispatch is *pumped by the caller* via ProcessPending()/PumpUntilIdle(),
/// so client/server code stays single-threaded like with SimNetwork.
class TcpTransport : public Transport {
 public:
  TcpTransport();
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // -- Transport ------------------------------------------------------------
  /// Binds an ephemeral 127.0.0.1 port and registers it for the symbolic
  /// endpoint.
  Status Listen(const Endpoint& endpoint, MessageHandler handler) override;
  void CloseListener(const Endpoint& endpoint) override;
  /// Resolves the symbolic endpoint, connects, writes one frame, closes.
  /// Synchronous ConnectionRefused when nothing is listening (unregistered
  /// endpoints count too — exactly the semantics passive termination needs).
  Status Send(const Endpoint& from, const Endpoint& to, MessageType type,
              std::vector<uint8_t> payload) override;

  /// Wall-clock timers, fired from the caller's pump (ProcessPending /
  /// PumpUntilIdle) — never from a background thread, preserving the
  /// single-threaded dispatch model.
  uint64_t ScheduleAfter(SimDuration delay, std::function<void()> fn) override;
  bool CancelTimer(uint64_t id) override;
  bool SupportsTimers() const override { return true; }

  /// The real 127.0.0.1 port bound for a symbolic endpoint (0 if none).
  uint16_t ResolvePort(const Endpoint& endpoint) const;

  // -- Dispatch pump --------------------------------------------------------
  /// Dispatches all received-but-undelivered messages. Returns how many.
  size_t ProcessPending();

  /// Pumps until no message arrives for `quiesce_ms` milliseconds. Returns
  /// total dispatched. Use after submitting work to let the exchange settle.
  size_t PumpUntilIdle(int quiesce_ms = 200);

 private:
  struct Listener;
  struct Delivery {
    Endpoint from;
    Endpoint to;
    MessageType type;
    std::vector<uint8_t> payload;
  };
  struct Timer {
    std::chrono::steady_clock::time_point due;
    std::function<void()> fn;
  };

  void AcceptLoop(Listener* listener);
  void ReadConnection(int fd, Listener* listener);
  /// Fires every due timer; returns how many fired.
  size_t FireDueTimers();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Endpoint, std::unique_ptr<Listener>> listeners_;
  std::map<Endpoint, uint16_t> real_ports_;  // symbolic -> bound 127.0.0.1 port
  std::deque<Delivery> pending_;
  uint64_t next_timer_id_ = 1;
  std::map<uint64_t, Timer> timers_;
};

}  // namespace webdis::net

#endif  // WEBDIS_NET_TCP_H_
