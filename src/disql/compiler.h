#ifndef WEBDIS_DISQL_COMPILER_H_
#define WEBDIS_DISQL_COMPILER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "disql/ast.h"
#include "query/web_query.h"

namespace webdis::disql {

/// The compiled form of a DISQL query: a WebQuery template (query id and
/// destinations are filled in by the client at submission time), the
/// StartNode URLs, and the user-level select labels in their original order
/// (for result display).
struct CompiledQuery {
  query::WebQuery web_query;            // rem_pre = p1, all node-queries
  std::vector<std::string> start_urls;
  std::vector<std::string> select_labels;

  /// The formal web-query notation `Q = S p1 q1 p2 q2 ...` (Section 2.3),
  /// used by traces and tests.
  std::string ToString() const;
};

/// Compiles a parsed DISQL query per Section 2.3:
///  * validates the step chain (first step starts from URLs; each later
///    step's source is the previous step's document alias);
///  * checks alias uniqueness and that every predicate references only
///    aliases local to its own step (node-queries must be locally
///    evaluable);
///  * type-checks column references against the virtual relation schemas;
///  * splits the single user-level select list so each node-query projects
///    only attributes of relations created at its own node.
Result<CompiledQuery> Compile(const ParsedQuery& parsed);

/// Convenience: parse + compile.
Result<CompiledQuery> CompileDisql(std::string_view disql_text);

/// Renders a human-readable execution plan: StartNodes, then one block per
/// (PRE, node-query) stage with the PRE, whether the stage's node-query is
/// evaluated at distance zero (the PRE admits the empty path), the link
/// types the traversal fans out on, and the local select. The distributed
/// analogue of EXPLAIN.
std::string ExplainQuery(const CompiledQuery& compiled);

}  // namespace webdis::disql

#endif  // WEBDIS_DISQL_COMPILER_H_
