#ifndef WEBDIS_DISQL_LEXER_H_
#define WEBDIS_DISQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace webdis::disql {

/// DISQL token kinds. Keywords are case-insensitive and lexed as kKeyword
/// with lower-cased text; identifiers keep their case.
enum class TokenKind : uint8_t {
  kKeyword,     // select from where document anchor relinfon such that
                // contains and or not
  kIdent,       // aliases: d0, a, r, ...
  kString,      // "..." (no escapes; 1999-era strings)
  kNumber,      // decimal integer
  kComma,       // ,
  kDot,         // . or the paper's middle dot ·
  kStar,        // *
  kPipe,        // |
  kLParen,      // (
  kRParen,      // )
  kEq,          // =
  kNe,          // != or <>
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kEnd,         // end of input
};

std::string_view TokenKindToString(TokenKind kind);

/// One DISQL token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // keyword (lower-cased) / ident / string / number
  uint64_t number = 0;    // kNumber only
  size_t offset = 0;

  bool IsKeyword(std::string_view kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
};

/// Tokenizes a DISQL query. Fails on unterminated strings or illegal
/// characters. A kEnd token is always appended.
Result<std::vector<Token>> Lex(std::string_view input);

}  // namespace webdis::disql

#endif  // WEBDIS_DISQL_LEXER_H_
