#include <optional>

#include "common/strings.h"
#include "disql/ast.h"
#include "disql/lexer.h"

namespace webdis::disql {

namespace {

using relational::CompareOp;
using relational::Expr;
using relational::ExprPtr;
using relational::Value;

bool IsLinkSymbolIdent(const Token& t) {
  return t.kind == TokenKind::kIdent && t.text.size() == 1 &&
         (t.text[0] == 'I' || t.text[0] == 'L' || t.text[0] == 'G' ||
          t.text[0] == 'N');
}

/// Recursive-descent DISQL parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery query;
    WEBDIS_RETURN_IF_ERROR(ExpectKeyword("select"));
    WEBDIS_RETURN_IF_ERROR(ParseSelectList(&query.select));
    WEBDIS_RETURN_IF_ERROR(ExpectKeyword("from"));
    while (!Peek().IsKeyword("document") && Peek().kind != TokenKind::kEnd) {
      return Error("expected 'document' to start a traversal step");
    }
    while (Peek().IsKeyword("document")) {
      Step step;
      WEBDIS_RETURN_IF_ERROR(ParseStep(&step));
      query.steps.push_back(std::move(step));
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected input after query");
    }
    if (query.steps.empty()) {
      return Error("query has no traversal steps");
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }

  const Token& Advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  Status Error(std::string message) const {
    return Status::ParseError(StringPrintf(
        "%s (near offset %zu, at %s '%s')", message.c_str(), Peek().offset,
        std::string(TokenKindToString(Peek().kind)).c_str(),
        Peek().text.c_str()));
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!Peek().IsKeyword(kw)) {
      return Error(StringPrintf("expected '%s'", std::string(kw).c_str()));
    }
    Advance();
    return Status::OK();
  }

  Status Expect(TokenKind kind, std::string* text_out = nullptr) {
    if (Peek().kind != kind) {
      return Error(StringPrintf(
          "expected %s", std::string(TokenKindToString(kind)).c_str()));
    }
    if (text_out != nullptr) *text_out = Peek().text;
    Advance();
    return Status::OK();
  }

  void SkipOptionalComma() {
    if (Peek().kind == TokenKind::kComma) Advance();
  }

  Status ParseSelectList(std::vector<relational::OutputColumn>* out) {
    while (true) {
      relational::OutputColumn col;
      WEBDIS_RETURN_IF_ERROR(Expect(TokenKind::kIdent, &col.alias));
      WEBDIS_RETURN_IF_ERROR(Expect(TokenKind::kDot));
      WEBDIS_RETURN_IF_ERROR(Expect(TokenKind::kIdent, &col.column));
      out->push_back(std::move(col));
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    if (out->empty()) return Error("empty select list");
    return Status::OK();
  }

  Status ParseStep(Step* step) {
    WEBDIS_RETURN_IF_ERROR(ExpectKeyword("document"));
    WEBDIS_RETURN_IF_ERROR(Expect(TokenKind::kIdent, &step->doc_alias));
    if (step->doc_alias.size() == 1 &&
        std::string("ILGN").find(step->doc_alias) != std::string::npos) {
      return Error("document alias collides with a PRE link symbol");
    }
    WEBDIS_RETURN_IF_ERROR(ExpectKeyword("such"));
    WEBDIS_RETURN_IF_ERROR(ExpectKeyword("that"));
    // Source: StartNode string(s) or a previous document alias.
    if (Peek().kind == TokenKind::kString) {
      step->start_urls.push_back(Advance().text);
    } else if (Peek().kind == TokenKind::kLParen &&
               Peek(1).kind == TokenKind::kString) {
      Advance();  // '('
      while (true) {
        std::string url;
        WEBDIS_RETURN_IF_ERROR(Expect(TokenKind::kString, &url));
        step->start_urls.push_back(std::move(url));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      WEBDIS_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    } else if (Peek().kind == TokenKind::kIdent &&
               !IsLinkSymbolIdent(Peek())) {
      step->source_alias = Advance().text;
    } else {
      return Error(
          "expected a StartNode URL string or a previous document alias");
    }
    WEBDIS_ASSIGN_OR_RETURN(step->pre, ParsePreAlt());
    // Target alias: must repeat the declared document alias.
    std::string target;
    WEBDIS_RETURN_IF_ERROR(Expect(TokenKind::kIdent, &target));
    if (target != step->doc_alias) {
      return Error(StringPrintf(
          "traversal target '%s' does not match declared alias '%s'",
          target.c_str(), step->doc_alias.c_str()));
    }
    SkipOptionalComma();
    // Auxiliary relation declarations.
    while (Peek().IsKeyword("anchor") || Peek().IsKeyword("relinfon")) {
      AuxDecl aux;
      aux.relation = Advance().text;
      WEBDIS_RETURN_IF_ERROR(Expect(TokenKind::kIdent, &aux.alias));
      if (Peek().IsKeyword("such")) {
        Advance();
        WEBDIS_RETURN_IF_ERROR(ExpectKeyword("that"));
        WEBDIS_ASSIGN_OR_RETURN(aux.such_that, ParseExpr());
      }
      step->aux.push_back(std::move(aux));
      SkipOptionalComma();
    }
    if (Peek().IsKeyword("where")) {
      Advance();
      WEBDIS_ASSIGN_OR_RETURN(step->where, ParseExpr());
    }
    SkipOptionalComma();
    return Status::OK();
  }

  // -- PRE over tokens -----------------------------------------------------

  Result<pre::Pre> ParsePreAlt() {
    std::vector<pre::Pre> parts;
    pre::Pre first;
    WEBDIS_ASSIGN_OR_RETURN(first, ParsePreConcat());
    parts.push_back(std::move(first));
    while (Peek().kind == TokenKind::kPipe) {
      Advance();
      pre::Pre next;
      WEBDIS_ASSIGN_OR_RETURN(next, ParsePreConcat());
      parts.push_back(std::move(next));
    }
    return pre::Pre::AltAll(parts);
  }

  Result<pre::Pre> ParsePreConcat() {
    std::vector<pre::Pre> parts;
    pre::Pre first;
    WEBDIS_ASSIGN_OR_RETURN(first, ParsePreRepeat());
    parts.push_back(std::move(first));
    while (Peek().kind == TokenKind::kDot) {
      Advance();
      pre::Pre next;
      WEBDIS_ASSIGN_OR_RETURN(next, ParsePreRepeat());
      parts.push_back(std::move(next));
    }
    return pre::Pre::ConcatAll(parts);
  }

  Result<pre::Pre> ParsePreRepeat() {
    pre::Pre base;
    WEBDIS_ASSIGN_OR_RETURN(base, ParsePreAtom());
    while (Peek().kind == TokenKind::kStar) {
      Advance();
      if (Peek().kind == TokenKind::kNumber) {
        const uint64_t bound = Advance().number;
        base = pre::Pre::Repeat(base, static_cast<uint32_t>(bound));
      } else {
        base = pre::Pre::RepeatUnbounded(base);
      }
    }
    return base;
  }

  Result<pre::Pre> ParsePreAtom() {
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      pre::Pre inner;
      WEBDIS_ASSIGN_OR_RETURN(inner, ParsePreAlt());
      WEBDIS_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    if (IsLinkSymbolIdent(Peek())) {
      const char symbol = Advance().text[0];
      auto link = html::LinkTypeFromSymbol(symbol);
      WEBDIS_RETURN_IF_ERROR(link.status());
      return pre::Pre::Link(link.value());
    }
    return Error("expected PRE link symbol (I, L, G, N) or '('");
  }

  // -- Expressions ---------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    ExprPtr lhs;
    WEBDIS_ASSIGN_OR_RETURN(lhs, ParseAnd());
    while (Peek().IsKeyword("or")) {
      Advance();
      ExprPtr rhs;
      WEBDIS_ASSIGN_OR_RETURN(rhs, ParseAnd());
      lhs = Expr::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    ExprPtr lhs;
    WEBDIS_ASSIGN_OR_RETURN(lhs, ParseNot());
    while (Peek().IsKeyword("and")) {
      Advance();
      ExprPtr rhs;
      WEBDIS_ASSIGN_OR_RETURN(rhs, ParseNot());
      lhs = Expr::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Peek().IsKeyword("not")) {
      Advance();
      ExprPtr operand;
      WEBDIS_ASSIGN_OR_RETURN(operand, ParseNot());
      return Expr::Not(std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      ExprPtr inner;
      WEBDIS_ASSIGN_OR_RETURN(inner, ParseExpr());
      WEBDIS_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    ExprPtr lhs;
    WEBDIS_ASSIGN_OR_RETURN(lhs, ParseOperand());
    std::optional<CompareOp> op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = CompareOp::kEq;
        break;
      case TokenKind::kNe:
        op = CompareOp::kNe;
        break;
      case TokenKind::kLt:
        op = CompareOp::kLt;
        break;
      case TokenKind::kLe:
        op = CompareOp::kLe;
        break;
      case TokenKind::kGt:
        op = CompareOp::kGt;
        break;
      case TokenKind::kGe:
        op = CompareOp::kGe;
        break;
      default:
        break;
    }
    if (op.has_value()) {
      Advance();
      ExprPtr rhs;
      WEBDIS_ASSIGN_OR_RETURN(rhs, ParseOperand());
      return Expr::Compare(*op, std::move(lhs), std::move(rhs));
    }
    if (Peek().IsKeyword("contains")) {
      Advance();
      ExprPtr rhs;
      WEBDIS_ASSIGN_OR_RETURN(rhs, ParseOperand());
      return Expr::Contains(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseOperand() {
    if (Peek().kind == TokenKind::kString) {
      return Expr::Literal(Value(Advance().text));
    }
    if (Peek().kind == TokenKind::kNumber) {
      return Expr::Literal(Value(static_cast<int64_t>(Advance().number)));
    }
    if (Peek().kind == TokenKind::kIdent) {
      std::string alias;
      WEBDIS_RETURN_IF_ERROR(Expect(TokenKind::kIdent, &alias));
      WEBDIS_RETURN_IF_ERROR(Expect(TokenKind::kDot));
      std::string column;
      WEBDIS_RETURN_IF_ERROR(Expect(TokenKind::kIdent, &column));
      return Expr::ColumnRef(std::move(alias), std::move(column));
    }
    return Error("expected string, number, or alias.column");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string ParsedQuery::ToString() const {
  std::string out = "select ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    out += select[i].Label();
  }
  out += "\nfrom ";
  for (size_t k = 0; k < steps.size(); ++k) {
    const Step& step = steps[k];
    if (k > 0) out += "     ";
    out += "document " + step.doc_alias + " such that ";
    if (!step.start_urls.empty()) {
      if (step.start_urls.size() == 1) {
        out += "\"" + step.start_urls[0] + "\"";
      } else {
        out += "(";
        for (size_t i = 0; i < step.start_urls.size(); ++i) {
          if (i > 0) out += ", ";
          out += "\"" + step.start_urls[i] + "\"";
        }
        out += ")";
      }
    } else {
      out += step.source_alias;
    }
    out += " " + step.pre.ToString() + " " + step.doc_alias;
    for (const AuxDecl& aux : step.aux) {
      out += ",\n       " + aux.relation + " " + aux.alias;
      if (aux.such_that != nullptr) {
        out += " such that " + aux.such_that->ToString();
      }
    }
    if (step.where != nullptr) {
      out += "\nwhere " + step.where->ToString();
    }
    out += "\n";
  }
  return out;
}

Result<ParsedQuery> ParseDisql(std::string_view input) {
  std::vector<Token> tokens;
  WEBDIS_ASSIGN_OR_RETURN(tokens, Lex(input));
  return Parser(std::move(tokens)).Parse();
}

}  // namespace webdis::disql
