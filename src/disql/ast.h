#ifndef WEBDIS_DISQL_AST_H_
#define WEBDIS_DISQL_AST_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "pre/pre.h"
#include "relational/eval.h"
#include "relational/expr.h"

namespace webdis::disql {

/// An auxiliary virtual-relation declaration inside a step:
/// `anchor a` or `relinfon r such that r.delimiter = "hr"`.
struct AuxDecl {
  std::string relation;  // "anchor" | "relinfon"
  std::string alias;
  relational::ExprPtr such_that;  // may be null
};

/// One traversal step of a DISQL query — a (PRE, node-query) pair:
/// `document d1 such that d0 G·(L*1) d1, relinfon r ..., where ...`.
/// The first step's source is a StartNode URL set; later steps chain from
/// the previous step's document alias.
struct Step {
  std::string doc_alias;
  std::vector<std::string> start_urls;  // first step only
  std::string source_alias;             // later steps only
  pre::Pre pre;
  std::vector<AuxDecl> aux;
  relational::ExprPtr where;  // may be null
};

/// A parsed DISQL query: the single user-level select list (split across
/// node-queries by the compiler, Section 2.3) plus the step chain.
struct ParsedQuery {
  std::vector<relational::OutputColumn> select;
  std::vector<Step> steps;

  /// Pretty-printed DISQL (normalized form) for traces and tests.
  std::string ToString() const;
};

/// Parses DISQL text. The grammar follows the paper's two example queries:
///
///   query  := 'select' col (',' col)* 'from' step+
///   col    := ident '.' ident
///   step   := 'document' ident 'such' 'that' source PRE ident [',']
///             aux* ['where' expr] [',']
///   source := string | '(' string (',' string)* ')' | ident
///   aux    := ('anchor'|'relinfon') ident ['such' 'that' expr] [',']
///   expr   := the usual and/or/not over comparisons and 'contains'
///
/// PREs are parsed from the token stream (link symbols I/L/G/N, '.', '|',
/// '*k', parentheses). Aliases must not collide with link symbols.
Result<ParsedQuery> ParseDisql(std::string_view input);

}  // namespace webdis::disql

#endif  // WEBDIS_DISQL_AST_H_
