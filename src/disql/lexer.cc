#include "disql/lexer.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace webdis::disql {

std::string_view TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kString:
      return "string";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kEnd:
      return "end of query";
  }
  return "?";
}

namespace {

constexpr std::string_view kKeywords[] = {
    "select", "from", "where",    "document", "anchor", "relinfon",
    "such",   "that", "contains", "and",      "or",     "not",
};

bool IsKeywordWord(std::string_view word) {
  return std::find(std::begin(kKeywords), std::end(kKeywords), word) !=
         std::end(kKeywords);
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const auto push = [&](TokenKind kind, std::string text, size_t offset) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.offset = offset;
    tokens.push_back(std::move(t));
  };
  while (i < input.size()) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: "--" to end of line.
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '-') {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    // UTF-8 middle dot (the paper's concatenation operator).
    if (static_cast<unsigned char>(c) == 0xC2 && i + 1 < input.size() &&
        static_cast<unsigned char>(input[i + 1]) == 0xB7) {
      push(TokenKind::kDot, ".", start);
      i += 2;
      continue;
    }
    switch (c) {
      case ',':
        push(TokenKind::kComma, ",", start);
        ++i;
        continue;
      case '.':
        push(TokenKind::kDot, ".", start);
        ++i;
        continue;
      case '*':
        push(TokenKind::kStar, "*", start);
        ++i;
        continue;
      case '|':
        push(TokenKind::kPipe, "|", start);
        ++i;
        continue;
      case '(':
        push(TokenKind::kLParen, "(", start);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, ")", start);
        ++i;
        continue;
      case '=':
        push(TokenKind::kEq, "=", start);
        ++i;
        continue;
      case '!':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kNe, "!=", start);
          i += 2;
          continue;
        }
        return Status::ParseError(
            StringPrintf("stray '!' at offset %zu", start));
      case '<':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kLe, "<=", start);
          i += 2;
        } else if (i + 1 < input.size() && input[i + 1] == '>') {
          push(TokenKind::kNe, "<>", start);
          i += 2;
        } else {
          push(TokenKind::kLt, "<", start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kGe, ">=", start);
          i += 2;
        } else {
          push(TokenKind::kGt, ">", start);
          ++i;
        }
        continue;
      case '"': {
        ++i;
        std::string value;
        while (i < input.size() && input[i] != '"') {
          value.push_back(input[i++]);
        }
        if (i >= input.size()) {
          return Status::ParseError(StringPrintf(
              "unterminated string starting at offset %zu", start));
        }
        ++i;  // closing quote
        push(TokenKind::kString, std::move(value), start);
        continue;
      }
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      uint64_t value = 0;
      std::string text;
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        value = value * 10 + static_cast<uint64_t>(input[i] - '0');
        if (value > 1000000000ULL) {
          return Status::ParseError(
              StringPrintf("number too large at offset %zu", start));
        }
        text.push_back(input[i++]);
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = std::move(text);
      t.number = value;
      t.offset = start;
      tokens.push_back(std::move(t));
      continue;
    }
    if (IsIdentStart(c)) {
      std::string word;
      while (i < input.size() && IsIdentChar(input[i])) {
        word.push_back(input[i++]);
      }
      const std::string lower = ToLower(word);
      if (IsKeywordWord(lower)) {
        push(TokenKind::kKeyword, lower, start);
      } else {
        push(TokenKind::kIdent, std::move(word), start);
      }
      continue;
    }
    return Status::ParseError(StringPrintf(
        "illegal character '%c' (0x%02x) at offset %zu", c,
        static_cast<unsigned char>(c), start));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = input.size();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace webdis::disql
