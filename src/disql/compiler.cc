#include "disql/compiler.h"

#include <map>
#include <set>

#include "common/strings.h"
#include "relational/table.h"

namespace webdis::disql {

namespace {

using relational::Expr;
using relational::ExprPtr;
using relational::Schema;

/// Schema for a relation name, or nullptr.
const Schema* SchemaFor(std::string_view relation) {
  if (relation == relational::kDocumentRelation) {
    return &relational::DocumentSchema();
  }
  if (relation == relational::kAnchorRelation) {
    return &relational::AnchorSchema();
  }
  if (relation == relational::kRelInfonRelation) {
    return &relational::RelInfonSchema();
  }
  return nullptr;
}

/// Validates that every alias.column in `expr` resolves against the step's
/// alias->relation map and the relation schemas.
Status CheckExprColumns(const Expr* expr,
                        const std::map<std::string, std::string>& aliases) {
  if (expr == nullptr) return Status::OK();
  if (expr->kind() == relational::ExprKind::kColumnRef) {
    auto it = aliases.find(expr->alias());
    if (it == aliases.end()) {
      return Status::InvalidArgument(StringPrintf(
          "predicate references alias '%s' that is not declared in the same "
          "step (node-queries must be locally evaluable)",
          expr->alias().c_str()));
    }
    const Schema* schema = SchemaFor(it->second);
    if (schema == nullptr || schema->IndexOf(expr->column()) < 0) {
      return Status::InvalidArgument(StringPrintf(
          "relation '%s' (alias '%s') has no column '%s'",
          it->second.c_str(), expr->alias().c_str(), expr->column().c_str()));
    }
    return Status::OK();
  }
  if (expr->left() != nullptr) {
    WEBDIS_RETURN_IF_ERROR(CheckExprColumns(expr->left(), aliases));
  }
  if (expr->right() != nullptr) {
    WEBDIS_RETURN_IF_ERROR(CheckExprColumns(expr->right(), aliases));
  }
  return Status::OK();
}

}  // namespace

std::string CompiledQuery::ToString() const {
  std::string out = "Q = {";
  for (size_t i = 0; i < start_urls.size(); ++i) {
    if (i > 0) out += ", ";
    out += start_urls[i];
  }
  out += "}";
  const query::WebQuery& wq = web_query;
  for (size_t k = 0; k < wq.remaining_queries.size(); ++k) {
    const pre::Pre& p = (k == 0) ? wq.rem_pre : wq.future_pres[k - 1];
    out += "  " + p.ToString();
    out += "  [" + wq.remaining_queries[k].ToString() + "]";
  }
  return out;
}

Result<CompiledQuery> Compile(const ParsedQuery& parsed) {
  if (parsed.steps.empty()) {
    return Status::InvalidArgument("query has no steps");
  }
  // -- Step-chain validation ----------------------------------------------
  if (parsed.steps[0].start_urls.empty()) {
    return Status::InvalidArgument(
        "first step must start from StartNode URL(s)");
  }
  for (size_t k = 1; k < parsed.steps.size(); ++k) {
    const Step& step = parsed.steps[k];
    if (!step.start_urls.empty()) {
      return Status::InvalidArgument(
          "only the first step may specify StartNode URLs");
    }
    if (step.source_alias != parsed.steps[k - 1].doc_alias) {
      return Status::InvalidArgument(StringPrintf(
          "step %zu starts from '%s' but the previous document alias is "
          "'%s' (steps must chain)",
          k + 1, step.source_alias.c_str(),
          parsed.steps[k - 1].doc_alias.c_str()));
    }
  }
  // -- Alias table ---------------------------------------------------------
  // alias -> (step index, relation name)
  std::map<std::string, std::pair<size_t, std::string>> alias_table;
  for (size_t k = 0; k < parsed.steps.size(); ++k) {
    const Step& step = parsed.steps[k];
    if (!alias_table
             .emplace(step.doc_alias,
                      std::make_pair(k, std::string(
                                            relational::kDocumentRelation)))
             .second) {
      return Status::InvalidArgument(StringPrintf(
          "duplicate alias '%s'", step.doc_alias.c_str()));
    }
    for (const AuxDecl& aux : step.aux) {
      if (SchemaFor(aux.relation) == nullptr) {
        return Status::InvalidArgument(StringPrintf(
            "unknown relation '%s'", aux.relation.c_str()));
      }
      if (!alias_table.emplace(aux.alias, std::make_pair(k, aux.relation))
               .second) {
        return Status::InvalidArgument(
            StringPrintf("duplicate alias '%s'", aux.alias.c_str()));
      }
    }
  }
  // -- Per-step node-query construction -------------------------------------
  CompiledQuery compiled;
  compiled.start_urls = parsed.steps[0].start_urls;
  for (const relational::OutputColumn& col : parsed.select) {
    compiled.select_labels.push_back(col.Label());
  }

  query::WebQuery& wq = compiled.web_query;
  for (size_t k = 0; k < parsed.steps.size(); ++k) {
    const Step& step = parsed.steps[k];
    // Local alias -> relation map for predicate checking.
    std::map<std::string, std::string> local_aliases;
    local_aliases[step.doc_alias] = std::string(relational::kDocumentRelation);
    for (const AuxDecl& aux : step.aux) {
      local_aliases[aux.alias] = aux.relation;
    }

    query::NodeQuery nq;
    nq.doc_alias = step.doc_alias;
    nq.select.from.push_back(
        {std::string(relational::kDocumentRelation), step.doc_alias});
    ExprPtr where = step.where == nullptr ? nullptr : step.where->Clone();
    for (const AuxDecl& aux : step.aux) {
      nq.select.from.push_back({aux.relation, aux.alias});
      if (aux.such_that != nullptr) {
        where = (where == nullptr)
                    ? aux.such_that->Clone()
                    : Expr::And(std::move(where), aux.such_that->Clone());
      }
    }
    WEBDIS_RETURN_IF_ERROR(CheckExprColumns(where.get(), local_aliases));
    nq.select.where = std::move(where);

    // Split of the user-level select list (Section 2.3): the node-query
    // projects exactly the user columns whose alias is declared in this
    // step. A step with no projected columns still produces its document
    // URL so the user can see the traversal succeed (and so the
    // empty-vs-nonempty "answer found" test is meaningful).
    for (const relational::OutputColumn& col : parsed.select) {
      auto it = alias_table.find(col.alias);
      if (it == alias_table.end()) {
        return Status::InvalidArgument(StringPrintf(
            "select references undeclared alias '%s'", col.alias.c_str()));
      }
      if (it->second.first != k) continue;
      const Schema* schema = SchemaFor(it->second.second);
      if (schema->IndexOf(col.column) < 0) {
        return Status::InvalidArgument(StringPrintf(
            "relation '%s' (alias '%s') has no column '%s'",
            it->second.second.c_str(), col.alias.c_str(),
            col.column.c_str()));
      }
      nq.select.select.push_back(col);
    }
    if (nq.select.select.empty()) {
      nq.select.select.push_back({step.doc_alias, "url"});
    }
    nq.select.distinct = true;

    wq.remaining_queries.push_back(std::move(nq));
    if (k == 0) {
      wq.rem_pre = step.pre;
    } else {
      wq.future_pres.push_back(step.pre);
    }
  }
  return compiled;
}

Result<CompiledQuery> CompileDisql(std::string_view disql_text) {
  ParsedQuery parsed;
  WEBDIS_ASSIGN_OR_RETURN(parsed, ParseDisql(disql_text));
  return Compile(parsed);
}

std::string ExplainQuery(const CompiledQuery& compiled) {
  const query::WebQuery& wq = compiled.web_query;
  std::string out = "web-query plan\n";
  out += StringPrintf("  StartNodes (%zu):\n", compiled.start_urls.size());
  for (const std::string& url : compiled.start_urls) {
    out += "    " + url + "\n";
  }
  for (size_t k = 0; k < wq.remaining_queries.size(); ++k) {
    const pre::Pre& p = (k == 0) ? wq.rem_pre : wq.future_pres[k - 1];
    out += StringPrintf("  stage %zu:\n", k + 1);
    out += "    PRE: " + p.ToString() + "\n";
    out += std::string("    evaluated at traversal distance zero: ") +
           (p.ContainsNull() ? "yes" : "no") + "\n";
    std::string links;
    for (const html::LinkType t : p.FirstLinks()) {
      if (!links.empty()) links += ", ";
      links.push_back(html::LinkTypeSymbol(t));
    }
    out += "    fans out on link types: {" + links + "}\n";
    out += "    node-query: " + wq.remaining_queries[k].ToString() + "\n";
  }
  out += StringPrintf("  clone wire size: %zu bytes\n", [&wq] {
           query::WebQuery sized = wq.Clone();
           sized.dest_urls = {"http://placeholder/"};
           return sized.WireSize();
         }());
  return out;
}

}  // namespace webdis::disql
