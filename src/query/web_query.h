#ifndef WEBDIS_QUERY_WEB_QUERY_H_
#define WEBDIS_QUERY_WEB_QUERY_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "pre/pre.h"
#include "query/node_query.h"
#include "query/query_id.h"

namespace webdis::query {

/// Per-query resource budget (PROTOCOL.md §7.1), attached at the user site
/// and carried in every clone. The language bounds closure with `*k`, but a
/// dense site can still multiply one clone into thousands; the budget is the
/// runtime defense. Every limit is optional (its `has_` flag gates it), and
/// every QueryServer enforces the carried limits *before* node-query
/// evaluation and before each forward — exhaustion is reported to the CHT as
/// an explicit BudgetExceeded outcome, never a silent stall.
struct QueryBudget {
  /// Absolute virtual-time deadline: a clone arriving after it is not
  /// processed (its visit is reported budget-exceeded so the CHT settles).
  bool has_deadline = false;
  SimTime deadline = 0;
  /// Remaining forward hops along any path. A clone carrying hops_left == 1
  /// is on its last hop: it is processed locally but forwards nothing;
  /// children carry hops_left - 1.
  bool has_hop_limit = false;
  uint32_t hops_left = 0;
  /// Remaining clone dispatches allowed in this clone's entire forwarding
  /// subtree. Each dispatch costs 1; the remainder is split across the
  /// dispatched children, so the global clone count is bounded by the value
  /// the user site stamped.
  bool has_clone_limit = false;
  uint64_t clones_left = 0;
  /// Cap on result rows reported per node visit (cheap local degradation;
  /// the user site's row_limit remains the global cap).
  bool has_row_limit = false;
  uint64_t max_rows_per_visit = 0;
  /// §10.1: the WebGraph epoch the query was submitted under, or 0 when the
  /// web is treated as frozen (every pre-§10 query). Servers use the pin to
  /// gate *spawned* sites: a document whose born_epoch exceeds the pin is
  /// invisible to this run (reported kVisibilityEpochGated), so an already-
  /// running query never half-sees a site that appeared mid-flight.
  uint64_t pinned_epoch = 0;

  /// True if any limit is armed. The epoch pin is a visibility stamp, not a
  /// resource limit, so it does not participate.
  bool Any() const {
    return has_deadline || has_hop_limit || has_clone_limit || has_row_limit;
  }

  bool Equals(const QueryBudget& other) const;

  /// Wire: `u8 flags` (bit 0 deadline, 1 hop, 2 clone, 3 row, 4 epoch pin)
  /// followed by the present fields in that order. Flags 0 = no budget — the
  /// encoding the seed's budget-less clones now carry as a single trailing
  /// byte. The epoch pin is present iff nonzero, keeping every pre-§10
  /// encoding byte-identical.
  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, QueryBudget* out);
};

/// The processing state of a clone (Section 2.7.1): the number of
/// node-queries still to be evaluated and the remaining part of the current
/// PRE. This is what the CHT and the server log tables compare.
struct CloneState {
  uint32_t num_q = 0;
  pre::Pre rem_pre;

  /// e.g. "(2, G.L*1)" — matches the paper's State(Q_clone) notation.
  std::string ToString() const;

  bool Equals(const CloneState& other) const {
    return num_q == other.num_q && rem_pre.Equals(other.rem_pre);
  }

  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, CloneState* out);
};

/// The Web-Query Object (Section 4.1): the unit that migrates from site to
/// site. A clone carries only the *remaining* work:
///
///   remaining_queries[0]           — next node-query, guarded by rem_pre
///   future_pres[k]                 — PRE p guarding remaining_queries[k+1]
///   rem_pre                        — rem(p_current) after traversal so far
///   dest_urls                      — destination nodes, all on one site
///                                    (optimization §3.2(4): one clone per
///                                    site carries every target node there)
///
/// Invariant: future_pres.size() + 1 == remaining_queries.size() whenever
/// remaining_queries is non-empty.
class WebQuery {
 public:
  WebQuery() = default;

  QueryId id;
  std::vector<NodeQuery> remaining_queries;
  std::vector<pre::Pre> future_pres;
  pre::Pre rem_pre;
  std::vector<std::string> dest_urls;

  /// Ack-tree termination mode (the Related Work [4] baseline,
  /// Dijkstra–Scholten style): when set, the processing server must send a
  /// kAck carrying `ack_token` to `ack_parent` once this clone and every
  /// clone transitively forwarded from it have been fully processed. Off in
  /// the paper's CHT design.
  bool ack_mode = false;
  std::string ack_parent_host;
  uint16_t ack_parent_port = 0;
  uint64_t ack_token = 0;

  /// Resource budget carried by this clone (PROTOCOL.md §7.1). Defaults to
  /// "no limits" (flags byte 0 on the wire).
  QueryBudget budget;

  /// State(Q_clone) = (num_q, rem(p_i)).
  CloneState State() const {
    return CloneState{static_cast<uint32_t>(remaining_queries.size()),
                      rem_pre};
  }

  /// Checks the structural invariant; servers reject malformed clones.
  Status Validate() const;

  /// Deep copy (expression trees are owned by node queries).
  WebQuery Clone() const;

  /// Full wire round-trip.
  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, WebQuery* out);

  /// Serialized size in bytes (what the network meters for this clone).
  size_t WireSize() const;
};

/// A batched clone envelope (PROTOCOL.md §9.2): clones of *different*
/// queries bound for the same destination host, carried in one framed
/// kCloneBatch message. The batch is the unit of reliable delivery (one
/// transfer seq / ack for all members) and of admission (a shed batch NACKs
/// every member — never a silent partial accept).
struct CloneBatch {
  std::vector<WebQuery> clones;

  /// Wire: varint member count (must be >= 1, capped at 1024) followed by
  /// each member's WebQuery encoding. An empty batch is a protocol error
  /// and is rejected at decode time.
  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, CloneBatch* out);
};

}  // namespace webdis::query

#endif  // WEBDIS_QUERY_WEB_QUERY_H_
