#ifndef WEBDIS_QUERY_WEB_QUERY_H_
#define WEBDIS_QUERY_WEB_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "pre/pre.h"
#include "query/node_query.h"
#include "query/query_id.h"

namespace webdis::query {

/// The processing state of a clone (Section 2.7.1): the number of
/// node-queries still to be evaluated and the remaining part of the current
/// PRE. This is what the CHT and the server log tables compare.
struct CloneState {
  uint32_t num_q = 0;
  pre::Pre rem_pre;

  /// e.g. "(2, G.L*1)" — matches the paper's State(Q_clone) notation.
  std::string ToString() const;

  bool Equals(const CloneState& other) const {
    return num_q == other.num_q && rem_pre.Equals(other.rem_pre);
  }

  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, CloneState* out);
};

/// The Web-Query Object (Section 4.1): the unit that migrates from site to
/// site. A clone carries only the *remaining* work:
///
///   remaining_queries[0]           — next node-query, guarded by rem_pre
///   future_pres[k]                 — PRE p guarding remaining_queries[k+1]
///   rem_pre                        — rem(p_current) after traversal so far
///   dest_urls                      — destination nodes, all on one site
///                                    (optimization §3.2(4): one clone per
///                                    site carries every target node there)
///
/// Invariant: future_pres.size() + 1 == remaining_queries.size() whenever
/// remaining_queries is non-empty.
class WebQuery {
 public:
  WebQuery() = default;

  QueryId id;
  std::vector<NodeQuery> remaining_queries;
  std::vector<pre::Pre> future_pres;
  pre::Pre rem_pre;
  std::vector<std::string> dest_urls;

  /// Ack-tree termination mode (the Related Work [4] baseline,
  /// Dijkstra–Scholten style): when set, the processing server must send a
  /// kAck carrying `ack_token` to `ack_parent` once this clone and every
  /// clone transitively forwarded from it have been fully processed. Off in
  /// the paper's CHT design.
  bool ack_mode = false;
  std::string ack_parent_host;
  uint16_t ack_parent_port = 0;
  uint64_t ack_token = 0;

  /// State(Q_clone) = (num_q, rem(p_i)).
  CloneState State() const {
    return CloneState{static_cast<uint32_t>(remaining_queries.size()),
                      rem_pre};
  }

  /// Checks the structural invariant; servers reject malformed clones.
  Status Validate() const;

  /// Deep copy (expression trees are owned by node queries).
  WebQuery Clone() const;

  /// Full wire round-trip.
  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, WebQuery* out);

  /// Serialized size in bytes (what the network meters for this clone).
  size_t WireSize() const;
};

}  // namespace webdis::query

#endif  // WEBDIS_QUERY_WEB_QUERY_H_
