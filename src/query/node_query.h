#ifndef WEBDIS_QUERY_NODE_QUERY_H_
#define WEBDIS_QUERY_NODE_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/eval.h"

namespace webdis::serialize {
class Encoder;
class Decoder;
}  // namespace webdis::serialize

namespace webdis::query {

/// One node-query q_k (Section 2.3): a self-contained select over the
/// virtual relations of a single document, produced by splitting the user's
/// DISQL query. Shipped between sites inside WebQuery clones, so it is fully
/// serializable (including its predicate expression tree).
///
/// `doc_alias` names the document relation binding (e.g. "d0") — the query
/// server substitutes the current node's DOCUMENT row for it.
class NodeQuery {
 public:
  NodeQuery() = default;

  /// The alias bound to the current document.
  std::string doc_alias;
  /// The local select: from-list (document alias first, then aux relations),
  /// where-predicate (may be null), projection.
  relational::SelectQuery select;

  /// Deep copy (the expression tree is owned).
  NodeQuery Clone() const;

  /// DISQL-ish rendering for traces and tests.
  std::string ToString() const;

  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, NodeQuery* out);
};

}  // namespace webdis::query

#endif  // WEBDIS_QUERY_NODE_QUERY_H_
