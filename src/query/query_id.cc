#include "query/query_id.h"

#include "common/strings.h"
#include "serialize/encoder.h"

namespace webdis::query {

std::string QueryId::Key() const {
  return StringPrintf("%s@%s:%u#%u", user.c_str(), reply_host.c_str(),
                      static_cast<unsigned>(reply_port),
                      static_cast<unsigned>(query_number));
}

void QueryId::EncodeTo(serialize::Encoder* enc) const {
  enc->PutString(user);
  enc->PutString(reply_host);
  enc->PutU16(reply_port);
  enc->PutU32(query_number);
}

Status QueryId::DecodeFrom(serialize::Decoder* dec, QueryId* out) {
  WEBDIS_RETURN_IF_ERROR(dec->GetString(&out->user));
  WEBDIS_RETURN_IF_ERROR(dec->GetString(&out->reply_host));
  WEBDIS_RETURN_IF_ERROR(dec->GetU16(&out->reply_port));
  WEBDIS_RETURN_IF_ERROR(dec->GetU32(&out->query_number));
  return Status::OK();
}

}  // namespace webdis::query
