#include "query/web_query.h"

#include "common/strings.h"
#include "serialize/encoder.h"

namespace webdis::query {

std::string CloneState::ToString() const {
  return StringPrintf("(%u, %s)", static_cast<unsigned>(num_q),
                      rem_pre.ToString().c_str());
}

void CloneState::EncodeTo(serialize::Encoder* enc) const {
  enc->PutU32(num_q);
  rem_pre.EncodeTo(enc);
}

Status CloneState::DecodeFrom(serialize::Decoder* dec, CloneState* out) {
  WEBDIS_RETURN_IF_ERROR(dec->GetU32(&out->num_q));
  WEBDIS_ASSIGN_OR_RETURN(out->rem_pre, pre::Pre::DecodeFrom(dec));
  return Status::OK();
}

bool QueryBudget::Equals(const QueryBudget& other) const {
  if (has_deadline != other.has_deadline || has_hop_limit != other.has_hop_limit ||
      has_clone_limit != other.has_clone_limit || has_row_limit != other.has_row_limit) {
    return false;
  }
  if (has_deadline && deadline != other.deadline) return false;
  if (has_hop_limit && hops_left != other.hops_left) return false;
  if (has_clone_limit && clones_left != other.clones_left) return false;
  if (has_row_limit && max_rows_per_visit != other.max_rows_per_visit) {
    return false;
  }
  if (pinned_epoch != other.pinned_epoch) return false;
  return true;
}

namespace {
constexpr uint8_t kBudgetDeadlineBit = 1 << 0;
constexpr uint8_t kBudgetHopBit = 1 << 1;
constexpr uint8_t kBudgetCloneBit = 1 << 2;
constexpr uint8_t kBudgetRowBit = 1 << 3;
constexpr uint8_t kBudgetEpochBit = 1 << 4;
}  // namespace

void QueryBudget::EncodeTo(serialize::Encoder* enc) const {
  uint8_t flags = 0;
  if (has_deadline) flags |= kBudgetDeadlineBit;
  if (has_hop_limit) flags |= kBudgetHopBit;
  if (has_clone_limit) flags |= kBudgetCloneBit;
  if (has_row_limit) flags |= kBudgetRowBit;
  if (pinned_epoch != 0) flags |= kBudgetEpochBit;
  enc->PutU8(flags);
  if (has_deadline) enc->PutU64(deadline);
  if (has_hop_limit) enc->PutU32(hops_left);
  if (has_clone_limit) enc->PutVarint(clones_left);
  if (has_row_limit) enc->PutVarint(max_rows_per_visit);
  if (pinned_epoch != 0) enc->PutVarint(pinned_epoch);
}

Status QueryBudget::DecodeFrom(serialize::Decoder* dec, QueryBudget* out) {
  uint8_t flags = 0;
  WEBDIS_RETURN_IF_ERROR(dec->GetU8(&flags));
  if ((flags & ~(kBudgetDeadlineBit | kBudgetHopBit | kBudgetCloneBit |
                 kBudgetRowBit | kBudgetEpochBit)) != 0) {
    return Status::Corruption("unknown budget flags");
  }
  out->has_deadline = (flags & kBudgetDeadlineBit) != 0;
  out->has_hop_limit = (flags & kBudgetHopBit) != 0;
  out->has_clone_limit = (flags & kBudgetCloneBit) != 0;
  out->has_row_limit = (flags & kBudgetRowBit) != 0;
  if (out->has_deadline) WEBDIS_RETURN_IF_ERROR(dec->GetU64(&out->deadline));
  if (out->has_hop_limit) WEBDIS_RETURN_IF_ERROR(dec->GetU32(&out->hops_left));
  if (out->has_clone_limit) {
    WEBDIS_RETURN_IF_ERROR(dec->GetVarint(&out->clones_left));
  }
  if (out->has_row_limit) {
    WEBDIS_RETURN_IF_ERROR(dec->GetVarint(&out->max_rows_per_visit));
  }
  if ((flags & kBudgetEpochBit) != 0) {
    WEBDIS_RETURN_IF_ERROR(dec->GetVarint(&out->pinned_epoch));
    if (out->pinned_epoch == 0) {
      return Status::Corruption("epoch-pin flag with zero epoch");
    }
  } else {
    out->pinned_epoch = 0;
  }
  return Status::OK();
}

Status WebQuery::Validate() const {
  if (remaining_queries.empty()) {
    return Status::InvalidArgument("clone with no remaining node-queries");
  }
  if (future_pres.size() + 1 != remaining_queries.size()) {
    return Status::InvalidArgument(StringPrintf(
        "clone pipeline mismatch: %zu queries vs %zu future PREs",
        remaining_queries.size(), future_pres.size()));
  }
  if (dest_urls.empty()) {
    return Status::InvalidArgument("clone with no destination nodes");
  }
  return Status::OK();
}

WebQuery WebQuery::Clone() const {
  WebQuery out;
  out.id = id;
  out.remaining_queries.reserve(remaining_queries.size());
  for (const NodeQuery& q : remaining_queries) {
    out.remaining_queries.push_back(q.Clone());
  }
  out.future_pres = future_pres;
  out.rem_pre = rem_pre;
  out.dest_urls = dest_urls;
  out.ack_mode = ack_mode;
  out.ack_parent_host = ack_parent_host;
  out.ack_parent_port = ack_parent_port;
  out.ack_token = ack_token;
  out.budget = budget;
  return out;
}

void WebQuery::EncodeTo(serialize::Encoder* enc) const {
  id.EncodeTo(enc);
  enc->PutVarint(remaining_queries.size());
  for (const NodeQuery& q : remaining_queries) {
    q.EncodeTo(enc);
  }
  enc->PutVarint(future_pres.size());
  for (const pre::Pre& p : future_pres) {
    p.EncodeTo(enc);
  }
  rem_pre.EncodeTo(enc);
  enc->PutVarint(dest_urls.size());
  for (const std::string& url : dest_urls) {
    enc->PutString(url);
  }
  enc->PutBool(ack_mode);
  if (ack_mode) {
    enc->PutString(ack_parent_host);
    enc->PutU16(ack_parent_port);
    enc->PutU64(ack_token);
  }
  budget.EncodeTo(enc);
}

Status WebQuery::DecodeFrom(serialize::Decoder* dec, WebQuery* out) {
  WEBDIS_RETURN_IF_ERROR(QueryId::DecodeFrom(dec, &out->id));
  uint64_t query_count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec->GetCount("node-query", 1024, /*min_bytes_per_item=*/4,
                    &query_count));
  out->remaining_queries.clear();
  for (uint64_t i = 0; i < query_count; ++i) {
    NodeQuery q;
    WEBDIS_RETURN_IF_ERROR(NodeQuery::DecodeFrom(dec, &q));
    out->remaining_queries.push_back(std::move(q));
  }
  uint64_t pre_count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec->GetCount("future PRE", 1024, /*min_bytes_per_item=*/1,
                    &pre_count));
  out->future_pres.clear();
  for (uint64_t i = 0; i < pre_count; ++i) {
    pre::Pre p;
    WEBDIS_ASSIGN_OR_RETURN(p, pre::Pre::DecodeFrom(dec));
    out->future_pres.push_back(std::move(p));
  }
  WEBDIS_ASSIGN_OR_RETURN(out->rem_pre, pre::Pre::DecodeFrom(dec));
  uint64_t dest_count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec->GetCount("destination", 100000, /*min_bytes_per_item=*/1,
                    &dest_count));
  out->dest_urls.clear();
  for (uint64_t i = 0; i < dest_count; ++i) {
    std::string url;
    WEBDIS_RETURN_IF_ERROR(dec->GetString(&url));
    out->dest_urls.push_back(std::move(url));
  }
  WEBDIS_RETURN_IF_ERROR(dec->GetBool(&out->ack_mode));
  if (out->ack_mode) {
    WEBDIS_RETURN_IF_ERROR(dec->GetString(&out->ack_parent_host));
    WEBDIS_RETURN_IF_ERROR(dec->GetU16(&out->ack_parent_port));
    WEBDIS_RETURN_IF_ERROR(dec->GetU64(&out->ack_token));
  }
  WEBDIS_RETURN_IF_ERROR(QueryBudget::DecodeFrom(dec, &out->budget));
  // Decode-side structural failures are wire corruption, not a caller
  // argument error: a clone that parses but violates the pipeline invariant
  // can only come from a damaged or hostile frame.
  if (const Status status = out->Validate(); !status.ok()) {
    return Status::Corruption(status.message());
  }
  return Status::OK();
}

size_t WebQuery::WireSize() const {
  serialize::Encoder enc;
  EncodeTo(&enc);
  return enc.size();
}

void CloneBatch::EncodeTo(serialize::Encoder* enc) const {
  enc->PutVarint(clones.size());
  for (const WebQuery& clone : clones) {
    clone.EncodeTo(enc);
  }
}

Status CloneBatch::DecodeFrom(serialize::Decoder* dec, CloneBatch* out) {
  uint64_t count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec->GetCount("clone-batch member", 1024, /*min_bytes_per_item=*/8,
                    &count));
  if (count == 0) return Status::Corruption("empty clone batch");
  out->clones.clear();
  for (uint64_t i = 0; i < count; ++i) {
    WebQuery clone;
    WEBDIS_RETURN_IF_ERROR(WebQuery::DecodeFrom(dec, &clone));
    out->clones.push_back(std::move(clone));
  }
  return Status::OK();
}

}  // namespace webdis::query
