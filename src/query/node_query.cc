#include "query/node_query.h"

#include "serialize/encoder.h"

namespace webdis::query {

NodeQuery NodeQuery::Clone() const {
  NodeQuery out;
  out.doc_alias = doc_alias;
  out.select.from = select.from;
  out.select.where =
      select.where == nullptr ? nullptr : select.where->Clone();
  out.select.select = select.select;
  out.select.distinct = select.distinct;
  return out;
}

std::string NodeQuery::ToString() const {
  std::string out = "select ";
  for (size_t i = 0; i < select.select.size(); ++i) {
    if (i > 0) out += ", ";
    out += select.select[i].Label();
  }
  out += " from ";
  for (size_t i = 0; i < select.from.size(); ++i) {
    if (i > 0) out += ", ";
    out += select.from[i].relation + " " + select.from[i].alias;
  }
  if (select.where != nullptr) {
    out += " where " + select.where->ToString();
  }
  return out;
}

void NodeQuery::EncodeTo(serialize::Encoder* enc) const {
  enc->PutString(doc_alias);
  enc->PutVarint(select.from.size());
  for (const relational::TableRef& ref : select.from) {
    enc->PutString(ref.relation);
    enc->PutString(ref.alias);
  }
  enc->PutBool(select.where != nullptr);
  if (select.where != nullptr) {
    select.where->EncodeTo(enc);
  }
  enc->PutVarint(select.select.size());
  for (const relational::OutputColumn& col : select.select) {
    enc->PutString(col.alias);
    enc->PutString(col.column);
  }
  enc->PutBool(select.distinct);
}

Status NodeQuery::DecodeFrom(serialize::Decoder* dec, NodeQuery* out) {
  WEBDIS_RETURN_IF_ERROR(dec->GetString(&out->doc_alias));
  uint64_t from_count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec->GetCount("from-list entry", 64, /*min_bytes_per_item=*/2,
                    &from_count));
  out->select.from.clear();
  for (uint64_t i = 0; i < from_count; ++i) {
    relational::TableRef ref;
    WEBDIS_RETURN_IF_ERROR(dec->GetString(&ref.relation));
    WEBDIS_RETURN_IF_ERROR(dec->GetString(&ref.alias));
    out->select.from.push_back(std::move(ref));
  }
  bool has_where = false;
  WEBDIS_RETURN_IF_ERROR(dec->GetBool(&has_where));
  if (has_where) {
    WEBDIS_ASSIGN_OR_RETURN(out->select.where,
                            relational::Expr::DecodeFrom(dec));
  } else {
    out->select.where = nullptr;
  }
  uint64_t select_count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec->GetCount("select-list entry", 256, /*min_bytes_per_item=*/2,
                    &select_count));
  out->select.select.clear();
  for (uint64_t i = 0; i < select_count; ++i) {
    relational::OutputColumn col;
    WEBDIS_RETURN_IF_ERROR(dec->GetString(&col.alias));
    WEBDIS_RETURN_IF_ERROR(dec->GetString(&col.column));
    out->select.select.push_back(std::move(col));
  }
  WEBDIS_RETURN_IF_ERROR(dec->GetBool(&out->select.distinct));
  return Status::OK();
}

}  // namespace webdis::query
