#include "query/report.h"

#include "serialize/encoder.h"

namespace webdis::query {

namespace {

void EncodeResultSet(const relational::ResultSet& rs,
                     serialize::Encoder* enc) {
  enc->PutVarint(rs.column_labels.size());
  for (const std::string& label : rs.column_labels) {
    enc->PutString(label);
  }
  enc->PutVarint(rs.rows.size());
  for (const relational::Tuple& row : rs.rows) {
    enc->PutVarint(row.size());
    for (const relational::Value& v : row) {
      v.EncodeTo(enc);
    }
  }
}

Status DecodeResultSet(serialize::Decoder* dec, relational::ResultSet* out) {
  uint64_t label_count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec->GetCount("result column", 256, /*min_bytes_per_item=*/1,
                    &label_count));
  out->column_labels.clear();
  for (uint64_t i = 0; i < label_count; ++i) {
    std::string label;
    WEBDIS_RETURN_IF_ERROR(dec->GetString(&label));
    out->column_labels.push_back(std::move(label));
  }
  uint64_t row_count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec->GetCount("result row", 10000000, /*min_bytes_per_item=*/1,
                    &row_count));
  out->rows.clear();
  for (uint64_t i = 0; i < row_count; ++i) {
    uint64_t cell_count = 0;
    WEBDIS_RETURN_IF_ERROR(
        dec->GetCount("row cell", 256, /*min_bytes_per_item=*/1,
                      &cell_count));
    relational::Tuple row;
    row.reserve(cell_count);
    for (uint64_t j = 0; j < cell_count; ++j) {
      relational::Value v;
      WEBDIS_RETURN_IF_ERROR(relational::Value::DecodeFrom(dec, &v));
      row.push_back(std::move(v));
    }
    out->rows.push_back(std::move(row));
  }
  return Status::OK();
}

}  // namespace

void ChtEntry::EncodeTo(serialize::Encoder* enc) const {
  enc->PutString(node_url);
  state.EncodeTo(enc);
}

Status ChtEntry::DecodeFrom(serialize::Decoder* dec, ChtEntry* out) {
  WEBDIS_RETURN_IF_ERROR(dec->GetString(&out->node_url));
  WEBDIS_RETURN_IF_ERROR(CloneState::DecodeFrom(dec, &out->state));
  return Status::OK();
}

void NodeReport::EncodeTo(serialize::Encoder* enc) const {
  enc->PutString(node_url);
  received_state.EncodeTo(enc);
  enc->PutVarint(next_entries.size());
  for (const ChtEntry& e : next_entries) {
    e.EncodeTo(enc);
  }
  enc->PutBool(duplicate_drop);
  enc->PutBool(undeliverable);
  enc->PutBool(budget_exceeded);
  enc->PutVarint(result_sets.size());
  for (const relational::ResultSet& rs : result_sets) {
    EncodeResultSet(rs, enc);
  }
  enc->PutU64(doc_version);
  enc->PutU8(visibility);
}

Status NodeReport::DecodeFrom(serialize::Decoder* dec, NodeReport* out) {
  WEBDIS_RETURN_IF_ERROR(dec->GetString(&out->node_url));
  WEBDIS_RETURN_IF_ERROR(
      CloneState::DecodeFrom(dec, &out->received_state));
  uint64_t entry_count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec->GetCount("CHT entry", 1000000, /*min_bytes_per_item=*/6,
                    &entry_count));
  out->next_entries.clear();
  for (uint64_t i = 0; i < entry_count; ++i) {
    ChtEntry e;
    WEBDIS_RETURN_IF_ERROR(ChtEntry::DecodeFrom(dec, &e));
    out->next_entries.push_back(std::move(e));
  }
  WEBDIS_RETURN_IF_ERROR(dec->GetBool(&out->duplicate_drop));
  WEBDIS_RETURN_IF_ERROR(dec->GetBool(&out->undeliverable));
  WEBDIS_RETURN_IF_ERROR(dec->GetBool(&out->budget_exceeded));
  uint64_t result_set_count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec->GetCount("result set", 1024, /*min_bytes_per_item=*/2,
                    &result_set_count));
  out->result_sets.clear();
  for (uint64_t i = 0; i < result_set_count; ++i) {
    relational::ResultSet rs;
    WEBDIS_RETURN_IF_ERROR(DecodeResultSet(dec, &rs));
    out->result_sets.push_back(std::move(rs));
  }
  WEBDIS_RETURN_IF_ERROR(dec->GetU64(&out->doc_version));
  WEBDIS_RETURN_IF_ERROR(dec->GetU8(&out->visibility));
  if (out->visibility > kVisibilityEpochGated) {
    return Status::Corruption("unknown node-report visibility");
  }
  return Status::OK();
}

void QueryReport::EncodeTo(serialize::Encoder* enc) const {
  id.EncodeTo(enc);
  enc->PutVarint(node_reports.size());
  for (const NodeReport& r : node_reports) {
    r.EncodeTo(enc);
  }
}

Status QueryReport::DecodeFrom(serialize::Decoder* dec, QueryReport* out) {
  WEBDIS_RETURN_IF_ERROR(QueryId::DecodeFrom(dec, &out->id));
  uint64_t report_count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec->GetCount("node report", 1000000, /*min_bytes_per_item=*/8,
                    &report_count));
  out->node_reports.clear();
  for (uint64_t i = 0; i < report_count; ++i) {
    NodeReport r;
    WEBDIS_RETURN_IF_ERROR(NodeReport::DecodeFrom(dec, &r));
    out->node_reports.push_back(std::move(r));
  }
  return Status::OK();
}

void ReportBatch::EncodeTo(serialize::Encoder* enc) const {
  enc->PutVarint(reports.size());
  for (const QueryReport& r : reports) {
    r.EncodeTo(enc);
  }
}

Status ReportBatch::DecodeFrom(serialize::Decoder* dec, ReportBatch* out) {
  uint64_t count = 0;
  WEBDIS_RETURN_IF_ERROR(
      dec->GetCount("report-batch member", 1024, /*min_bytes_per_item=*/8,
                    &count));
  if (count == 0) return Status::Corruption("empty report batch");
  out->reports.clear();
  for (uint64_t i = 0; i < count; ++i) {
    QueryReport r;
    WEBDIS_RETURN_IF_ERROR(QueryReport::DecodeFrom(dec, &r));
    out->reports.push_back(std::move(r));
  }
  return Status::OK();
}

}  // namespace webdis::query
