#ifndef WEBDIS_QUERY_QUERY_ID_H_
#define WEBDIS_QUERY_QUERY_ID_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace webdis::serialize {
class Encoder;
class Decoder;
}  // namespace webdis::serialize

namespace webdis::query {

/// Globally-unique query identifier (Section 4.1): the submitting user, the
/// network location results must be returned to, and a locally-unique query
/// number. Shipped inside every clone; used for log-table keys and for
/// routing results straight back to the user site.
struct QueryId {
  std::string user;        // login name at the user-site
  std::string reply_host;  // user-site host ("IP address")
  uint16_t reply_port = 0; // listening result socket port
  uint32_t query_number = 0;

  /// Canonical key, e.g. "maya@client0:9000#1". Unique per query.
  std::string Key() const;

  bool operator==(const QueryId& other) const {
    return user == other.user && reply_host == other.reply_host &&
           reply_port == other.reply_port &&
           query_number == other.query_number;
  }

  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, QueryId* out);
};

}  // namespace webdis::query

#endif  // WEBDIS_QUERY_QUERY_ID_H_
