#ifndef WEBDIS_QUERY_REPORT_H_
#define WEBDIS_QUERY_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/query_id.h"
#include "query/web_query.h"
#include "relational/eval.h"

namespace webdis::query {

/// One (node URL, clone state) pair — the row format of the user-site's
/// Current Hosts Table (Section 2.7.1).
struct ChtEntry {
  std::string node_url;
  CloneState state;

  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, ChtEntry* out);
};

/// Everything a query-server reports back to the user-site about processing
/// one node: the list the paper describes as "(NextNode, State(Q_clone))
/// pairs with the node's own URL and received state on top", plus the local
/// results.
///
/// `duplicate_drop` marks a report for a clone that the log table recognized
/// as a duplicate and purged. The paper handles duplicates by never entering
/// them in the CHT; we additionally support explicit drop-reports because
/// CHT-side suppression alone is racy under message reordering (see
/// DESIGN.md §5) — with drop-reports completion detection is robust no
/// matter the interleaving.
struct NodeReport {
  std::string node_url;                // topmost entry: this node
  CloneState received_state;           // state of the clone as received
  std::vector<ChtEntry> next_entries;  // forwarded-clone entries
  bool duplicate_drop = false;
  /// Set when a forwarding server could not deliver the clone for this node
  /// (the target site does not run a query server). The user site clears
  /// the CHT entry and records the node for centralized fallback
  /// processing (the paper's §7.1 migration path).
  bool undeliverable = false;
  /// Set when the visit or forward for this node was blocked by the clone's
  /// resource budget (deadline passed, hop/clone allowance exhausted —
  /// PROTOCOL.md §7.1) or shed by admission control (§7.2). The user site
  /// clears the CHT entry and records the node in the run's
  /// budget-exceeded partial outcome — an explicit degradation signal, not
  /// a silent stall. A report can also carry truncated results with this
  /// flag (per-visit row cap hit).
  bool budget_exceeded = false;
  /// One result set per node-query evaluated during this visit (a node can
  /// evaluate several pipeline stages at once when a later PRE is nullable).
  /// Empty for PureRouters and dead-ends.
  std::vector<relational::ResultSet> result_sets;
  /// §10: the WebGraph document version this node was evaluated against,
  /// or 0 when the node was never evaluated (missing document, duplicate
  /// drop, undeliverable, shed). Every row in `result_sets` was computed
  /// from exactly this version — a report never mixes rows from two
  /// versions of one document. The user site records the stamp so the
  /// final verdict can classify the node fresh / stale-consistent /
  /// superseded against the web as it stands at completion.
  uint64_t doc_version = 0;
  /// §10: churn-visibility outcome for this node. Encoded as one byte;
  /// decoders reject values above kVisibilityEpochGated.
  ///  * kVisibilityNormal      — evaluated (or degraded) the ordinary way;
  ///  * kVisibilitySiteRetired — the node's site retired for good; the CHT
  ///    entry is cleared and the host lands in the run's named
  ///    retired-sites outcome, never in the retry path;
  ///  * kVisibilityEpochGated  — the document was spawned *after* the
  ///    query's pinned epoch, so this run must not see it (§10.3).
  static constexpr uint8_t kVisibilityNormal = 0;
  static constexpr uint8_t kVisibilitySiteRetired = 1;
  static constexpr uint8_t kVisibilityEpochGated = 2;
  uint8_t visibility = kVisibilityNormal;

  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, NodeReport* out);
};

/// The wire message sent from a query-server to the user-site's result
/// socket. Node reports for every node of a multi-destination clone are
/// batched into one message together with their results — optimization
/// §3.2(3).
struct QueryReport {
  QueryId id;
  std::vector<NodeReport> node_reports;

  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, QueryReport* out);
};

/// A batched report envelope (PROTOCOL.md §9.2): QueryReports for
/// *different* queries whose user-site result sockets live on the same
/// host, carried in one framed kReportBatch message during a flush window.
struct ReportBatch {
  /// Each member's QueryId carries its own reply port — the receiving user
  /// site demultiplexes members to per-query runs by id, so the batch is
  /// addressed to whichever member socket acts as carrier (PROTOCOL.md §9.3).
  std::vector<QueryReport> reports;

  /// Wire: varint member count (must be >= 1, capped at 1024) followed by
  /// each member's QueryReport encoding. Empty batches are rejected.
  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, ReportBatch* out);
};

}  // namespace webdis::query

#endif  // WEBDIS_QUERY_REPORT_H_
