#ifndef WEBDIS_RELATIONAL_EVAL_H_
#define WEBDIS_RELATIONAL_EVAL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/expr.h"
#include "relational/table.h"

namespace webdis::relational {

/// A relation reference in a node-query's from list: virtual relation name
/// plus the alias it is bound to ("document d0", "relinfon r", ...).
struct TableRef {
  std::string relation;
  std::string alias;
};

/// A projected output column "alias.column".
struct OutputColumn {
  std::string alias;
  std::string column;

  /// Display label, e.g. "d0.url".
  std::string Label() const { return alias + "." + column; }

  bool operator==(const OutputColumn& other) const {
    return alias == other.alias && column == other.column;
  }
};

/// The local select evaluated by a query server against one document's
/// virtual relations (a node-query body, Section 2.3): nested-loop join over
/// the declared relations, filter by `where`, project `select`.
struct SelectQuery {
  std::vector<TableRef> from;
  ExprPtr where;  // may be null (no condition)
  std::vector<OutputColumn> select;
  bool distinct = true;  // drop duplicate projected rows
  /// Split the where-clause into conjuncts and apply single-alias conjuncts
  /// as per-table filters *before* the cross product (classical predicate
  /// pushdown; identical results, far fewer intermediate tuples on
  /// anchor-heavy pages). Off = naive filter-at-the-leaf evaluation.
  bool pushdown = true;
};

/// Evaluation output: labeled projected rows.
struct ResultSet {
  std::vector<std::string> column_labels;
  std::vector<Tuple> rows;

  bool empty() const { return rows.empty(); }
};

/// Runs the select against the per-document database. Errors on unknown
/// relations, duplicate aliases, or expression evaluation failures.
Result<ResultSet> Execute(const SelectQuery& query, const Database& db);

}  // namespace webdis::relational

#endif  // WEBDIS_RELATIONAL_EVAL_H_
