#ifndef WEBDIS_RELATIONAL_TABLE_H_
#define WEBDIS_RELATIONAL_TABLE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace webdis::relational {

/// Column definition: name + type. Types are advisory (Values are
/// dynamically typed); inserts are validated against them.
struct Column {
  std::string name;
  ValueType type = ValueType::kString;
};

/// Ordered set of columns. Column names are unique within a schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of a column by name, or -1.
  int IndexOf(std::string_view name) const;

 private:
  std::vector<Column> columns_;
};

/// A row; cell order matches the schema.
using Tuple = std::vector<Value>;

/// In-memory relation. This is the materialization target of the paper's
/// "temporary in-memory database of virtual relations" that a query server
/// builds per document and purges after the node-query (Section 2.4).
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Validates arity and cell types (null always allowed) and appends.
  Status Insert(Tuple tuple);

  /// Drops all rows (the "purge" of Section 2.4).
  void Clear() { rows_.clear(); }

  /// Rough in-memory footprint of rows + cells (for cache byte budgets).
  size_t ApproxBytes() const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

/// The per-document database: virtual relation name -> table. Relation names
/// are lower case ("document", "anchor", "relinfon").
class Database {
 public:
  /// Adds (or replaces) a relation.
  void Put(std::string name, Table table);

  /// Looks up a relation; nullptr if absent.
  const Table* Find(std::string_view name) const;

  std::vector<std::string> RelationNames() const;

  /// Rough in-memory footprint of all relations — the unit the query
  /// server's LRU database cache budgets against.
  size_t ApproxBytes() const;

 private:
  std::map<std::string, Table, std::less<>> tables_;
};

/// Schemas of the paper's three virtual relations (Section 2.2):
///   DOCUMENT(url, title, text, length)
///   ANCHOR(label, base, href, ltype)
///   RELINFON(delimiter, url, text, length)
const Schema& DocumentSchema();
const Schema& AnchorSchema();
const Schema& RelInfonSchema();

/// Canonical relation names.
inline constexpr std::string_view kDocumentRelation = "document";
inline constexpr std::string_view kAnchorRelation = "anchor";
inline constexpr std::string_view kRelInfonRelation = "relinfon";

}  // namespace webdis::relational

#endif  // WEBDIS_RELATIONAL_TABLE_H_
