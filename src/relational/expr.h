#ifndef WEBDIS_RELATIONAL_EXPR_H_
#define WEBDIS_RELATIONAL_EXPR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/table.h"
#include "relational/value.h"

namespace webdis::serialize {
class Encoder;
class Decoder;
}  // namespace webdis::serialize

namespace webdis::relational {

/// Maps a table alias (e.g. "d0", "a", "r") to one current row during
/// evaluation of a where-clause over the cross product of the declared
/// virtual relations.
class RowBinding {
 public:
  /// Binds alias -> (schema, tuple). Pointers must outlive the binding.
  void Bind(std::string alias, const Schema* schema, const Tuple* tuple);

  /// Resolves alias.column to the cell value.
  Result<Value> Lookup(std::string_view alias, std::string_view column) const;

  /// True if the alias is bound.
  bool Has(std::string_view alias) const;

 private:
  struct Entry {
    std::string alias;
    const Schema* schema;
    const Tuple* tuple;
  };
  std::vector<Entry> entries_;
};

/// Expression node kinds. Wire tags — do not renumber.
enum class ExprKind : uint8_t {
  kLiteral = 0,
  kColumnRef = 1,
  kCompare = 2,
  kContains = 3,
  kAnd = 4,
  kOr = 5,
  kNot = 6,
};

/// Comparison operators. Wire tags — do not renumber.
enum class CompareOp : uint8_t {
  kEq = 0,
  kNe = 1,
  kLt = 2,
  kLe = 3,
  kGt = 4,
  kGe = 5,
};

std::string_view CompareOpToString(CompareOp op);

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Immutable predicate/value expression tree. Built by the DISQL parser,
/// serialized into node-queries so it can be shipped between sites, and
/// evaluated by query servers against per-document virtual relations.
///
/// Boolean results are represented as int 0/1; `contains` is the paper's
/// case-insensitive substring predicate.
class Expr {
 public:
  // -- Factories ----------------------------------------------------------
  static ExprPtr Literal(Value v);
  static ExprPtr ColumnRef(std::string alias, std::string column);
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Contains(ExprPtr haystack, ExprPtr needle);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr operand);

  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind() const { return kind_; }
  /// kLiteral only.
  const Value& literal() const { return literal_; }
  /// kColumnRef only.
  const std::string& alias() const { return alias_; }
  const std::string& column() const { return column_; }
  /// kCompare only.
  CompareOp compare_op() const { return compare_op_; }
  /// Child accessors (kCompare/kContains/kAnd/kOr have left+right, kNot has
  /// left only).
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }

  /// Evaluates to a Value. Errors on unbound aliases / unknown columns.
  Result<Value> Eval(const RowBinding& binding) const;

  /// Evaluates as a predicate: non-null, non-zero int or non-empty string is
  /// true; NULL is false (SQL-ish three-valued logic collapsed to false).
  Result<bool> EvalPredicate(const RowBinding& binding) const;

  /// Deep copy.
  ExprPtr Clone() const;

  /// Parenthesized DISQL-like rendering for logs and tests.
  std::string ToString() const;

  /// Collects every alias referenced anywhere in the tree.
  void CollectAliases(std::vector<std::string>* out) const;

  void EncodeTo(serialize::Encoder* enc) const;
  /// Depth-limited recursive decode; fails on corrupt or over-deep input.
  static Result<ExprPtr> DecodeFrom(serialize::Decoder* dec);

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  /// Allocates an empty node of the given kind (the constructor is private,
  /// so std::make_unique cannot be used by the factories).
  static ExprPtr Make(ExprKind kind);

  static Result<ExprPtr> DecodeRecursive(serialize::Decoder* dec, int depth);

  ExprKind kind_;
  Value literal_;
  std::string alias_;
  std::string column_;
  CompareOp compare_op_ = CompareOp::kEq;
  ExprPtr left_;
  ExprPtr right_;
};

}  // namespace webdis::relational

#endif  // WEBDIS_RELATIONAL_EXPR_H_
