#include "relational/eval.h"

#include <set>

#include "common/strings.h"

namespace webdis::relational {

namespace {

/// Flattens the AND-tree of `expr` into conjuncts (borrowed pointers).
void CollectConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == ExprKind::kAnd) {
    CollectConjuncts(expr->left(), out);
    CollectConjuncts(expr->right(), out);
    return;
  }
  out->push_back(expr);
}

/// Rows of one from-entry that survive its pushed-down filters.
struct FilteredTable {
  const Table* table = nullptr;
  std::vector<const Tuple*> rows;
};

/// Recursively enumerates the cross product of the filtered tables, binding
/// one row per alias, and emits projections of rows passing the residual
/// filter.
Status EnumerateRows(const SelectQuery& query,
                     const std::vector<FilteredTable>& tables,
                     const std::vector<const Expr*>& residual, size_t depth,
                     RowBinding* binding, ResultSet* out) {
  if (depth == tables.size()) {
    for (const Expr* conjunct : residual) {
      bool pass = false;
      WEBDIS_ASSIGN_OR_RETURN(pass, conjunct->EvalPredicate(*binding));
      if (!pass) return Status::OK();
    }
    Tuple projected;
    projected.reserve(query.select.size());
    for (const OutputColumn& col : query.select) {
      Value v;
      WEBDIS_ASSIGN_OR_RETURN(v, binding->Lookup(col.alias, col.column));
      projected.push_back(std::move(v));
    }
    out->rows.push_back(std::move(projected));
    return Status::OK();
  }
  const std::string& alias = query.from[depth].alias;
  const Schema* schema = &tables[depth].table->schema();
  for (const Tuple* row : tables[depth].rows) {
    binding->Bind(alias, schema, row);
    WEBDIS_RETURN_IF_ERROR(
        EnumerateRows(query, tables, residual, depth + 1, binding, out));
  }
  return Status::OK();
}

/// Lexicographic tuple ordering for the distinct set.
struct TupleLess {
  bool operator()(const Tuple& a, const Tuple& b) const {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

}  // namespace

Result<ResultSet> Execute(const SelectQuery& query, const Database& db) {
  if (query.from.empty()) {
    return Status::InvalidArgument("select with empty from list");
  }
  std::vector<FilteredTable> tables(query.from.size());
  std::set<std::string> seen_aliases;
  for (size_t i = 0; i < query.from.size(); ++i) {
    const TableRef& ref = query.from[i];
    if (!seen_aliases.insert(ref.alias).second) {
      return Status::InvalidArgument(
          StringPrintf("duplicate alias '%s'", ref.alias.c_str()));
    }
    const Table* table = db.Find(ref.relation);
    if (table == nullptr) {
      return Status::NotFound(
          StringPrintf("unknown relation '%s'", ref.relation.c_str()));
    }
    tables[i].table = table;
  }

  // -- Predicate pushdown ----------------------------------------------------
  // Conjuncts touching exactly one alias filter that table before the cross
  // product; the rest stay residual. With pushdown off everything is
  // residual (the naive evaluator, kept for the ablation benchmark).
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(query.where.get(), &conjuncts);
  std::vector<std::vector<const Expr*>> per_table(query.from.size());
  std::vector<const Expr*> residual;
  for (const Expr* conjunct : conjuncts) {
    int target = -1;
    if (query.pushdown) {
      std::vector<std::string> aliases;
      conjunct->CollectAliases(&aliases);
      if (aliases.size() == 1) {
        for (size_t i = 0; i < query.from.size(); ++i) {
          if (query.from[i].alias == aliases[0]) {
            target = static_cast<int>(i);
            break;
          }
        }
      } else if (aliases.empty()) {
        // Constant conjunct: push to table 0 (evaluated once per row there;
        // a false constant empties the result as required).
        target = 0;
      }
    }
    if (target >= 0) {
      per_table[static_cast<size_t>(target)].push_back(conjunct);
    } else {
      residual.push_back(conjunct);
    }
  }

  for (size_t i = 0; i < tables.size(); ++i) {
    const Table* table = tables[i].table;
    tables[i].rows.reserve(table->num_rows());
    if (per_table[i].empty()) {
      for (const Tuple& row : table->rows()) tables[i].rows.push_back(&row);
      continue;
    }
    RowBinding binding;
    for (const Tuple& row : table->rows()) {
      binding.Bind(query.from[i].alias, &table->schema(), &row);
      bool pass = true;
      for (const Expr* conjunct : per_table[i]) {
        WEBDIS_ASSIGN_OR_RETURN(pass, conjunct->EvalPredicate(binding));
        if (!pass) break;
      }
      if (pass) tables[i].rows.push_back(&row);
    }
  }

  ResultSet out;
  out.column_labels.reserve(query.select.size());
  for (const OutputColumn& col : query.select) {
    out.column_labels.push_back(col.Label());
  }

  RowBinding binding;
  WEBDIS_RETURN_IF_ERROR(
      EnumerateRows(query, tables, residual, 0, &binding, &out));

  if (query.distinct && out.rows.size() > 1) {
    std::set<Tuple, TupleLess> seen;
    std::vector<Tuple> unique;
    unique.reserve(out.rows.size());
    for (Tuple& row : out.rows) {
      if (seen.insert(row).second) {
        unique.push_back(std::move(row));
      }
    }
    out.rows = std::move(unique);
  }
  return out;
}

}  // namespace webdis::relational
