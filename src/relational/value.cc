#include "relational/value.h"

#include "serialize/encoder.h"

namespace webdis::relational {

std::string_view ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

bool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (type() != other.type()) return false;
  return data_ == other.data_;
}

int Value::Compare(const Value& other) const {
  const int t1 = static_cast<int>(type());
  const int t2 = static_cast<int>(other.type());
  if (t1 != t2) return t1 < t2 ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt: {
      const int64_t a = AsInt();
      const int64_t b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString: {
      const int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

void Value::EncodeTo(serialize::Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      enc->PutU64(static_cast<uint64_t>(AsInt()));
      break;
    case ValueType::kString:
      enc->PutString(AsString());
      break;
  }
}

Status Value::DecodeFrom(serialize::Decoder* dec, Value* out) {
  uint8_t tag = 0;
  WEBDIS_RETURN_IF_ERROR(dec->GetU8(&tag));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return Status::OK();
    case ValueType::kInt: {
      uint64_t v = 0;
      WEBDIS_RETURN_IF_ERROR(dec->GetU64(&v));
      *out = Value(static_cast<int64_t>(v));
      return Status::OK();
    }
    case ValueType::kString: {
      std::string s;
      WEBDIS_RETURN_IF_ERROR(dec->GetString(&s));
      *out = Value(std::move(s));
      return Status::OK();
    }
    default:
      return Status::Corruption("bad value type tag");
  }
}

}  // namespace webdis::relational
