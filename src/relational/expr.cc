#include "relational/expr.h"

#include "common/strings.h"
#include "serialize/encoder.h"

namespace webdis::relational {

void RowBinding::Bind(std::string alias, const Schema* schema,
                      const Tuple* tuple) {
  for (Entry& e : entries_) {
    if (e.alias == alias) {
      e.schema = schema;
      e.tuple = tuple;
      return;
    }
  }
  entries_.push_back({std::move(alias), schema, tuple});
}

Result<Value> RowBinding::Lookup(std::string_view alias,
                                 std::string_view column) const {
  for (const Entry& e : entries_) {
    if (e.alias == alias) {
      const int idx = e.schema->IndexOf(column);
      if (idx < 0) {
        return Status::InvalidArgument(
            StringPrintf("relation aliased '%s' has no column '%s'",
                         std::string(alias).c_str(),
                         std::string(column).c_str()));
      }
      return (*e.tuple)[static_cast<size_t>(idx)];
    }
  }
  return Status::InvalidArgument(
      StringPrintf("unbound alias '%s'", std::string(alias).c_str()));
}

bool RowBinding::Has(std::string_view alias) const {
  for (const Entry& e : entries_) {
    if (e.alias == alias) return true;
  }
  return false;
}

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

ExprPtr Expr::Make(ExprKind kind) {
  // webdis-lint: allow(naked-new) — the constructor is private (factories
  // enforce well-formed nodes), so make_unique cannot reach it; ownership
  // transfers to the unique_ptr in the same expression.
  return ExprPtr(new Expr(kind));
}

ExprPtr Expr::Literal(Value v) {
  ExprPtr e = Make(ExprKind::kLiteral);
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::ColumnRef(std::string alias, std::string column) {
  ExprPtr e = Make(ExprKind::kColumnRef);
  e->alias_ = std::move(alias);
  e->column_ = std::move(column);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  ExprPtr e = Make(ExprKind::kCompare);
  e->compare_op_ = op;
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Contains(ExprPtr haystack, ExprPtr needle) {
  ExprPtr e = Make(ExprKind::kContains);
  e->left_ = std::move(haystack);
  e->right_ = std::move(needle);
  return e;
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  ExprPtr e = Make(ExprKind::kAnd);
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  ExprPtr e = Make(ExprKind::kOr);
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Not(ExprPtr operand) {
  ExprPtr e = Make(ExprKind::kNot);
  e->left_ = std::move(operand);
  return e;
}

namespace {

bool Truthy(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      return v.AsInt() != 0;
    case ValueType::kString:
      return !v.AsString().empty();
  }
  return false;
}

}  // namespace

Result<Value> Expr::Eval(const RowBinding& binding) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kColumnRef:
      return binding.Lookup(alias_, column_);
    case ExprKind::kCompare: {
      Value lhs, rhs;
      WEBDIS_ASSIGN_OR_RETURN(lhs, left_->Eval(binding));
      WEBDIS_ASSIGN_OR_RETURN(rhs, right_->Eval(binding));
      bool result = false;
      switch (compare_op_) {
        case CompareOp::kEq:
          result = lhs.SqlEquals(rhs);
          break;
        case CompareOp::kNe:
          result = !lhs.is_null() && !rhs.is_null() && !lhs.SqlEquals(rhs);
          break;
        case CompareOp::kLt:
          result = lhs.Compare(rhs) < 0;
          break;
        case CompareOp::kLe:
          result = lhs.Compare(rhs) <= 0;
          break;
        case CompareOp::kGt:
          result = lhs.Compare(rhs) > 0;
          break;
        case CompareOp::kGe:
          result = lhs.Compare(rhs) >= 0;
          break;
      }
      return Value(static_cast<int64_t>(result ? 1 : 0));
    }
    case ExprKind::kContains: {
      Value lhs, rhs;
      WEBDIS_ASSIGN_OR_RETURN(lhs, left_->Eval(binding));
      WEBDIS_ASSIGN_OR_RETURN(rhs, right_->Eval(binding));
      if (lhs.type() != ValueType::kString ||
          rhs.type() != ValueType::kString) {
        return Value(static_cast<int64_t>(0));
      }
      const bool result = ContainsIgnoreCase(lhs.AsString(), rhs.AsString());
      return Value(static_cast<int64_t>(result ? 1 : 0));
    }
    case ExprKind::kAnd: {
      // Short-circuit.
      Value lhs;
      WEBDIS_ASSIGN_OR_RETURN(lhs, left_->Eval(binding));
      if (!Truthy(lhs)) return Value(static_cast<int64_t>(0));
      Value rhs;
      WEBDIS_ASSIGN_OR_RETURN(rhs, right_->Eval(binding));
      return Value(static_cast<int64_t>(Truthy(rhs) ? 1 : 0));
    }
    case ExprKind::kOr: {
      Value lhs;
      WEBDIS_ASSIGN_OR_RETURN(lhs, left_->Eval(binding));
      if (Truthy(lhs)) return Value(static_cast<int64_t>(1));
      Value rhs;
      WEBDIS_ASSIGN_OR_RETURN(rhs, right_->Eval(binding));
      return Value(static_cast<int64_t>(Truthy(rhs) ? 1 : 0));
    }
    case ExprKind::kNot: {
      Value v;
      WEBDIS_ASSIGN_OR_RETURN(v, left_->Eval(binding));
      return Value(static_cast<int64_t>(Truthy(v) ? 0 : 1));
    }
  }
  return Status::Internal("unreachable expr kind");
}

Result<bool> Expr::EvalPredicate(const RowBinding& binding) const {
  Value v;
  WEBDIS_ASSIGN_OR_RETURN(v, Eval(binding));
  return Truthy(v);
}

ExprPtr Expr::Clone() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return Literal(literal_);
    case ExprKind::kColumnRef:
      return ColumnRef(alias_, column_);
    case ExprKind::kCompare:
      return Compare(compare_op_, left_->Clone(), right_->Clone());
    case ExprKind::kContains:
      return Contains(left_->Clone(), right_->Clone());
    case ExprKind::kAnd:
      return And(left_->Clone(), right_->Clone());
    case ExprKind::kOr:
      return Or(left_->Clone(), right_->Clone());
    case ExprKind::kNot:
      return Not(left_->Clone());
  }
  return nullptr;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      if (literal_.type() == ValueType::kString) {
        return "\"" + literal_.AsString() + "\"";
      }
      return literal_.ToString();
    case ExprKind::kColumnRef:
      return alias_ + "." + column_;
    case ExprKind::kCompare:
      return "(" + left_->ToString() + " " +
             std::string(CompareOpToString(compare_op_)) + " " +
             right_->ToString() + ")";
    case ExprKind::kContains:
      return "(" + left_->ToString() + " contains " + right_->ToString() +
             ")";
    case ExprKind::kAnd:
      return "(" + left_->ToString() + " and " + right_->ToString() + ")";
    case ExprKind::kOr:
      return "(" + left_->ToString() + " or " + right_->ToString() + ")";
    case ExprKind::kNot:
      return "(not " + left_->ToString() + ")";
  }
  return "?";
}

void Expr::CollectAliases(std::vector<std::string>* out) const {
  if (kind_ == ExprKind::kColumnRef) {
    for (const std::string& a : *out) {
      if (a == alias_) return;
    }
    out->push_back(alias_);
    return;
  }
  if (left_) left_->CollectAliases(out);
  if (right_) right_->CollectAliases(out);
}

void Expr::EncodeTo(serialize::Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(kind_));
  switch (kind_) {
    case ExprKind::kLiteral:
      literal_.EncodeTo(enc);
      break;
    case ExprKind::kColumnRef:
      enc->PutString(alias_);
      enc->PutString(column_);
      break;
    case ExprKind::kCompare:
      enc->PutU8(static_cast<uint8_t>(compare_op_));
      left_->EncodeTo(enc);
      right_->EncodeTo(enc);
      break;
    case ExprKind::kContains:
    case ExprKind::kAnd:
    case ExprKind::kOr:
      left_->EncodeTo(enc);
      right_->EncodeTo(enc);
      break;
    case ExprKind::kNot:
      left_->EncodeTo(enc);
      break;
  }
}

Result<ExprPtr> Expr::DecodeFrom(serialize::Decoder* dec) {
  return DecodeRecursive(dec, 0);
}

Result<ExprPtr> Expr::DecodeRecursive(serialize::Decoder* dec, int depth) {
  constexpr int kMaxDepth = 64;
  if (depth > kMaxDepth) {
    return Status::Corruption("expression tree too deep");
  }
  uint8_t tag = 0;
  WEBDIS_RETURN_IF_ERROR(dec->GetU8(&tag));
  switch (static_cast<ExprKind>(tag)) {
    case ExprKind::kLiteral: {
      Value v;
      WEBDIS_RETURN_IF_ERROR(Value::DecodeFrom(dec, &v));
      return Literal(std::move(v));
    }
    case ExprKind::kColumnRef: {
      std::string alias, column;
      WEBDIS_RETURN_IF_ERROR(dec->GetString(&alias));
      WEBDIS_RETURN_IF_ERROR(dec->GetString(&column));
      return ColumnRef(std::move(alias), std::move(column));
    }
    case ExprKind::kCompare: {
      uint8_t op = 0;
      WEBDIS_RETURN_IF_ERROR(dec->GetU8(&op));
      if (op > static_cast<uint8_t>(CompareOp::kGe)) {
        return Status::Corruption("bad compare op tag");
      }
      ExprPtr lhs, rhs;
      WEBDIS_ASSIGN_OR_RETURN(lhs, DecodeRecursive(dec, depth + 1));
      WEBDIS_ASSIGN_OR_RETURN(rhs, DecodeRecursive(dec, depth + 1));
      return Compare(static_cast<CompareOp>(op), std::move(lhs),
                     std::move(rhs));
    }
    case ExprKind::kContains: {
      ExprPtr lhs, rhs;
      WEBDIS_ASSIGN_OR_RETURN(lhs, DecodeRecursive(dec, depth + 1));
      WEBDIS_ASSIGN_OR_RETURN(rhs, DecodeRecursive(dec, depth + 1));
      return Contains(std::move(lhs), std::move(rhs));
    }
    case ExprKind::kAnd: {
      ExprPtr lhs, rhs;
      WEBDIS_ASSIGN_OR_RETURN(lhs, DecodeRecursive(dec, depth + 1));
      WEBDIS_ASSIGN_OR_RETURN(rhs, DecodeRecursive(dec, depth + 1));
      return And(std::move(lhs), std::move(rhs));
    }
    case ExprKind::kOr: {
      ExprPtr lhs, rhs;
      WEBDIS_ASSIGN_OR_RETURN(lhs, DecodeRecursive(dec, depth + 1));
      WEBDIS_ASSIGN_OR_RETURN(rhs, DecodeRecursive(dec, depth + 1));
      return Or(std::move(lhs), std::move(rhs));
    }
    case ExprKind::kNot: {
      ExprPtr operand;
      WEBDIS_ASSIGN_OR_RETURN(operand, DecodeRecursive(dec, depth + 1));
      return Not(std::move(operand));
    }
    default:
      return Status::Corruption("bad expr kind tag");
  }
}

}  // namespace webdis::relational
