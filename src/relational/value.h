#ifndef WEBDIS_RELATIONAL_VALUE_H_
#define WEBDIS_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace webdis::serialize {
class Encoder;
class Decoder;
}  // namespace webdis::serialize

namespace webdis::relational {

/// Column types in the virtual relations. The paper's node model needs only
/// strings (urls, titles, text, labels) and integers (lengths).
enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kString = 2,
};

std::string_view ValueTypeToString(ValueType t);

/// A dynamically-typed cell value.
class Value {
 public:
  /// Null value.
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  static Value Null() { return Value(); }

  ValueType type() const {
    if (std::holds_alternative<std::monostate>(data_)) return ValueType::kNull;
    if (std::holds_alternative<int64_t>(data_)) return ValueType::kInt;
    return ValueType::kString;
  }

  bool is_null() const { return type() == ValueType::kNull; }
  /// Precondition: type() == kInt.
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  /// Precondition: type() == kString.
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Display form: "NULL", integer digits, or the raw string.
  std::string ToString() const;

  /// SQL-style equality: NULL compares unequal to everything (incl. NULL).
  bool SqlEquals(const Value& other) const;

  /// Three-way ordering for sort/comparison predicates. Nulls sort first;
  /// cross-type comparison orders by type id (deterministic, never errors).
  int Compare(const Value& other) const;

  /// Exact structural equality (used by tests and containers).
  bool operator==(const Value& other) const { return data_ == other.data_; }

  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, Value* out);

  /// Rough in-memory footprint, for cache byte budgets (not wire size).
  size_t ApproxBytes() const {
    size_t bytes = sizeof(Value);
    if (const auto* s = std::get_if<std::string>(&data_)) {
      bytes += s->capacity();
    }
    return bytes;
  }

 private:
  std::variant<std::monostate, int64_t, std::string> data_;
};

}  // namespace webdis::relational

#endif  // WEBDIS_RELATIONAL_VALUE_H_
