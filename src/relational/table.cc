#include "relational/table.h"

#include "common/strings.h"

namespace webdis::relational {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

int Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Table::Insert(Tuple tuple) {
  if (tuple.size() != schema_.num_columns()) {
    return Status::InvalidArgument(StringPrintf(
        "tuple arity %zu does not match schema arity %zu", tuple.size(),
        schema_.num_columns()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (!tuple[i].is_null() && tuple[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument(StringPrintf(
          "column '%s' expects %s, got %s", schema_.column(i).name.c_str(),
          std::string(ValueTypeToString(schema_.column(i).type)).c_str(),
          std::string(ValueTypeToString(tuple[i].type())).c_str()));
    }
  }
  rows_.push_back(std::move(tuple));
  return Status::OK();
}

void Database::Put(std::string name, Table table) {
  tables_.insert_or_assign(std::move(name), std::move(table));
}

const Table* Database::Find(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

const Schema& DocumentSchema() {
  static const Schema schema({
      {"url", ValueType::kString},
      {"title", ValueType::kString},
      {"text", ValueType::kString},
      {"length", ValueType::kInt},
  });
  return schema;
}

const Schema& AnchorSchema() {
  static const Schema schema({
      {"label", ValueType::kString},
      {"base", ValueType::kString},
      {"href", ValueType::kString},
      {"ltype", ValueType::kString},
  });
  return schema;
}

size_t Table::ApproxBytes() const {
  size_t bytes = sizeof(Table);
  for (const Tuple& row : rows_) {
    bytes += sizeof(Tuple) + (row.capacity() - row.size()) * sizeof(Value);
    for (const Value& cell : row) bytes += cell.ApproxBytes();
  }
  return bytes;
}

size_t Database::ApproxBytes() const {
  size_t bytes = sizeof(Database);
  for (const auto& [name, table] : tables_) {
    bytes += name.capacity() + table.ApproxBytes();
  }
  return bytes;
}

const Schema& RelInfonSchema() {
  static const Schema schema({
      {"delimiter", ValueType::kString},
      {"url", ValueType::kString},
      {"text", ValueType::kString},
      {"length", ValueType::kInt},
  });
  return schema;
}

}  // namespace webdis::relational
