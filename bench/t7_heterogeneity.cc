// T7 — site heterogeneity and completion detection (Section 2.7's argument
// in full): "solutions such as timeouts are difficult to implement in a
// coherent manner given the considerable heterogeneity in network and site
// characteristics". One straggler site is made progressively slower; the
// CHT always detects completion exactly when the last (straggler) report
// arrives, while any *safe* timeout must exceed the straggler's delay for
// every query — and an unsafe one silently truncates results.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

int Main() {
  std::printf(
      "T7 — One straggler site, CHT vs timeout completion\n"
      "8 sites, one made slower by the given extra RTT; timeout = 1000 ms\n"
      "(a guess that looked generous before the straggler appeared)\n\n");

  web::SynthWebOptions web_options;
  web_options.seed = 42;
  web_options.num_sites = 8;
  web_options.docs_per_site = 8;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);
  const std::string disql =
      "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
      "\" (L|G)*3 d where d.title contains \"alpha\"";
  const SimDuration timeout = 1 * kSecond;

  bench::TablePrinter table({
      "straggler extra ms", "CHT done ms", "CHT rows",
      "timeout done ms", "timeout rows", "timeout verdict",
  });
  size_t full_rows = 0;
  for (int extra_ms : {0, 200, 800, 2000, 5000}) {
    // CHT run.
    core::Engine cht_engine(&web);
    cht_engine.network().SetHostExtraLatency(
        web::SynthHost(3), static_cast<SimDuration>(extra_ms) * kMillisecond);
    auto cht = cht_engine.Run(disql);
    if (!cht.ok() || !cht->completed) return 1;
    if (extra_ms == 0) full_rows = cht->TotalRows();

    // Timeout run: the user declares the query done `timeout` after the
    // most recent arrival; rows that show up later are lost.
    core::EngineOptions to_options;
    to_options.client.use_cht = false;
    to_options.completion_timeout = timeout;
    core::Engine to_engine(&web, to_options);
    to_engine.network().SetHostExtraLatency(
        web::SynthHost(3), static_cast<SimDuration>(extra_ms) * kMillisecond);
    auto compiled = disql::CompileDisql(disql);
    if (!compiled.ok()) return 1;
    auto id = to_engine.Submit(compiled.value());
    if (!id.ok()) return 1;
    // Deliver only what arrives before the timeout would have fired; the
    // straggler's late reports are beyond the horizon.
    SimTime last_arrival = 0;
    while (!to_engine.network().Idle()) {
      // Peek: if the next event lands after last_arrival + timeout, the
      // user already gave up.
      // (RunOne advances now(); check afterwards.)
      to_engine.network().RunOne();
      const client::UserSite::QueryRun* run =
          to_engine.user_site().Find(id.value());
      if (run->stats.reports_received > 0 &&
          run->last_report_time == to_engine.network().now()) {
        last_arrival = run->last_report_time;
      }
      if (to_engine.network().now() > last_arrival + timeout &&
          last_arrival > 0) {
        break;  // the timeout fired before this arrival
      }
    }
    to_engine.user_site().FinishWithTimeout(id.value(), timeout);
    const client::UserSite::QueryRun* run =
        to_engine.user_site().Find(id.value());
    size_t timeout_rows = 0;
    for (const relational::ResultSet& rs : run->results) {
      timeout_rows += rs.rows.size();
    }

    table.AddRow({
        bench::Num(static_cast<uint64_t>(extra_ms)),
        bench::Ms(cht->completion_time),
        bench::Num(cht->TotalRows()),
        bench::Ms(run->completion_time),
        bench::Num(timeout_rows),
        timeout_rows == full_rows ? "ok" : "TRUNCATED",
    });
    if (cht->TotalRows() != full_rows) {
      std::fprintf(stderr, "CHT lost rows?!\n");
      return 1;
    }
  }
  table.Print();
  std::printf(
      "\nThe CHT tracks the straggler exactly (done = last report, no\n"
      "configuration). The fixed timeout is either wastefully long or —\n"
      "once any site is slower than the guess — silently wrong.\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
