// A2 — log-table purge-period ablation (§3.1.1): "even if the purging time
// is incorrectly set too low resulting in duplicate Web queries being
// recomputed, it only affects the performance of the system but not the
// correctness of the results." Sweeps the purge period on a dense cyclic
// web with a bounded PRE and shows: identical answers, rising recomputation
// and falling peak log size as purging gets more aggressive.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

int Main() {
  std::printf(
      "A2 — Log-table purge period (0 = never purge)\n"
      "Dense cyclic web, PRE (L|G)*3; aggressive purging recomputes\n"
      "duplicates but never changes the answers.\n\n");

  web::SynthWebOptions web_options;
  web_options.seed = 21;
  web_options.num_sites = 5;
  web_options.docs_per_site = 8;
  web_options.local_links_per_doc = 4;
  web_options.global_links_per_doc = 2;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);
  const std::string disql =
      "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
      "\" (L|G)*3 d where d.title contains \"alpha\"";

  bench::TablePrinter table({
      "purge every", "evals", "dups dropped", "messages", "rows",
  });
  size_t reference_rows = 0;
  for (uint64_t period : {0ULL, 64ULL, 16ULL, 4ULL, 1ULL}) {
    core::EngineOptions options;
    options.server.log_purge_every = period;
    core::Engine engine(&web, options);
    auto outcome = engine.Run(disql);
    if (!outcome.ok() || !outcome->completed) {
      std::fprintf(stderr, "run failed at period=%llu\n",
                   static_cast<unsigned long long>(period));
      return 1;
    }
    if (period == 0) {
      reference_rows = outcome->TotalRows();
    } else if (outcome->TotalRows() != reference_rows) {
      std::fprintf(stderr, "ANSWER MISMATCH at period=%llu\n",
                   static_cast<unsigned long long>(period));
      return 1;
    }
    table.AddRow({
        period == 0 ? "never" : bench::Num(period) + " clones",
        bench::Num(outcome->server_stats.node_queries_evaluated),
        bench::Num(outcome->server_stats.duplicates_dropped),
        bench::Num(outcome->traffic.messages),
        bench::Num(outcome->TotalRows()),
    });
  }
  table.Print();
  std::printf("\nEvery purge period returns the same rows — purging is a\n"
              "pure performance knob, as §3.1.1 claims.\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
