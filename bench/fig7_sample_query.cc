// Figures 7 & 8 reproduction: the Section 5 sample execution. Runs the
// paper's Example Query 2 on the synthetic campus web, prints the per-hop
// state trace (Figure 7) and the final result table (Figure 8).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "core/trace.h"
#include "web/topologies.h"

namespace webdis {
namespace {

int Main() {
  web::CampusScenario scenario = web::BuildCampusScenario();
  core::Engine engine(&scenario.web);

  std::printf("Figures 7 and 8 — Sample Query Execution (Section 5)\n\n");
  std::printf("DISQL query (the paper's Example Query 2):\n%s\n",
              scenario.disql.c_str());

  core::TraceCollector trace(&engine);
  auto outcome = engine.Run(scenario.disql, "maya");
  if (!outcome.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("Traversal trace (Figure 7):\n%s", trace.Format().c_str());

  std::printf("\nResults of the query by user maya (Figure 8):\n\n%s",
              core::FormatResults(outcome->results).c_str());

  // Verify the three Figure 8 rows.
  bool all_found = outcome->completed;
  for (const auto& [url, name] : scenario.expected_conveners) {
    bool found = false;
    for (const relational::ResultSet& rs : outcome->results) {
      if (rs.column_labels !=
          std::vector<std::string>{"d1.url", "r.text"}) {
        continue;
      }
      for (const relational::Tuple& row : rs.rows) {
        if (row[0].ToString() == url &&
            row[1].ToString().find(name) != std::string::npos) {
          found = true;
        }
      }
    }
    all_found = all_found && found;
  }
  std::printf("completion: %s after %s ms (virtual)\n",
              outcome->completed ? "detected via CHT" : "NOT DETECTED",
              bench::Ms(outcome->completion_time).c_str());
  std::printf("figure-8 result rows: %s\n",
              all_found ? "REPRODUCED" : "MISMATCH");
  return all_found ? 0 : 1;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
