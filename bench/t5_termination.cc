// T5 — query termination (Section 2.8): the paper's passive scheme (close
// the result socket; servers discover it on their next report and purge
// locally) vs the active alternative (explicit kTerminate messages to every
// CHT host). Cancels at increasing progress points and reports termination
// messages, wasted post-cancel work, and time to quiescence.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

struct Cancelled {
  uint64_t terminate_messages = 0;
  uint64_t evals_after_cancel = 0;
  uint64_t refused_connects = 0;
  SimTime quiesce_ms = 0;
  bool ok = false;
};

Cancelled RunOne(const web::WebGraph& web, const std::string& disql,
                 int cancel_after_deliveries, bool active) {
  core::EngineOptions options;
  options.client.active_termination = active;
  core::Engine engine(&web, options);
  auto compiled = disql::CompileDisql(disql);
  Cancelled result;
  if (!compiled.ok()) return result;
  auto id = engine.Submit(compiled.value());
  if (!id.ok()) return result;
  for (int i = 0; i < cancel_after_deliveries; ++i) {
    if (!engine.network().RunOne()) break;
  }
  const uint64_t evals_before =
      engine.AggregateServerStats().node_queries_evaluated;
  const SimTime cancel_time = engine.network().now();
  engine.user_site().Cancel(id.value());
  engine.network().RunUntilIdle();
  result.terminate_messages = engine.TrafficSnapshot().terminate_messages;
  result.evals_after_cancel =
      engine.AggregateServerStats().node_queries_evaluated - evals_before;
  result.refused_connects = engine.network().connection_refused_count();
  result.quiesce_ms = engine.network().now() - cancel_time;
  result.ok = true;
  return result;
}

int Main() {
  std::printf(
      "T5 — Passive vs active query termination (cancel-point sweep)\n\n");

  web::SynthWebOptions web_options;
  web_options.seed = 77;
  web_options.num_sites = 8;
  web_options.docs_per_site = 10;
  web_options.local_links_per_doc = 3;
  web_options.global_links_per_doc = 2;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);
  const std::string disql =
      "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
      "\" (L|G)*3 d where d.title contains \"alpha\"";

  bench::TablePrinter table({
      "cancel after", "mode", "term msgs", "evals after cancel",
      "refused connects", "quiesce ms",
  });
  for (int point : {1, 5, 20, 60}) {
    for (bool active : {false, true}) {
      const Cancelled c = RunOne(web, disql, point, active);
      if (!c.ok) {
        std::fprintf(stderr, "run failed at point=%d\n", point);
        return 1;
      }
      table.AddRow({
          bench::Num(static_cast<uint64_t>(point)) + " deliveries",
          active ? "active" : "passive",
          bench::Num(c.terminate_messages),
          bench::Num(c.evals_after_cancel),
          bench::Num(c.refused_connects),
          bench::Ms(c.quiesce_ms),
      });
    }
  }
  table.Print();
  std::printf(
      "\nPassive termination sends zero extra messages; in-flight clones die\n"
      "on their next (refused) report. Active termination pays one message\n"
      "per CHT host to cut residual work slightly earlier — the paper argues\n"
      "the passive scheme's simplicity wins because report-before-forward\n"
      "already bounds the residual cascade.\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
