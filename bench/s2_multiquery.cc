// S2 — multi-query workloads through one deployment: Q concurrent queries
// submitted together vs the same queries run back-to-back. Distribution
// lets independent queries overlap across sites, so the virtual makespan of
// the batch grows far slower than the serial sum — the "client-site
// bottleneck" argument of Section 1 seen from the throughput side.
#include <chrono>  // webdis-lint: allow(clock) — wall time for bench_compare
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

std::string QueryFor(int i) {
  return "select d.url from document d such that \"" +
         web::SynthUrl(i % 4, i % 7) +
         "\" (L|G)*3 d where d.title contains \"alpha\"";
}

int Main() {
  std::printf(
      "S2 — Concurrent query batches vs serial execution (8 sites)\n\n");
  web::SynthWebOptions web_options;
  web_options.seed = 3;
  web_options.num_sites = 8;
  web_options.docs_per_site = 8;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);

  bench::JsonBenchWriter json("BENCH_MULTIQUERY.json");
  bench::TablePrinter table({
      "queries", "batch makespan ms", "serial sum ms", "speedup",
      "batch msgs", "all complete",
  });
  for (int q : {1, 2, 4, 8, 16}) {
    // Concurrent batch.
    core::Engine batch_engine(&web);
    const core::TrafficSummary before = batch_engine.TrafficSnapshot();
    std::vector<query::QueryId> ids;
    for (int i = 0; i < q; ++i) {
      auto compiled = disql::CompileDisql(QueryFor(i));
      if (!compiled.ok()) return 1;
      auto id = batch_engine.Submit(compiled.value(),
                                    "u" + std::to_string(i));
      if (!id.ok()) return 1;
      ids.push_back(id.value());
    }
    // webdis-lint: allow(clock) — wall time feeds the bench-regression gate
    const auto wall_start = std::chrono::steady_clock::now();
    batch_engine.network().RunUntilIdle();
    // webdis-lint: allow(clock)
    const auto wall_end = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(wall_end - wall_start)
            .count();
    bool all_complete = true;
    SimTime makespan = 0;
    for (const query::QueryId& id : ids) {
      const client::UserSite::QueryRun* run =
          batch_engine.user_site().Find(id);
      all_complete = all_complete && run->completed;
      makespan = std::max(makespan, run->completion_time);
    }
    const core::TrafficSummary after = batch_engine.TrafficSnapshot();

    // Serial reference: fresh engine per query, times summed.
    SimTime serial_sum = 0;
    for (int i = 0; i < q; ++i) {
      core::Engine solo(&web);
      auto outcome = solo.Run(QueryFor(i));
      if (!outcome.ok() || !outcome->completed) return 1;
      serial_sum += outcome->completion_time - outcome->submit_time;
    }

    table.AddRow({
        bench::Num(static_cast<uint64_t>(q)),
        bench::Ms(makespan),
        bench::Ms(serial_sum),
        bench::Ratio(static_cast<double>(serial_sum),
                     static_cast<double>(makespan)),
        bench::Num(after.messages - before.messages),
        all_complete ? "yes" : "NO",
    });
    json.Record("s2_multiquery_q" + std::to_string(q), 0, wall_ms,
                static_cast<double>(makespan) / 1000.0,
                after.messages - before.messages, after.bytes - before.bytes);
  }
  table.Print();
  std::printf(
      "\nQueries overlap freely across sites; the batch makespan approaches\n"
      "the longest single query while the serial sum grows linearly.\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
