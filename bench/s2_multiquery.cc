// S2 — multi-query workloads through one deployment: Q concurrent queries
// submitted together vs the same queries run back-to-back. Distribution
// lets independent queries overlap across sites, so the virtual makespan of
// the batch grows far slower than the serial sum — the "client-site
// bottleneck" argument of Section 1 seen from the throughput side.
//
// A second sweep re-runs each batch with cross-query sharing enabled
// (server-side result cache + clone/report batch envelopes). Overlapping
// traversals then reuse node-query results and ride shared wire envelopes,
// so message count grows sublinearly in Q — tools/bench_compare.py gates on
// shared traffic staying at or below half the unshared count at Q=16.
#include <chrono>  // webdis-lint: allow(clock) — wall time for bench_compare
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

std::string QueryFor(int i) {
  return "select d.url from document d such that \"" +
         web::SynthUrl(i % 4, i % 7) +
         "\" (L|G)*3 d where d.title contains \"alpha\"";
}

struct BatchResult {
  double wall_ms = 0;
  SimTime makespan = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  bool all_complete = true;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

BatchResult RunBatch(const web::WebGraph& web, int q, bool shared) {
  core::EngineOptions options;
  if (shared) {
    options.server.share_results = true;
    options.server.result_cache_max_bytes = 1 << 20;
    options.server.batch_window = 5 * kMillisecond;
    options.server.batch_max_members = 16;
  }
  core::Engine engine(&web, options);
  const core::TrafficSummary before = engine.TrafficSnapshot();
  std::vector<query::QueryId> ids;
  for (int i = 0; i < q; ++i) {
    auto compiled = disql::CompileDisql(QueryFor(i));
    if (!compiled.ok()) return {};
    auto id = engine.Submit(compiled.value(), "u" + std::to_string(i));
    if (!id.ok()) return {};
    ids.push_back(id.value());
  }
  // webdis-lint: allow(clock) — wall time feeds the bench-regression gate
  const auto wall_start = std::chrono::steady_clock::now();
  engine.network().RunUntilIdle();
  // webdis-lint: allow(clock)
  const auto wall_end = std::chrono::steady_clock::now();

  BatchResult result;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  for (const query::QueryId& id : ids) {
    const client::UserSite::QueryRun* run = engine.user_site().Find(id);
    result.all_complete = result.all_complete && run->completed;
    result.makespan = std::max(result.makespan, run->completion_time);
  }
  const core::TrafficSummary after = engine.TrafficSnapshot();
  result.messages = after.messages - before.messages;
  result.bytes = after.bytes - before.bytes;
  const server::QueryServerStats stats = engine.AggregateServerStats();
  result.cache_hits = stats.result_cache_hits;
  result.cache_misses = stats.result_cache_misses;
  return result;
}

std::string HitRateJson(const BatchResult& r) {
  const uint64_t lookups = r.cache_hits + r.cache_misses;
  const double rate =
      lookups == 0 ? 0.0 : static_cast<double>(r.cache_hits) / lookups;
  char buf[64];
  std::snprintf(buf, sizeof(buf), ", \"cache_hit_rate\": %.3f", rate);
  return buf;
}

int Main() {
  std::printf(
      "S2 — Concurrent query batches vs serial execution (8 sites)\n\n");
  web::SynthWebOptions web_options;
  web_options.seed = 3;
  web_options.num_sites = 8;
  web_options.docs_per_site = 8;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);

  bench::JsonBenchWriter json("BENCH_MULTIQUERY.json");
  bench::TablePrinter table({
      "queries", "batch makespan ms", "serial sum ms", "speedup",
      "batch msgs", "shared msgs", "msg ratio", "cache hit%", "all complete",
  });
  for (int q : {1, 2, 4, 8, 16}) {
    const BatchResult plain = RunBatch(web, q, /*shared=*/false);
    const BatchResult shared = RunBatch(web, q, /*shared=*/true);

    // Serial reference: fresh engine per query, times summed.
    SimTime serial_sum = 0;
    for (int i = 0; i < q; ++i) {
      core::Engine solo(&web);
      auto outcome = solo.Run(QueryFor(i));
      if (!outcome.ok() || !outcome->completed) return 1;
      serial_sum += outcome->completion_time - outcome->submit_time;
    }

    const uint64_t lookups = shared.cache_hits + shared.cache_misses;
    char hit_pct[32];
    std::snprintf(hit_pct, sizeof(hit_pct), "%.0f%%",
                  lookups == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(shared.cache_hits) /
                            static_cast<double>(lookups));
    table.AddRow({
        bench::Num(static_cast<uint64_t>(q)),
        bench::Ms(plain.makespan),
        bench::Ms(serial_sum),
        bench::Ratio(static_cast<double>(serial_sum),
                     static_cast<double>(plain.makespan)),
        bench::Num(plain.messages),
        bench::Num(shared.messages),
        bench::Ratio(static_cast<double>(shared.messages),
                     static_cast<double>(plain.messages)),
        hit_pct,
        plain.all_complete && shared.all_complete ? "yes" : "NO",
    });
    json.Record("s2_multiquery_q" + std::to_string(q), 0, plain.wall_ms,
                static_cast<double>(plain.makespan) / 1000.0, plain.messages,
                plain.bytes);
    json.Record("s2_multiquery_shared_q" + std::to_string(q), 0,
                shared.wall_ms,
                static_cast<double>(shared.makespan) / 1000.0,
                shared.messages, shared.bytes, HitRateJson(shared));
  }
  table.Print();
  std::printf(
      "\nQueries overlap freely across sites; the batch makespan approaches\n"
      "the longest single query while the serial sum grows linearly. With\n"
      "sharing on, overlapping traversals collapse onto cached node-query\n"
      "results and batched envelopes, so message count grows sublinearly.\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
