// T8 — traffic vs document size: the defining property of query shipping.
// Documents grow (more body text per page) while the hyperlink structure
// and the answers stay fixed. Data shipping's traffic is proportional to
// document volume; query shipping's is proportional to the (constant)
// number of clones and result rows, so its curve is flat.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

int Main() {
  std::printf(
      "T8 — Traffic vs document size (structure and answers held fixed)\n\n");

  bench::TablePrinter table({
      "avg doc KB", "web KB", "QS KB", "DS KB", "DS/QS", "rows",
  });
  for (int paragraphs : {1, 4, 16, 64}) {
    web::SynthWebOptions web_options;
    web_options.seed = 50;  // same seed: identical structure and keywords
    web_options.num_sites = 6;
    web_options.docs_per_site = 8;
    web_options.filler_paragraphs = paragraphs;
    const web::WebGraph web = web::GenerateSynthWeb(web_options);

    const std::string disql =
        "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
        "\" (L|G)*3 d where d.title contains \"alpha\"";
    auto compiled = disql::CompileDisql(disql);
    if (!compiled.ok()) return 1;

    core::Engine engine(&web);
    auto qs = engine.RunCompiled(compiled.value());
    if (!qs.ok() || !qs->completed) return 1;
    auto ds = core::RunDataShippingBaseline(web, compiled.value());
    if (!ds.ok()) return 1;

    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.1f",
                  static_cast<double>(web.TotalHtmlBytes()) /
                      static_cast<double>(web.num_documents()) / 1024.0);
    table.AddRow({
        avg,
        bench::Kb(web.TotalHtmlBytes()),
        bench::Kb(qs->traffic.bytes),
        bench::Kb(ds->traffic.bytes),
        bench::Ratio(static_cast<double>(ds->traffic.bytes),
                     static_cast<double>(qs->traffic.bytes)),
        bench::Num(qs->TotalRows()),
    });
  }
  table.Print();
  std::printf(
      "\nQuery-shipping traffic is flat in document size (clones carry the\n"
      "query, results carry URLs); data-shipping traffic grows linearly\n"
      "with the pages it must download.\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
