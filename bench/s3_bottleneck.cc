// S3 — the client-site processing bottleneck (Section 1): "the client-site
// becoming a processing bottleneck, and extended user response times due to
// sequential processing." Every party processes its message queue serially
// (§4.4); document processing costs D per document wherever it happens —
// at the owning site's daemon under query shipping, at the client under
// data shipping. Sweeping D isolates the *compute placement* effect from
// the byte-volume effect (T1/T8).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

net::SimNetworkOptions::ServiceTimeModel ModelWithCost(SimDuration doc_cost) {
  return [doc_cost](const net::Endpoint& to, net::MessageType type,
                    size_t) -> SimDuration {
    // Document processing: a clone delivered to a query server makes the
    // daemon parse + evaluate its destination documents; a fetch response
    // delivered to the data-shipping client makes the *client* parse the
    // document. Everything else is protocol chatter.
    if (type == net::MessageType::kWebQuery &&
        to.port == server::kQueryServerPort) {
      return doc_cost;
    }
    if (type == net::MessageType::kFetchResponse) {
      return doc_cost;
    }
    return 100 * kMicrosecond;
  };
}

int Main() {
  std::printf(
      "S3 — Compute placement: per-document processing cost D, paid at the\n"
      "     owning site (QS, parallel daemons) or at the client (DS, one\n"
      "     serial queue). 8 sites, fixed query.\n\n");

  web::SynthWebOptions web_options;
  web_options.seed = 50;
  web_options.num_sites = 8;
  web_options.docs_per_site = 10;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);
  const std::string disql =
      "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
      "\" (L|G)*3 d where d.title contains \"alpha\"";
  auto compiled = disql::CompileDisql(disql);
  if (!compiled.ok()) return 1;

  bench::TablePrinter table({
      "doc cost ms", "QS resp ms", "DS resp ms", "DS/QS", "rows",
  });
  SimTime qs_first = 0, qs_last = 0, ds_first = 0, ds_last = 0;
  int first_cost = -1, last_cost = 0;
  for (int cost_ms : {0, 2, 5, 10, 20}) {
    const SimDuration doc_cost =
        static_cast<SimDuration>(cost_ms) * kMillisecond;
    // A fast LAN-ish network isolates the compute-placement effect from
    // the fetch-latency effect T1 already measures.
    core::EngineOptions qs_options;
    qs_options.network.inter_host_latency = 2 * kMillisecond;
    qs_options.network.service_time = ModelWithCost(doc_cost);
    core::Engine engine(&web, qs_options);
    auto qs = engine.RunCompiled(compiled.value());
    if (!qs.ok() || !qs->completed) return 1;

    net::SimNetworkOptions ds_net;
    ds_net.inter_host_latency = 2 * kMillisecond;
    ds_net.service_time = ModelWithCost(doc_cost);
    auto ds = core::RunDataShippingBaseline(web, compiled.value(), ds_net);
    if (!ds.ok()) return 1;

    const SimTime qs_ms = qs->completion_time - qs->submit_time;
    const SimTime ds_ms = ds->outcome.finish_time - ds->outcome.start_time;
    if (first_cost < 0) {
      first_cost = cost_ms;
      qs_first = qs_ms;
      ds_first = ds_ms;
    }
    last_cost = cost_ms;
    qs_last = qs_ms;
    ds_last = ds_ms;
    table.AddRow({
        bench::Num(static_cast<uint64_t>(cost_ms)),
        bench::Ms(qs_ms),
        bench::Ms(ds_ms),
        bench::Ratio(static_cast<double>(ds_ms),
                     static_cast<double>(qs_ms)),
        bench::Num(qs->TotalRows()),
    });
  }
  table.Print();
  const double span =
      static_cast<double>(last_cost - first_cost) * 1000.0;  // us
  const double ds_slope =
      static_cast<double>(ds_last - ds_first) / span;
  const double qs_slope =
      static_cast<double>(qs_last - qs_first) / span;
  std::printf(
      "\nResponse-time growth per unit of document work: DS %.1f (every\n"
      "document funnels through the client's one serial queue), QS %.1f\n"
      "(only the busiest daemon's share sits on the critical path) —\n"
      "an effective compute parallelism of %.1fx, approaching the site\n"
      "count as work grows. That is Section 1's bottleneck argument,\n"
      "quantified.\n",
      ds_slope, qs_slope, qs_slope == 0 ? 0 : ds_slope / qs_slope);
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
