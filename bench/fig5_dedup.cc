// Figure 5 reproduction: node 4 is visited five times (a-e) along different
// paths; visits c, d, e arrive in the same state (1, N). With the Node-query
// Log Table the two equivalent re-arrivals are dropped; without it every
// arrival is recomputed and duplicate result rows reach the user site.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/topologies.h"

namespace webdis {
namespace {

struct Run {
  std::vector<server::VisitEvent> node4_visits;
  uint64_t evaluations = 0;
  uint64_t duplicates_dropped = 0;
  uint64_t duplicate_rows_filtered = 0;
  uint64_t messages = 0;
  size_t rows = 0;
};

Run Execute(bool dedup) {
  web::Scenario scenario = web::BuildFig5Scenario();
  core::EngineOptions options;
  options.server.dedup_enabled = dedup;
  core::Engine engine(&scenario.web, options);
  Run run;
  engine.ObserveVisits([&run](const server::VisitEvent& event) {
    if (event.node_url == "http://site4.example/node4") {
      run.node4_visits.push_back(event);
    }
  });
  auto outcome = engine.Run(scenario.disql);
  if (!outcome.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 outcome.status().ToString().c_str());
    std::exit(1);
  }
  run.evaluations = outcome->server_stats.node_queries_evaluated;
  run.duplicates_dropped = outcome->server_stats.duplicates_dropped;
  run.duplicate_rows_filtered = outcome->client_stats.duplicate_rows_filtered;
  run.messages = outcome->traffic.messages;
  run.rows = outcome->TotalRows();
  return run;
}

int Main() {
  std::printf("Figure 5 — Multiple visits to a Node\n");
  std::printf("Query: S G.(G|L) q1 (G|L) q2; node 4 receives five clones "
              "(a-e)\n\n");

  const Run with = Execute(true);
  const Run without = Execute(false);

  std::printf("Visits at node 4 (log table ON):\n");
  bench::TablePrinter visits({"visit", "state received", "action"});
  const char* labels[] = {"a", "b", "c", "d", "e"};
  for (size_t i = 0; i < with.node4_visits.size(); ++i) {
    const server::VisitEvent& v = with.node4_visits[i];
    visits.AddRow({i < 5 ? labels[i] : "?", v.received_state.ToString(),
                   v.duplicate ? "DROPPED (equivalent to earlier visit)"
                               : (v.evaluated ? "evaluated" : "routed")});
  }
  visits.Print();

  std::printf("\nCost comparison:\n");
  bench::TablePrinter table({"metric", "log table ON", "log table OFF"});
  table.AddRow({"node-query evaluations", bench::Num(with.evaluations),
                bench::Num(without.evaluations)});
  table.AddRow({"duplicate clones dropped", bench::Num(with.duplicates_dropped),
                bench::Num(without.duplicates_dropped)});
  table.AddRow({"duplicate result rows filtered at user site",
                bench::Num(with.duplicate_rows_filtered),
                bench::Num(without.duplicate_rows_filtered)});
  table.AddRow({"network messages", bench::Num(with.messages),
                bench::Num(without.messages)});
  table.AddRow({"unique result rows", bench::Num(with.rows),
                bench::Num(without.rows)});
  table.Print();

  const bool reproduced = with.node4_visits.size() == 5 &&
                          with.duplicates_dropped == 2 &&
                          with.rows == without.rows;
  std::printf("\nfigure-5 invariants (5 visits, 2 equivalent drops, same "
              "answers): %s\n",
              reproduced ? "REPRODUCED" : "MISMATCH");
  return reproduced ? 0 : 1;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
