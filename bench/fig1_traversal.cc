// Figure 1 reproduction: traces the traversal of Q = S G·(G|L) q1 (G|L) q2
// over the 8-node web, printing each node visit with its role and state —
// the web traversal diagram of the paper, as a table. Asserts the figure's
// facts: nodes 1-3 are PureRouters, 4-8 ServerRouters, node 4 acts twice,
// node 7 dead-ends.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/topologies.h"

namespace webdis {
namespace {

int Run() {
  web::Scenario scenario = web::BuildFig1Scenario();
  core::Engine engine(&scenario.web);

  std::vector<server::VisitEvent> visits;
  engine.ObserveVisits([&visits](const server::VisitEvent& event) {
    visits.push_back(event);
  });
  auto outcome = engine.Run(scenario.disql);
  if (!outcome.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 1 — Web Traversal Path\n");
  std::printf("Query: S G.(G|L) q1 (G|L) q2  (q1: title contains 'alpha', "
              "q2: text contains 'beta')\n\n");
  bench::TablePrinter table(
      {"visit", "node", "state received", "role", "result", "forwards"});
  int i = 0;
  for (const server::VisitEvent& v : visits) {
    std::string role = v.evaluated ? "ServerRouter" : "PureRouter";
    if (v.duplicate) role = "(duplicate)";
    std::string result = "-";
    if (v.evaluated) {
      result = v.answered ? "answer" : (v.dead_end ? "DEAD-END" : "no answer");
    }
    table.AddRow({bench::Num(static_cast<uint64_t>(++i)), v.node_url,
                  v.received_state.ToString(), role, result,
                  bench::Num(v.forward_count)});
  }
  table.Print();

  // -- Assertions: the figure's narrative -----------------------------------
  std::map<std::string, std::vector<server::VisitEvent>> by_node;
  for (const server::VisitEvent& v : visits) by_node[v.node_url].push_back(v);
  bool ok = outcome->completed;
  for (const std::string& url : scenario.pure_router_urls) {
    for (const server::VisitEvent& v : by_node[url]) ok = ok && !v.evaluated;
  }
  for (const std::string& url : scenario.server_router_urls) {
    bool any = false;
    for (const server::VisitEvent& v : by_node[url]) any = any || v.evaluated;
    ok = ok && any;
  }
  ok = ok && by_node["http://site4.example/node4"].size() == 2;
  bool node7_dead = false;
  for (const server::VisitEvent& v : by_node["http://site7.example/node7"]) {
    node7_dead = node7_dead || v.dead_end;
  }
  ok = ok && node7_dead;

  std::printf("\nresults: %zu rows, completed=%d\n", outcome->TotalRows(),
              outcome->completed);
  std::printf("figure-1 invariants (roles, node4 twice, node7 dead-end): "
              "%s\n",
              ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Run(); }
