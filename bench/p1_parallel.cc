// P1 — multi-core site evaluation: the same multi-site, multi-query
// workload driven by the time-stepped stepper at 1, 2, 4 and 8 workers.
// Virtual time, message counts, and results are identical by construction
// (verified here against the 1-worker reference); the only thing allowed to
// change is the host wall-clock, which is what this harness measures. With
// zero latency jitter and uniform inter-host latency, each traversal hop
// arrives as one wavefront — a wide slice whose per-host partitions the
// stepper fans out across cores.
//
// Writes BENCH_PARALLEL.json (JSON lines; see bench::JsonBenchWriter) for
// tools/bench_compare.py to gate CI on wall-clock regressions.
#include <chrono>  // webdis-lint: allow(clock) — measuring real time is the point
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

constexpr int kQueries = 8;
constexpr int kRepetitions = 3;  // best-of-N to damp scheduler noise

std::string QueryFor(int i) {
  return "select d.url, d.title from document d such that \"" +
         web::SynthUrl(i % 6, i % 5) +
         "\" (L|G)*3 d where d.title contains \"alpha\"";
}

struct RunResult {
  double wall_ms = 0;
  SimTime virtual_makespan = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  std::string results_signature;
  net::ParallelStats parallel;
  bool all_complete = true;
};

RunResult RunOnce(const web::WebGraph& web, size_t workers) {
  core::EngineOptions options;
  options.network.worker_threads = workers;
  // Aligned arrivals: every hop lands as one wavefront, maximizing slice
  // width. Real-world jitter narrows slices; parallel_test covers that the
  // answers stay identical either way.
  options.network.latency_jitter = 0;
  options.network.bandwidth_bytes_per_sec = 0;  // latency-only cost model
  core::Engine engine(&web, options);

  const core::TrafficSummary before = engine.TrafficSnapshot();
  std::vector<query::QueryId> ids;
  for (int i = 0; i < kQueries; ++i) {
    auto compiled = disql::CompileDisql(QueryFor(i));
    WEBDIS_CHECK(compiled.ok());
    auto id = engine.Submit(compiled.value(), "u" + std::to_string(i));
    WEBDIS_CHECK(id.ok());
    ids.push_back(id.value());
  }

  // webdis-lint: allow(clock) — wall-clock speedup is the measurement
  const auto start = std::chrono::steady_clock::now();
  engine.network().RunUntilIdle();
  // webdis-lint: allow(clock)
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  for (const query::QueryId& id : ids) {
    const core::RunOutcome outcome = engine.CollectOutcome(id, before);
    r.all_complete = r.all_complete && outcome.completed;
    r.virtual_makespan = std::max(r.virtual_makespan, outcome.completion_time);
    r.results_signature += core::FormatResults(outcome.results);
    r.results_signature += "\n--\n";
  }
  const core::TrafficSummary after = engine.TrafficSnapshot();
  r.messages = after.messages - before.messages;
  r.bytes = after.bytes - before.bytes;
  r.parallel = engine.network().parallel_stats();
  return r;
}

int Main() {
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "P1 — Deterministic parallel stepper: %d concurrent queries, "
      "12 sites (%u hardware threads)\n\n",
      kQueries, cores);

  web::SynthWebOptions web_options;
  web_options.seed = 7;
  web_options.num_sites = 12;
  web_options.docs_per_site = 20;
  web_options.filler_paragraphs = 6;
  web_options.words_per_paragraph = 60;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);

  bench::JsonBenchWriter json("BENCH_PARALLEL.json");
  bench::TablePrinter table({
      "workers", "wall ms", "speedup", "virtual ms", "msgs",
      "occupancy %", "identical",
  });

  double reference_wall = 0;
  double wall_at_4 = 0;
  std::string reference_signature;
  bool all_identical = true;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    RunResult best;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      RunResult r = RunOnce(web, workers);
      WEBDIS_CHECK(r.all_complete);
      if (rep == 0 || r.wall_ms < best.wall_ms) best = std::move(r);
    }
    if (workers == 1) {
      reference_wall = best.wall_ms;
      reference_signature = best.results_signature;
    }
    if (workers == 4) wall_at_4 = best.wall_ms;
    const bool identical = best.results_signature == reference_signature;
    all_identical = all_identical && identical;
    table.AddRow({
        bench::Num(workers),
        bench::Ms(static_cast<SimTime>(best.wall_ms * 1000.0)),
        bench::Ratio(reference_wall, best.wall_ms),
        bench::Ms(best.virtual_makespan),
        bench::Num(best.messages),
        bench::Ratio(best.parallel.Occupancy() * 100.0, 1.0),
        identical ? "yes" : "NO",
    });
    json.Record("p1_parallel", workers, best.wall_ms,
                static_cast<double>(best.virtual_makespan) / 1000.0,
                best.messages, best.bytes);
  }
  table.Print();

  if (!all_identical) {
    std::printf("\nFAIL: results diverged across worker counts\n");
    return 1;
  }
  const double speedup_at_4 =
      wall_at_4 > 0 ? reference_wall / wall_at_4 : 0.0;
  std::printf("\nspeedup at 4 workers: %.2fx\n", speedup_at_4);
  if (cores >= 4 && speedup_at_4 < 2.5) {
    std::printf("FAIL: expected >= 2.5x at 4 workers on %u cores\n", cores);
    return 1;
  }
  if (cores < 4) {
    std::printf(
        "(speedup gate skipped: only %u hardware threads available)\n",
        cores);
  }
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
