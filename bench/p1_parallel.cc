// P1 — multi-core site evaluation at web scale: the same multi-site,
// multi-query workload driven by the legacy loop (workers=0) and the
// time-stepped stepper at 1, 2, 4 and 8 workers, over a 10^5-document lazy
// synthetic web. Virtual time, message counts, and results are identical by
// construction (verified here against the workers=0 reference); the only
// thing allowed to change is the host wall-clock, which is what this
// harness measures. With zero latency jitter and uniform inter-host
// latency, each traversal hop arrives as one wavefront — a wide slice whose
// per-host partitions the stepper fans out across cores. Each run gets a
// fresh lazy web, so first-fetch page materialization (render + parse)
// happens *inside* the measured region, on worker threads — real per-event
// work for the cores to share.
//
// The web itself is the memory story: 100k documents are registered lazily
// (interned ids + captured RNG states, no HTML), and only the documents the
// queries actually touch ever materialize. The at-rest table footprint is
// recorded as bytes_per_document and gated both here and in
// tools/bench_compare.py.
//
// Writes BENCH_PARALLEL.json (JSON lines; see bench::JsonBenchWriter) for
// tools/bench_compare.py to gate CI on wall-clock regressions, the
// workers=1 -> 4 speedup curve (on >= 4-core runners) and the
// bytes-per-document memory ceiling.
#include <chrono>  // webdis-lint: allow(clock) — measuring real time is the point
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

constexpr int kSites = 400;
constexpr int kDocsPerSite = 250;  // 100,000 documents
constexpr int kQueries = 32;
constexpr int kRepetitions = 2;  // best-of-N to damp scheduler noise
constexpr double kSpeedupGateAt4 = 2.0;
constexpr uint64_t kBytesPerDocGate = 1024;

web::SynthWebOptions WebOptions() {
  web::SynthWebOptions options;
  options.seed = 7;
  options.num_sites = kSites;
  options.docs_per_site = kDocsPerSite;
  options.filler_paragraphs = 6;
  options.words_per_paragraph = 60;
  options.lazy_pages = true;
  return options;
}

std::string QueryFor(int i) {
  // Starts spread across the whole web so the query wavefronts overlap on
  // many distinct hosts at once.
  return "select d.url, d.title from document d such that \"" +
         web::SynthUrl((i * 37) % kSites, (i * 11) % kDocsPerSite) +
         "\" (L|G)*3 d where d.title contains \"alpha\"";
}

struct RunResult {
  double wall_ms = 0;
  SimTime virtual_makespan = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  std::string results_signature;
  net::ParallelStats parallel;
  bool all_complete = true;
  size_t materialized = 0;  // documents fetched at least once
};

RunResult RunOnce(size_t workers) {
  // A fresh lazy web per run: every run pays (and may parallelize) the same
  // first-fetch materialization work, keeping worker counts comparable.
  const web::WebGraph web = web::GenerateSynthWeb(WebOptions());
  core::EngineOptions options;
  options.network.worker_threads = workers;
  // Aligned arrivals: every hop lands as one wavefront, maximizing slice
  // width. Real-world jitter narrows slices; parallel_test covers that the
  // answers stay identical either way.
  options.network.latency_jitter = 0;
  options.network.bandwidth_bytes_per_sec = 0;  // latency-only cost model
  core::Engine engine(&web, options);

  const core::TrafficSummary before = engine.TrafficSnapshot();
  std::vector<query::QueryId> ids;
  for (int i = 0; i < kQueries; ++i) {
    auto compiled = disql::CompileDisql(QueryFor(i));
    WEBDIS_CHECK(compiled.ok());
    auto id = engine.Submit(compiled.value(), "u" + std::to_string(i));
    WEBDIS_CHECK(id.ok());
    ids.push_back(id.value());
  }

  // webdis-lint: allow(clock) — wall-clock speedup is the measurement
  const auto start = std::chrono::steady_clock::now();
  engine.network().RunUntilIdle();
  // webdis-lint: allow(clock)
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  for (const query::QueryId& id : ids) {
    const core::RunOutcome outcome = engine.CollectOutcome(id, before);
    r.all_complete = r.all_complete && outcome.completed;
    r.virtual_makespan = std::max(r.virtual_makespan, outcome.completion_time);
    r.results_signature += core::FormatResults(outcome.results);
    r.results_signature += "\n--\n";
  }
  const core::TrafficSummary after = engine.TrafficSnapshot();
  r.messages = after.messages - before.messages;
  r.bytes = after.bytes - before.bytes;
  r.parallel = engine.network().parallel_stats();
  r.materialized = web.num_materialized();
  return r;
}

int Main() {
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "P1 — Deterministic parallel stepper: %d concurrent queries over a "
      "lazy %d-document web (%u hardware threads)\n\n",
      kQueries, kSites * kDocsPerSite, cores);

  bench::JsonBenchWriter json("BENCH_PARALLEL.json");

  // -- Web memory: the at-rest representation, before any fetch. ------------
  uint64_t bytes_per_doc = 0;
  size_t documents = 0;
  {
    const web::WebGraph web = web::GenerateSynthWeb(WebOptions());
    documents = web.num_documents();
    bytes_per_doc = web.ApproxTableBytes() / documents;
    std::printf(
        "web at rest: %zu documents, %zu materialized, "
        "%llu bytes/document (table machinery)\n\n",
        documents, web.num_materialized(),
        static_cast<unsigned long long>(bytes_per_doc));
  }

  bench::TablePrinter table({
      "workers", "wall ms", "speedup", "virtual ms", "msgs",
      "occupancy %", "batches", "serial", "identical",
  });

  double reference_wall = 0;
  double wall_at_4 = 0;
  std::string reference_signature;
  bool all_identical = true;
  size_t materialized_after_run = 0;
  for (size_t workers :
       {size_t{0}, size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    RunResult best;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      RunResult r = RunOnce(workers);
      WEBDIS_CHECK(r.all_complete);
      if (rep == 0 || r.wall_ms < best.wall_ms) best = std::move(r);
    }
    if (workers == 0) {
      reference_signature = best.results_signature;
      materialized_after_run = best.materialized;
    }
    if (workers == 1) reference_wall = best.wall_ms;
    if (workers == 4) wall_at_4 = best.wall_ms;
    const bool identical = best.results_signature == reference_signature;
    all_identical = all_identical && identical;
    table.AddRow({
        bench::Num(workers),
        bench::Ms(static_cast<SimTime>(best.wall_ms * 1000.0)),
        workers >= 1 ? bench::Ratio(reference_wall, best.wall_ms) : "-",
        bench::Ms(best.virtual_makespan),
        bench::Num(best.messages),
        bench::Ratio(best.parallel.Occupancy() * 100.0, 1.0),
        bench::Num(best.parallel.coalesced_batches),
        bench::Num(best.parallel.serial_slices),
        identical ? "yes" : "NO",
    });
    char extra[64];
    std::snprintf(extra, sizeof(extra), ", \"cores\": %u", cores);
    json.Record("p1_parallel", workers, best.wall_ms,
                static_cast<double>(best.virtual_makespan) / 1000.0,
                best.messages, best.bytes, extra);
  }
  table.Print();
  std::printf("\nmaterialized after run: %zu of %zu documents\n",
              materialized_after_run, documents);

  // Memory row: wall_ms is intentionally 0 (nothing timed here) so the
  // generic wall-clock regression gate never fires on it; the real gate is
  // bytes_per_document, enforced below and in bench_compare.py.
  {
    char extra[256];
    std::snprintf(
        extra, sizeof(extra),
        ", \"documents\": %zu, \"bytes_per_document\": %llu, "
        "\"materialized\": %zu, \"peak_rss_bytes\": %llu",
        documents, static_cast<unsigned long long>(bytes_per_doc),
        materialized_after_run,
        static_cast<unsigned long long>(bench::PeakRssBytes()));
    json.Record("p1_web_memory", 0, 0.0, 0.0, 0, 0, extra);
  }

  bool failed = false;
  if (!all_identical) {
    std::printf("\nFAIL: results diverged across worker counts\n");
    failed = true;
  }
  if (bytes_per_doc > kBytesPerDocGate) {
    std::printf(
        "FAIL: %llu bytes/document at rest exceeds the %llu-byte gate\n",
        static_cast<unsigned long long>(bytes_per_doc),
        static_cast<unsigned long long>(kBytesPerDocGate));
    failed = true;
  }
  const double speedup_at_4 =
      wall_at_4 > 0 ? reference_wall / wall_at_4 : 0.0;
  std::printf("speedup at 4 workers: %.2fx\n", speedup_at_4);
  if (cores >= 4 && speedup_at_4 < kSpeedupGateAt4) {
    std::printf("FAIL: expected >= %.1fx at 4 workers on %u cores\n",
                kSpeedupGateAt4, cores);
    failed = true;
  }
  if (cores < 4) {
    std::printf(
        "(speedup gate skipped: only %u hardware threads available)\n",
        cores);
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
