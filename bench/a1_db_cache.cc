// A1 — database-retention ablation (footnote 3 of Section 2.4): "if the
// site expects that a node will receive several queries, it can choose to
// retain the associated database so that the construction cost does not
// have to be paid repeatedly." Runs a stream of ad-hoc queries against the
// same deployment with construction-per-visit (the paper's default purge
// policy) vs retained databases, reporting constructions and cache hits.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

struct Cost {
  uint64_t constructions = 0;
  uint64_t cache_hits = 0;
  bool ok = false;
};

Cost RunStream(bool cache, int queries) {
  web::SynthWebOptions web_options;
  web_options.seed = 99;
  web_options.num_sites = 6;
  web_options.docs_per_site = 8;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);
  core::EngineOptions options;
  options.server.cache_databases = cache;
  core::Engine engine(&web, options);
  Cost cost;
  for (int q = 0; q < queries; ++q) {
    // Rotate the start node so queries overlap but are not identical.
    const std::string disql =
        "select d.url from document d such that \"" +
        web::SynthUrl(q % 3, q % 5) +
        "\" (L|G)*2 d where d.title contains \"alpha\"";
    auto outcome = engine.Run(disql);
    if (!outcome.ok() || !outcome->completed) return cost;
  }
  const server::QueryServerStats stats = engine.AggregateServerStats();
  cost.constructions = stats.db_constructions;
  cost.cache_hits = stats.db_cache_hits;
  cost.ok = true;
  return cost;
}

int Main() {
  std::printf(
      "A1 — Per-node database retention (footnote 3, §2.4)\n"
      "Ad-hoc query stream against one deployment; each visit needs the\n"
      "node's DOCUMENT/ANCHOR/RELINFON database.\n\n");
  bench::TablePrinter table({
      "queries", "constructions (purge)", "constructions (retain)",
      "cache hits (retain)", "constructions saved",
  });
  for (int queries : {1, 4, 8, 16}) {
    const Cost purge = RunStream(false, queries);
    const Cost retain = RunStream(true, queries);
    if (!purge.ok || !retain.ok) {
      std::fprintf(stderr, "run failed at queries=%d\n", queries);
      return 1;
    }
    table.AddRow({
        bench::Num(static_cast<uint64_t>(queries)),
        bench::Num(purge.constructions),
        bench::Num(retain.constructions),
        bench::Num(retain.cache_hits),
        bench::Num(purge.constructions - retain.constructions),
    });
  }
  table.Print();
  std::printf(
      "\nRetention trades memory for repeated-construction savings; the\n"
      "paper's default purges immediately because a single ad-hoc query\n"
      "rarely revisits a node (the log table already suppresses true\n"
      "revisits within one query).\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
