// T4 — traffic-reduction optimizations (Section 3.2 items 3 and 4): one
// clone per destination site (carrying all target nodes) and piggybacked
// result+CHT reports per clone. Ablates each and both, sweeping per-site
// document fan-in so multi-node clones actually occur.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

struct Cost {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  bool ok = false;
  size_t rows = 0;
};

Cost RunOne(const web::WebGraph& web, const std::string& disql,
            bool batch_clones, bool batch_reports) {
  core::EngineOptions options;
  options.server.batch_clones_per_site = batch_clones;
  options.server.batch_reports = batch_reports;
  core::Engine engine(&web, options);
  auto outcome = engine.Run(disql);
  Cost cost;
  if (!outcome.ok() || !outcome->completed) return cost;
  cost.messages = outcome->traffic.messages;
  cost.bytes = outcome->traffic.bytes;
  cost.rows = outcome->TotalRows();
  cost.ok = true;
  return cost;
}

int Main() {
  std::printf(
      "T4 — Message batching ablation (§3.2(3) piggybacked reports,\n"
      "     §3.2(4) one clone per destination site)\n\n");

  bench::TablePrinter table({
      "docs/site", "msgs both", "msgs -clone", "msgs -report", "msgs none",
      "bytes both KB", "bytes none KB", "rows",
  });

  for (int docs : {4, 8, 16, 24}) {
    web::SynthWebOptions web_options;
    web_options.seed = 13;
    web_options.num_sites = 5;
    web_options.docs_per_site = docs;
    web_options.local_links_per_doc = 3;
    web_options.global_links_per_doc = 2;
    const web::WebGraph web = web::GenerateSynthWeb(web_options);
    const std::string disql =
        "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
        "\" (L|G)*2 d where d.title contains \"alpha\"";

    const Cost both = RunOne(web, disql, true, true);
    const Cost no_clone_batch = RunOne(web, disql, false, true);
    const Cost no_report_batch = RunOne(web, disql, true, false);
    const Cost neither = RunOne(web, disql, false, false);
    if (!both.ok || !no_clone_batch.ok || !no_report_batch.ok ||
        !neither.ok || both.rows != neither.rows) {
      std::fprintf(stderr, "MISMATCH at docs=%d\n", docs);
      return 1;
    }
    table.AddRow({
        bench::Num(static_cast<uint64_t>(docs)),
        bench::Num(both.messages),
        bench::Num(no_clone_batch.messages),
        bench::Num(no_report_batch.messages),
        bench::Num(neither.messages),
        bench::Kb(both.bytes),
        bench::Kb(neither.bytes),
        bench::Num(static_cast<uint64_t>(both.rows)),
    });
  }
  table.Print();
  std::printf(
      "\nBoth optimizations reduce message count; answers are identical in\n"
      "all four configurations.\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
