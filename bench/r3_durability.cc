// R3 — durability under crash-restart (PROTOCOL.md §8): the university
// query while each server independently crashes with probability 1% / 5%
// per run, crashing mid-flight and restarting only after every
// retransmission timer has given up. Compares three recovery modes over
// identical crash schedules:
//   volatile      — no storage; crashed queues are gone, deadline GC
//                   degrades the answer to an explicit partial.
//   snapshot      — periodic checkpoints only (persist.wal_enabled=false):
//                   state between checkpoints is still lost.
//   snapshot+wal  — checkpoints plus the write-ahead log with the
//                   ack-after-append rule: every acked clone survives.
// Measures response time (recovery latency), how many runs stay bit-exact
// (completed-query delta), and what the log costs in appended records.
// Emits one JSON line per (mode, crash rate) cell to BENCH_DURABILITY.json
// for the bench_compare wall-clock gate.
#include <chrono>  // webdis-lint: allow(clock) — wall time for bench_compare
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/engine.h"
#include "server/query_server.h"
#include "web/university.h"

namespace webdis {
namespace {

enum class Mode { kVolatile, kSnapshotOnly, kSnapshotWal };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kVolatile: return "volatile";
    case Mode::kSnapshotOnly: return "snapshot";
    case Mode::kSnapshotWal: return "snapshot+wal";
  }
  return "?";
}

core::EngineOptions ModeOptions(Mode mode) {
  core::EngineOptions options;
  options.server.retry.enabled = true;
  options.server.retry.initial_timeout = 100 * kMillisecond;
  options.server.retry.max_timeout = 400 * kMillisecond;
  options.server.retry.max_attempts = 4;
  options.client.retry = options.server.retry;
  options.client.entry_deadline = 10 * kSecond;
  // Admission control gives every server a real pending queue — the state
  // the §8 machinery exists to protect.
  options.server.admission.max_pending = 16;
  options.server.admission.service_time = 25 * kMillisecond;
  switch (mode) {
    case Mode::kVolatile:
      break;
    case Mode::kSnapshotOnly:
      options.server.persist.enabled = true;
      options.server.persist.wal_enabled = false;
      options.server.persist.snapshot_every_clones = 1;
      break;
    case Mode::kSnapshotWal:
      options.server.persist.enabled = true;
      options.server.persist.wal_enabled = true;
      options.server.persist.snapshot_every_clones = 2;
      options.server.persist.wal_compact_bytes = 4096;
      break;
  }
  return options;
}

struct CellSummary {
  int runs = 0;
  int exact_runs = 0;
  int partial_runs = 0;
  int crashes = 0;
  SimTime total_response = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t wal_appends = 0;
  uint64_t snapshots = 0;
  uint64_t recovered_clones = 0;
  uint64_t replayed = 0;
  double wall_ms = 0;
};

int Main() {
  web::UniversityOptions uni_options;
  uni_options.seed = 17;
  uni_options.departments = 3;
  uni_options.labs_per_department = 3;
  const web::UniversityWeb uni = web::GenerateUniversityWeb(uni_options);
  const std::vector<std::string> hosts = uni.web.Hosts();

  constexpr int kSeedsPerCell = 12;
  const int crash_rates[] = {1, 5};

  std::printf(
      "R3 — Durability: university query under random server crashes\n"
      "(each server crashes with the given probability per run, downtime\n"
      "850-1400 ms > the whole 700 ms retransmission window; %d seeded\n"
      "schedules per cell, identical across modes)\n\n",
      kSeedsPerCell);

  bench::TablePrinter table({
      "mode", "crash %", "response ms", "exact", "partial", "crashes",
      "recovered", "replayed", "snaps", "wal recs", "msgs",
  });

  bench::JsonBenchWriter json("BENCH_DURABILITY.json");
  for (const Mode mode :
       {Mode::kVolatile, Mode::kSnapshotOnly, Mode::kSnapshotWal}) {
    for (const int pct : crash_rates) {
      CellSummary sum;
      // webdis-lint: allow(clock) — wall time feeds the bench gate
      const auto wall_start = std::chrono::steady_clock::now();
      for (int seed = 1; seed <= kSeedsPerCell; ++seed) {
        core::Engine engine(&uni.web, ModeOptions(mode));
        // The crash schedule depends only on (seed, pct): all three modes
        // see byte-identical failures.
        Rng schedule(static_cast<uint64_t>(seed) * 6151 +
                     static_cast<uint64_t>(pct));
        for (const std::string& host : hosts) {
          if (!schedule.Bernoulli(pct / 100.0)) continue;
          server::QueryServer* qs = engine.server_for(host);
          if (qs == nullptr) continue;
          ++sum.crashes;
          const SimDuration down =
              schedule.UniformRange(40, 200) * kMillisecond;
          const SimDuration up =
              down + schedule.UniformRange(850, 1400) * kMillisecond;
          engine.network().ScheduleAfter(down, [qs] { qs->Crash(); });
          engine.network().ScheduleAfter(up, [qs] { (void)qs->Restart(); });
        }
        auto outcome = engine.Run(uni.convener_disql);
        if (!outcome.ok() || !outcome->completed) {
          std::fprintf(stderr, "failed: mode=%s pct=%d seed=%d\n",
                       ModeName(mode), pct, seed);
          return 1;
        }
        ++sum.runs;
        const bool degraded = outcome->partial || outcome->budget_exhausted ||
                              outcome->fallback_node_count > 0;
        sum.exact_runs += degraded ? 0 : 1;
        sum.partial_runs += outcome->partial ? 1 : 0;
        sum.total_response += outcome->completion_time - outcome->submit_time;
        sum.messages += outcome->traffic.messages;
        sum.bytes += outcome->traffic.bytes;
        sum.wal_appends += outcome->server_stats.wal_records_appended;
        sum.snapshots += outcome->server_stats.snapshots_written;
        sum.recovered_clones += outcome->server_stats.recovered_clones;
        sum.replayed += outcome->server_stats.replayed_wal_records;
      }
      // webdis-lint: allow(clock)
      const auto wall_end = std::chrono::steady_clock::now();
      sum.wall_ms =
          std::chrono::duration<double, std::milli>(wall_end - wall_start)
              .count();
      const auto runs = static_cast<uint64_t>(sum.runs);
      table.AddRow({
          ModeName(mode),
          bench::Num(static_cast<uint64_t>(pct)),
          bench::Ms(sum.total_response / runs),
          bench::Num(static_cast<uint64_t>(sum.exact_runs)),
          bench::Num(static_cast<uint64_t>(sum.partial_runs)),
          bench::Num(static_cast<uint64_t>(sum.crashes)),
          bench::Num(sum.recovered_clones),
          bench::Num(sum.replayed),
          bench::Num(sum.snapshots),
          bench::Num(sum.wal_appends),
          bench::Num(sum.messages / runs),
      });
      // Row key for bench_compare: workload carries the mode, "workers"
      // carries the crash rate (the schema's integer slot).
      json.Record(std::string("r3_") + ModeName(mode),
                  static_cast<size_t>(pct), sum.wall_ms,
                  static_cast<double>(sum.total_response / runs) / 1000.0,
                  sum.messages, sum.bytes);
    }
  }
  table.Print();

  std::printf(
      "\nThe volatile column pays for every crash with deadline-GC partials;\n"
      "snapshots recover whatever a checkpoint happened to cover; the WAL's\n"
      "ack-after-append rule recovers every acked clone, so crash rate\n"
      "mostly stops costing answers and starts costing only response time\n"
      "(the downtime itself) and log appends.\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
