// T2 — recomputation cascades (Section 3.1): on highly cross-linked webs,
// clones revisit nodes along many paths; without the Node-query Log Table
// every revisit is recomputed AND re-forwarded ("mirror clones chasing
// previously processed clones"), so the waste cascades. Sweeps link density
// and compares evaluations, messages and duplicate rows with the log table
// on and off. Answers are identical in both modes.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

struct Cost {
  uint64_t evaluations = 0;
  uint64_t clones = 0;
  uint64_t messages = 0;
  uint64_t duplicate_rows = 0;
  size_t rows = 0;
  bool ok = false;
};

Cost RunOne(const web::WebGraph& web, const std::string& disql, bool dedup) {
  core::EngineOptions options;
  options.server.dedup_enabled = dedup;
  core::Engine engine(&web, options);
  auto outcome = engine.Run(disql);
  Cost cost;
  if (!outcome.ok() || !outcome->completed) return cost;
  cost.evaluations = outcome->server_stats.node_queries_evaluated;
  cost.clones = outcome->server_stats.clones_received;
  cost.messages = outcome->traffic.messages;
  cost.duplicate_rows = outcome->client_stats.duplicate_rows_filtered;
  cost.rows = outcome->TotalRows();
  cost.ok = true;
  return cost;
}

int Main() {
  std::printf(
      "T2 — Log-table dedup vs recomputation cascade (link density sweep)\n"
      "Query: start (L|G)*3 q[title~alpha]; bounded PRE, cyclic web\n\n");

  bench::TablePrinter table({
      "links/doc", "evals ON", "evals OFF", "waste", "msgs ON", "msgs OFF",
      "dup rows OFF", "rows",
  });

  for (int links : {1, 2, 3, 4, 6, 8}) {
    web::SynthWebOptions web_options;
    web_options.seed = 7;
    web_options.num_sites = 6;
    web_options.docs_per_site = 8;
    web_options.local_links_per_doc = links;
    web_options.global_links_per_doc = (links + 1) / 2;
    const web::WebGraph web = web::GenerateSynthWeb(web_options);
    const std::string disql =
        "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
        "\" (L|G)*3 d where d.title contains \"alpha\"";

    const Cost on = RunOne(web, disql, true);
    const Cost off = RunOne(web, disql, false);
    if (!on.ok || !off.ok || on.rows != off.rows) {
      std::fprintf(stderr, "MISMATCH at links=%d\n", links);
      return 1;
    }
    table.AddRow({
        bench::Num(static_cast<uint64_t>(links)),
        bench::Num(on.evaluations),
        bench::Num(off.evaluations),
        bench::Ratio(static_cast<double>(off.evaluations),
                     static_cast<double>(on.evaluations)),
        bench::Num(on.messages),
        bench::Num(off.messages),
        bench::Num(off.duplicate_rows),
        bench::Num(static_cast<uint64_t>(on.rows)),
    });
  }
  table.Print();
  std::printf(
      "\n'waste' = evaluations OFF / ON. The gap widens with density: each\n"
      "undetected duplicate re-forwards, multiplying downstream work.\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
