// G1 — the paper's three motivating applications (Section 1 and §1.2) at
// university scale, each executed by query shipping and by the centralized
// data-shipping comparator:
//   gather   — collect every lab convener across all departments
//              (the Example-Query-2 pattern, whole-university scope)
//   sitemap  — extract every hyperlink of every department site
//   linkscan — collect all anchors for floating-link checking
// Scales the number of departments and reports bytes and virtual time.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/university.h"

namespace webdis {
namespace {

struct AppRun {
  uint64_t qs_bytes = 0;
  uint64_t ds_bytes = 0;
  SimTime qs_ms = 0;
  SimTime ds_ms = 0;
  size_t rows = 0;
  bool ok = false;
};

AppRun RunApp(const web::WebGraph& web, const std::string& disql) {
  AppRun run;
  auto compiled = disql::CompileDisql(disql);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 compiled.status().ToString().c_str());
    return run;
  }
  core::Engine engine(&web);
  auto qs = engine.RunCompiled(compiled.value());
  if (!qs.ok() || !qs->completed) return run;
  auto ds = core::RunDataShippingBaseline(web, compiled.value());
  if (!ds.ok()) return run;
  size_t ds_rows = 0;
  for (const relational::ResultSet& rs : ds->outcome.results) {
    ds_rows += rs.rows.size();
  }
  if (ds_rows != qs->TotalRows()) {
    std::fprintf(stderr, "ANSWER MISMATCH: %zu vs %zu\n", qs->TotalRows(),
                 ds_rows);
    return run;
  }
  run.qs_bytes = qs->traffic.bytes;
  run.ds_bytes = ds->traffic.bytes;
  run.qs_ms = qs->completion_time - qs->submit_time;
  run.ds_ms = ds->outcome.finish_time - ds->outcome.start_time;
  run.rows = qs->TotalRows();
  run.ok = true;
  return run;
}

int Main() {
  std::printf(
      "G1 — The paper's motivating applications, query shipping (QS) vs\n"
      "     data shipping (DS), scaling the university size\n\n");

  bench::TablePrinter table({
      "depts", "docs", "app", "rows", "QS KB", "DS KB", "DS/QS",
      "QS ms", "DS ms",
  });
  for (int departments : {2, 4, 8}) {
    web::UniversityOptions options;
    options.seed = 11;
    options.departments = departments;
    options.labs_per_department = 3;
    const web::UniversityWeb uni = web::GenerateUniversityWeb(options);

    const std::string gather = uni.convener_disql;
    const std::string sitemap =
        "select a.base, a.href, a.ltype\n"
        "from document d such that \"" + uni.root_url + "\" G.(L*2) d,\n"
        "     anchor a\n";
    const std::string linkscan =
        "select a.base, a.href\n"
        "from document d such that \"" + uni.root_url + "\" (G|L)*3 d,\n"
        "     anchor a\n";

    const struct {
      const char* name;
      const std::string* disql;
    } apps[] = {{"gather", &gather}, {"sitemap", &sitemap},
                {"linkscan", &linkscan}};
    for (const auto& app : apps) {
      const AppRun run = RunApp(uni.web, *app.disql);
      if (!run.ok) {
        std::fprintf(stderr, "failed: %s depts=%d\n", app.name, departments);
        return 1;
      }
      table.AddRow({
          bench::Num(static_cast<uint64_t>(departments)),
          bench::Num(uni.web.num_documents()),
          app.name,
          bench::Num(static_cast<uint64_t>(run.rows)),
          bench::Kb(run.qs_bytes),
          bench::Kb(run.ds_bytes),
          bench::Ratio(static_cast<double>(run.ds_bytes),
                       static_cast<double>(run.qs_bytes)),
          bench::Ms(run.qs_ms),
          bench::Ms(run.ds_ms),
      });
    }
  }
  table.Print();
  std::printf(
      "\nAll three applications return identical answers both ways; the\n"
      "byte and latency gaps are the intro's argument for processing at\n"
      "the web servers themselves.\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
