// T3 — completion detection, three ways (Section 2.7 + Related Work):
//  * the CHT protocol (the paper's design): the user site learns completion
//    the instant the last report lands; entry lists piggyback on reports.
//  * ack-tree termination (the paper's Related Work [4]): every clone acks
//    its parent after its forwarding subtree finishes; completion = root
//    acks. Extra messages, and the user learns completion one ack-cascade
//    after the last result.
//  * timeout (the strawman §2.7 rejects): always waits the full timeout.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

struct Mode {
  SimTime last_result = 0;
  SimTime done = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  size_t rows = 0;
  bool ok = false;
};

Mode RunMode(const web::WebGraph& web, const std::string& disql,
             int which /*0=cht,1=ack,2=timeout*/, SimDuration timeout) {
  core::EngineOptions options;
  if (which == 1) options.client.ack_tree_termination = true;
  if (which == 2) {
    options.client.use_cht = false;
    options.completion_timeout = timeout;
  }
  core::Engine engine(&web, options);
  auto outcome = engine.Run(disql);
  Mode mode;
  if (!outcome.ok() || !outcome->completed) return mode;
  mode.last_result = outcome->last_report_time;
  mode.done = outcome->completion_time;
  mode.messages = outcome->traffic.messages;
  mode.bytes = outcome->traffic.bytes;
  mode.rows = outcome->TotalRows();
  mode.ok = true;
  return mode;
}

int Main() {
  const SimDuration timeout = 5 * kSecond;
  std::printf(
      "T3 — Completion detection: CHT (paper) vs ack-tree (Related Work "
      "[4]) vs timeout strawman\n(timeout = 5000 ms)\n\n");

  bench::TablePrinter table({
      "depth", "mode", "done ms", "lag after last result ms", "msgs",
      "KB", "rows",
  });

  for (int depth : {2, 3, 4, 5}) {
    web::SynthWebOptions web_options;
    web_options.seed = 42;
    web_options.num_sites = 8;
    web_options.docs_per_site = 8;
    const web::WebGraph web = web::GenerateSynthWeb(web_options);
    const std::string disql =
        "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
        "\" (L|G)*" + std::to_string(depth) +
        " d where d.title contains \"alpha\"";

    const char* names[] = {"CHT", "ack-tree", "timeout"};
    size_t rows0 = 0;
    for (int which = 0; which < 3; ++which) {
      const Mode mode = RunMode(web, disql, which, timeout);
      if (!mode.ok) {
        std::fprintf(stderr, "failed: depth=%d mode=%s\n", depth,
                     names[which]);
        return 1;
      }
      if (which == 0) {
        rows0 = mode.rows;
      } else if (mode.rows != rows0) {
        std::fprintf(stderr, "ANSWER MISMATCH: depth=%d mode=%s\n", depth,
                     names[which]);
        return 1;
      }
      const SimTime lag =
          mode.done > mode.last_result ? mode.done - mode.last_result : 0;
      table.AddRow({
          bench::Num(static_cast<uint64_t>(depth)),
          names[which],
          bench::Ms(mode.done),
          bench::Ms(lag),
          bench::Num(mode.messages),
          bench::Kb(mode.bytes),
          bench::Num(static_cast<uint64_t>(mode.rows)),
      });
    }
  }
  table.Print();
  std::printf(
      "\nCHT: zero lag, zero extra messages (entries ride on reports).\n"
      "Ack-tree: fewer report bytes but one ack message per clone, and the\n"
      "user learns completion only after the ack cascade drains back up the\n"
      "forwarding tree. Timeout: always the full timeout late, and unlike\n"
      "the other two it can also fire early and truncate results.\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
