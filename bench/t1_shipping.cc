// T1 — the headline comparison (Section 1 / 3.2): query shipping (WEBDIS)
// vs data shipping (centralized WebSQL-style download-and-evaluate) on the
// same synthetic webs and the same two-stage query. Reports bytes moved,
// messages, virtual response time, and user-site load, sweeping web size.
//
// Expected shape (the paper's claim): the data-shipping engine downloads
// every document on the traversal, so its byte volume grows with total
// document volume, while query shipping moves only compact clones and
// result rows — a widening gap as the web grows.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

int Main() {
  std::printf(
      "T1 — Query shipping vs data shipping (web size sweep)\n"
      "Query: start (L|G)*2 q1[title~alpha] then G.(L*1) q2[body~beta]\n\n");

  bench::TablePrinter table({
      "sites", "docs", "web KB", "QS KB", "DS KB", "DS/QS bytes",
      "QS msgs", "DS msgs", "QS ms", "DS ms", "rows",
  });

  for (int sites : {4, 8, 16, 32, 64}) {
    web::SynthWebOptions web_options;
    web_options.seed = 1000 + static_cast<uint64_t>(sites);
    web_options.num_sites = sites;
    web_options.docs_per_site = 12;
    web_options.filler_paragraphs = 4;
    const web::WebGraph web = web::GenerateSynthWeb(web_options);

    const std::string disql =
        "select d1.url, d2.url\n"
        "from document d1 such that \"" +
        web::SynthUrl(0, 0) +
        "\" (L|G)*2 d1,\n"
        "where d1.title contains \"alpha\"\n"
        "     document d2 such that d1 G.(L*1) d2,\n"
        "     relinfon r such that r.delimiter = \"hr\",\n"
        "where r.text contains \"beta\"\n";
    auto compiled = disql::CompileDisql(disql);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   compiled.status().ToString().c_str());
      return 1;
    }

    core::Engine engine(&web);
    auto qs = engine.RunCompiled(compiled.value());
    if (!qs.ok() || !qs->completed) {
      std::fprintf(stderr, "query-shipping run failed (sites=%d)\n", sites);
      return 1;
    }
    auto ds = core::RunDataShippingBaseline(web, compiled.value());
    if (!ds.ok()) {
      std::fprintf(stderr, "data-shipping run failed (sites=%d)\n", sites);
      return 1;
    }

    table.AddRow({
        bench::Num(static_cast<uint64_t>(sites)),
        bench::Num(web.num_documents()),
        bench::Kb(web.TotalHtmlBytes()),
        bench::Kb(qs->traffic.bytes),
        bench::Kb(ds->traffic.bytes),
        bench::Ratio(static_cast<double>(ds->traffic.bytes),
                     static_cast<double>(qs->traffic.bytes)),
        bench::Num(qs->traffic.messages),
        bench::Num(ds->traffic.messages),
        bench::Ms(qs->completion_time - qs->submit_time),
        bench::Ms(ds->outcome.finish_time - ds->outcome.start_time),
        bench::Num(qs->TotalRows()),
    });

    // Sanity: identical answers.
    size_t ds_rows = 0;
    for (const relational::ResultSet& rs : ds->outcome.results) {
      ds_rows += rs.rows.size();
    }
    if (ds_rows != qs->TotalRows()) {
      std::fprintf(stderr,
                   "ANSWER MISMATCH at sites=%d: QS %zu rows vs DS %zu\n",
                   sites, qs->TotalRows(), ds_rows);
      return 1;
    }
  }
  table.Print();
  std::printf(
      "\nQS = WEBDIS query shipping, DS = centralized data shipping.\n"
      "User-site load: DS parses and evaluates every fetched document "
      "locally;\nQS does no document processing at the user site at all.\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
