// R1 — recovery overhead (PROTOCOL.md "Failure handling"): the same
// university query at 0/1/5/10 % message loss with at-least-once delivery
// and CHT deadline GC enabled. Measures what fault tolerance costs on the
// wire (retransmissions, acks) and in response time, and how often loss
// degrades the answer to an explicit partial outcome. Each row aggregates
// several seeded fault schedules; every run terminates by construction —
// retries cap out and the deadline GC completes the query, never a hang.
// Emits one machine-readable JSON line per drop rate after the table.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "net/fault.h"
#include "web/university.h"

namespace webdis {
namespace {

struct RateSummary {
  int drop_pct = 0;
  int runs = 0;
  int partial_runs = 0;
  SimTime total_response = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t retries = 0;
  uint64_t exhausted = 0;
  uint64_t suppressed = 0;
  uint64_t entries_gc = 0;
  size_t rows = 0;
};

int Main() {
  web::UniversityOptions uni_options;
  uni_options.seed = 17;
  uni_options.departments = 3;
  uni_options.labs_per_department = 3;
  const web::UniversityWeb uni = web::GenerateUniversityWeb(uni_options);

  constexpr int kSeedsPerRate = 5;
  const int drop_rates[] = {0, 1, 5, 10};

  std::printf(
      "R1 — Recovery overhead: university query under uniform message "
      "loss\n(at-least-once delivery: 100 ms initial timeout, x2 backoff "
      "capped at 400 ms,\n4 attempts; CHT entry deadline 10 s; %d seeded "
      "schedules per rate)\n\n",
      kSeedsPerRate);

  bench::TablePrinter table({
      "drop %", "response ms", "msgs", "KB", "retries", "exhausted",
      "dup absorbed", "entries GC", "partial", "rows",
  });

  std::vector<RateSummary> summaries;
  for (int pct : drop_rates) {
    RateSummary sum;
    sum.drop_pct = pct;
    for (int seed = 1; seed <= kSeedsPerRate; ++seed) {
      core::EngineOptions options;
      options.server.retry.enabled = true;
      options.server.retry.initial_timeout = 100 * kMillisecond;
      options.server.retry.max_timeout = 400 * kMillisecond;
      options.server.retry.max_attempts = 4;
      options.client.retry = options.server.retry;
      options.client.entry_deadline = 10 * kSecond;
      core::Engine engine(&uni.web, options);

      net::FaultPlan plan(static_cast<uint64_t>(seed));
      for (net::MessageType type :
           {net::MessageType::kWebQuery, net::MessageType::kReport,
            net::MessageType::kDeliveryAck}) {
        net::FaultPlan::Rule rule;
        rule.type = type;
        rule.drop_prob = pct / 100.0;
        plan.AddRule(rule);
      }
      engine.network().SetFaultPlan(&plan);

      auto outcome = engine.Run(uni.convener_disql);
      if (!outcome.ok() || !outcome->completed) {
        std::fprintf(stderr, "failed: drop=%d%% seed=%d\n", pct, seed);
        return 1;
      }
      ++sum.runs;
      sum.partial_runs += outcome->partial ? 1 : 0;
      sum.total_response += outcome->completion_time - outcome->submit_time;
      sum.messages += outcome->traffic.messages;
      sum.bytes += outcome->traffic.bytes;
      sum.retries += outcome->server_stats.retries +
                     outcome->client_retry.retries;
      sum.exhausted += outcome->server_stats.retry_exhausted +
                       outcome->client_retry.exhausted;
      sum.suppressed += outcome->server_stats.redeliveries_suppressed +
                        outcome->client_stats.redeliveries_suppressed;
      sum.entries_gc += outcome->client_stats.entries_gc;
      sum.rows += outcome->TotalRows();
    }
    const auto runs = static_cast<uint64_t>(sum.runs);
    table.AddRow({
        bench::Num(static_cast<uint64_t>(pct)),
        bench::Ms(sum.total_response / runs),
        bench::Num(sum.messages / runs),
        bench::Kb(sum.bytes / runs),
        bench::Num(sum.retries / runs),
        bench::Num(sum.exhausted / runs),
        bench::Num(sum.suppressed / runs),
        bench::Num(sum.entries_gc / runs),
        bench::Num(static_cast<uint64_t>(sum.partial_runs)),
        bench::Num(sum.rows / runs),
    });
    summaries.push_back(sum);
  }
  table.Print();

  std::printf(
      "\nLoss is absorbed by retransmission: response time grows with the\n"
      "retry timeouts actually hit, wire traffic grows with the ack\n"
      "envelope plus retransmitted copies, and only schedules that exhaust\n"
      "every attempt degrade to an explicit partial answer via deadline "
      "GC.\n\n");

  for (const RateSummary& s : summaries) {
    const auto runs = static_cast<uint64_t>(s.runs);
    std::printf(
        "{\"bench\":\"r1_recovery\",\"drop_pct\":%d,\"runs\":%d,"
        "\"avg_response_ms\":%.1f,\"avg_messages\":%llu,"
        "\"avg_bytes\":%llu,\"avg_retries\":%llu,\"avg_exhausted\":%llu,"
        "\"avg_dup_absorbed\":%llu,\"avg_entries_gc\":%llu,"
        "\"partial_runs\":%d,\"avg_rows\":%llu}\n",
        s.drop_pct, s.runs,
        static_cast<double>(s.total_response) / 1000.0 / s.runs,
        static_cast<unsigned long long>(s.messages / runs),
        static_cast<unsigned long long>(s.bytes / runs),
        static_cast<unsigned long long>(s.retries / runs),
        static_cast<unsigned long long>(s.exhausted / runs),
        static_cast<unsigned long long>(s.suppressed / runs),
        static_cast<unsigned long long>(s.entries_gc / runs),
        s.partial_runs,
        static_cast<unsigned long long>(s.rows / runs));
  }
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
