// M1 — microbenchmarks of every substrate (google-benchmark): HTML parsing,
// the per-node database constructor, node-query evaluation, PRE operations,
// DISQL compilation, and clone (de)serialization. These are the per-hop
// costs every query-server pays.
#include <benchmark/benchmark.h>

#include "disql/compiler.h"
#include "html/parser.h"
#include "pre/log_equivalence.h"
#include "pre/pre.h"
#include "relational/eval.h"
#include "serialize/encoder.h"
#include "server/db_constructor.h"
#include "web/pagegen.h"

namespace webdis {
namespace {

std::string MakePageHtml(int paragraphs, int links) {
  web::PageSpec spec;
  spec.title = "benchmark page with alpha in the title";
  for (int i = 0; i < paragraphs; ++i) {
    spec.paragraphs.push_back(
        "a reasonably long filler paragraph mentioning research systems "
        "networks and the occasional beta keyword for good measure");
  }
  for (int i = 0; i < links; ++i) {
    spec.links.push_back({"/doc" + std::to_string(i), "local link"});
    spec.links.push_back(
        {"http://site" + std::to_string(i) + ".example/x", "global link"});
  }
  spec.hr_blocks = {"CONVENER someone important", "MEMBERS many people"};
  return web::RenderHtml(spec);
}

void BM_HtmlParse(benchmark::State& state) {
  const std::string html =
      MakePageHtml(static_cast<int>(state.range(0)), 8);
  const html::Url url = html::ParseUrl("http://h/p").value();
  for (auto _ : state) {
    html::ParsedDocument doc = html::ParseDocument(url, html);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(html.size()));
}
BENCHMARK(BM_HtmlParse)->Arg(2)->Arg(8)->Arg(32);

void BM_BuildNodeDatabase(benchmark::State& state) {
  const std::string html = MakePageHtml(8, 16);
  const html::Url url = html::ParseUrl("http://h/p").value();
  const html::ParsedDocument doc = html::ParseDocument(url, html);
  for (auto _ : state) {
    relational::Database db = server::BuildNodeDatabase(doc);
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_BuildNodeDatabase);

void BM_NodeQueryEval(benchmark::State& state) {
  const std::string html = MakePageHtml(8, 16);
  const html::Url url = html::ParseUrl("http://h/p").value();
  const relational::Database db =
      server::BuildNodeDatabase(html::ParseDocument(url, html));
  auto compiled = disql::CompileDisql(
      "select d.url, r.text from document d such that \"http://h/p\" N d, "
      "relinfon r such that r.delimiter = \"hr\", "
      "where r.text contains \"convener\"");
  const query::NodeQuery& nq = compiled->web_query.remaining_queries[0];
  for (auto _ : state) {
    auto rs = relational::Execute(nq.select, db);
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_NodeQueryEval);

void BM_NodeQueryEvalPushdown(benchmark::State& state) {
  // Anchor-heavy page: pushdown filters the 64-anchor ANCHOR table before
  // the document x anchor x relinfon cross product.
  const std::string html = MakePageHtml(8, 32);
  const html::Url url = html::ParseUrl("http://h/p").value();
  const relational::Database db =
      server::BuildNodeDatabase(html::ParseDocument(url, html));
  auto compiled = disql::CompileDisql(
      "select a.href, r.text from document d such that \"http://h/p\" N d, "
      "anchor a such that a.ltype = \"G\", "
      "relinfon r such that r.delimiter = \"hr\", "
      "where r.text contains \"convener\"");
  query::NodeQuery nq = compiled->web_query.remaining_queries[0].Clone();
  nq.select.pushdown = state.range(0) != 0;
  for (auto _ : state) {
    auto rs = relational::Execute(nq.select, db);
    benchmark::DoNotOptimize(rs);
  }
  state.SetLabel(nq.select.pushdown ? "pushdown" : "naive");
}
BENCHMARK(BM_NodeQueryEvalPushdown)->Arg(1)->Arg(0);

void BM_PreDerive(benchmark::State& state) {
  const pre::Pre p = pre::Pre::Parse("(L | G)*8.(N | G.L*4)").value();
  for (auto _ : state) {
    pre::Pre d = p.Derive(html::LinkType::kLocal);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_PreDerive);

void BM_PreParse(benchmark::State& state) {
  for (auto _ : state) {
    auto p = pre::Pre::Parse("N | G.(L*4) | (I | L)*2.G");
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PreParse);

void BM_PreLogCompare(benchmark::State& state) {
  const pre::Pre incoming = pre::Pre::Parse("L*6.G").value();
  const pre::Pre logged = pre::Pre::Parse("L*2.G").value();
  for (auto _ : state) {
    pre::LogDecision d = pre::ComparePreForLog(incoming, logged);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_PreLogCompare);

void BM_DisqlCompile(benchmark::State& state) {
  const std::string disql =
      "select d0.url, d1.url, r.text\n"
      "from document d0 such that \"http://csa.iisc.ernet.in\" L d0,\n"
      "where d0.title contains \"lab\"\n"
      "    document d1 such that d0 G.(L*1) d1,\n"
      "    relinfon r such that r.delimiter = \"hr\",\n"
      "where (r.text contains \"convener\")\n";
  for (auto _ : state) {
    auto compiled = disql::CompileDisql(disql);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_DisqlCompile);

void BM_CloneSerialize(benchmark::State& state) {
  auto compiled = disql::CompileDisql(
      "select d0.url, d1.url, r.text\n"
      "from document d0 such that \"http://csa.iisc.ernet.in\" L d0,\n"
      "where d0.title contains \"lab\"\n"
      "    document d1 such that d0 G.(L*1) d1,\n"
      "    relinfon r such that r.delimiter = \"hr\",\n"
      "where (r.text contains \"convener\")\n");
  query::WebQuery clone = compiled->web_query.Clone();
  clone.dest_urls = {"http://a/x", "http://a/y", "http://a/z"};
  for (auto _ : state) {
    serialize::Encoder enc;
    clone.EncodeTo(&enc);
    benchmark::DoNotOptimize(enc.data());
  }
  serialize::Encoder enc;
  clone.EncodeTo(&enc);
  state.SetLabel("clone wire size " + std::to_string(enc.size()) + " B");
}
BENCHMARK(BM_CloneSerialize);

void BM_CloneDeserialize(benchmark::State& state) {
  auto compiled = disql::CompileDisql(
      "select d.url from document d such that \"http://a/\" (L|G)*3 d "
      "where d.title contains \"alpha\"");
  query::WebQuery clone = compiled->web_query.Clone();
  clone.dest_urls = {"http://a/x", "http://a/y"};
  serialize::Encoder enc;
  clone.EncodeTo(&enc);
  const std::vector<uint8_t> bytes = enc.Release();
  for (auto _ : state) {
    serialize::Decoder dec(bytes);
    query::WebQuery out;
    Status status = query::WebQuery::DecodeFrom(&dec, &out);
    benchmark::DoNotOptimize(status);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_CloneDeserialize);

}  // namespace
}  // namespace webdis

BENCHMARK_MAIN();
