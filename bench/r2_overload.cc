// R2 — overload protection & graceful degradation (PROTOCOL.md §7): a hot
// StartNode site is driven past its admission limit by a burst of identical
// queries while a light, site-local query runs elsewhere on the same
// deployment. Three rounds:
//
//   baseline   — no admission limits: reference latency for both queries;
//   hot/backoff— admission-limited hot site, tracked senders: shed clones
//                are NACKed (Overloaded), retried on the overload backoff
//                class, and every query still completes exactly;
//   hot/shed   — same burst with no retry layer: shedding is terminal but
//                explicit — BudgetExceeded outcomes naming the lost nodes,
//                the CHT fully drains, nothing hangs;
//
// then a breaker epilogue: a crashed host trips its per-destination circuit
// breakers, a second run short-circuits against the open breaker, and after
// the host returns and the open interval elapses, half-open probes recover
// it with no operator action. The headline check: the light query's latency
// under overload stays within 2x its unloaded baseline (the hot site's
// queue does not leak into unrelated traffic). Deterministic under
// SimNetwork. Emits one machine-readable JSON line per round.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "disql/compiler.h"
#include "html/url.h"
#include "web/university.h"

namespace webdis {
namespace {

constexpr int kBurst = 6;

core::EngineOptions TrackedOptions() {
  core::EngineOptions options;
  options.server.retry.enabled = true;
  options.server.retry.initial_timeout = 100 * kMillisecond;
  options.server.retry.max_timeout = 400 * kMillisecond;
  options.server.retry.max_attempts = 8;
  options.server.retry.overload_initial_timeout = 300 * kMillisecond;
  options.server.retry.overload_max_timeout = 2 * kSecond;
  options.client.retry = options.server.retry;
  options.client.entry_deadline = 30 * kSecond;
  return options;
}

server::QueryServerOptions HotOverride(const core::EngineOptions& base) {
  server::QueryServerOptions hot = base.server;
  hot.admission.max_pending = 2;
  hot.admission.service_time = 20 * kMillisecond;
  return hot;
}

struct RoundResult {
  SimTime hot_response = 0;    // mean over the burst
  SimTime light_response = 0;  // the bystander query
  int completed = 0;
  int degraded = 0;  // budget_exhausted outcomes
  size_t exact_rows = 0;
  server::QueryServerStats stats;
  uint64_t client_overload_nacks = 0;
};

/// Submits `kBurst` hot queries plus one light query concurrently, drives
/// the network to quiescence, and collects everything.
RoundResult RunRound(const web::WebGraph* web,
                     const core::EngineOptions& options,
                     const disql::CompiledQuery& hot,
                     const disql::CompiledQuery& light,
                     size_t hot_reference_rows) {
  core::Engine engine(web, options);
  const core::TrafficSummary before = engine.TrafficSnapshot();
  std::vector<query::QueryId> hot_ids;
  for (int i = 0; i < kBurst; ++i) {
    auto id = engine.Submit(hot);
    if (!id.ok()) continue;
    hot_ids.push_back(id.value());
  }
  auto light_id = engine.Submit(light);
  engine.network().RunUntilIdle();

  RoundResult r;
  for (const query::QueryId& id : hot_ids) {
    core::RunOutcome outcome = engine.CollectOutcome(id, before);
    r.completed += outcome.completed ? 1 : 0;
    r.degraded += outcome.budget_exhausted ? 1 : 0;
    if (!outcome.budget_exhausted && outcome.TotalRows() == hot_reference_rows)
      ++r.exact_rows;
    r.hot_response += outcome.completion_time - outcome.submit_time;
  }
  r.hot_response /= hot_ids.size();
  if (light_id.ok()) {
    core::RunOutcome outcome = engine.CollectOutcome(light_id.value(), before);
    r.completed += outcome.completed ? 1 : 0;
    r.light_response = outcome.completion_time - outcome.submit_time;
  }
  r.stats = engine.AggregateServerStats();
  r.client_overload_nacks = engine.user_site().retry_stats().overload_nacks;
  return r;
}

int Main() {
  web::UniversityOptions uni_options;
  uni_options.seed = 23;
  uni_options.departments = 3;
  uni_options.labs_per_department = 2;
  const web::UniversityWeb uni = web::GenerateUniversityWeb(uni_options);
  auto root = html::ParseUrl(uni.root_url);
  if (!root.ok()) return 1;

  auto hot = disql::CompileDisql(uni.convener_disql);
  if (!hot.ok()) return 1;

  // The bystander: a purely site-local walk (L edges never leave the host)
  // on a quiet site the burst does not touch.
  std::string quiet_host;
  for (const std::string& host : uni.web.Hosts()) {
    if (host != root->host) quiet_host = host;
  }
  const std::vector<std::string> quiet_urls = uni.web.UrlsOnHost(quiet_host);
  if (quiet_urls.empty()) return 1;
  const std::string light_disql =
      "select d.url from document d such that \"" + quiet_urls.front() +
      "\" L*2 d";
  auto light = disql::CompileDisql(light_disql);
  if (!light.ok()) return 1;

  size_t hot_reference_rows = 0;
  {
    core::Engine engine(&uni.web);
    auto outcome = engine.RunCompiled(hot.value());
    if (!outcome.ok() || !outcome->completed) return 1;
    hot_reference_rows = outcome->TotalRows();
  }

  std::printf(
      "R2 — Overload protection: %d-query burst against an admission-"
      "limited\nStartNode site (queue cap 2, 20 ms service time) plus one "
      "site-local\nbystander query on an unrelated host.\n\n",
      kBurst);

  // Round 1: unloaded baseline (tracked senders, no admission limit).
  const RoundResult base =
      RunRound(&uni.web, TrackedOptions(), hot.value(), light.value(),
               hot_reference_rows);

  // Round 2: hot site + tracked senders — Overloaded NACKs, lossless.
  core::EngineOptions tracked = TrackedOptions();
  tracked.server_overrides[root->host] = HotOverride(tracked);
  const RoundResult backoff = RunRound(&uni.web, tracked, hot.value(),
                                       light.value(), hot_reference_rows);

  // Round 3: hot site, no retry layer — terminal but explicit shedding.
  core::EngineOptions untracked;
  untracked.fallback_processing = false;
  untracked.server_overrides[root->host] = HotOverride(untracked);
  const RoundResult shed = RunRound(&uni.web, untracked, hot.value(),
                                    light.value(), hot_reference_rows);

  bench::TablePrinter table({
      "round", "hot ms", "light ms", "completed", "exact", "degraded",
      "nacks", "shed", "evicted", "queue peak",
  });
  struct Row {
    const char* name;
    const RoundResult* r;
  };
  const Row rows[] = {
      {"baseline", &base}, {"hot/backoff", &backoff}, {"hot/shed", &shed}};
  for (const Row& row : rows) {
    table.AddRow({
        row.name,
        bench::Ms(row.r->hot_response),
        bench::Ms(row.r->light_response),
        bench::Num(static_cast<uint64_t>(row.r->completed)),
        bench::Num(row.r->exact_rows),
        bench::Num(static_cast<uint64_t>(row.r->degraded)),
        bench::Num(row.r->stats.overload_nacks_sent),
        bench::Num(row.r->stats.clones_shed),
        bench::Num(row.r->stats.clones_evicted),
        bench::Num(row.r->stats.queue_peak),
    });
  }
  table.Print();

  // Every burst query terminates in every round: NACK+backoff keeps the
  // answer exact, terminal shedding degrades it explicitly — never a hang.
  const int expected = kBurst + 1;
  if (base.completed != expected || backoff.completed != expected ||
      shed.completed != expected) {
    std::fprintf(stderr, "FAIL: a query did not complete\n");
    return 1;
  }
  if (backoff.client_overload_nacks == 0 || backoff.exact_rows != kBurst) {
    std::fprintf(stderr, "FAIL: backoff round not lossless-via-NACK\n");
    return 1;
  }
  if (shed.degraded == 0 || shed.stats.clones_shed == 0) {
    std::fprintf(stderr, "FAIL: shed round shed nothing\n");
    return 1;
  }
  // The headline: overload at the hot site does not leak into the
  // site-local bystander.
  if (backoff.light_response > 2 * base.light_response ||
      shed.light_response > 2 * base.light_response) {
    std::fprintf(stderr, "FAIL: bystander latency exceeded 2x baseline\n");
    return 1;
  }

  // Breaker epilogue: crash -> trip -> short-circuit -> probe -> recover.
  core::EngineOptions breaker_options;
  breaker_options.server.breaker.enabled = true;
  breaker_options.server.breaker.failure_threshold = 1;
  breaker_options.server.breaker.open_timeout = 2 * kSecond;
  breaker_options.server.breaker.open_timeout_jitter = 0;
  core::Engine engine(&uni.web, breaker_options);
  std::string victim;
  for (const std::string& host : engine.participating_hosts()) {
    if (host != root->host) victim = host;
  }
  server::QueryServer* victim_qs = engine.server_for(victim);
  if (victim_qs == nullptr) return 1;
  victim_qs->Crash();
  auto trip_run = engine.RunCompiled(hot.value());
  auto open_run = engine.RunCompiled(hot.value());
  if (!trip_run.ok() || !open_run.ok()) return 1;
  if (!victim_qs->Restart().ok()) return 1;
  engine.network().ScheduleAfter(3 * kSecond, [] {});
  engine.network().RunUntilIdle();
  auto recovered_run = engine.RunCompiled(hot.value());
  if (!recovered_run.ok()) return 1;
  const server::QueryServerStats bstats = engine.AggregateServerStats();
  std::printf(
      "\nBreaker epilogue (crashed host %s, threshold 1, open 2 s):\n"
      "  trips %llu, short-circuits %llu, probes %llu, recoveries %llu;\n"
      "  recovered run rows: %zu (reference %zu)\n",
      victim.c_str(), static_cast<unsigned long long>(bstats.breaker_trips),
      static_cast<unsigned long long>(bstats.breaker_short_circuits),
      static_cast<unsigned long long>(bstats.breaker_probes),
      static_cast<unsigned long long>(bstats.breaker_recoveries),
      recovered_run->TotalRows(), hot_reference_rows);
  if (bstats.breaker_trips == 0 || bstats.breaker_short_circuits == 0 ||
      bstats.breaker_probes == 0 || bstats.breaker_recoveries == 0 ||
      recovered_run->TotalRows() != hot_reference_rows) {
    std::fprintf(stderr, "FAIL: breaker lifecycle incomplete\n");
    return 1;
  }

  std::printf(
      "\nThe admission queue converts a burst into bounded work: tracked\n"
      "senders absorb shedding via the Overloaded backoff class (exact\n"
      "answers, later), untracked senders get explicit BudgetExceeded\n"
      "verdicts (degraded answers, named nodes, no hang), and the\n"
      "site-local bystander never pays for the hot site's queue.\n\n");

  for (const Row& row : rows) {
    std::printf(
        "{\"bench\":\"r2_overload\",\"round\":\"%s\",\"hot_ms\":%.1f,"
        "\"light_ms\":%.1f,\"completed\":%d,\"exact\":%zu,\"degraded\":%d,"
        "\"overload_nacks_sent\":%llu,\"client_overload_nacks\":%llu,"
        "\"clones_shed\":%llu,\"clones_evicted\":%llu,\"queue_peak\":%llu,"
        "\"budget_expired\":%llu,\"rows_truncated\":%llu}\n",
        row.name, static_cast<double>(row.r->hot_response) / 1000.0,
        static_cast<double>(row.r->light_response) / 1000.0, row.r->completed,
        row.r->exact_rows, row.r->degraded,
        static_cast<unsigned long long>(row.r->stats.overload_nacks_sent),
        static_cast<unsigned long long>(row.r->client_overload_nacks),
        static_cast<unsigned long long>(row.r->stats.clones_shed),
        static_cast<unsigned long long>(row.r->stats.clones_evicted),
        static_cast<unsigned long long>(row.r->stats.queue_peak),
        static_cast<unsigned long long>(row.r->stats.budget_expired_clones),
        static_cast<unsigned long long>(row.r->stats.rows_truncated));
  }
  std::printf(
      "{\"bench\":\"r2_overload\",\"round\":\"breaker\","
      "\"breaker_trips\":%llu,\"breaker_short_circuits\":%llu,"
      "\"breaker_probes\":%llu,\"breaker_recoveries\":%llu,"
      "\"recovered_rows\":%zu}\n",
      static_cast<unsigned long long>(bstats.breaker_trips),
      static_cast<unsigned long long>(bstats.breaker_short_circuits),
      static_cast<unsigned long long>(bstats.breaker_probes),
      static_cast<unsigned long long>(bstats.breaker_recoveries),
      recovered_run->TotalRows());
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
