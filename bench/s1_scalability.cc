// S1 — scalability of the distributed scheme: sites x fan-out x PRE bound
// sweep, plus the §7.1 partial-participation migration path (fraction of
// sites running WEBDIS from 0% to 100%, with centralized fallback for the
// rest).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "web/synth.h"

namespace webdis {
namespace {

std::string QueryFor(int depth) {
  return "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
         "\" (L|G)*" + std::to_string(depth) +
         " d where d.title contains \"alpha\"";
}

int Main() {
  std::printf("S1a — Site-count sweep (depth 3, fanout 3+2)\n\n");
  {
    bench::TablePrinter table({
        "sites", "docs", "evals", "clones", "msgs", "KB", "resp ms",
        "CHT max", "rows",
    });
    for (int sites : {2, 4, 8, 16, 32}) {
      web::SynthWebOptions web_options;
      web_options.seed = 5;
      web_options.num_sites = sites;
      web_options.docs_per_site = 10;
      const web::WebGraph web = web::GenerateSynthWeb(web_options);
      core::Engine engine(&web);
      auto outcome = engine.Run(QueryFor(3));
      if (!outcome.ok() || !outcome->completed) {
        std::fprintf(stderr, "failed at sites=%d\n", sites);
        return 1;
      }
      table.AddRow({
          bench::Num(static_cast<uint64_t>(sites)),
          bench::Num(web.num_documents()),
          bench::Num(outcome->server_stats.node_queries_evaluated),
          bench::Num(outcome->server_stats.clones_received),
          bench::Num(outcome->traffic.messages),
          bench::Kb(outcome->traffic.bytes),
          bench::Ms(outcome->completion_time - outcome->submit_time),
          bench::Num(outcome->cht_max_active),
          bench::Num(outcome->TotalRows()),
      });
    }
    table.Print();
  }

  std::printf("\nS1b — PRE bound sweep (8 sites)\n\n");
  {
    bench::TablePrinter table({
        "depth", "evals", "msgs", "KB", "resp ms", "CHT max", "rows",
    });
    web::SynthWebOptions web_options;
    web_options.seed = 5;
    web_options.num_sites = 8;
    web_options.docs_per_site = 10;
    const web::WebGraph web = web::GenerateSynthWeb(web_options);
    for (int depth : {1, 2, 3, 4, 5, 6}) {
      core::Engine engine(&web);
      auto outcome = engine.Run(QueryFor(depth));
      if (!outcome.ok() || !outcome->completed) {
        std::fprintf(stderr, "failed at depth=%d\n", depth);
        return 1;
      }
      table.AddRow({
          bench::Num(static_cast<uint64_t>(depth)),
          bench::Num(outcome->server_stats.node_queries_evaluated),
          bench::Num(outcome->traffic.messages),
          bench::Kb(outcome->traffic.bytes),
          bench::Ms(outcome->completion_time - outcome->submit_time),
          bench::Num(outcome->cht_max_active),
          bench::Num(outcome->TotalRows()),
      });
    }
    table.Print();
  }

  std::printf(
      "\nS1c — Participation sweep (§7.1 migration path; 8 sites, depth 3,\n"
      "      non-participants served by centralized fallback)\n\n");
  {
    bench::TablePrinter table({
        "participation", "servers", "fallback nodes", "fetch KB",
        "clone+report KB", "rows",
    });
    web::SynthWebOptions web_options;
    web_options.seed = 5;
    web_options.num_sites = 8;
    web_options.docs_per_site = 10;
    const web::WebGraph web = web::GenerateSynthWeb(web_options);
    size_t full_rows = 0;
    for (double fraction : {1.0, 0.75, 0.5, 0.25, 0.0}) {
      core::EngineOptions options;
      options.participation_fraction = fraction;
      options.participation_seed = 9;
      // The user naturally submits from a participating StartNode site.
      options.forced_participants = {web::SynthHost(0)};
      core::Engine engine(&web, options);
      auto outcome = engine.Run(QueryFor(3));
      if (!outcome.ok() || !outcome->completed) {
        std::fprintf(stderr, "failed at fraction=%.2f\n", fraction);
        return 1;
      }
      if (fraction == 1.0) full_rows = outcome->TotalRows();
      if (outcome->TotalRows() != full_rows) {
        std::fprintf(stderr,
                     "ANSWER MISMATCH at fraction=%.2f: %zu vs %zu\n",
                     fraction, outcome->TotalRows(), full_rows);
        return 1;
      }
      char frac_text[16];
      std::snprintf(frac_text, sizeof(frac_text), "%.0f%%",
                    fraction * 100.0);
      table.AddRow({
          frac_text,
          bench::Num(engine.participating_hosts().size()),
          bench::Num(outcome->fallback_node_count),
          bench::Kb(outcome->traffic.fetch_bytes),
          bench::Kb(outcome->traffic.query_bytes +
                    outcome->traffic.report_bytes),
          bench::Num(outcome->TotalRows()),
      });
    }
    table.Print();
    std::printf(
        "\nAnswers are identical at every participation level; traffic\n"
        "shifts from compact clones/reports to bulk document fetches as\n"
        "participation drops — the paper's migration-path story.\n");
  }
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
