// R4 — dynamic-web churn (PROTOCOL.md §10): the university query while a
// seeded mutation plan edits pages, rewires links, spawns sites and retires
// whole hosts mid-run, at increasing mutation rates. Measures verdict
// quality — how many visited nodes the final classification calls fresh /
// stale-consistent / superseded, how many sites retire or are epoch-gated
// out, and how many runs stay exactly equal to the frozen-web answer — and
// the message overhead churn adds (site-retired NACKs, retried transfers,
// re-dispatched reports). Every run terminates with a verdict: staleness is
// classified, never silently served. Emits one JSON line per mutation rate
// to BENCH_CHURN.json for the bench_compare wall-clock gate.
#include <chrono>  // webdis-lint: allow(clock) — wall time for bench_compare
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/engine.h"
#include "html/url.h"
#include "web/mutation.h"
#include "web/university.h"

namespace webdis {
namespace {

std::set<std::string> AllRowKeys(
    const std::vector<relational::ResultSet>& results) {
  std::set<std::string> keys;
  for (const relational::ResultSet& rs : results) {
    for (const relational::Tuple& row : rs.rows) {
      std::string key = Join(rs.column_labels, ",") + ":";
      for (const relational::Value& v : row) key += v.ToString() + "|";
      keys.insert(std::move(key));
    }
  }
  return keys;
}

core::EngineOptions ChurnOptions() {
  core::EngineOptions options;
  options.server.retry.enabled = true;
  options.server.retry.initial_timeout = 100 * kMillisecond;
  options.server.retry.max_timeout = 400 * kMillisecond;
  options.server.retry.max_attempts = 4;
  options.client.retry = options.server.retry;
  options.client.entry_deadline = 10 * kSecond;
  // Retired hosts stop their HTTP servers, so there is nothing for the
  // data-shipping fallback to fetch — keep degradation named, not refetched.
  options.fallback_processing = false;
  return options;
}

struct CellSummary {
  int runs = 0;
  int exact_runs = 0;
  uint64_t mutations_applied = 0;
  uint64_t fresh = 0;
  uint64_t stale = 0;
  uint64_t superseded = 0;
  uint64_t retired_sites = 0;
  uint64_t epoch_gated = 0;
  uint64_t retired_nacks = 0;
  SimTime total_response = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  double wall_ms = 0;
};

int Main() {
  web::UniversityOptions uni_options;
  uni_options.seed = 17;
  uni_options.departments = 3;
  uni_options.labs_per_department = 3;

  constexpr int kSeedsPerCell = 10;
  const int rates[] = {0, 2, 6, 12};

  // Frozen-web reference answer (identical for every regeneration).
  std::set<std::string> reference;
  {
    const web::UniversityWeb uni = web::GenerateUniversityWeb(uni_options);
    core::Engine engine(&uni.web);
    auto outcome = engine.Run(uni.convener_disql);
    if (!outcome.ok() || !outcome->completed) {
      std::fprintf(stderr, "reference run failed\n");
      return 1;
    }
    reference = AllRowKeys(outcome->results);
  }

  std::printf(
      "R4 — Churn: university query under seeded mid-run web mutation\n"
      "(page edits, link adds/removes, site spawns and whole-site\n"
      "retirements land 10-250 ms into the run; %d seeded schedules per\n"
      "rate; every answer is classified fresh/stale/superseded per node —\n"
      "never a silent torn read)\n\n",
      kSeedsPerCell);

  bench::TablePrinter table({
      "mutations/run", "response ms", "exact", "fresh", "stale", "supersd",
      "retired", "gated", "nacks", "msgs",
  });

  bench::JsonBenchWriter json("BENCH_CHURN.json");
  for (const int rate : rates) {
    CellSummary sum;
    // webdis-lint: allow(clock) — wall time feeds the bench gate
    const auto wall_start = std::chrono::steady_clock::now();
    for (int seed = 1; seed <= kSeedsPerCell; ++seed) {
      // Mutations are destructive: every run mutates a fresh regeneration.
      web::UniversityWeb uni = web::GenerateUniversityWeb(uni_options);
      auto start = html::ParseUrl(uni.root_url);
      if (!start.ok()) return 1;

      web::MutationPlan::RandomOptions mutation_options;
      mutation_options.seed = static_cast<uint64_t>(seed) * 7919 +
                              static_cast<uint64_t>(rate);
      mutation_options.edits = (rate + 1) / 2;
      mutation_options.link_adds = rate / 4;
      mutation_options.link_removes = rate / 12;
      mutation_options.spawns = rate / 6;
      mutation_options.retires = rate / 4;
      mutation_options.window_start = 10 * kMillisecond;
      mutation_options.window_end = 250 * kMillisecond;
      mutation_options.protected_hosts = {core::Engine::kClientHost,
                                          start->host};
      web::MutationPlan plan =
          web::MutationPlan::Random(uni.web, mutation_options);

      core::Engine engine(&uni.web, ChurnOptions());
      engine.InstallMutationPlan(&uni.web, &plan);
      auto outcome = engine.Run(uni.convener_disql);
      if (!outcome.ok() || !outcome->completed) {
        std::fprintf(stderr, "failed: rate=%d seed=%d\n", rate, seed);
        return 1;
      }
      ++sum.runs;
      sum.mutations_applied +=
          plan.stats().pages_edited + plan.stats().links_added +
          plan.stats().links_removed + plan.stats().sites_spawned +
          plan.stats().sites_retired;
      const bool degraded = outcome->partial ||
                            !outcome->retired_sites.empty() ||
                            outcome->fallback_node_count > 0;
      if (!degraded && AllRowKeys(outcome->results) == reference) {
        ++sum.exact_runs;
      }
      sum.fresh += outcome->fresh_nodes;
      sum.stale += outcome->stale_consistent_nodes;
      sum.superseded += outcome->superseded_nodes;
      sum.retired_sites += outcome->retired_sites.size();
      sum.epoch_gated += outcome->epoch_gated_nodes.size();
      sum.retired_nacks += outcome->server_stats.site_retired_nacks_sent;
      sum.total_response += outcome->completion_time - outcome->submit_time;
      sum.messages += outcome->traffic.messages;
      sum.bytes += outcome->traffic.bytes;
    }
    // webdis-lint: allow(clock)
    const auto wall_end = std::chrono::steady_clock::now();
    sum.wall_ms =
        std::chrono::duration<double, std::milli>(wall_end - wall_start)
            .count();
    const auto runs = static_cast<uint64_t>(sum.runs);
    table.AddRow({
        bench::Num(static_cast<uint64_t>(rate)),
        bench::Ms(sum.total_response / runs),
        bench::Num(static_cast<uint64_t>(sum.exact_runs)),
        bench::Num(sum.fresh),
        bench::Num(sum.stale),
        bench::Num(sum.superseded),
        bench::Num(sum.retired_sites),
        bench::Num(sum.epoch_gated),
        bench::Num(sum.retired_nacks),
        bench::Num(sum.messages / runs),
    });
    // Row key for bench_compare: "workers" carries the mutation rate (the
    // schema's integer slot), as r3 does with the crash rate.
    json.Record("r4_churn", static_cast<size_t>(rate), sum.wall_ms,
                static_cast<double>(sum.total_response / runs) / 1000.0,
                sum.messages, sum.bytes);
  }
  table.Print();

  std::printf(
      "\nRate 0 is the frozen-web control: every run exact, every node\n"
      "fresh. As the mutation rate grows, answers stay exact for their\n"
      "stamped versions while the verdict reclassifies nodes stale /\n"
      "superseded, retirements convert to named outcomes via terminal\n"
      "SiteRetired NACKs, and the message column shows what churn costs in\n"
      "retries and re-dispatched reports.\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
