#ifndef WEBDIS_BENCH_BENCH_UTIL_H_
#define WEBDIS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/clock.h"

namespace webdis::bench {

/// Minimal aligned-table printer for the experiment harnesses: every bench
/// prints the rows/series its table or figure reports, paper-style.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const std::string& h : headers_) widths_.push_back(h.size());
  }

  void AddRow(std::vector<std::string> cells) {
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    PrintRow(headers_);
    std::string rule;
    for (size_t i = 0; i < headers_.size(); ++i) {
      rule += std::string(widths_[i], '-');
      rule += "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const std::vector<std::string>& row : rows_) {
      PrintRow(row);
    }
  }

 private:
  void PrintRow(const std::vector<std::string>& cells) const {
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
      line += cells[i];
      if (i < widths_.size() && widths_[i] > cells[i].size()) {
        line += std::string(widths_[i] - cells[i].size(), ' ');
      }
      line += "  ";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders simulated microseconds as milliseconds with 1 decimal.
inline std::string Ms(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(t) / 1000.0);
  return buf;
}

/// Renders a byte count as KB with 1 decimal.
inline std::string Kb(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(bytes) / 1024.0);
  return buf;
}

inline std::string Num(uint64_t v) { return std::to_string(v); }

/// Ratio with 1 decimal, e.g. "12.3x".
inline std::string Ratio(double num, double den) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", den == 0 ? 0.0 : num / den);
  return buf;
}

/// One "VmX:  <n> kB" field from /proc/self/status, in bytes; 0 on
/// platforms without procfs (memory gates disable themselves there).
inline uint64_t ProcStatusBytes(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const size_t field_len = std::strlen(field);
  char line[256];
  unsigned long long kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      std::sscanf(line + field_len, " %llu", &kb);
      break;
    }
  }
  std::fclose(f);
  return static_cast<uint64_t>(kb) * 1024;
}

/// Resident set size right now.
inline uint64_t CurrentRssBytes() { return ProcStatusBytes("VmRSS:"); }

/// Peak resident set size of this process ("high-water mark") — the
/// peak_rss_bytes field the memory-gated benches record.
inline uint64_t PeakRssBytes() { return ProcStatusBytes("VmHWM:"); }

/// Machine-readable benchmark output: one JSON object per line, written next
/// to the human table so tools/bench_compare.py can gate CI on wall-clock
/// regressions. Fixed schema — bench_compare keys rows on
/// (workload, workers) and compares wall_ms.
class JsonBenchWriter {
 public:
  explicit JsonBenchWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "w")) {
    if (file_ == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    }
  }
  ~JsonBenchWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }
  JsonBenchWriter(const JsonBenchWriter&) = delete;
  JsonBenchWriter& operator=(const JsonBenchWriter&) = delete;

  /// `extra` is raw JSON appended to the row after the fixed fields, e.g.
  /// ", \"cache_hit_rate\": 0.42" — empty for the plain schema.
  void Record(const std::string& workload, size_t workers, double wall_ms,
              double virtual_ms, uint64_t messages, uint64_t bytes,
              const std::string& extra = "") {
    if (file_ == nullptr) return;
    std::fprintf(
        file_,
        "{\"workload\": \"%s\", \"workers\": %zu, \"wall_ms\": %.3f, "
        "\"virtual_ms\": %.3f, \"messages\": %llu, \"bytes\": %llu%s}\n",
        workload.c_str(), workers, wall_ms, virtual_ms,
        static_cast<unsigned long long>(messages),
        static_cast<unsigned long long>(bytes), extra.c_str());
    std::fflush(file_);
  }

 private:
  std::FILE* file_;
};

}  // namespace webdis::bench

#endif  // WEBDIS_BENCH_BENCH_UTIL_H_
