// T6 — the superset multiple-rewrite (Section 3.1.1): when a clone arrives
// at a node with PRE A*m·B and the log holds A*n·B (n < m), only the
// difference must be processed, via the rewrite A*m·B -> A·A*(m-1)·B.
// Builds a local chain site, delivers an L*n·G clone followed by an L*m·G
// clone to the head node, and reports evaluations saved vs recomputing and
// vs naive dropping (which would lose answers). Sweeps the (m, n) grid.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "serialize/encoder.h"
#include "web/graph.h"
#include "web/pagegen.h"

namespace webdis {
namespace {

/// A chain of depth local pages on one host, each linking to the next, each
/// ending in a global link to an answer page that matches q.
web::WebGraph BuildChainWeb(int depth) {
  web::WebGraph web;
  for (int i = 0; i <= depth; ++i) {
    web::PageSpec spec;
    spec.title = "chain " + std::to_string(i);
    if (i < depth) {
      spec.links.push_back(
          {"/n" + std::to_string(i + 1), "next"});
    }
    spec.links.push_back(
        {"http://answers.example/a" + std::to_string(i), "answer"});
    const Status status = web.AddDocument(
        "http://chain.example/n" + std::to_string(i),
        web::RenderHtml(spec));
    if (!status.ok()) std::abort();
  }
  for (int i = 0; i <= depth; ++i) {
    web::PageSpec spec;
    spec.title = "terminal alpha " + std::to_string(i);
    const Status status = web.AddDocument(
        "http://answers.example/a" + std::to_string(i),
        web::RenderHtml(spec));
    if (!status.ok()) std::abort();
  }
  return web;
}

struct Outcome {
  uint64_t evaluations = 0;
  uint64_t rewrites = 0;
  uint64_t duplicates = 0;
  size_t rows = 0;
  bool ok = false;
};

/// Submits L*n·G then L*m·G as two *separate* user queries is wrong (log
/// keys include the query id) — instead we submit one query whose PRE is the
/// alternation picking both bounds through different alternatives arriving
/// at different times. Simpler and faithful: submit the n-bounded query
/// first, then the m-bounded query under the SAME query id by replaying a
/// crafted clone. Easiest correct setup: one query whose StartNode set sends
/// the same head node two clones with different rem PREs cannot be expressed
/// in DISQL — so we drive the server directly through the engine's network.
Outcome RunPair(int n, int m, bool dedup) {
  const int depth = 8;
  web::WebGraph web = BuildChainWeb(depth);
  core::EngineOptions options;
  options.server.dedup_enabled = dedup;
  // The replayed clone below arrives after the first traversal completed;
  // keep the result socket open so it is processed rather than passively
  // terminated.
  options.client.close_socket_on_completion = false;
  core::Engine engine(&web, options);

  // Build the compiled query with PRE L*n·G, submit, run to completion.
  const auto disql_for = [](int bound) {
    return "select d.url from document d such that "
           "\"http://chain.example/n0\" L*" +
           std::to_string(bound) +
           ".G d where d.title contains \"alpha\"";
  };
  auto first = disql::CompileDisql(disql_for(n));
  auto second = disql::CompileDisql(disql_for(m));
  Outcome outcome;
  if (!first.ok() || !second.ok()) return outcome;

  auto id1 = engine.Submit(first.value());
  if (!id1.ok()) return outcome;
  engine.network().RunUntilIdle();

  // Replay the wider query under the SAME query id so the log table sees
  // the paper's scenario (same query revisiting with a wider bound).
  query::WebQuery clone = second->web_query.Clone();
  clone.id = id1.value();
  clone.dest_urls = {"http://chain.example/n0"};
  serialize::Encoder enc;
  clone.EncodeTo(&enc);
  const Status send = engine.network().Send(
      net::Endpoint{"user.site", id1->reply_port},
      net::Endpoint{"chain.example", server::kQueryServerPort},
      net::MessageType::kWebQuery, enc.Release());
  if (!send.ok()) return outcome;
  engine.network().RunUntilIdle();

  const client::UserSite::QueryRun* run = engine.user_site().Find(id1.value());
  const server::QueryServerStats stats = engine.AggregateServerStats();
  outcome.evaluations = stats.node_queries_evaluated;
  outcome.rewrites = stats.superset_rewrites;
  outcome.duplicates = stats.duplicates_dropped;
  outcome.rows = 0;
  for (const relational::ResultSet& rs : run->results) {
    outcome.rows += rs.rows.size();
  }
  outcome.ok = true;
  return outcome;
}

int Main() {
  std::printf(
      "T6 — Superset PRE rewrite (log entry L*n.G, new clone L*m.G)\n"
      "Chain web: head -L-> ... -L-> depth 8, each node -G-> its answer\n\n");

  bench::TablePrinter table({
      "n (logged)", "m (incoming)", "evals dedup ON", "evals dedup OFF",
      "saved", "rewrites", "dups dropped", "rows ON", "rows OFF",
  });
  for (const auto& [n, m] : std::vector<std::pair<int, int>>{
           {1, 3}, {2, 4}, {2, 6}, {4, 6}, {3, 3}, {5, 2}}) {
    const Outcome on = RunPair(n, m, true);
    const Outcome off = RunPair(n, m, false);
    if (!on.ok || !off.ok) {
      std::fprintf(stderr, "run failed at n=%d m=%d\n", n, m);
      return 1;
    }
    if (on.rows != off.rows) {
      std::fprintf(stderr, "ANSWER MISMATCH at n=%d m=%d: %zu vs %zu\n", n,
                   m, on.rows, off.rows);
      return 1;
    }
    table.AddRow({
        bench::Num(static_cast<uint64_t>(n)),
        bench::Num(static_cast<uint64_t>(m)),
        bench::Num(on.evaluations),
        bench::Num(off.evaluations),
        bench::Num(off.evaluations - on.evaluations),
        bench::Num(on.rewrites),
        bench::Num(on.duplicates),
        bench::Num(static_cast<uint64_t>(on.rows)),
        bench::Num(static_cast<uint64_t>(off.rows)),
    });
  }
  table.Print();
  std::printf(
      "\nm <= n: the incoming clone is a pure duplicate (dropped, 0 extra\n"
      "evals). m > n: the rewrite processes only the difference — answers\n"
      "match the recompute-everything baseline with fewer evaluations.\n");
  return 0;
}

}  // namespace
}  // namespace webdis

int main() { return webdis::Main(); }
