#include <gtest/gtest.h>

#include "html/entities.h"
#include "html/parser.h"
#include "html/tokenizer.h"
#include "html/url.h"

namespace webdis::html {
namespace {

// -- URL ----------------------------------------------------------------------

TEST(UrlTest, ParseFullUrl) {
  auto url = ParseUrl("http://www.csa.iisc.ernet.in/Labs#top");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->scheme, "http");
  EXPECT_EQ(url->host, "www.csa.iisc.ernet.in");
  EXPECT_EQ(url->path, "/Labs");
  EXPECT_EQ(url->fragment, "top");
  EXPECT_EQ(url->ToString(), "http://www.csa.iisc.ernet.in/Labs#top");
  EXPECT_EQ(url->ResourceKey(), "http://www.csa.iisc.ernet.in/Labs");
}

TEST(UrlTest, HostOnlyGetsRootPath) {
  auto url = ParseUrl("http://dsl.serc.iisc.ernet.in");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->path, "/");
}

TEST(UrlTest, SchemeDefaultsToHttp) {
  auto url = ParseUrl("example.com/page");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->scheme, "http");
  EXPECT_EQ(url->host, "example.com");
}

TEST(UrlTest, EmptyAndHostlessRejected) {
  EXPECT_FALSE(ParseUrl("").ok());
  EXPECT_FALSE(ParseUrl("   ").ok());
  EXPECT_FALSE(ParseUrl("http:///path").ok());
}

TEST(UrlTest, PathNormalization) {
  auto url = ParseUrl("http://h/a/b/../c/./d");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->path, "/a/c/d");
  auto url2 = ParseUrl("http://h/../..");
  ASSERT_TRUE(url2.ok());
  EXPECT_EQ(url2->path, "/");
}

TEST(UrlTest, TildePathsSupported) {
  auto url = ParseUrl("http://www2.csa.iisc.ernet.in/~gang/lab");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->path, "/~gang/lab");
}

struct ResolveCase {
  const char* base;
  const char* href;
  const char* expected;  // ResourceKey + optional #fragment
};

class ResolveUrlTest : public ::testing::TestWithParam<ResolveCase> {};

TEST_P(ResolveUrlTest, Resolves) {
  const ResolveCase& c = GetParam();
  auto base = ParseUrl(c.base);
  ASSERT_TRUE(base.ok());
  auto resolved = ResolveUrl(base.value(), c.href);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_EQ(resolved->ToString(), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ResolveUrlTest,
    ::testing::Values(
        ResolveCase{"http://a/b/c", "http://x/y", "http://x/y"},
        ResolveCase{"http://a/b/c", "/root", "http://a/root"},
        ResolveCase{"http://a/b/c", "sibling", "http://a/b/sibling"},
        ResolveCase{"http://a/b/c", "../up", "http://a/up"},
        ResolveCase{"http://a/b/c", "#frag", "http://a/b/c#frag"},
        ResolveCase{"http://a/b/", "leaf", "http://a/b/leaf"},
        ResolveCase{"http://a/", "d/e", "http://a/d/e"},
        ResolveCase{"http://a/b/c", "d#f", "http://a/b/d#f"}));

TEST(UrlTest, ResolveEmptyHrefRejected) {
  auto base = ParseUrl("http://a/b");
  ASSERT_TRUE(base.ok());
  EXPECT_FALSE(ResolveUrl(base.value(), "").ok());
}

TEST(ClassifyLinkTest, InteriorLocalGlobal) {
  const Url base = ParseUrl("http://a/page").value();
  EXPECT_EQ(ClassifyLink(base, ParseUrl("http://a/page#sec").value()),
            LinkType::kInterior);
  EXPECT_EQ(ClassifyLink(base, ParseUrl("http://a/other").value()),
            LinkType::kLocal);
  EXPECT_EQ(ClassifyLink(base, ParseUrl("http://b/page").value()),
            LinkType::kGlobal);
}

TEST(LinkTypeTest, SymbolRoundTrip) {
  for (LinkType t : {LinkType::kInterior, LinkType::kLocal,
                     LinkType::kGlobal, LinkType::kNull}) {
    auto parsed = LinkTypeFromSymbol(LinkTypeSymbol(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), t);
  }
  EXPECT_FALSE(LinkTypeFromSymbol('X').ok());
}

// -- Entities -------------------------------------------------------------------

TEST(EntitiesTest, NamedEntities) {
  EXPECT_EQ(DecodeEntities("a &amp; b &lt;c&gt; &quot;d&quot;"),
            "a & b <c> \"d\"");
  EXPECT_EQ(DecodeEntities("x&nbsp;y"), "x y");
}

TEST(EntitiesTest, NumericEntities) {
  EXPECT_EQ(DecodeEntities("&#65;&#66;"), "AB");
  EXPECT_EQ(DecodeEntities("&#200;"), "?");  // non-ASCII placeholder
}

TEST(EntitiesTest, UnknownAndMalformedPassThrough) {
  EXPECT_EQ(DecodeEntities("&bogus; &amp"), "&bogus; &amp");
  EXPECT_EQ(DecodeEntities("lone & ampersand"), "lone & ampersand");
}

TEST(EntitiesTest, EscapeRoundTrip) {
  const std::string original = "a & b < c > \"d\"";
  EXPECT_EQ(DecodeEntities(EscapeForHtml(original)), original);
}

// -- Tokenizer ------------------------------------------------------------------

TEST(TokenizerTest, BasicTags) {
  auto tokens = Tokenize("<html><body>Hi</body></html>");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kStartTag);
  EXPECT_EQ(tokens[0].text, "html");
  EXPECT_EQ(tokens[2].kind, TokenKind::kText);
  EXPECT_EQ(tokens[2].text, "Hi");
  EXPECT_EQ(tokens[3].kind, TokenKind::kEndTag);
  EXPECT_EQ(tokens[3].text, "body");
}

TEST(TokenizerTest, AttributesQuotedAndBare) {
  auto tokens = Tokenize("<a href=\"http://x/y\" target=_top checked>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].Attr("href"), "http://x/y");
  EXPECT_EQ(tokens[0].Attr("target"), "_top");
  EXPECT_EQ(tokens[0].Attr("checked"), "");
  EXPECT_EQ(tokens[0].Attr("absent"), "");
}

TEST(TokenizerTest, AttributeNamesLowerCased) {
  auto tokens = Tokenize("<A HREF='x'>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[0].Attr("href"), "x");
}

TEST(TokenizerTest, CommentsAndDoctype) {
  auto tokens = Tokenize("<!DOCTYPE html><!-- note -->text");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kDoctype);
  EXPECT_EQ(tokens[1].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[1].text, " note ");
  EXPECT_EQ(tokens[2].kind, TokenKind::kText);
}

TEST(TokenizerTest, SelfClosingTag) {
  auto tokens = Tokenize("<hr/>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].self_closing);
}

TEST(TokenizerTest, MalformedInputNeverCrashes) {
  for (const char* input :
       {"<", "<>", "< >", "<a", "<!--", "<a href=\"unterminated",
        "</", "<<<>>>", "a<b>c<", "<a href=>"}) {
    auto tokens = Tokenize(input);
    (void)tokens;  // tolerance: any output is fine, just no crash
  }
}

// -- Document parser --------------------------------------------------------------

Url TestUrl() { return ParseUrl("http://host.example/dir/page").value(); }

TEST(ParserTest, TitleAndText) {
  const ParsedDocument doc = ParseDocument(
      TestUrl(),
      "<html><head><title> My   Title </title></head>"
      "<body><p>Hello  world</p></body></html>");
  EXPECT_EQ(doc.title, "My Title");
  EXPECT_EQ(doc.text, "Hello world");
  EXPECT_GT(doc.length, 0u);
}

TEST(ParserTest, AnchorsExtractedAndClassified) {
  const ParsedDocument doc = ParseDocument(
      TestUrl(),
      "<a href=\"other\">Sibling</a>"
      "<a href=\"http://elsewhere.example/\">Away</a>"
      "<a href=\"#sec\">Here</a>"
      "<a href=\"\">skipped</a>");
  ASSERT_EQ(doc.anchors.size(), 3u);
  EXPECT_EQ(doc.anchors[0].label, "Sibling");
  EXPECT_EQ(doc.anchors[0].resolved.ToString(), "http://host.example/dir/other");
  EXPECT_EQ(doc.anchors[0].ltype, LinkType::kLocal);
  EXPECT_EQ(doc.anchors[1].ltype, LinkType::kGlobal);
  EXPECT_EQ(doc.anchors[2].ltype, LinkType::kInterior);
}

TEST(ParserTest, AnchorLabelDecodedAndCollapsed) {
  const ParsedDocument doc = ParseDocument(
      TestUrl(), "<a href=\"x\">  A &amp;  B  </a>");
  ASSERT_EQ(doc.anchors.size(), 1u);
  EXPECT_EQ(doc.anchors[0].label, "A & B");
}

TEST(ParserTest, ContainerRelInfons) {
  const ParsedDocument doc = ParseDocument(
      TestUrl(), "<b>bold bit</b><h2>head</h2><p>para text</p>");
  ASSERT_EQ(doc.rel_infons.size(), 3u);
  EXPECT_EQ(doc.rel_infons[0].delimiter, "b");
  EXPECT_EQ(doc.rel_infons[0].text, "bold bit");
  EXPECT_EQ(doc.rel_infons[1].delimiter, "h2");
  EXPECT_EQ(doc.rel_infons[2].delimiter, "p");
}

TEST(ParserTest, HrRelInfonsCaptureBlockBeforeRule) {
  const ParsedDocument doc = ParseDocument(
      TestUrl(),
      "intro words<hr>CONVENER Jayant Haritsa<hr>MEMBERS others<hr>");
  std::vector<std::string> hr_texts;
  for (const ParsedRelInfon& r : doc.rel_infons) {
    if (r.delimiter == "hr") hr_texts.push_back(r.text);
  }
  ASSERT_EQ(hr_texts.size(), 3u);
  EXPECT_EQ(hr_texts[0], "intro words");
  EXPECT_EQ(hr_texts[1], "CONVENER Jayant Haritsa");
  EXPECT_EQ(hr_texts[2], "MEMBERS others");
}

TEST(ParserTest, NestedContainersEachProduceRelInfon) {
  const ParsedDocument doc =
      ParseDocument(TestUrl(), "<p>outer <b>inner</b> tail</p>");
  ASSERT_EQ(doc.rel_infons.size(), 2u);
  EXPECT_EQ(doc.rel_infons[0].delimiter, "b");
  EXPECT_EQ(doc.rel_infons[0].text, "inner");
  EXPECT_EQ(doc.rel_infons[1].delimiter, "p");
  EXPECT_EQ(doc.rel_infons[1].text, "outer inner tail");
}

TEST(ParserTest, ScriptAndStyleContentSkipped) {
  const ParsedDocument doc = ParseDocument(
      TestUrl(),
      "before<script>var x = '<b>not text</b>';</script>after"
      "<style>b { color: red }</style>");
  EXPECT_EQ(doc.text, "beforeafter");
  EXPECT_TRUE(doc.rel_infons.empty());
}

TEST(ParserTest, MisnestedTagsRecovered) {
  const ParsedDocument doc =
      ParseDocument(TestUrl(), "<b><i>both</b></i> rest");
  // No crash; the <b> rel-infon covers "both".
  bool found_b = false;
  for (const ParsedRelInfon& r : doc.rel_infons) {
    if (r.delimiter == "b") {
      found_b = true;
      EXPECT_EQ(r.text, "both");
    }
  }
  EXPECT_TRUE(found_b);
}

TEST(ParserTest, UnresolvableHrefDropped) {
  const ParsedDocument doc =
      ParseDocument(TestUrl(), "<a href=\"   \">blank</a>ok");
  EXPECT_TRUE(doc.anchors.empty());
}

TEST(ParserTest, FramesAndAreasAreAnchors) {
  const ParsedDocument doc = ParseDocument(
      TestUrl(),
      "<frameset><frame src=\"/nav.html\"><frame src=\"body.html\">"
      "</frameset>"
      "<map><area href=\"http://far.example/x\"></map>"
      "<iframe src=\"/embedded\"></iframe>"
      "<frame>");  // src-less frame ignored
  ASSERT_EQ(doc.anchors.size(), 4u);
  EXPECT_EQ(doc.anchors[0].label, "[frame]");
  EXPECT_EQ(doc.anchors[0].resolved.ToString(), "http://host.example/nav.html");
  EXPECT_EQ(doc.anchors[0].ltype, LinkType::kLocal);
  EXPECT_EQ(doc.anchors[1].resolved.ToString(),
            "http://host.example/dir/body.html");
  EXPECT_EQ(doc.anchors[2].label, "[area]");
  EXPECT_EQ(doc.anchors[2].ltype, LinkType::kGlobal);
  EXPECT_EQ(doc.anchors[3].label, "[iframe]");
}

TEST(ParserTest, EntitiesDecodedInTextAndTitle) {
  const ParsedDocument doc = ParseDocument(
      TestUrl(), "<title>A &amp; B</title><p>x &lt; y</p>");
  EXPECT_EQ(doc.title, "A & B");
  EXPECT_EQ(doc.text, "x < y");
}

}  // namespace
}  // namespace webdis::html
