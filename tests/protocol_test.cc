// Protocol-level properties of the WEBDIS distributed scheme: completion
// safety under loss and reordering, the report-then-forward ordering,
// participation fallback, and an end-to-end run over real TCP sockets.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "client/user_site.h"
#include "common/strings.h"
#include "core/engine.h"
#include "net/tcp.h"
#include "serialize/encoder.h"
#include "server/http_server.h"
#include "server/query_server.h"
#include "web/synth.h"
#include "web/university.h"
#include "web/topologies.h"

namespace webdis {
namespace {

std::set<std::string> AllRowKeys(
    const std::vector<relational::ResultSet>& results) {
  std::set<std::string> keys;
  for (const relational::ResultSet& rs : results) {
    for (const relational::Tuple& row : rs.rows) {
      std::string key = Join(rs.column_labels, ",") + ":";
      for (const relational::Value& v : row) key += v.ToString() + "|";
      keys.insert(std::move(key));
    }
  }
  return keys;
}

// ---------------------------------------------------------------------------
// Completion safety: losing forward messages must never cause a *false*
// completion (missing results while claiming done). The report-then-forward
// ordering guarantees the CHT always knows about in-flight work.
// ---------------------------------------------------------------------------

TEST(CompletionSafetyTest, LostForwardsNeverCauseFalseCompletion) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  core::Engine engine(&scenario.web);
  // Drop every 2nd clone forward *after* it was accepted.
  int counter = 0;
  engine.network().SetDropFilter(
      [&counter](const net::Endpoint&, const net::Endpoint&,
                 net::MessageType type) {
        if (type != net::MessageType::kWebQuery) return false;
        return (++counter % 2) == 0;
      });
  auto compiled = disql::CompileDisql(scenario.disql);
  ASSERT_TRUE(compiled.ok());
  auto id = engine.Submit(compiled.value());
  ASSERT_TRUE(id.ok());
  engine.network().RunUntilIdle();
  const client::UserSite::QueryRun* run = engine.user_site().Find(id.value());
  // Losing clones loses liveness, not safety: the query must NOT be
  // declared complete (entries for the lost clones stay outstanding).
  EXPECT_FALSE(run->completed);
  EXPECT_GT(engine.network().dropped_count(), 0u);
}

TEST(CompletionSafetyTest, LostReportAlsoBlocksCompletion) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  core::Engine engine(&scenario.web);
  int dropped = 0;
  engine.network().SetDropFilter(
      [&dropped](const net::Endpoint&, const net::Endpoint&,
                 net::MessageType type) {
        if (type == net::MessageType::kReport && dropped == 0) {
          ++dropped;
          return true;  // lose exactly the first report
        }
        return false;
      });
  auto compiled = disql::CompileDisql(scenario.disql);
  ASSERT_TRUE(compiled.ok());
  auto id = engine.Submit(compiled.value());
  ASSERT_TRUE(id.ok());
  engine.network().RunUntilIdle();
  EXPECT_FALSE(engine.user_site().IsComplete(id.value()));
}

// ---------------------------------------------------------------------------
// The robust-completion extension vs the paper's original CHT rule.
// ---------------------------------------------------------------------------

TEST(ChtModesTest, PaperPureModeWorksOnFigure5) {
  // Paper configuration: CHT dedup on, servers drop duplicates silently,
  // entry-matching completion. On the benign Figure 5 ordering this works.
  web::Scenario scenario = web::BuildFig5Scenario();
  core::EngineOptions options;
  options.server.report_dropped_duplicates = false;
  options.client.robust_completion = false;
  options.client.cht_dedup = true;
  core::Engine engine(&scenario.web, options);
  auto outcome = engine.Run(scenario.disql);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  EXPECT_EQ(outcome->TotalRows(), 8u);
}

TEST(ChtModesTest, RobustModeMatchesPaperModeResults) {
  web::Scenario scenario = web::BuildFig5Scenario();
  core::EngineOptions paper;
  paper.server.report_dropped_duplicates = false;
  paper.client.robust_completion = false;
  core::Engine paper_engine(&scenario.web, paper);
  auto paper_outcome = paper_engine.Run(scenario.disql);
  ASSERT_TRUE(paper_outcome.ok());

  core::Engine robust_engine(&scenario.web);  // defaults = robust
  auto robust_outcome = robust_engine.Run(scenario.disql);
  ASSERT_TRUE(robust_outcome.ok());

  EXPECT_EQ(AllRowKeys(paper_outcome->results),
            AllRowKeys(robust_outcome->results));
  EXPECT_TRUE(paper_outcome->completed);
  EXPECT_TRUE(robust_outcome->completed);
}

TEST(ChtModesTest, MissingChtDedupWithSilentDropsHangs) {
  // The configuration §3.1.1 warns about: servers drop duplicates silently
  // but the CHT still holds entries for them -> completion never detected.
  // (This is exactly why the paper adds the CHT modification.)
  web::Scenario scenario = web::BuildFig5Scenario();
  core::EngineOptions options;
  options.server.report_dropped_duplicates = false;
  options.client.cht_dedup = false;
  options.client.robust_completion = false;
  core::Engine engine(&scenario.web, options);
  auto compiled = disql::CompileDisql(scenario.disql);
  ASSERT_TRUE(compiled.ok());
  auto id = engine.Submit(compiled.value());
  ASSERT_TRUE(id.ok());
  engine.network().RunUntilIdle();
  EXPECT_FALSE(engine.user_site().IsComplete(id.value()));
}

TEST(ChtModesTest, RobustModeWithoutDedupMirrorStillCompletes) {
  // Robust counting does not need the dedup mirror at all.
  web::Scenario scenario = web::BuildFig5Scenario();
  core::EngineOptions options;
  options.client.cht_dedup = false;
  options.client.robust_completion = true;
  core::Engine engine(&scenario.web, options);
  auto outcome = engine.Run(scenario.disql);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  EXPECT_EQ(outcome->TotalRows(), 8u);
}

// ---------------------------------------------------------------------------
// Batching ablations (§3.2): same answers, different message counts.
// ---------------------------------------------------------------------------

TEST(BatchingTest, AblationsPreserveResults) {
  web::SynthWebOptions web_options;
  web_options.seed = 11;
  web_options.num_sites = 4;
  web_options.docs_per_site = 6;
  web::WebGraph web = web::GenerateSynthWeb(web_options);
  const std::string disql =
      "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
      "\" (L|G)*3 d where d.title contains \"alpha\"";

  std::set<std::string> reference_rows;
  uint64_t batched_messages = 0;
  {
    core::Engine engine(&web);
    auto outcome = engine.Run(disql);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->completed);
    reference_rows = AllRowKeys(outcome->results);
    batched_messages = outcome->traffic.messages;
  }
  for (int variant = 0; variant < 3; ++variant) {
    core::EngineOptions options;
    options.server.batch_clones_per_site = variant != 0;
    options.server.batch_reports = variant != 1;
    core::Engine engine(&web, options);
    auto outcome = engine.Run(disql);
    ASSERT_TRUE(outcome.ok()) << variant;
    EXPECT_TRUE(outcome->completed) << variant;
    EXPECT_EQ(AllRowKeys(outcome->results), reference_rows) << variant;
    if (variant < 2) {
      // Disabling either batching strictly increases message count.
      EXPECT_GT(outcome->traffic.messages, batched_messages) << variant;
    }
  }
}

// ---------------------------------------------------------------------------
// Participation fallback (§7.1): partial deployments still answer fully.
// ---------------------------------------------------------------------------

TEST(ParticipationTest, PartialDeploymentAnswersViaFallback) {
  web::SynthWebOptions web_options;
  web_options.seed = 31;
  web_options.num_sites = 6;
  web_options.docs_per_site = 5;
  web::WebGraph web = web::GenerateSynthWeb(web_options);
  const std::string disql =
      "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
      "\" (L|G)*3 d where d.title contains \"alpha\"";

  core::Engine full(&web);
  auto full_outcome = full.Run(disql);
  ASSERT_TRUE(full_outcome.ok());
  const std::set<std::string> expected = AllRowKeys(full_outcome->results);

  core::EngineOptions partial_options;
  partial_options.participation_fraction = 0.5;
  partial_options.participation_seed = 3;
  core::Engine partial(&web, partial_options);
  ASSERT_LT(partial.participating_hosts().size(), web.Hosts().size());
  auto partial_outcome = partial.Run(disql);
  ASSERT_TRUE(partial_outcome.ok());
  EXPECT_TRUE(partial_outcome->completed);
  // Fallback fetches happened...
  EXPECT_GT(partial_outcome->fallback_node_count, 0u);
  EXPECT_GT(partial_outcome->traffic.fetch_messages, 0u);
  // ...and the combined answers match the full deployment.
  EXPECT_EQ(AllRowKeys(partial_outcome->results), expected);
}

TEST(ParticipationTest, ZeroParticipationDegeneratesToDataShipping) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  core::EngineOptions options;
  options.participation_fraction = 0.0;
  core::Engine engine(&scenario.web, options);
  ASSERT_TRUE(engine.participating_hosts().empty());
  auto outcome = engine.Run(scenario.disql);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->completed);
  // All three convener rows still found — but via downloads.
  std::set<std::string> keys = AllRowKeys(outcome->results);
  int convener_rows = 0;
  for (const std::string& key : keys) {
    if (ContainsIgnoreCase(key, "convener")) ++convener_rows;
  }
  EXPECT_EQ(convener_rows, 3);
  EXPECT_GT(outcome->fallback.documents_fetched, 0u);
}

// ---------------------------------------------------------------------------
// Node failure (CHT entries for a crashed site).
// ---------------------------------------------------------------------------

TEST(NodeFailureTest, CrashedSiteBlocksCompletionButKeepsPartialResults) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  core::EngineOptions options;
  options.network.inter_host_latency = 50 * kMillisecond;
  core::Engine engine(&scenario.web, options);
  auto compiled = disql::CompileDisql(scenario.disql);
  ASSERT_TRUE(compiled.ok());
  auto id = engine.Submit(compiled.value());
  ASSERT_TRUE(id.ok());
  // Let the query reach the CSA site, then crash the DSL lab server hard
  // (listener vanishes mid-protocol, clones in flight are lost).
  for (int i = 0; i < 4; ++i) engine.network().RunOne();
  engine.network().KillHost("dsl.serc.iisc.ernet.in");
  engine.network().RunUntilIdle();
  const client::UserSite::QueryRun* run = engine.user_site().Find(id.value());
  // Results from surviving sites arrived; completion depends on whether the
  // clone to the dead site was already accepted (lost: incomplete) or not
  // yet sent (refused at connect: undeliverable-reported, complete).
  std::set<std::string> keys = AllRowKeys(run->results);
  bool compiler_row = false;
  for (const std::string& key : keys) {
    if (key.find("Srikant") != std::string::npos) compiler_row = true;
  }
  EXPECT_TRUE(compiler_row);
}

// ---------------------------------------------------------------------------
// End-to-end over real TCP sockets.
// ---------------------------------------------------------------------------

TEST(TcpEndToEndTest, CampusQueryOverRealSockets) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  net::TcpTransport tcp;

  std::vector<std::unique_ptr<server::QueryServer>> servers;
  for (const std::string& host : scenario.web.Hosts()) {
    auto qs = std::make_unique<server::QueryServer>(host, &scenario.web,
                                                    &tcp);
    ASSERT_TRUE(qs->Start().ok());
    servers.push_back(std::move(qs));
  }
  client::UserSite user("user.site", &tcp);
  auto compiled = disql::CompileDisql(scenario.disql);
  ASSERT_TRUE(compiled.ok());
  auto id = user.Submit(compiled.value(), "maya");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  tcp.PumpUntilIdle(300);
  const client::UserSite::QueryRun* run = user.Find(id.value());
  ASSERT_NE(run, nullptr);
  EXPECT_TRUE(run->completed);
  const std::set<std::string> keys = AllRowKeys(run->results);
  for (const auto& [url, name] : scenario.expected_conveners) {
    bool found = false;
    for (const std::string& key : keys) {
      if (key.find(url) != std::string::npos &&
          key.find(name) != std::string::npos) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << url << " / " << name;
  }
  for (auto& qs : servers) qs->Stop();
}

TEST(TcpEndToEndTest, MultipleQueriesAndCancellationOverSockets) {
  web::UniversityOptions uni_options;
  uni_options.seed = 2;
  uni_options.departments = 2;
  uni_options.labs_per_department = 2;
  const web::UniversityWeb uni = web::GenerateUniversityWeb(uni_options);
  net::TcpTransport tcp;
  std::vector<std::unique_ptr<server::QueryServer>> servers;
  for (const std::string& host : uni.web.Hosts()) {
    auto qs = std::make_unique<server::QueryServer>(host, &uni.web, &tcp);
    ASSERT_TRUE(qs->Start().ok());
    servers.push_back(std::move(qs));
  }
  client::UserSite user("user.site", &tcp);

  auto compiled = disql::CompileDisql(uni.convener_disql);
  ASSERT_TRUE(compiled.ok());
  const std::string sitemap =
      "select a.base, a.href from document d such that \"" + uni.root_url +
      "\" G.(L*1) d, anchor a";
  auto compiled2 = disql::CompileDisql(sitemap);
  ASSERT_TRUE(compiled2.ok());

  auto id1 = user.Submit(compiled.value(), "alice");
  auto id2 = user.Submit(compiled2.value(), "bob");
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  tcp.PumpUntilIdle(300);

  const client::UserSite::QueryRun* run1 = user.Find(id1.value());
  const client::UserSite::QueryRun* run2 = user.Find(id2.value());
  ASSERT_NE(run1, nullptr);
  ASSERT_NE(run2, nullptr);
  EXPECT_TRUE(run1->completed);
  EXPECT_TRUE(run2->completed);
  // Query 1 found every planted convener.
  size_t convener_rows = 0;
  for (const relational::ResultSet& rs : run1->results) {
    if (rs.column_labels ==
        std::vector<std::string>{"d1.url", "r.text"}) {
      convener_rows = rs.rows.size();
    }
  }
  EXPECT_EQ(convener_rows, uni.conveners.size());
  EXPECT_FALSE(run2->results.empty());

  // A third query is cancelled immediately: its socket closes, and late
  // reports die on real ECONNREFUSED without disturbing anything.
  auto id3 = user.Submit(compiled.value(), "carol");
  ASSERT_TRUE(id3.ok());
  user.Cancel(id3.value());
  tcp.PumpUntilIdle(300);
  EXPECT_TRUE(user.Find(id3.value())->cancelled);
  uint64_t passive = 0;
  for (auto& qs : servers) passive += qs->stats().passive_terminations;
  EXPECT_GT(passive, 0u);
  for (auto& qs : servers) qs->Stop();
}

}  // namespace
}  // namespace webdis
