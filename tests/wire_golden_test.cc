// Golden wire-format tests: serialize canonical objects and compare against
// frozen byte images. A failure here means the wire format changed — bump
// serialize::kWireVersion and regenerate the goldens deliberately, never
// accidentally (deployed WEBDIS daemons interoperate across versions only
// if the format is stable; see PROTOCOL.md).
#include <gtest/gtest.h>

#include <cstdio>

#include "disql/compiler.h"
#include "net/transport.h"
#include "query/report.h"
#include "query/web_query.h"
#include "serialize/encoder.h"
#include "serialize/framing.h"
#include "server/http_server.h"

namespace webdis {
namespace {

std::string Hex(const std::vector<uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

/// Expected full-frame image: the (separately golden-tested) frame header
/// composed with a frozen payload hex literal. Any byte drift in either the
/// header layout or the payload codec fails the comparison.
std::string ExpectedFrameHex(net::MessageType type,
                             const std::string& payload_hex) {
  const size_t n = payload_hex.size() / 2;
  char hdr[32];
  std::snprintf(hdr, sizeof(hdr), "5349445701%02x%02x%02x%02x%02x",
                static_cast<unsigned>(type),
                static_cast<unsigned>(n & 0xFF),
                static_cast<unsigned>((n >> 8) & 0xFF),
                static_cast<unsigned>((n >> 16) & 0xFF),
                static_cast<unsigned>((n >> 24) & 0xFF));
  return hdr + payload_hex;
}

std::vector<uint8_t> Framed(net::MessageType type,
                            const std::vector<uint8_t>& payload) {
  return serialize::EncodeFrame(static_cast<uint8_t>(type), payload);
}

// Frozen payload image of the canonical single-stage clone (see
// MinimalCloneImageIsStable for the field-by-field breakdown).
const char kMinimalCloneHex[] =
    "0175" "0168" "0100" "01000000" "01" "0164" "01"
    "08646f63756d656e74" "0164" "00" "01" "0164" "0375726c" "01" "00"
    "0201" "01" "09687474703a2f2f612f" "00" "00";

query::WebQuery MinimalClone() {
  auto compiled = disql::CompileDisql(
      "select d.url from document d such that \"http://a/\" L d");
  EXPECT_TRUE(compiled.ok());
  query::WebQuery clone = compiled->web_query.Clone();
  clone.id.user = "u";
  clone.id.reply_host = "h";
  clone.id.reply_port = 1;
  clone.id.query_number = 1;
  clone.dest_urls = {"http://a/"};
  return clone;
}

TEST(WireGoldenTest, FrameHeader) {
  const std::vector<uint8_t> frame =
      serialize::EncodeFrame(2, {0xAA, 0xBB});
  EXPECT_EQ(Hex(frame), "53494457" /* magic LE */
                        "01"       /* version */
                        "02"       /* type */
                        "02000000" /* length */
                        "aabb");
}

TEST(WireGoldenTest, QueryIdImage) {
  query::QueryId id;
  id.user = "maya";
  id.reply_host = "u.site";
  id.reply_port = 9000;
  id.query_number = 7;
  serialize::Encoder enc;
  id.EncodeTo(&enc);
  EXPECT_EQ(Hex(enc.data()),
            "046d617961"      // "maya"
            "06752e73697465"  // "u.site"
            "2823"            // 9000 LE
            "07000000");      // 7
}

TEST(WireGoldenTest, CloneStateImage) {
  query::CloneState state{2, pre::Pre::Parse("G.L*1").value()};
  serialize::Encoder enc;
  state.EncodeTo(&enc);
  // u32 num_q = 2; PRE: concat(arity 2){ link G, repeat(bounded,1){link L} }
  EXPECT_EQ(Hex(enc.data()),
            "02000000"  // num_q
            "03"        // kConcat
            "02"        // arity 2
            "0202"      // kLink G(2)
            "05"        // kRepeat
            "00"        // bounded
            "01000000"  // max 1
            "0201");    // kLink L(1)
}

TEST(WireGoldenTest, MinimalCloneImageIsStable) {
  // A canonical single-stage clone; any byte change here is a wire break.
  // Field-by-field: user "u", host "h", port 1, query number 1, 1
  // node-query ("d": from document d, no where, select d.url, distinct),
  // 0 future PREs, rem_pre link L, 1 dest "http://a/", ack_mode false,
  // empty budget flags byte (no per-query budget; PROTOCOL.md §7.1).
  const query::WebQuery clone = MinimalClone();
  serialize::Encoder enc;
  clone.EncodeTo(&enc);
  EXPECT_EQ(Hex(enc.data()), kMinimalCloneHex);
}

TEST(WireGoldenTest, BudgetedCloneImageIsStable) {
  // The same clone carrying a full resource budget (PROTOCOL.md §7.1): the
  // flags byte announces which limits are present, then the present fields
  // follow in flag-bit order.
  query::WebQuery clone = MinimalClone();
  clone.budget.has_deadline = true;
  clone.budget.deadline = 1 * kSecond;  // absolute virtual time 1'000'000us
  clone.budget.has_hop_limit = true;
  clone.budget.hops_left = 3;
  clone.budget.has_clone_limit = true;
  clone.budget.clones_left = 300;
  clone.budget.has_row_limit = true;
  clone.budget.max_rows_per_visit = 5;
  serialize::Encoder enc;
  clone.EncodeTo(&enc);
  std::string expected(kMinimalCloneHex);
  expected.resize(expected.size() - 2);  // drop the empty flags byte
  expected += "0f"                // flags: deadline|hops|clones|rows
              "40420f0000000000"  // deadline u64 LE
              "03000000"          // hops_left u32 LE
              "ac02"              // clones_left varint 300
              "05";               // max_rows_per_visit varint 5
  EXPECT_EQ(Hex(enc.data()), expected);
}

TEST(WireGoldenTest, BudgetExceededNodeReportImage) {
  // A degradation report (PROTOCOL.md §7): flags order within NodeReport is
  // duplicate_drop, undeliverable, budget_exceeded.
  query::NodeReport report;
  report.node_url = "n";
  report.received_state = {1, pre::Pre::Parse("L").value()};
  report.budget_exceeded = true;
  serialize::Encoder enc;
  report.EncodeTo(&enc);
  EXPECT_EQ(Hex(enc.data()),
            "016e"      // node_url "n"
            "01000000"  // state num_q
            "0201"      // state PRE: kLink L
            "00"        // 0 next_entries
            "00"        // duplicate_drop false
            "00"        // undeliverable false
            "01"        // budget_exceeded true
            "00"        // 0 result_sets
            "0000000000000000"  // doc_version 0 (not evaluated)
            "00");      // visibility normal
}

TEST(WireGoldenTest, SiteRetiredNodeReportImage) {
  // A §10.2 named degraded outcome: the node's site retired mid-query. The
  // trailing version stamp stays 0 (nothing was evaluated) and the
  // visibility byte carries the classification.
  query::NodeReport report;
  report.node_url = "n";
  report.received_state = {1, pre::Pre::Parse("L").value()};
  report.visibility = query::NodeReport::kVisibilitySiteRetired;
  serialize::Encoder enc;
  report.EncodeTo(&enc);
  EXPECT_EQ(Hex(enc.data()),
            "016e"      // node_url "n"
            "01000000"  // state num_q
            "0201"      // state PRE: kLink L
            "00"        // 0 next_entries
            "00"        // duplicate_drop false
            "00"        // undeliverable false
            "00"        // budget_exceeded false
            "00"        // 0 result_sets
            "0000000000000000"  // doc_version 0 (not evaluated)
            "01");      // visibility site-retired
}

TEST(WireGoldenTest, EpochPinnedCloneImageIsStable) {
  // §10.1 epoch pin: budget flags bit 4 announces a varint pinned_epoch.
  // An unpinned clone (the common case) stays byte-identical to the
  // pre-§10 image — BudgetedCloneImageIsStable above proves that.
  query::WebQuery clone = MinimalClone();
  clone.budget.pinned_epoch = 3;
  serialize::Encoder enc;
  clone.EncodeTo(&enc);
  std::string expected(kMinimalCloneHex);
  expected.resize(expected.size() - 2);  // drop the empty flags byte
  expected += "10"   // flags: epoch pin only
              "03";  // pinned_epoch varint 3
  EXPECT_EQ(Hex(enc.data()), expected);
}

TEST(WireGoldenTest, EmptyReportImage) {
  query::QueryReport report;
  report.id.user = "u";
  report.id.reply_host = "h";
  report.id.reply_port = 1;
  report.id.query_number = 1;
  serialize::Encoder enc;
  report.EncodeTo(&enc);
  EXPECT_EQ(Hex(enc.data()), "0175" "0168" "0100" "01000000" "00");
}

// -- Per-message-type golden frames -----------------------------------------
// One frozen full-frame image per MessageType constant, kept in lockstep
// with src/net/transport.h by tools/webdis_lint's wire-parity check: adding
// a message type without a frame here fails CI.

TEST(WireGoldenTest, WebQueryFrame) {
  const query::WebQuery clone = MinimalClone();
  serialize::Encoder enc;
  clone.EncodeTo(&enc);
  EXPECT_EQ(Hex(Framed(net::MessageType::kWebQuery, enc.data())),
            ExpectedFrameHex(net::MessageType::kWebQuery, kMinimalCloneHex));
}

TEST(WireGoldenTest, ReportFrame) {
  query::QueryReport report;
  report.id.user = "u";
  report.id.reply_host = "h";
  report.id.reply_port = 1;
  report.id.query_number = 1;
  serialize::Encoder enc;
  report.EncodeTo(&enc);
  EXPECT_EQ(Hex(Framed(net::MessageType::kReport, enc.data())),
            ExpectedFrameHex(net::MessageType::kReport,
                             "0175" "0168" "0100" "01000000" "00"));
}

TEST(WireGoldenTest, TerminateFrame) {
  // kTerminate carries the bare QueryId of the query being cancelled.
  query::QueryId id;
  id.user = "maya";
  id.reply_host = "u.site";
  id.reply_port = 9000;
  id.query_number = 7;
  serialize::Encoder enc;
  id.EncodeTo(&enc);
  EXPECT_EQ(Hex(Framed(net::MessageType::kTerminate, enc.data())),
            ExpectedFrameHex(net::MessageType::kTerminate,
                             "046d617961" "06752e73697465" "2823"
                             "07000000"));
}

TEST(WireGoldenTest, FetchRequestFrame) {
  EXPECT_EQ(Hex(Framed(net::MessageType::kFetchRequest,
                       server::HttpServer::EncodeFetchRequest("http://a/"))),
            ExpectedFrameHex(net::MessageType::kFetchRequest,
                             "09687474703a2f2f612f"));
}

TEST(WireGoldenTest, FetchResponseFrame) {
  server::HttpServer::FetchResponse resp;
  resp.url = "http://a/";
  resp.found = true;
  resp.html = "hi";
  EXPECT_EQ(Hex(Framed(net::MessageType::kFetchResponse,
                       server::HttpServer::EncodeFetchResponse(resp))),
            ExpectedFrameHex(net::MessageType::kFetchResponse,
                             "09687474703a2f2f612f"  // url
                             "01"                    // found
                             "026869"));             // html "hi"
}

TEST(WireGoldenTest, AckFrame) {
  // kAck payload: u64 ack-tree token, little-endian.
  serialize::Encoder enc;
  enc.PutU64(42);
  EXPECT_EQ(Hex(Framed(net::MessageType::kAck, enc.data())),
            ExpectedFrameHex(net::MessageType::kAck, "2a00000000000000"));
}

TEST(WireGoldenTest, OverloadedFrame) {
  // kOverloaded payload: u64 transfer_seq of the shed tracked transfer
  // (PROTOCOL.md §7.2) — the admission-control NACK mirror of kDeliveryAck.
  serialize::Encoder enc;
  enc.PutU64(9);
  EXPECT_EQ(Hex(Framed(net::MessageType::kOverloaded, enc.data())),
            ExpectedFrameHex(net::MessageType::kOverloaded,
                             "0900000000000000"));
}

TEST(WireGoldenTest, CloneBatchFrame) {
  // kCloneBatch (PROTOCOL.md §9.2): varint member count, then each member's
  // ordinary WebQuery image. The members belong to *different* queries —
  // here query numbers 1 and 2 of the same user — bound for one host.
  query::CloneBatch batch;
  batch.clones.push_back(MinimalClone());
  batch.clones.push_back(MinimalClone());
  batch.clones[1].id.query_number = 2;
  serialize::Encoder enc;
  batch.EncodeTo(&enc);
  // Second member: the minimal clone with query_number 2. The u32 query
  // number sits after user "u" (4 hex chars) + host "h" (4) + port (4).
  std::string second(kMinimalCloneHex);
  second.replace(12, 8, "02000000");
  EXPECT_EQ(Hex(Framed(net::MessageType::kCloneBatch, enc.data())),
            ExpectedFrameHex(net::MessageType::kCloneBatch,
                             "02" + std::string(kMinimalCloneHex) + second));
}

TEST(WireGoldenTest, CloneBatchSingleMemberFrame) {
  // A 1-member batch is legal on the wire (the sender normally collapses it
  // to a plain kWebQuery, but a receiver must accept it regardless).
  query::CloneBatch batch;
  batch.clones.push_back(MinimalClone());
  serialize::Encoder enc;
  batch.EncodeTo(&enc);
  EXPECT_EQ(Hex(Framed(net::MessageType::kCloneBatch, enc.data())),
            ExpectedFrameHex(net::MessageType::kCloneBatch,
                             "01" + std::string(kMinimalCloneHex)));
}

TEST(WireGoldenTest, CloneBatchEmptyRejected) {
  // An empty batch is a protocol violation (§9.2): the decoder rejects it
  // outright — admission must never see a zero-member unit.
  serialize::Encoder enc;
  enc.PutVarint(0);
  serialize::Decoder dec(enc.data());
  query::CloneBatch batch;
  const Status status = query::CloneBatch::DecodeFrom(&dec, &batch);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(WireGoldenTest, CloneBatchTruncatedMemberListRejected) {
  // Adversarial: a 2-member batch with the second member's bytes cut off
  // mid-image. The decoder must report Corruption — never hand admission a
  // partial batch containing only the members that happened to fit.
  query::CloneBatch batch;
  batch.clones.push_back(MinimalClone());
  batch.clones.push_back(MinimalClone());
  batch.clones[1].id.query_number = 2;
  serialize::Encoder enc;
  batch.EncodeTo(&enc);
  std::vector<uint8_t> bytes = enc.data();
  bytes.resize(bytes.size() - 10);  // tear the tail off member #2
  serialize::Decoder dec(bytes);
  query::CloneBatch decoded;
  const Status status = query::CloneBatch::DecodeFrom(&dec, &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(WireGoldenTest, CloneBatchCountOverrunRejected) {
  // Adversarial: the member count claims 3 but only 2 member images follow.
  // Decoding the phantom third member runs out of bytes -> Corruption.
  query::CloneBatch batch;
  batch.clones.push_back(MinimalClone());
  batch.clones.push_back(MinimalClone());
  serialize::Encoder members;
  for (const auto& clone : batch.clones) clone.EncodeTo(&members);
  serialize::Encoder enc;
  enc.PutVarint(3);
  enc.PutRaw(members.data().data(), members.data().size());
  serialize::Decoder dec(enc.data());
  query::CloneBatch decoded;
  const Status status = query::CloneBatch::DecodeFrom(&dec, &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(WireGoldenTest, CloneBatchCountUnderrunRejected) {
  // Adversarial: the count claims 1 but two member images follow. The
  // member loop succeeds, so the surplus is only caught by the trailing-
  // bytes check every dispatch site runs after DecodeFrom (PROTOCOL.md §1:
  // decoders reject, they do not repair).
  query::CloneBatch batch;
  batch.clones.push_back(MinimalClone());
  batch.clones.push_back(MinimalClone());
  serialize::Encoder members;
  for (const auto& clone : batch.clones) clone.EncodeTo(&members);
  serialize::Encoder enc;
  enc.PutVarint(1);
  enc.PutRaw(members.data().data(), members.data().size());
  serialize::Decoder dec(enc.data());
  query::CloneBatch decoded;
  Status status = query::CloneBatch::DecodeFrom(&dec, &decoded);
  if (status.ok()) status = dec.ExpectAtEnd("clone-batch payload");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(WireGoldenTest, CloneBatchHugeCountRejectedBeforeAllocation) {
  // Adversarial: a count far beyond what the remaining bytes could hold
  // must be rejected by the feasibility gate (GetCount) without looping —
  // or allocating — count times.
  serialize::Encoder enc;
  enc.PutVarint(0xFFFFFF);
  serialize::Decoder dec(enc.data());
  query::CloneBatch decoded;
  const Status status = query::CloneBatch::DecodeFrom(&dec, &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(WireGoldenTest, ReportBatchFrame) {
  // kReportBatch (PROTOCOL.md §9.3): varint count, then each member's
  // ordinary QueryReport image. Members are reports for different queries
  // of one user site; each member's QueryId carries its own reply port, so
  // the envelope needs no routing fields of its own.
  query::ReportBatch batch;
  query::QueryReport first;
  first.id.user = "u";
  first.id.reply_host = "h";
  first.id.reply_port = 1;
  first.id.query_number = 1;
  query::QueryReport second;
  second.id.user = "u";
  second.id.reply_host = "h";
  second.id.reply_port = 2;
  second.id.query_number = 2;
  batch.reports.push_back(std::move(first));
  batch.reports.push_back(std::move(second));
  serialize::Encoder enc;
  batch.EncodeTo(&enc);
  EXPECT_EQ(Hex(Framed(net::MessageType::kReportBatch, enc.data())),
            ExpectedFrameHex(net::MessageType::kReportBatch,
                             "02"
                             "0175" "0168" "0100" "01000000" "00"
                             "0175" "0168" "0200" "02000000" "00"));
}

TEST(WireGoldenTest, ReportBatchEmptyRejected) {
  serialize::Encoder enc;
  enc.PutVarint(0);
  serialize::Decoder dec(enc.data());
  query::ReportBatch batch;
  const Status status = query::ReportBatch::DecodeFrom(&dec, &batch);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(WireGoldenTest, ReportBatchTruncatedMemberRejected) {
  // Same adversarial shape as the clone batch: a torn second member must
  // surface as Corruption, not as a 1-report batch.
  query::ReportBatch batch;
  query::QueryReport first;
  first.id.user = "u";
  first.id.reply_host = "h";
  first.id.reply_port = 1;
  first.id.query_number = 1;
  query::QueryReport second = first;
  second.id.query_number = 2;
  batch.reports.push_back(std::move(first));
  batch.reports.push_back(std::move(second));
  serialize::Encoder enc;
  batch.EncodeTo(&enc);
  std::vector<uint8_t> bytes = enc.data();
  bytes.resize(bytes.size() - 3);
  serialize::Decoder dec(bytes);
  query::ReportBatch decoded;
  const Status status = query::ReportBatch::DecodeFrom(&dec, &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(WireGoldenTest, DeliveryAckFrame) {
  // kDeliveryAck payload: u64 transfer_seq of the receipt (PROTOCOL.md
  // §6.1). The same u64 prefix forms the delivery envelope on tracked
  // transfers, so this image also freezes the envelope layout.
  serialize::Encoder enc;
  enc.PutU64(7);
  EXPECT_EQ(Hex(Framed(net::MessageType::kDeliveryAck, enc.data())),
            ExpectedFrameHex(net::MessageType::kDeliveryAck,
                             "0700000000000000"));
}

TEST(WireGoldenTest, SiteRetiredFrame) {
  // kSiteRetired payload: u64 transfer_seq of the refused tracked transfer
  // (PROTOCOL.md §10.2). Same shape as kOverloaded, but terminal: the
  // sender gives the transfer up instead of rescheduling it.
  serialize::Encoder enc;
  enc.PutU64(11);
  EXPECT_EQ(Hex(Framed(net::MessageType::kSiteRetired, enc.data())),
            ExpectedFrameHex(net::MessageType::kSiteRetired,
                             "0b00000000000000"));
}

}  // namespace
}  // namespace webdis
