// Golden wire-format tests: serialize canonical objects and compare against
// frozen byte images. A failure here means the wire format changed — bump
// serialize::kWireVersion and regenerate the goldens deliberately, never
// accidentally (deployed WEBDIS daemons interoperate across versions only
// if the format is stable; see PROTOCOL.md).
#include <gtest/gtest.h>

#include "disql/compiler.h"
#include "query/report.h"
#include "query/web_query.h"
#include "serialize/encoder.h"
#include "serialize/framing.h"

namespace webdis {
namespace {

std::string Hex(const std::vector<uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

TEST(WireGoldenTest, FrameHeader) {
  const std::vector<uint8_t> frame =
      serialize::EncodeFrame(2, {0xAA, 0xBB});
  EXPECT_EQ(Hex(frame), "53494457" /* magic LE */
                        "01"       /* version */
                        "02"       /* type */
                        "02000000" /* length */
                        "aabb");
}

TEST(WireGoldenTest, QueryIdImage) {
  query::QueryId id;
  id.user = "maya";
  id.reply_host = "u.site";
  id.reply_port = 9000;
  id.query_number = 7;
  serialize::Encoder enc;
  id.EncodeTo(&enc);
  EXPECT_EQ(Hex(enc.data()),
            "046d617961"      // "maya"
            "06752e73697465"  // "u.site"
            "2823"            // 9000 LE
            "07000000");      // 7
}

TEST(WireGoldenTest, CloneStateImage) {
  query::CloneState state{2, pre::Pre::Parse("G.L*1").value()};
  serialize::Encoder enc;
  state.EncodeTo(&enc);
  // u32 num_q = 2; PRE: concat(arity 2){ link G, repeat(bounded,1){link L} }
  EXPECT_EQ(Hex(enc.data()),
            "02000000"  // num_q
            "03"        // kConcat
            "02"        // arity 2
            "0202"      // kLink G(2)
            "05"        // kRepeat
            "00"        // bounded
            "01000000"  // max 1
            "0201");    // kLink L(1)
}

TEST(WireGoldenTest, MinimalCloneImageIsStable) {
  // A canonical single-stage clone; any byte change here is a wire break.
  auto compiled = disql::CompileDisql(
      "select d.url from document d such that \"http://a/\" L d");
  ASSERT_TRUE(compiled.ok());
  query::WebQuery clone = compiled->web_query.Clone();
  clone.id.user = "u";
  clone.id.reply_host = "h";
  clone.id.reply_port = 1;
  clone.id.query_number = 1;
  clone.dest_urls = {"http://a/"};
  serialize::Encoder enc;
  clone.EncodeTo(&enc);
  EXPECT_EQ(Hex(enc.data()),
            "0175"        // user "u"
            "0168"        // host "h"
            "0100"        // port 1
            "01000000"    // query number 1
            "01"          // 1 node-query
            "0164"        // doc_alias "d"
            "01"          // 1 from entry
            "08646f63756d656e74"  // "document"
            "0164"        // alias "d"
            "00"          // no where
            "01"          // 1 select column
            "0164"        // alias "d"
            "0375726c"    // column "url"
            "01"          // distinct
            "00"          // 0 future PREs
            "0201"        // rem_pre: link L
            "01"          // 1 dest
            "09687474703a2f2f612f"  // "http://a/"
            "00");        // ack_mode false
}

TEST(WireGoldenTest, EmptyReportImage) {
  query::QueryReport report;
  report.id.user = "u";
  report.id.reply_host = "h";
  report.id.reply_port = 1;
  report.id.query_number = 1;
  serialize::Encoder enc;
  report.EncodeTo(&enc);
  EXPECT_EQ(Hex(enc.data()), "0175" "0168" "0100" "01000000" "00");
}

}  // namespace
}  // namespace webdis
