#include <gtest/gtest.h>

#include "common/rng.h"
#include "serialize/encoder.h"
#include "serialize/framing.h"

namespace webdis::serialize {
namespace {

// -- Encoder / Decoder --------------------------------------------------------

TEST(EncoderTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU16(0xBEEF);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFULL);
  enc.PutBool(true);
  enc.PutBool(false);

  Decoder dec(enc.data());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  bool b1, b2;
  ASSERT_TRUE(dec.GetU8(&u8).ok());
  ASSERT_TRUE(dec.GetU16(&u16).ok());
  ASSERT_TRUE(dec.GetU32(&u32).ok());
  ASSERT_TRUE(dec.GetU64(&u64).ok());
  ASSERT_TRUE(dec.GetBool(&b1).ok());
  ASSERT_TRUE(dec.GetBool(&b2).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(EncoderTest, VarintBoundaries) {
  for (uint64_t v : std::initializer_list<uint64_t>{
           0, 1, 127, 128, 16383, 16384, UINT64_MAX}) {
    Encoder enc;
    enc.PutVarint(v);
    Decoder dec(enc.data());
    uint64_t out = 0;
    ASSERT_TRUE(dec.GetVarint(&out).ok()) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(EncoderTest, VarintSizeIsMinimal) {
  Encoder enc;
  enc.PutVarint(127);
  EXPECT_EQ(enc.size(), 1u);
  Encoder enc2;
  enc2.PutVarint(128);
  EXPECT_EQ(enc2.size(), 2u);
}

TEST(EncoderTest, StringRoundTrip) {
  Encoder enc;
  enc.PutString("");
  enc.PutString("hello");
  std::string binary("\x00\x01\xff", 3);
  enc.PutString(binary);
  Decoder dec(enc.data());
  std::string a, b, c;
  ASSERT_TRUE(dec.GetString(&a).ok());
  ASSERT_TRUE(dec.GetString(&b).ok());
  ASSERT_TRUE(dec.GetString(&c).ok());
  EXPECT_EQ(a, "");
  EXPECT_EQ(b, "hello");
  EXPECT_EQ(c, binary);
}

TEST(DecoderTest, TruncationIsError) {
  Encoder enc;
  enc.PutU32(7);
  Decoder dec(enc.data().data(), 2);  // cut short
  uint32_t v;
  const Status s = dec.GetU32(&v);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(DecoderTest, StringLengthBeyondBufferIsError) {
  Encoder enc;
  enc.PutVarint(1000);  // claims 1000 bytes follow
  enc.PutRaw("abc", 3);
  Decoder dec(enc.data());
  std::string s;
  EXPECT_EQ(dec.GetString(&s).code(), StatusCode::kCorruption);
}

TEST(DecoderTest, OverlongVarintIsError) {
  std::vector<uint8_t> bytes(11, 0x80);  // never terminates within 64 bits
  Decoder dec(bytes.data(), bytes.size());
  uint64_t v;
  EXPECT_EQ(dec.GetVarint(&v).code(), StatusCode::kCorruption);
}

TEST(DecoderTest, BadBoolByteIsError) {
  const uint8_t byte = 7;
  Decoder dec(&byte, 1);
  bool b;
  EXPECT_EQ(dec.GetBool(&b).code(), StatusCode::kCorruption);
}

TEST(DecoderTest, GetCountAcceptsFeasiblePrefix) {
  Encoder enc;
  enc.PutVarint(3);
  enc.PutRaw("abcdef", 6);  // 2 bytes per item available
  Decoder dec(enc.data());
  uint64_t count = 0;
  ASSERT_TRUE(dec.GetCount("item", 10, /*min_bytes_per_item=*/2, &count).ok());
  EXPECT_EQ(count, 3u);
}

TEST(DecoderTest, GetCountRejectsOverCap) {
  Encoder enc;
  enc.PutVarint(11);
  enc.PutRaw(std::string(64, 'x').data(), 64);  // plenty of bytes: cap decides
  Decoder dec(enc.data());
  uint64_t count = 0;
  const Status s = dec.GetCount("item", 10, /*min_bytes_per_item=*/1, &count);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("item"), std::string::npos);
}

TEST(DecoderTest, GetCountRejectsInfeasibleCount) {
  // Claims 5 items needing >= 4 bytes each, but only 6 bytes remain. The
  // truncation must be detected before any allocation or decode loop.
  Encoder enc;
  enc.PutVarint(5);
  enc.PutRaw("abcdef", 6);
  Decoder dec(enc.data());
  uint64_t count = 0;
  const Status s = dec.GetCount("item", 1000, /*min_bytes_per_item=*/4,
                                &count);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(DecoderTest, GetCountHugeCountDoesNotOverflow) {
  // count * min_bytes_per_item would wrap a u64; the division-phrased
  // feasibility gate must still reject.
  Encoder enc;
  enc.PutVarint(UINT64_MAX);
  enc.PutRaw("abcdefgh", 8);
  Decoder dec(enc.data());
  uint64_t count = 0;
  const Status s = dec.GetCount("item", UINT64_MAX,
                                /*min_bytes_per_item=*/8, &count);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(DecoderTest, GetCountZeroMinBytesSkipsFeasibilityGate) {
  Encoder enc;
  enc.PutVarint(4);  // nothing follows; items may be zero-width
  Decoder dec(enc.data());
  uint64_t count = 0;
  ASSERT_TRUE(dec.GetCount("item", 10, /*min_bytes_per_item=*/0, &count).ok());
  EXPECT_EQ(count, 4u);
}

TEST(DecoderTest, ExpectAtEndDetectsTrailingGarbage) {
  Encoder enc;
  enc.PutU32(7);
  enc.PutU8(0xEE);  // trailing byte
  Decoder dec(enc.data());
  uint32_t v = 0;
  ASSERT_TRUE(dec.GetU32(&v).ok());
  const Status s = dec.ExpectAtEnd("test message");
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("test message"), std::string::npos);
}

TEST(DecoderTest, ExpectAtEndPassesWhenConsumed) {
  Encoder enc;
  enc.PutU32(7);
  Decoder dec(enc.data());
  uint32_t v = 0;
  ASSERT_TRUE(dec.GetU32(&v).ok());
  EXPECT_TRUE(dec.ExpectAtEnd("test message").ok());
}

TEST(EncoderTest, FuzzRoundTripMixedFields) {
  // Property: any sequence of typed puts decodes back identically.
  Rng rng(2024);
  for (int round = 0; round < 50; ++round) {
    Encoder enc;
    std::vector<int> kinds;
    std::vector<uint64_t> ints;
    std::vector<std::string> strings;
    const int n = 1 + static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < n; ++i) {
      const int kind = static_cast<int>(rng.Uniform(3));
      kinds.push_back(kind);
      if (kind == 0) {
        const uint64_t v = rng.Next();
        ints.push_back(v);
        enc.PutU64(v);
      } else if (kind == 1) {
        const uint64_t v = rng.Next() >> rng.Uniform(64);
        ints.push_back(v);
        enc.PutVarint(v);
      } else {
        std::string s;
        const size_t len = rng.Uniform(50);
        for (size_t j = 0; j < len; ++j) {
          s.push_back(static_cast<char>(rng.Uniform(256)));
        }
        strings.push_back(s);
        enc.PutString(s);
      }
    }
    Decoder dec(enc.data());
    size_t ii = 0, si = 0;
    for (int kind : kinds) {
      if (kind == 0) {
        uint64_t v;
        ASSERT_TRUE(dec.GetU64(&v).ok());
        EXPECT_EQ(v, ints[ii++]);
      } else if (kind == 1) {
        uint64_t v;
        ASSERT_TRUE(dec.GetVarint(&v).ok());
        EXPECT_EQ(v, ints[ii++]);
      } else {
        std::string s;
        ASSERT_TRUE(dec.GetString(&s).ok());
        EXPECT_EQ(s, strings[si++]);
      }
    }
    EXPECT_TRUE(dec.AtEnd());
  }
}

// -- Framing --------------------------------------------------------------------

TEST(FramingTest, EncodeDecodeRoundTrip) {
  const std::vector<uint8_t> payload{1, 2, 3, 4, 5};
  const std::vector<uint8_t> frame = EncodeFrame(9, payload);
  EXPECT_EQ(frame.size(), kFrameHeaderSize + payload.size());
  auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, 9);
  EXPECT_EQ(decoded->payload, payload);
}

TEST(FramingTest, EmptyPayload) {
  const std::vector<uint8_t> frame = EncodeFrame(1, {});
  auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(FramingTest, BadMagicRejected) {
  std::vector<uint8_t> frame = EncodeFrame(1, {1, 2});
  frame[0] ^= 0xFF;
  EXPECT_EQ(DecodeFrame(frame).status().code(), StatusCode::kCorruption);
}

TEST(FramingTest, BadVersionRejected) {
  std::vector<uint8_t> frame = EncodeFrame(1, {1, 2});
  frame[4] = 99;
  EXPECT_EQ(DecodeFrame(frame).status().code(), StatusCode::kCorruption);
}

TEST(FramingTest, LengthMismatchRejected) {
  std::vector<uint8_t> frame = EncodeFrame(1, {1, 2, 3});
  frame.push_back(0);  // trailing garbage
  EXPECT_EQ(DecodeFrame(frame).status().code(), StatusCode::kCorruption);
}

TEST(FramingTest, ShortFrameRejected) {
  const std::vector<uint8_t> tiny{1, 2, 3};
  EXPECT_EQ(DecodeFrame(tiny).status().code(), StatusCode::kCorruption);
}

TEST(FrameReaderTest, ReassemblesAcrossArbitraryChunks) {
  const std::vector<uint8_t> f1 = EncodeFrame(1, {10, 20});
  const std::vector<uint8_t> f2 = EncodeFrame(2, {30});
  std::vector<uint8_t> stream = f1;
  stream.insert(stream.end(), f2.begin(), f2.end());

  // Feed one byte at a time — worst-case fragmentation.
  FrameReader reader;
  std::vector<Frame> frames;
  for (uint8_t byte : stream) {
    reader.Feed(&byte, 1);
    Frame frame;
    auto next = reader.Next(&frame);
    ASSERT_TRUE(next.ok());
    if (next.value()) frames.push_back(std::move(frame));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, 1);
  EXPECT_EQ(frames[0].payload, (std::vector<uint8_t>{10, 20}));
  EXPECT_EQ(frames[1].type, 2);
  EXPECT_EQ(frames[1].payload, (std::vector<uint8_t>{30}));
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(FrameReaderTest, CorruptStreamSurfacesError) {
  FrameReader reader;
  std::vector<uint8_t> garbage(kFrameHeaderSize, 0x42);
  reader.Feed(garbage.data(), garbage.size());
  Frame frame;
  EXPECT_EQ(reader.Next(&frame).status().code(), StatusCode::kCorruption);
}

TEST(FramingTest, OversizedLengthRejectedBeforeAllocation) {
  // A frame header claiming > kMaxFrameLength must be treated as corrupt
  // rather than honoured with a giant allocation.
  Encoder enc;
  enc.PutU32(kFrameMagic);
  enc.PutU8(kWireVersion);
  enc.PutU8(1);
  enc.PutU32(kMaxFrameLength + 1);
  std::vector<uint8_t> bogus = enc.Release();
  bogus.resize(kFrameHeaderSize + 4);  // a few payload bytes
  EXPECT_EQ(DecodeFrame(bogus).status().code(), StatusCode::kCorruption);

  FrameReader reader;
  reader.Feed(bogus.data(), bogus.size());
  Frame frame;
  EXPECT_EQ(reader.Next(&frame).status().code(), StatusCode::kCorruption);
}

TEST(FrameReaderTest, PartialFrameNeedsMoreBytes) {
  const std::vector<uint8_t> f = EncodeFrame(1, {1, 2, 3});
  FrameReader reader;
  reader.Feed(f.data(), f.size() - 1);
  Frame frame;
  auto next = reader.Next(&frame);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next.value());
}

}  // namespace
}  // namespace webdis::serialize
