#include <gtest/gtest.h>

#include "net/fault.h"
#include "net/reliable.h"
#include "net/sim.h"
#include "serialize/framing.h"
#include "net/tcp.h"
#include "serialize/encoder.h"

namespace webdis::net {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> v) { return v; }

// -- SimNetwork -------------------------------------------------------------------

struct Received {
  Endpoint from;
  MessageType type;
  std::vector<uint8_t> payload;
};

TEST(SimNetworkTest, DeliversToListener) {
  SimNetwork net;
  std::vector<Received> received;
  ASSERT_TRUE(net.Listen({"b", 1}, [&](const Endpoint& from,
                                       MessageType type,
                                       const std::vector<uint8_t>& payload) {
                    received.push_back({from, type, payload});
                  })
                  .ok());
  ASSERT_TRUE(
      net.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, Bytes({1, 2}))
          .ok());
  net.RunUntilIdle();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].from.host, "a");
  EXPECT_EQ(received[0].type, MessageType::kWebQuery);
  EXPECT_EQ(received[0].payload, Bytes({1, 2}));
}

TEST(SimNetworkTest, ConnectionRefusedWithoutListener) {
  SimNetwork net;
  const Status s =
      net.Send({"a", 2}, {"b", 1}, MessageType::kReport, Bytes({1}));
  EXPECT_EQ(s.code(), StatusCode::kConnectionRefused);
  EXPECT_EQ(net.connection_refused_count(), 1u);
  EXPECT_EQ(net.total_traffic().messages, 0u);  // nothing metered
}

TEST(SimNetworkTest, DuplicateBindRejected) {
  SimNetwork net;
  auto handler = [](const Endpoint&, MessageType,
                    const std::vector<uint8_t>&) {};
  ASSERT_TRUE(net.Listen({"b", 1}, handler).ok());
  EXPECT_FALSE(net.Listen({"b", 1}, handler).ok());
}

TEST(SimNetworkTest, CloseListenerRefusesAndDropsInFlight) {
  SimNetwork net;
  int delivered = 0;
  ASSERT_TRUE(net.Listen({"b", 1},
                         [&](const Endpoint&, MessageType,
                             const std::vector<uint8_t>&) { ++delivered; })
                  .ok());
  // Accepted, then the listener closes while in flight.
  ASSERT_TRUE(
      net.Send({"a", 2}, {"b", 1}, MessageType::kReport, Bytes({1})).ok());
  net.CloseListener({"b", 1});
  net.RunUntilIdle();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.dropped_count(), 1u);
  // And new sends are refused.
  EXPECT_EQ(net.Send({"a", 2}, {"b", 1}, MessageType::kReport, Bytes({1}))
                .code(),
            StatusCode::kConnectionRefused);
}

TEST(SimNetworkTest, TimeAdvancesByLatencyAndBandwidth) {
  SimNetworkOptions options;
  options.inter_host_latency = 10 * kMillisecond;
  options.same_host_latency = 1 * kMillisecond;
  options.bandwidth_bytes_per_sec = 1000;  // 1 byte per ms
  SimNetwork net(options);
  ASSERT_TRUE(net.Listen({"b", 1}, [](const Endpoint&, MessageType,
                                      const std::vector<uint8_t>&) {})
                  .ok());
  const std::vector<uint8_t> payload(100 - serialize::kFrameHeaderSize, 7);
  ASSERT_TRUE(net.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, payload)
                  .ok());
  net.RunUntilIdle();
  // 10ms latency + 100 bytes at 1 byte/ms = 110 ms.
  EXPECT_EQ(net.now(), 110 * kMillisecond);
}

TEST(SimNetworkTest, SameHostCheaperThanInterHost) {
  SimNetwork net;
  ASSERT_TRUE(net.Listen({"a", 1}, [](const Endpoint&, MessageType,
                                      const std::vector<uint8_t>&) {})
                  .ok());
  ASSERT_TRUE(
      net.Send({"a", 2}, {"a", 1}, MessageType::kReport, Bytes({1})).ok());
  net.RunUntilIdle();
  const SimTime local_time = net.now();
  EXPECT_EQ(net.inter_host_traffic().messages, 0u);
  EXPECT_EQ(net.total_traffic().messages, 1u);
  EXPECT_LT(local_time, SimNetworkOptions().inter_host_latency);
}

TEST(SimNetworkTest, DeterministicFifoForEqualTimestamps) {
  SimNetwork net;
  std::vector<int> order;
  ASSERT_TRUE(net.Listen({"b", 1},
                         [&](const Endpoint&, MessageType,
                             const std::vector<uint8_t>& p) {
                           order.push_back(p[0]);
                         })
                  .ok());
  for (uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        net.Send({"a", 2}, {"b", 1}, MessageType::kReport, Bytes({i})).ok());
  }
  net.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimNetworkTest, SmallerMessagesOvertakeLargerOnes) {
  // The reordering hazard the robust CHT defends against: a later small
  // message arrives before an earlier large one.
  SimNetworkOptions options;
  options.bandwidth_bytes_per_sec = 1000;
  SimNetwork net(options);
  std::vector<std::string> order;
  ASSERT_TRUE(net.Listen({"b", 1},
                         [&](const Endpoint&, MessageType,
                             const std::vector<uint8_t>& p) {
                           order.push_back(p.size() > 100 ? "big" : "small");
                         })
                  .ok());
  ASSERT_TRUE(net.Send({"a", 2}, {"b", 1}, MessageType::kReport,
                       std::vector<uint8_t>(1000, 1))
                  .ok());
  ASSERT_TRUE(
      net.Send({"a", 2}, {"b", 1}, MessageType::kReport, Bytes({1})).ok());
  net.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<std::string>{"small", "big"}));
}

TEST(SimNetworkTest, DropFilterSimulatesLossAfterAccept) {
  SimNetwork net;
  int delivered = 0;
  ASSERT_TRUE(net.Listen({"b", 1},
                         [&](const Endpoint&, MessageType,
                             const std::vector<uint8_t>&) { ++delivered; })
                  .ok());
  net.SetDropFilter([](const Endpoint&, const Endpoint&, MessageType type) {
    return type == MessageType::kWebQuery;
  });
  // The send *succeeds* (connection accepted) but the message is lost.
  ASSERT_TRUE(
      net.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, Bytes({1})).ok());
  ASSERT_TRUE(
      net.Send({"a", 2}, {"b", 1}, MessageType::kReport, Bytes({1})).ok());
  net.RunUntilIdle();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.dropped_count(), 1u);
}

TEST(SimNetworkTest, ServiceTimeSerializesPerListener) {
  SimNetworkOptions options;
  options.inter_host_latency = 10 * kMillisecond;
  options.bandwidth_bytes_per_sec = 0;
  options.service_time = [](const Endpoint&, MessageType,
                            size_t) -> SimDuration {
    return 50 * kMillisecond;
  };
  SimNetwork net(options);
  std::vector<SimTime> deliveries_b;
  std::vector<SimTime> deliveries_c;
  ASSERT_TRUE(net.Listen({"b", 1},
                         [&](const Endpoint&, MessageType,
                             const std::vector<uint8_t>&) {
                           deliveries_b.push_back(net.now());
                         })
                  .ok());
  ASSERT_TRUE(net.Listen({"c", 1},
                         [&](const Endpoint&, MessageType,
                             const std::vector<uint8_t>&) {
                           deliveries_c.push_back(net.now());
                         })
                  .ok());
  // Three messages to b (serialized) and one to c (parallel endpoint).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        net.Send({"a", 1}, {"b", 1}, MessageType::kWebQuery, {}).ok());
  }
  ASSERT_TRUE(net.Send({"a", 1}, {"c", 1}, MessageType::kWebQuery, {}).ok());
  net.RunUntilIdle();
  // b: arrivals at 10ms, queueing: done at 60, 110, 160 ms.
  ASSERT_EQ(deliveries_b.size(), 3u);
  EXPECT_EQ(deliveries_b[0], 60 * kMillisecond);
  EXPECT_EQ(deliveries_b[1], 110 * kMillisecond);
  EXPECT_EQ(deliveries_b[2], 160 * kMillisecond);
  // c is an independent queue: done at 60 ms despite b's backlog.
  ASSERT_EQ(deliveries_c.size(), 1u);
  EXPECT_EQ(deliveries_c[0], 60 * kMillisecond);
}

TEST(SimNetworkTest, HostExtraLatencyDelaysBothDirections) {
  SimNetworkOptions options;
  options.inter_host_latency = 10 * kMillisecond;
  options.bandwidth_bytes_per_sec = 0;  // pure latency
  SimNetwork net(options);
  auto handler = [](const Endpoint&, MessageType,
                    const std::vector<uint8_t>&) {};
  ASSERT_TRUE(net.Listen({"slow", 1}, handler).ok());
  ASSERT_TRUE(net.Listen({"fast", 1}, handler).ok());
  net.SetHostExtraLatency("slow", 100 * kMillisecond);

  ASSERT_TRUE(net.Send({"a", 1}, {"fast", 1}, MessageType::kReport, {}).ok());
  net.RunUntilIdle();
  EXPECT_EQ(net.now(), 10 * kMillisecond);
  ASSERT_TRUE(net.Send({"a", 1}, {"slow", 1}, MessageType::kReport, {}).ok());
  net.RunUntilIdle();
  EXPECT_EQ(net.now(), 10 * kMillisecond + 110 * kMillisecond);
  // From the slow host is just as slow.
  ASSERT_TRUE(
      net.Send({"slow", 2}, {"fast", 1}, MessageType::kReport, {}).ok());
  net.RunUntilIdle();
  EXPECT_EQ(net.now(), 120 * kMillisecond + 110 * kMillisecond);
}

TEST(SimNetworkTest, KillHostClosesAllItsListeners) {
  SimNetwork net;
  auto handler = [](const Endpoint&, MessageType,
                    const std::vector<uint8_t>&) {};
  ASSERT_TRUE(net.Listen({"b", 1}, handler).ok());
  ASSERT_TRUE(net.Listen({"b", 2}, handler).ok());
  ASSERT_TRUE(net.Listen({"c", 1}, handler).ok());
  net.KillHost("b");
  EXPECT_EQ(net.Send({"a", 1}, {"b", 1}, MessageType::kReport, {}).code(),
            StatusCode::kConnectionRefused);
  EXPECT_EQ(net.Send({"a", 1}, {"b", 2}, MessageType::kReport, {}).code(),
            StatusCode::kConnectionRefused);
  EXPECT_TRUE(net.Send({"a", 1}, {"c", 1}, MessageType::kReport, {}).ok());
}

TEST(SimNetworkTest, HandlersMaySendMore) {
  SimNetwork net;
  int hops = 0;
  ASSERT_TRUE(net.Listen({"b", 1},
                         [&](const Endpoint&, MessageType,
                             const std::vector<uint8_t>& p) {
                           ++hops;
                           if (p[0] > 0) {
                             ASSERT_TRUE(net.Send({"b", 1}, {"b", 1},
                                                  MessageType::kReport,
                                                  Bytes({static_cast<uint8_t>(
                                                      p[0] - 1)}))
                                             .ok());
                           }
                         })
                  .ok());
  ASSERT_TRUE(
      net.Send({"a", 1}, {"b", 1}, MessageType::kReport, Bytes({4})).ok());
  net.RunUntilIdle();
  EXPECT_EQ(hops, 5);
}

TEST(SimNetworkTest, MetricsByTypeAndReset) {
  SimNetwork net;
  auto handler = [](const Endpoint&, MessageType,
                    const std::vector<uint8_t>&) {};
  ASSERT_TRUE(net.Listen({"b", 1}, handler).ok());
  ASSERT_TRUE(net.Send({"a", 1}, {"b", 1}, MessageType::kWebQuery,
                       Bytes({1, 2, 3}))
                  .ok());
  ASSERT_TRUE(
      net.Send({"a", 1}, {"b", 1}, MessageType::kReport, Bytes({1})).ok());
  EXPECT_EQ(net.traffic_for(MessageType::kWebQuery).messages, 1u);
  EXPECT_EQ(net.traffic_for(MessageType::kWebQuery).bytes,
            3 + serialize::kFrameHeaderSize);
  EXPECT_EQ(net.traffic_for(MessageType::kReport).messages, 1u);
  EXPECT_EQ(net.traffic_for(MessageType::kTerminate).messages, 0u);
  EXPECT_EQ(net.total_traffic().messages, 2u);
  net.ResetMetrics();
  EXPECT_EQ(net.total_traffic().messages, 0u);
  EXPECT_EQ(net.traffic_for(MessageType::kWebQuery).messages, 0u);
}

// -- TcpTransport --------------------------------------------------------------------

TEST(TcpTransportTest, LocalhostRoundTrip) {
  TcpTransport tcp;
  std::vector<Received> received;
  const Endpoint server{"serverhost", 39251};
  ASSERT_TRUE(tcp.Listen(server, [&](const Endpoint& from, MessageType type,
                                     const std::vector<uint8_t>& payload) {
                    received.push_back({from, type, payload});
                  })
                  .ok());
  const Endpoint client{"clienthost", 39252};
  ASSERT_TRUE(
      tcp.Send(client, server, MessageType::kWebQuery, Bytes({9, 8, 7}))
          .ok());
  tcp.PumpUntilIdle(100);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].from.host, "clienthost");
  EXPECT_EQ(received[0].from.port, 39252);
  EXPECT_EQ(received[0].type, MessageType::kWebQuery);
  EXPECT_EQ(received[0].payload, Bytes({9, 8, 7}));
  tcp.CloseListener(server);
}

TEST(TcpTransportTest, ConnectionRefusedAfterClose) {
  TcpTransport tcp;
  const Endpoint server{"s", 39253};
  ASSERT_TRUE(tcp.Listen(server, [](const Endpoint&, MessageType,
                                    const std::vector<uint8_t>&) {})
                  .ok());
  tcp.CloseListener(server);
  const Status s =
      tcp.Send({"c", 39254}, server, MessageType::kReport, Bytes({1}));
  EXPECT_EQ(s.code(), StatusCode::kConnectionRefused);
}

TEST(TcpTransportTest, LargePayloadSurvivesFragmentation) {
  // 1 MiB payload crosses many read() chunks; the frame reassembles.
  TcpTransport tcp;
  std::vector<uint8_t> received;
  const Endpoint server{"bigserver", 1};
  ASSERT_TRUE(tcp.Listen(server, [&](const Endpoint&, MessageType,
                                     const std::vector<uint8_t>& payload) {
                    received = payload;
                  })
                  .ok());
  std::vector<uint8_t> payload(1 << 20);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
  }
  ASSERT_TRUE(
      tcp.Send({"c", 1}, server, MessageType::kReport, payload).ok());
  tcp.PumpUntilIdle(200);
  EXPECT_EQ(received, payload);
  tcp.CloseListener(server);
}

TEST(TcpTransportTest, MultipleMessagesAndListeners) {
  TcpTransport tcp;
  int a_count = 0, b_count = 0;
  ASSERT_TRUE(tcp.Listen({"a", 39255},
                         [&](const Endpoint&, MessageType,
                             const std::vector<uint8_t>&) { ++a_count; })
                  .ok());
  ASSERT_TRUE(tcp.Listen({"b", 39256},
                         [&](const Endpoint&, MessageType,
                             const std::vector<uint8_t>&) { ++b_count; })
                  .ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(tcp.Send({"c", 1}, {"a", 39255}, MessageType::kReport,
                         Bytes({static_cast<uint8_t>(i)}))
                    .ok());
  }
  ASSERT_TRUE(
      tcp.Send({"c", 1}, {"b", 39256}, MessageType::kReport, Bytes({1}))
          .ok());
  tcp.PumpUntilIdle(100);
  EXPECT_EQ(a_count, 5);
  EXPECT_EQ(b_count, 1);
}

// -- Timers -----------------------------------------------------------------

TEST(SimNetworkTest, TimersShareTheEventQueueAndAdvanceTheClock) {
  SimNetwork net;
  std::vector<int> fired;
  net.ScheduleAfter(5 * kMillisecond, [&] { fired.push_back(2); });
  net.ScheduleAfter(1 * kMillisecond, [&] { fired.push_back(1); });
  const uint64_t cancelled =
      net.ScheduleAfter(3 * kMillisecond, [&] { fired.push_back(99); });
  EXPECT_TRUE(net.CancelTimer(cancelled));
  EXPECT_FALSE(net.CancelTimer(cancelled));  // already gone
  net.RunUntilIdle();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(net.now(), 5 * kMillisecond);
}

TEST(SimNetworkTest, TimerHandlersMaySendAndReschedule) {
  SimNetwork net;
  int received = 0;
  ASSERT_TRUE(net.Listen({"b", 1}, [&](const Endpoint&, MessageType,
                                       const std::vector<uint8_t>&) {
                    ++received;
                  })
                  .ok());
  net.ScheduleAfter(1 * kMillisecond, [&] {
    ASSERT_TRUE(
        net.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, Bytes({1})).ok());
    net.ScheduleAfter(1 * kMillisecond, [&] {
      ASSERT_TRUE(net.Send({"a", 2}, {"b", 1}, MessageType::kReport, Bytes({2}))
                      .ok());
    });
  });
  net.RunUntilIdle();
  EXPECT_EQ(received, 2);
}

// -- FaultPlan --------------------------------------------------------------

TEST(FaultPlanTest, TypeScopedDropOnlyAffectsThatType) {
  SimNetwork net;
  std::vector<MessageType> received;
  ASSERT_TRUE(net.Listen({"b", 1},
                         [&](const Endpoint&, MessageType type,
                             const std::vector<uint8_t>&) {
                           received.push_back(type);
                         })
                  .ok());
  FaultPlan plan;
  FaultPlan::Rule rule;
  rule.type = MessageType::kReport;
  rule.drop_prob = 1.0;
  plan.AddRule(rule);
  net.SetFaultPlan(&plan);
  ASSERT_TRUE(
      net.Send({"a", 2}, {"b", 1}, MessageType::kReport, Bytes({1})).ok());
  ASSERT_TRUE(
      net.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, Bytes({2})).ok());
  net.RunUntilIdle();
  EXPECT_EQ(received, (std::vector<MessageType>{MessageType::kWebQuery}));
  EXPECT_EQ(plan.stats().dropped, 1u);
  EXPECT_EQ(net.dropped_count(), 1u);
}

TEST(FaultPlanTest, CountPhaseWindowDropsExactlyTheThird) {
  SimNetwork net;
  std::vector<uint8_t> received;
  ASSERT_TRUE(net.Listen({"b", 1},
                         [&](const Endpoint&, MessageType,
                             const std::vector<uint8_t>& payload) {
                           received.push_back(payload[0]);
                         })
                  .ok());
  FaultPlan plan;
  FaultPlan::Rule rule;
  rule.skip_first = 2;
  rule.max_faults = 1;
  rule.drop_prob = 1.0;
  plan.AddRule(rule);
  net.SetFaultPlan(&plan);
  for (uint8_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        net.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, Bytes({i})).ok());
    net.RunUntilIdle();
  }
  EXPECT_EQ(received, (std::vector<uint8_t>{1, 2, 4, 5}));
  EXPECT_EQ(plan.stats().dropped, 1u);
}

TEST(FaultPlanTest, DuplicationDeliversExtraCopies) {
  SimNetwork net;
  int received = 0;
  ASSERT_TRUE(net.Listen({"b", 1}, [&](const Endpoint&, MessageType,
                                       const std::vector<uint8_t>&) {
                    ++received;
                  })
                  .ok());
  FaultPlan plan;
  FaultPlan::Rule rule;
  rule.duplicate_prob = 1.0;
  plan.AddRule(rule);
  net.SetFaultPlan(&plan);
  ASSERT_TRUE(
      net.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, Bytes({1})).ok());
  net.RunUntilIdle();
  EXPECT_EQ(received, 2);  // original + one duplicate
  EXPECT_EQ(plan.stats().duplicated, 1u);
}

TEST(FaultPlanTest, DelayRulePostponesDelivery) {
  SimNetworkOptions options;
  options.same_host_latency = 0;
  options.inter_host_latency = 1 * kMillisecond;
  options.bandwidth_bytes_per_sec = 1'000'000'000;
  SimNetwork net(options);
  ASSERT_TRUE(net.Listen({"b", 1}, [](const Endpoint&, MessageType,
                                      const std::vector<uint8_t>&) {})
                  .ok());
  FaultPlan plan;
  FaultPlan::Rule rule;
  rule.delay_prob = 1.0;
  rule.delay = 7 * kMillisecond;
  plan.AddRule(rule);
  net.SetFaultPlan(&plan);
  ASSERT_TRUE(
      net.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, Bytes({1})).ok());
  net.RunUntilIdle();
  EXPECT_EQ(net.now(), 8 * kMillisecond);  // latency + injected delay
  EXPECT_EQ(plan.stats().delayed, 1u);
}

TEST(FaultPlanTest, PartitionCutsBothDirectionsUntilHealed) {
  SimNetwork net;
  int received = 0;
  auto count = [&](const Endpoint&, MessageType,
                   const std::vector<uint8_t>&) { ++received; };
  ASSERT_TRUE(net.Listen({"a", 1}, count).ok());
  ASSERT_TRUE(net.Listen({"b", 1}, count).ok());
  FaultPlan plan;
  plan.Partition("a", "b");
  EXPECT_TRUE(plan.Partitioned("a", "b"));
  EXPECT_TRUE(plan.Partitioned("b", "a"));
  net.SetFaultPlan(&plan);
  ASSERT_TRUE(
      net.Send({"a", 1}, {"b", 1}, MessageType::kWebQuery, Bytes({1})).ok());
  ASSERT_TRUE(
      net.Send({"b", 1}, {"a", 1}, MessageType::kReport, Bytes({2})).ok());
  net.RunUntilIdle();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(plan.stats().partition_drops, 2u);

  plan.Heal("a", "b");
  EXPECT_FALSE(plan.Partitioned("a", "b"));
  ASSERT_TRUE(
      net.Send({"a", 1}, {"b", 1}, MessageType::kWebQuery, Bytes({3})).ok());
  net.RunUntilIdle();
  EXPECT_EQ(received, 1);
}

TEST(FaultPlanTest, TimeWindowScopesRule) {
  SimNetwork net;
  int received = 0;
  ASSERT_TRUE(net.Listen({"b", 1}, [&](const Endpoint&, MessageType,
                                       const std::vector<uint8_t>&) {
                    ++received;
                  })
                  .ok());
  FaultPlan plan;
  FaultPlan::Rule rule;
  rule.active_from = 10 * kMillisecond;
  rule.drop_prob = 1.0;
  plan.AddRule(rule);
  net.SetFaultPlan(&plan);
  // Before the window: delivered.
  ASSERT_TRUE(
      net.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, Bytes({1})).ok());
  // A timer moves the clock into the window; the send from there is dropped.
  net.ScheduleAfter(15 * kMillisecond, [&] {
    ASSERT_TRUE(
        net.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, Bytes({2})).ok());
  });
  net.RunUntilIdle();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(plan.stats().dropped, 1u);
}

// -- At-least-once delivery --------------------------------------------------

TEST(ReliableDeliveryTest, RetransmitsUntilAckedAndStripsEnvelope) {
  SimNetwork net;
  FaultPlan plan;
  FaultPlan::Rule lose_first;
  lose_first.type = MessageType::kWebQuery;
  lose_first.max_faults = 1;
  lose_first.drop_prob = 1.0;
  plan.AddRule(lose_first);
  net.SetFaultPlan(&plan);

  RetryOptions options;
  options.enabled = true;
  // Above the simulated ack round-trip, so only real losses retransmit.
  options.initial_timeout = 100 * kMillisecond;
  ReliableSender sender(&net, options);
  ReliableReceiver receiver(&net, /*enabled=*/true);

  std::vector<std::vector<uint8_t>> processed;
  ASSERT_TRUE(net.Listen({"b", 1},
                         [&](const Endpoint& from, MessageType,
                             const std::vector<uint8_t>& payload) {
                           std::vector<uint8_t> inner;
                           if (receiver.Accept({"b", 1}, from, payload,
                                               &inner)) {
                             processed.push_back(inner);
                           }
                         })
                  .ok());
  ASSERT_TRUE(net.Listen({"a", 2},
                         [&](const Endpoint&, MessageType type,
                             const std::vector<uint8_t>& payload) {
                           if (type == MessageType::kDeliveryAck) {
                             sender.OnAck(payload);
                           }
                         })
                  .ok());

  ASSERT_TRUE(
      sender.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, Bytes({9}))
          .ok());
  net.RunUntilIdle();
  ASSERT_EQ(processed.size(), 1u);
  EXPECT_EQ(processed[0], Bytes({9}));  // envelope stripped
  EXPECT_EQ(sender.stats().retries, 1u);
  EXPECT_EQ(sender.stats().acked, 1u);
  EXPECT_EQ(sender.pending_count(), 0u);

  // A duplicated transfer is acked again but processed only once.
  plan.HealAll();
  FaultPlan::Rule duplicate;
  duplicate.type = MessageType::kWebQuery;
  duplicate.duplicate_prob = 1.0;
  plan.AddRule(duplicate);
  ASSERT_TRUE(
      sender.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, Bytes({7}))
          .ok());
  net.RunUntilIdle();
  ASSERT_EQ(processed.size(), 2u);
  EXPECT_EQ(processed[1], Bytes({7}));
  EXPECT_EQ(receiver.suppressed_count(), 1u);
  EXPECT_EQ(sender.stats().duplicate_acks, 1u);
}

TEST(ReliableDeliveryTest, OverloadBackoffGrowsJitteredAndCapHolds) {
  // A persistently overloaded receiver NACKs every copy (PROTOCOL.md §7.2):
  // the transfer must move to the overload backoff class, grow its interval
  // per NACK, and never exceed overload_max_timeout — the cap is applied
  // after jitter, so it is a hard bound even under unbounded NACK streams.
  SimNetwork net;
  RetryOptions options;
  options.enabled = true;
  options.initial_timeout = 50 * kMillisecond;
  options.max_attempts = 10;
  options.overload_initial_timeout = 200 * kMillisecond;
  options.overload_backoff_factor = 2.0;
  options.overload_max_timeout = 1 * kSecond;
  options.overload_jitter = 0.5;
  options.jitter_seed = 42;
  ReliableSender sender(&net, options);
  ReliableReceiver receiver(&net, /*enabled=*/true);

  std::vector<SimTime> arrivals;
  ASSERT_TRUE(net.Listen({"b", 1},
                         [&](const Endpoint& from, MessageType,
                             const std::vector<uint8_t>& payload) {
                           uint64_t seq = 0;
                           if (!ReliableReceiver::PeekSeq(payload, &seq)) {
                             return;
                           }
                           arrivals.push_back(net.now());
                           receiver.SendOverloaded({"b", 1}, from, seq);
                         })
                  .ok());
  int overload_events = 0;
  sender.set_delivery_observer([&](const Endpoint&, DeliveryEvent event) {
    if (event == DeliveryEvent::kOverloadNack) ++overload_events;
  });
  ASSERT_TRUE(net.Listen({"a", 2},
                         [&](const Endpoint&, MessageType type,
                             const std::vector<uint8_t>& payload) {
                           if (type == MessageType::kOverloaded) {
                             sender.OnOverloaded(payload);
                           }
                         })
                  .ok());

  ASSERT_TRUE(
      sender.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, Bytes({1}))
          .ok());
  net.RunUntilIdle();

  // Every attempt arrived, was NACKed, and the transfer finally exhausted
  // (resends still count against max_attempts; the NACKs themselves don't).
  ASSERT_EQ(arrivals.size(), options.max_attempts);
  EXPECT_EQ(sender.stats().overload_nacks, options.max_attempts);
  EXPECT_EQ(overload_events, static_cast<int>(options.max_attempts));
  EXPECT_EQ(sender.stats().exhausted, 1u);
  EXPECT_EQ(sender.pending_count(), 0u);

  // Inter-send gaps = NACK round-trip + jittered overload interval. With
  // jitter 0.5 the factor lies in [0.75, 1.25], so even the first overload
  // gap clears the loss-recovery schedule, and growth hits the hard cap by
  // the 4th NACK (1600ms * 0.75 > cap): the late gaps are exactly equal.
  const SimDuration rtt_slack = 2 * 25 * kMillisecond;
  std::vector<SimDuration> gaps;
  for (size_t i = 1; i < arrivals.size(); ++i) {
    gaps.push_back(arrivals[i] - arrivals[i - 1]);
  }
  EXPECT_GE(gaps.front(),
            static_cast<SimDuration>(0.75 * options.overload_initial_timeout));
  for (const SimDuration gap : gaps) {
    EXPECT_LE(gap, options.overload_max_timeout + rtt_slack);
  }
  for (size_t i = 4; i < gaps.size(); ++i) {
    EXPECT_EQ(gaps[i], gaps[4]);  // pinned at the cap
    EXPECT_GE(gaps[i], options.overload_max_timeout);
  }
}

TEST(ReliableDeliveryTest, SiteRetiredNackIsTerminalNoFurtherRetransmission) {
  // Unlike kOverloaded ("try again later"), kSiteRetired (PROTOCOL.md
  // §10.2) is terminal: one NACK must erase the pending transfer, cancel
  // its retry timer, and surface DeliveryEvent::kSiteRetired — the
  // destination is gone for good, so any further retransmission is futile.
  SimNetwork net;
  RetryOptions options;
  options.enabled = true;
  options.initial_timeout = 50 * kMillisecond;
  options.max_attempts = 10;
  ReliableSender sender(&net, options);
  ReliableReceiver receiver(&net, /*enabled=*/true);

  int arrivals = 0;
  ASSERT_TRUE(net.Listen({"b", 1},
                         [&](const Endpoint& from, MessageType,
                             const std::vector<uint8_t>& payload) {
                           uint64_t seq = 0;
                           if (!ReliableReceiver::PeekSeq(payload, &seq)) {
                             return;
                           }
                           ++arrivals;
                           receiver.SendSiteRetired({"b", 1}, from, seq);
                         })
                  .ok());
  int retired_events = 0;
  sender.set_delivery_observer([&](const Endpoint&, DeliveryEvent event) {
    if (event == DeliveryEvent::kSiteRetired) ++retired_events;
  });
  ASSERT_TRUE(net.Listen({"a", 2},
                         [&](const Endpoint&, MessageType type,
                             const std::vector<uint8_t>& payload) {
                           if (type == MessageType::kSiteRetired) {
                             sender.OnSiteRetired(payload);
                           }
                         })
                  .ok());

  ASSERT_TRUE(
      sender.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, Bytes({1}))
          .ok());
  net.RunUntilIdle();

  // Exactly one copy ever reached the wire: the first NACK killed the
  // transfer despite the generous attempt budget.
  EXPECT_EQ(arrivals, 1);
  EXPECT_EQ(retired_events, 1);
  EXPECT_EQ(sender.stats().site_retired, 1u);
  EXPECT_EQ(sender.stats().retries, 0u);
  EXPECT_EQ(sender.stats().exhausted, 0u);
  EXPECT_EQ(sender.pending_count(), 0u);

  // A duplicate NACK for the same (now unknown) seq is a no-op, mirroring
  // OnAck's tolerance of duplicate receipts.
  serialize::Encoder enc;
  enc.PutU64(1);
  sender.OnSiteRetired(enc.data());
  EXPECT_EQ(sender.stats().site_retired, 1u);
}

TEST(FaultyTransportTest, DropSwallowsTheSendWithoutProbingAcceptance) {
  SimNetwork net;  // no listener anywhere
  FaultPlan plan;
  FaultPlan::Rule rule;
  rule.type = MessageType::kWebQuery;
  rule.drop_prob = 1.0;
  plan.AddRule(rule);
  FaultyTransport faulty(&net, &plan);
  // A dropped send cannot probe acceptance: it reports OK even though the
  // base transport would have refused synchronously.
  EXPECT_TRUE(
      faulty.Send({"a", 2}, {"b", 1}, MessageType::kWebQuery, Bytes({1}))
          .ok());
  EXPECT_EQ(plan.stats().dropped, 1u);
  // Without the plan faulting, refusal passes through.
  const Status s =
      faulty.Send({"a", 2}, {"b", 1}, MessageType::kReport, Bytes({2}));
  EXPECT_EQ(s.code(), StatusCode::kConnectionRefused);
}

}  // namespace
}  // namespace webdis::net
