#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace webdis {
namespace {

// -- Status -----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, EveryFactoryProducesMatchingCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NetworkError("x").code(), StatusCode::kNetworkError);
  EXPECT_EQ(Status::ConnectionRefused("x").code(),
            StatusCode::kConnectionRefused);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::TimedOut("x").code(), StatusCode::kTimedOut);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

// -- Result -------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  int half = 0;
  WEBDIS_ASSIGN_OR_RETURN(half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(7, &out).code(), StatusCode::kInvalidArgument);
}

// -- Strings ------------------------------------------------------------------

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("AbC123!"), "abc123!");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringsTest, Contains) {
  EXPECT_TRUE(Contains("hello world", "lo wo"));
  EXPECT_FALSE(Contains("hello", "world"));
  EXPECT_TRUE(Contains("abc", ""));
}

TEST(StringsTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("The CONVENER is here", "convener"));
  EXPECT_TRUE(ContainsIgnoreCase("Laboratories", "LAB"));
  EXPECT_FALSE(ContainsIgnoreCase("short", "a longer needle"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("x", "http://"));
  EXPECT_TRUE(EndsWith("index.html", ".html"));
  EXPECT_FALSE(EndsWith("html", "index.html"));
}

TEST(StringsTest, SplitPreservesEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(StringsTest, CollapseWhitespace) {
  EXPECT_EQ(CollapseWhitespace("  a\n\t b   c "), "a b c");
  EXPECT_EQ(CollapseWhitespace("\n \t"), "");
}

TEST(StringsTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(StringsTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-3", &v));
}

// -- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const uint64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all of 3, 4, 5 hit
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Bernoulli(0.3);
  }
  EXPECT_GT(hits, 2600);
  EXPECT_LT(hits, 3400);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(7);
  std::vector<int> v{1, 2, 3, 4, 5};
  rng.Shuffle(&v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 5u);
}

}  // namespace
}  // namespace webdis
