// Overload protection & graceful degradation (PROTOCOL.md §7): circuit
// breaker state machine units, admission-control shedding and eviction,
// per-query budget enforcement at every layer, breaker trip/probe/recovery
// end to end, and randomized schedules mixing overload with the §6 fault
// machinery — asserting the degradation contract: the CHT always drains,
// and every clone cut by overload protection is named in the outcome.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/user_site.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/engine.h"
#include "disql/compiler.h"
#include "html/url.h"
#include "net/breaker.h"
#include "net/sim.h"
#include "server/query_server.h"
#include "web/topologies.h"
#include "web/university.h"

namespace webdis {
namespace {

std::set<std::string> AllRowKeys(
    const std::vector<relational::ResultSet>& results) {
  std::set<std::string> keys;
  for (const relational::ResultSet& rs : results) {
    for (const relational::Tuple& row : rs.rows) {
      std::string key = Join(rs.column_labels, ",") + ":";
      for (const relational::Value& v : row) key += v.ToString() + "|";
      keys.insert(std::move(key));
    }
  }
  return keys;
}

// -- HostBreakers state machine ----------------------------------------------

net::BreakerOptions PlainBreaker() {
  net::BreakerOptions options;
  options.enabled = true;
  options.failure_threshold = 3;
  options.open_timeout = 1 * kSecond;
  options.open_timeout_jitter = 0;  // deterministic intervals for the units
  options.half_open_probes = 1;
  return options;
}

TEST(HostBreakersTest, TripsAfterConsecutiveFailures) {
  net::HostBreakers breakers(PlainBreaker());
  EXPECT_TRUE(breakers.Allow("h", 0));
  breakers.RecordFailure("h", 0);
  breakers.RecordFailure("h", 0);
  EXPECT_EQ(breakers.GetState("h", 0), net::HostBreakers::State::kClosed);
  EXPECT_TRUE(breakers.Allow("h", 0));
  breakers.RecordFailure("h", 0);
  EXPECT_EQ(breakers.GetState("h", 0), net::HostBreakers::State::kOpen);
  EXPECT_FALSE(breakers.Allow("h", 100));
  EXPECT_EQ(breakers.stats().trips, 1u);
  EXPECT_EQ(breakers.stats().short_circuits, 1u);
  // Hosts are independent: tripping "h" does not touch "other".
  EXPECT_TRUE(breakers.Allow("other", 100));
}

TEST(HostBreakersTest, SuccessResetsTheConsecutiveCount) {
  net::HostBreakers breakers(PlainBreaker());
  breakers.RecordFailure("h", 0);
  breakers.RecordFailure("h", 0);
  breakers.RecordSuccess("h", 0);  // streak broken
  breakers.RecordFailure("h", 0);
  breakers.RecordFailure("h", 0);
  EXPECT_EQ(breakers.GetState("h", 0), net::HostBreakers::State::kClosed);
  breakers.RecordFailure("h", 0);
  EXPECT_EQ(breakers.GetState("h", 0), net::HostBreakers::State::kOpen);
}

TEST(HostBreakersTest, HalfOpenProbeClosesOnSuccessRetripsOnFailure) {
  net::HostBreakers breakers(PlainBreaker());
  for (int i = 0; i < 3; ++i) breakers.RecordFailure("h", 0);
  ASSERT_EQ(breakers.GetState("h", 0), net::HostBreakers::State::kOpen);
  EXPECT_FALSE(breakers.Allow("h", 1 * kSecond - 1));

  // Open interval elapsed: exactly one probe is admitted; further sends
  // short-circuit until the probe's outcome arrives.
  EXPECT_EQ(breakers.GetState("h", 1 * kSecond),
            net::HostBreakers::State::kHalfOpen);
  EXPECT_TRUE(breakers.Allow("h", 1 * kSecond));
  EXPECT_FALSE(breakers.Allow("h", 1 * kSecond));
  EXPECT_EQ(breakers.stats().probes, 1u);

  // Probe failed: back to open for a fresh interval.
  breakers.RecordFailure("h", 1 * kSecond);
  EXPECT_EQ(breakers.GetState("h", 1 * kSecond + 1),
            net::HostBreakers::State::kOpen);
  EXPECT_EQ(breakers.stats().trips, 2u);

  // Next interval's probe succeeds: closed again, and the recovered host
  // starts with a clean failure count.
  EXPECT_TRUE(breakers.Allow("h", 2 * kSecond + 1));
  breakers.RecordSuccess("h", 2 * kSecond + 1);
  EXPECT_EQ(breakers.GetState("h", 3 * kSecond),
            net::HostBreakers::State::kClosed);
  EXPECT_EQ(breakers.stats().recoveries, 1u);
  EXPECT_TRUE(breakers.Allow("h", 3 * kSecond));
}

TEST(HostBreakersTest, JitteredOpenIntervalStaysBounded) {
  net::BreakerOptions options = PlainBreaker();
  options.open_timeout_jitter = 0.5;  // factor in [0.75, 1.25]
  options.seed = 7;
  net::HostBreakers breakers(options);
  for (int i = 0; i < 3; ++i) breakers.RecordFailure("h", 0);
  EXPECT_EQ(breakers.GetState("h", 749 * kMillisecond),
            net::HostBreakers::State::kOpen);
  EXPECT_EQ(breakers.GetState("h", 1250 * kMillisecond),
            net::HostBreakers::State::kHalfOpen);
}

TEST(HostBreakersTest, DisabledBankIsTransparent) {
  net::HostBreakers breakers(net::BreakerOptions{});  // enabled = false
  for (int i = 0; i < 10; ++i) breakers.RecordFailure("h", 0);
  EXPECT_TRUE(breakers.Allow("h", 0));
  EXPECT_EQ(breakers.stats().trips, 0u);
}

// -- Per-query budgets (engine level) ----------------------------------------

struct UniFixture {
  web::UniversityWeb uni;
  disql::CompiledQuery compiled;
  std::set<std::string> reference;
  uint64_t reference_forwards = 0;

  UniFixture() {
    web::UniversityOptions options;
    options.seed = 11;
    options.departments = 2;
    options.labs_per_department = 2;
    uni = web::GenerateUniversityWeb(options);
    auto result = disql::CompileDisql(uni.convener_disql);
    EXPECT_TRUE(result.ok());
    compiled = std::move(result.value());
    core::Engine engine(&uni.web);
    auto outcome = engine.RunCompiled(compiled);
    EXPECT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->completed);
    reference = AllRowKeys(outcome->results);
    reference_forwards = outcome->server_stats.clones_forwarded;
    EXPECT_FALSE(reference.empty());
    EXPECT_GT(reference_forwards, 0u);
  }
};

TEST(BudgetTest, HopLimitOneStopsAtTheStartNodes) {
  UniFixture f;
  core::EngineOptions options;
  options.client.budget_max_hops = 1;
  options.fallback_processing = false;
  core::Engine engine(&f.uni.web, options);
  auto outcome = engine.RunCompiled(f.compiled);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  // Every would-be forward was vetoed and reported — the query still
  // reaches a verdict, explicitly budget-degraded, with zero forwards.
  EXPECT_EQ(outcome->server_stats.clones_forwarded, 0u);
  EXPECT_GT(outcome->server_stats.budget_vetoed_forwards, 0u);
  EXPECT_TRUE(outcome->budget_exhausted);
  EXPECT_FALSE(outcome->budget_exceeded_nodes.empty());
  EXPECT_FALSE(outcome->partial);
  const std::set<std::string> keys = AllRowKeys(outcome->results);
  for (const std::string& key : keys) EXPECT_TRUE(f.reference.contains(key));
  EXPECT_LT(keys.size(), f.reference.size());
}

TEST(BudgetTest, GenerousHopLimitChangesNothing) {
  UniFixture f;
  core::EngineOptions options;
  options.client.budget_max_hops = 64;
  core::Engine engine(&f.uni.web, options);
  auto outcome = engine.RunCompiled(f.compiled);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  EXPECT_FALSE(outcome->budget_exhausted);
  EXPECT_EQ(outcome->server_stats.budget_vetoed_forwards, 0u);
  EXPECT_EQ(AllRowKeys(outcome->results), f.reference);
}

TEST(BudgetTest, ExpiredDeadlineIsReportedNeverSilent) {
  UniFixture f;
  core::EngineOptions options;
  // One virtual microsecond: every clone is dead on arrival (inter-host
  // latency alone is 20ms), so the whole traversal degrades away — but the
  // CHT still settles through the budget-exceeded reports.
  options.client.budget_deadline = 1 * kMicrosecond;
  options.fallback_processing = false;
  core::Engine engine(&f.uni.web, options);
  auto outcome = engine.RunCompiled(f.compiled);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  EXPECT_TRUE(outcome->budget_exhausted);
  EXPECT_GT(outcome->server_stats.budget_expired_clones, 0u);
  EXPECT_EQ(outcome->TotalRows(), 0u);
  EXPECT_EQ(outcome->server_stats.nodes_processed, 0u);
  EXPECT_FALSE(outcome->partial);  // degraded by policy, not by failure
}

TEST(BudgetTest, CloneAllowanceBoundsTheForwardingTree) {
  UniFixture f;
  core::EngineOptions options;
  options.client.budget_max_clones = 2;
  options.fallback_processing = false;
  core::Engine engine(&f.uni.web, options);
  auto outcome = engine.RunCompiled(f.compiled);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  // The allowance pays one unit per dispatched clone, split across children:
  // total dispatches over the whole traversal can never exceed the stamp.
  EXPECT_LE(outcome->server_stats.clones_forwarded, 2u);
  EXPECT_LT(outcome->server_stats.clones_forwarded, f.reference_forwards);
  EXPECT_TRUE(outcome->budget_exhausted);
  const std::set<std::string> keys = AllRowKeys(outcome->results);
  for (const std::string& key : keys) EXPECT_TRUE(f.reference.contains(key));
}

TEST(BudgetTest, RowCapTruncatesVisitsButDeliversSurvivors) {
  UniFixture f;
  // The sitemap query returns every anchor of every reachable page — many
  // rows per visit, so a per-visit cap of 1 must truncate.
  const std::string sitemap =
      "select a.base, a.href from document d such that \"" + f.uni.root_url +
      "\" G.(L*1) d, anchor a";
  auto compiled = disql::CompileDisql(sitemap);
  ASSERT_TRUE(compiled.ok());
  std::set<std::string> reference;
  {
    core::Engine engine(&f.uni.web);
    auto outcome = engine.RunCompiled(compiled.value());
    ASSERT_TRUE(outcome.ok());
    reference = AllRowKeys(outcome->results);
  }
  ASSERT_GT(reference.size(), 4u);

  core::EngineOptions options;
  options.client.budget_max_rows_per_visit = 1;
  core::Engine engine(&f.uni.web, options);
  auto outcome = engine.RunCompiled(compiled.value());
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  EXPECT_GT(outcome->server_stats.rows_truncated, 0u);
  EXPECT_TRUE(outcome->budget_exhausted);
  EXPECT_FALSE(outcome->budget_exceeded_nodes.empty());
  // Truncated visits still deliver their surviving rows AND their CHT
  // entries: the traversal continues, only each visit's yield shrinks.
  const std::set<std::string> keys = AllRowKeys(outcome->results);
  EXPECT_GT(keys.size(), 0u);
  EXPECT_LT(keys.size(), reference.size());
  for (const std::string& key : keys) EXPECT_TRUE(reference.contains(key));
  EXPECT_GT(outcome->client_stats.budget_exceeded_reports, 0u);
}

// -- Admission control (engine level) ----------------------------------------

std::string RootHost(const web::UniversityWeb& uni) {
  auto parsed = html::ParseUrl(uni.root_url);
  EXPECT_TRUE(parsed.ok());
  return parsed->host;
}

TEST(AdmissionTest, TrackedShedIsLosslessViaOverloadBackoff) {
  UniFixture f;
  core::EngineOptions options;
  options.server.retry.enabled = true;
  options.server.retry.initial_timeout = 100 * kMillisecond;
  options.server.retry.max_attempts = 8;
  options.server.retry.overload_initial_timeout = 300 * kMillisecond;
  options.server.retry.overload_max_timeout = 2 * kSecond;
  options.client.retry = options.server.retry;
  options.client.entry_deadline = 30 * kSecond;
  // Only the StartNode site is admission-limited (server_overrides): six
  // simultaneous queries overflow its 2-slot queue.
  server::QueryServerOptions hot = options.server;
  hot.admission.max_pending = 2;
  hot.admission.service_time = 100 * kMillisecond;
  options.server_overrides[RootHost(f.uni)] = hot;
  core::Engine engine(&f.uni.web, options);

  const core::TrafficSummary before = engine.TrafficSnapshot();
  std::vector<query::QueryId> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = engine.Submit(f.compiled);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  engine.network().RunUntilIdle();

  const server::QueryServerStats stats = engine.AggregateServerStats();
  EXPECT_GT(stats.clones_shed, 0u);
  EXPECT_GT(stats.overload_nacks_sent, 0u);
  EXPECT_LE(stats.queue_peak, 2u);
  // The client's sender really did move shed dispatches to the overload
  // backoff class instead of the loss-recovery schedule.
  EXPECT_GT(engine.user_site().retry_stats().overload_nacks, 0u);

  // Lossless: every NACKed clone came back once the queue drained — all six
  // queries complete with the exact answer, none degraded.
  for (const query::QueryId& id : ids) {
    core::RunOutcome outcome = engine.CollectOutcome(id, before);
    EXPECT_TRUE(outcome.completed);
    EXPECT_FALSE(outcome.partial);
    EXPECT_FALSE(outcome.budget_exhausted);
    EXPECT_EQ(AllRowKeys(outcome.results), f.reference);
  }
}

TEST(AdmissionTest, UntrackedShedIsTerminalButExplicit) {
  UniFixture f;
  core::EngineOptions options;  // retry disabled: no NACK channel
  options.fallback_processing = false;
  server::QueryServerOptions hot = options.server;
  hot.admission.max_pending = 2;
  hot.admission.service_time = 100 * kMillisecond;
  options.server_overrides[RootHost(f.uni)] = hot;
  core::Engine engine(&f.uni.web, options);

  const core::TrafficSummary before = engine.TrafficSnapshot();
  std::vector<query::QueryId> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = engine.Submit(f.compiled);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  engine.network().RunUntilIdle();

  EXPECT_GT(engine.AggregateServerStats().clones_shed, 0u);
  int exact = 0;
  int shed = 0;
  for (const query::QueryId& id : ids) {
    core::RunOutcome outcome = engine.CollectOutcome(id, before);
    // The degradation contract: shed or not, the CHT settles — and a shed
    // query names the nodes it lost instead of hanging.
    EXPECT_TRUE(outcome.completed);
    if (outcome.budget_exhausted) {
      ++shed;
      EXPECT_FALSE(outcome.budget_exceeded_nodes.empty());
      EXPECT_GT(outcome.client_stats.budget_exceeded_reports, 0u);
    } else {
      ++exact;
      EXPECT_EQ(AllRowKeys(outcome.results), f.reference);
    }
  }
  EXPECT_GT(exact, 0);
  EXPECT_GT(shed, 0);
}

TEST(AdmissionTest, EarliestDeadlineEvictionPrefersTheNearlyDead) {
  // Two user sites against the same admission-limited deployment: client A
  // stamps a short deadline, client B none. A's queued clone is evicted in
  // favor of B's newcomer (it would likely die in the queue anyway), and A
  // learns about it explicitly.
  web::Scenario scenario = web::BuildFig5Scenario();
  auto compiled = disql::CompileDisql(scenario.disql);
  ASSERT_TRUE(compiled.ok());
  auto parsed = html::ParseUrl(scenario.start_url);
  ASSERT_TRUE(parsed.ok());

  net::SimNetwork net;
  // Only the StartNode host is admission-limited (a hot site); everything
  // downstream is unconstrained so the only shed decision is the one under
  // test.
  server::QueryServerOptions hot_options;
  hot_options.admission.max_pending = 1;
  hot_options.admission.service_time = 1 * kSecond;  // queue stays full
  std::vector<std::unique_ptr<server::QueryServer>> servers;
  for (const std::string& host : scenario.web.Hosts()) {
    auto qs = std::make_unique<server::QueryServer>(
        host, &scenario.web, &net,
        host == parsed->host ? hot_options : server::QueryServerOptions{});
    ASSERT_TRUE(qs->Start().ok());
    qs->SetClock([&net] { return net.now(); });
    servers.push_back(std::move(qs));
  }

  client::UserSiteOptions a_options;
  a_options.budget_deadline = 50 * kMillisecond;
  client::UserSite a("user-a.site", &net, a_options);
  a.SetClock([&net] { return net.now(); });
  client::UserSite b("user-b.site", &net, client::UserSiteOptions{});
  b.SetClock([&net] { return net.now(); });

  // A submits first; B ten virtual milliseconds later, so A's clone is
  // already queued at the hot site when B's arrives and overflows it.
  auto id_a = a.Submit(compiled.value(), "alice");
  ASSERT_TRUE(id_a.ok());
  Result<query::QueryId> id_b = Status::Internal("not submitted");
  net.ScheduleAfter(10 * kMillisecond, [&] {
    id_b = b.Submit(compiled.value(), "bob");
  });
  net.RunUntilIdle();
  ASSERT_TRUE(id_b.ok());

  uint64_t evicted = 0;
  for (auto& qs : servers) evicted += qs->stats().clones_evicted;
  EXPECT_EQ(evicted, 1u);

  const client::UserSite::QueryRun* run_a = a.Find(id_a.value());
  const client::UserSite::QueryRun* run_b = b.Find(id_b.value());
  ASSERT_NE(run_a, nullptr);
  ASSERT_NE(run_b, nullptr);
  EXPECT_TRUE(run_a->completed);
  EXPECT_TRUE(run_a->budget_exhausted);
  EXPECT_FALSE(run_a->budget_exceeded_nodes.empty());
  EXPECT_TRUE(run_b->completed);
  EXPECT_FALSE(run_b->budget_exhausted);
  EXPECT_FALSE(AllRowKeys(run_b->results).empty());
  for (auto& qs : servers) qs->Stop();
}

// -- Circuit breaker (engine level) ------------------------------------------

TEST(BreakerTest, TripShortCircuitAndHalfOpenRecovery) {
  UniFixture f;
  core::EngineOptions options;
  options.server.breaker.enabled = true;
  options.server.breaker.failure_threshold = 1;
  options.server.breaker.open_timeout = 2 * kSecond;
  options.server.breaker.open_timeout_jitter = 0;
  core::Engine engine(&f.uni.web, options);

  // Pick a victim the traversal forwards to (not the StartNode site).
  const std::string root = RootHost(f.uni);
  std::string victim;
  for (const std::string& host : engine.participating_hosts()) {
    if (host != root) victim = host;
  }
  ASSERT_FALSE(victim.empty());
  server::QueryServer* victim_qs = engine.server_for(victim);
  ASSERT_NE(victim_qs, nullptr);
  victim_qs->Crash();

  // Run 1 while the victim is down: the first refused forward trips its
  // breaker everywhere a forwarder notices.
  auto first = engine.RunCompiled(f.compiled);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->completed);
  EXPECT_GT(first->server_stats.breaker_trips, 0u);

  // Run 2, still down: forwards to the victim short-circuit before any send
  // — immediate undeliverable outcomes, no connect attempt wasted.
  auto second = engine.RunCompiled(f.compiled);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->completed);
  EXPECT_GT(second->server_stats.breaker_short_circuits, 0u);

  // Load drops, the victim comes back, and the open interval passes.
  ASSERT_TRUE(victim_qs->Restart().ok());
  engine.network().ScheduleAfter(3 * kSecond, [] {});
  engine.network().RunUntilIdle();

  // Run 3: the half-open probe goes through, the breaker closes, and the
  // answer is exact again — recovery without any operator action.
  auto third = engine.RunCompiled(f.compiled);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->completed);
  EXPECT_GT(third->server_stats.breaker_probes, 0u);
  EXPECT_GT(third->server_stats.breaker_recoveries, 0u);
  EXPECT_EQ(third->fallback_node_count, 0u);
  EXPECT_EQ(AllRowKeys(third->results), f.reference);
}

// -- Randomized overload ∘ fault schedules -----------------------------------
// The §7 acceptance oracle, composed with PR 1's crash/restart machinery:
// under ANY mix of admission shedding, breaker trips, and server crashes —
// with retries and deadline GC enabled — every query terminates, rows are
// never duplicated, and degradation is always named (budget_exceeded_nodes /
// unreachable_hosts / fallback), never silent.

TEST(OverloadScheduleTest, RandomizedOverloadSchedulesAlwaysDrainTheCht) {
  UniFixture f;
  const std::vector<std::string> hosts = f.uni.web.Hosts();

  uint64_t total_shed = 0;
  uint64_t total_trips = 0;
  int degraded_runs = 0;
  int exact_runs = 0;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("overload schedule seed " + std::to_string(seed));
    Rng rng(seed * 7919);

    core::EngineOptions options;
    options.server.retry.enabled = true;
    options.server.retry.initial_timeout = 100 * kMillisecond;
    options.server.retry.max_timeout = 400 * kMillisecond;
    options.server.retry.max_attempts = 5;
    options.server.retry.overload_initial_timeout = 200 * kMillisecond;
    options.server.retry.overload_max_timeout = 1 * kSecond;
    options.server.retry.jitter_seed = seed;
    // Every server is admission-limited and breaker-armed.
    options.server.admission.max_pending = rng.UniformRange(1, 3);
    options.server.admission.service_time =
        rng.UniformRange(1, 30) * kMillisecond;
    options.server.breaker.enabled = true;
    options.server.breaker.failure_threshold = rng.UniformRange(1, 3);
    options.server.breaker.open_timeout =
        rng.UniformRange(200, 800) * kMillisecond;
    options.server.breaker.seed = seed;
    options.client.retry = options.server.retry;
    options.client.entry_deadline = 10 * kSecond;
    if (rng.Bernoulli(0.5)) {
      options.client.budget_deadline = rng.UniformRange(2, 8) * kSecond;
    }
    if (rng.Bernoulli(0.3)) {
      options.client.budget_max_hops = rng.UniformRange(2, 5);
    }
    core::Engine engine(&f.uni.web, options);

    // Half the schedules crash one non-root server mid-run and restart it —
    // shed vs crashed must stay distinguishable under composition.
    if (rng.Bernoulli(0.5)) {
      const std::string victim = rng.Pick(engine.participating_hosts());
      server::QueryServer* qs = engine.server_for(victim);
      ASSERT_NE(qs, nullptr);
      const SimDuration down = rng.UniformRange(30, 200) * kMillisecond;
      const SimDuration up = down + rng.UniformRange(100, 800) * kMillisecond;
      engine.network().ScheduleAfter(down, [qs] { qs->Crash(); });
      engine.network().ScheduleAfter(
          up, [qs] { EXPECT_TRUE(qs->Restart().ok()); });
    }

    // Two staggered queries keep the admission queues contended and give
    // the eviction policy distinct deadlines to compare.
    const core::TrafficSummary before = engine.TrafficSnapshot();
    std::vector<query::QueryId> ids;
    auto first = engine.Submit(f.compiled);
    ASSERT_TRUE(first.ok());
    ids.push_back(first.value());
    engine.network().ScheduleAfter(
        rng.UniformRange(1, 50) * kMillisecond, [&engine, &ids, &f] {
          auto id = engine.Submit(f.compiled);
          ASSERT_TRUE(id.ok());
          ids.push_back(id.value());
        });
    engine.network().RunUntilIdle();
    ASSERT_EQ(ids.size(), 2u);

    const server::QueryServerStats stats = engine.AggregateServerStats();
    total_shed += stats.clones_shed + stats.clones_evicted;
    total_trips += stats.breaker_trips;

    for (const query::QueryId& id : ids) {
      core::RunOutcome outcome = engine.CollectOutcome(id, before);
      // Invariant 1: the CHT always drains — never a hang.
      EXPECT_TRUE(outcome.completed);
      // Invariant 2: never a duplicated answer row.
      const std::set<std::string> keys = AllRowKeys(outcome.results);
      EXPECT_EQ(keys.size(), outcome.TotalRows());
      // Invariant 3: every form of degradation is named, and the answer is
      // exact unless some form was.
      const bool degraded = outcome.partial || outcome.budget_exhausted ||
                            outcome.fallback_node_count > 0;
      if (degraded) {
        ++degraded_runs;
        for (const std::string& key : keys) {
          EXPECT_TRUE(f.reference.contains(key)) << key;
        }
        if (outcome.partial) {
          EXPECT_FALSE(outcome.unreachable_hosts.empty());
        }
        if (outcome.budget_exhausted) {
          EXPECT_FALSE(outcome.budget_exceeded_nodes.empty());
        }
      } else {
        ++exact_runs;
        EXPECT_EQ(keys, f.reference);
      }
    }
  }

  // The sweep was no placebo: queues really overflowed, breakers really
  // tripped, and both exact and degraded verdicts occurred. Deterministic
  // given the seeds above.
  EXPECT_GT(total_shed, 0u);
  EXPECT_GT(total_trips, 0u);
  EXPECT_GT(exact_runs, 0);
  EXPECT_GT(degraded_runs, 0);
}

}  // namespace
}  // namespace webdis
