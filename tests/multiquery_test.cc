// Sharing-equivalence oracle (PROTOCOL.md §9): cross-query sharing — the
// node-query result cache (§9.1) and batched clone/report envelopes
// (§9.2/§9.3) — is a transport + evaluation optimization and must never
// change what a query *answers*. Every suite here runs the same randomized
// concurrent-query workload under the four sharing configurations
// {cache off/on} × {batching off/on} and byte-compares canonical per-query
// verdicts against the unshared baseline.
//
// Schedule design notes (what keeps byte-equality honest):
//  * The cache never changes message timing, so any schedule is fair game
//    for the cache-only configuration.
//  * Batching delays sends by the flush window, so schedules composed with
//    batching must converge to the same verdict regardless of message
//    timing: loss faults are paired with at-least-once retry (the final
//    row set is the reachable closure either way), degradation is induced
//    only through arrival-order-independent mechanisms (per-visit row
//    budgets, structural non-participation), and crash schedules avoid
//    loss faults and overloaded victims (an abandoned transfer — retry
//    refused against a down host — degrades by *timing*, which is exactly
//    what the equivalence oracle may not depend on). The crash-point suite
//    at the bottom drops those guardrails and checks the weaker fault_test
//    contract instead: exact or *explicitly* degraded, never silently
//    partial, never duplicated.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "baseline/data_shipping.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/engine.h"
#include "disql/compiler.h"
#include "net/fault.h"
#include "serialize/encoder.h"
#include "serialize/framing.h"
#include "server/persist.h"
#include "web/synth.h"

namespace webdis {
namespace {

struct ShareConfig {
  const char* name;
  bool cache;
  bool batch;
};
constexpr ShareConfig kUnshared = {"unshared", false, false};
constexpr ShareConfig kVariants[] = {
    {"cache", true, false},
    {"batch", false, true},
    {"cache+batch", true, true},
};

/// One randomized workload: which degradation/fault axes compose onto the
/// concurrent-query mix. All timing-divergence caveats above apply.
struct OracleSchedule {
  uint64_t seed = 1;
  int queries = 3;
  bool drop_faults = false;   // loss + duplication + delay (needs retry)
  bool reorder_faults = false;  // duplication + delay only (crash-safe)
  bool overload = false;        // admission queues + one hot host
  bool crash = false;           // crash/restart one non-start host, WAL on
  bool row_budget = false;      // order-independent per-visit row budget
  double participation = 1.0;   // < 1: structural undeliverable naming
  size_t workers = 0;           // parallel stepper mode
  /// Use the many-rows-per-visit sitemap query shape, so per-visit row
  /// budgets actually truncate (the default shape yields ≤ 1 row a visit).
  bool sitemap_queries = false;
};

/// Everything observed about one run of a schedule under one configuration.
struct OracleRun {
  /// Canonical per-query verdict: flags + sorted degradation names + sorted
  /// row keys. Byte-compared across configurations in timing-invariant
  /// suites.
  std::vector<std::string> verdicts;
  /// Per-query answer-only verdict: completion flag + the sorted union of
  /// distributed rows and the §7.1 fallback continuation for undeliverable
  /// nodes. Used by crash suites, where *which* nodes detoured through the
  /// fallback is timing-dependent but the final answer must not be.
  std::vector<std::string> answers;
  /// The same per-query union row sets, structured (for subset checks).
  std::vector<std::set<std::string>> answer_rows;
  bool all_completed = true;
  bool any_duplicate_rows = false;
  server::QueryServerStats server_stats;
  uint64_t faults_dropped = 0;
};

std::multiset<std::string> RowKeys(
    const std::vector<relational::ResultSet>& results) {
  std::multiset<std::string> keys;
  for (const relational::ResultSet& rs : results) {
    for (const relational::Tuple& row : rs.rows) {
      std::string key = Join(rs.column_labels, ",") + ":";
      for (const relational::Value& v : row) key += v.ToString() + "|";
      keys.insert(std::move(key));
    }
  }
  return keys;
}

/// Concurrent queries share the PRE pattern and predicate but start from
/// three different sites, so their traversals overlap heavily — the sharing
/// opportunity the cache and the batch envelopes exist for.
std::string QueryFor(int index) {
  return "select d.url from document d such that \"" +
         web::SynthUrl(index % 3, 0) +
         "\" (L|G)*2 d where d.title contains \"alpha\"";
}

/// Sitemap shape: every anchor of every reachable page — many rows per
/// visit, so a per-visit row cap of 1 must truncate (and name the node).
std::string SitemapQueryFor(int index) {
  return "select a.base, a.href from document d such that \"" +
         web::SynthUrl(index % 3, 0) + "\" (L|G)*2 d, anchor a";
}

OracleRun RunSchedule(const OracleSchedule& s, const ShareConfig& share) {
  web::SynthWebOptions web_options;
  web_options.seed = s.seed;
  web_options.num_sites = 5;
  web_options.docs_per_site = 6;
  web_options.filler_paragraphs = 1;
  web_options.words_per_paragraph = 12;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);

  core::EngineOptions options;
  options.network.worker_threads = s.workers;
  options.network.latency_jitter = 2 * kMillisecond;
  options.network.jitter_seed = s.seed * 31 + 7;
  options.participation_fraction = s.participation;
  options.participation_seed = s.seed * 13 + 5;
  if (s.participation < 1.0) {
    // Structural degradation: the engine-level fallback is disabled so the
    // verdict names the undeliverable nodes instead of recovering them.
    options.fallback_processing = false;
    for (int i = 0; i < 3; ++i) {
      options.forced_participants.push_back(web::SynthHost(i));
    }
  }
  const bool needs_retry = s.drop_faults || s.overload || s.crash;
  if (needs_retry) {
    options.server.retry.enabled = true;
    options.server.retry.initial_timeout = 100 * kMillisecond;
    options.server.retry.max_timeout = 1 * kSecond;
    options.server.retry.max_attempts = 10;
    options.server.retry.overload_initial_timeout = 100 * kMillisecond;
    options.server.retry.overload_max_timeout = 800 * kMillisecond;
    options.client.retry = options.server.retry;
    // Safety net far beyond every retry window: it must never actually
    // fire in the equivalence suites (a deadline GC verdict is timing-
    // dependent, which would break byte-equality by design).
    options.client.entry_deadline = 60 * kSecond;
  }
  if (s.overload) {
    options.server.admission.max_pending = 32;
    options.server.admission.service_time = 300 * kMicrosecond;
  }
  if (s.row_budget) options.client.budget_max_rows_per_visit = 1;
  if (s.crash) options.server.persist.enabled = true;

  // The two sharing axes under test.
  options.server.share_results = share.cache;
  // Odd seeds bound the cache tightly enough to force LRU evictions
  // mid-run; eviction order is timing-dependent but must stay invisible.
  options.server.result_cache_max_bytes = (s.seed % 2 == 0) ? 0 : 4096;
  if (share.batch) {
    options.server.batch_window = 1 * kMillisecond;
    options.server.batch_max_members = 2 + s.seed % 7;  // exercise splitting
  }
  if (s.overload) {
    // One deliberately hot host with a tiny queue sheds aggressively —
    // including whole batch envelopes (all-or-none NACK). Copied after the
    // sharing fields so the hot host shares the same configuration.
    server::QueryServerOptions hot = options.server;
    hot.admission.max_pending = 2;
    hot.admission.service_time = 800 * kMicrosecond;
    options.server_overrides[web::SynthHost(1)] = hot;
  }
  if (s.crash) {
    // The crash victim drains slowly from a deep queue: slow enough that
    // the crash catches WAL-admitted members still pending, deep enough
    // that it never sheds (an overload retry refused against the downtime
    // window would be quietly abandoned — a timing-dependent degradation
    // the equivalence suites must exclude).
    server::QueryServerOptions victim_options = options.server;
    victim_options.admission.max_pending = 64;
    victim_options.admission.service_time = 2 * kMillisecond;
    options.server_overrides[web::SynthHost(
        3 + static_cast<int>(s.seed % 2))] = victim_options;
  }

  core::Engine engine(&web, options);

  net::FaultPlan plan(s.seed * 97 + 13);
  if (s.drop_faults || s.reorder_faults) {
    Rng rng(s.seed * 7919);
    for (net::MessageType type :
         {net::MessageType::kWebQuery, net::MessageType::kReport,
          net::MessageType::kDeliveryAck, net::MessageType::kCloneBatch,
          net::MessageType::kReportBatch}) {
      net::FaultPlan::Rule rule;
      rule.type = type;
      rule.drop_prob = s.drop_faults ? 0.02 + 0.08 * rng.NextDouble() : 0.0;
      rule.duplicate_prob = 0.06 * rng.NextDouble();
      plan.AddRule(rule);
    }
    for (net::MessageType type :
         {net::MessageType::kReport, net::MessageType::kReportBatch}) {
      net::FaultPlan::Rule delay_rule;
      delay_rule.type = type;
      delay_rule.delay_prob = 0.25;
      delay_rule.delay = rng.UniformRange(1, 8) * kMillisecond;
      plan.AddRule(delay_rule);
    }
    engine.network().SetFaultPlan(&plan);
  }

  if (s.crash) {
    // The victim is never a start host (client dispatch is not the subject)
    // and never the hot host (an overload retry refused against a down host
    // is abandoned — a timing-dependent loss the equivalence suites must
    // not contain; the crash-point suite below covers that composition).
    Rng crash_rng(s.seed * 104729 + 3);
    server::QueryServer* victim =
        engine.server_for(web::SynthHost(3 + static_cast<int>(s.seed % 2)));
    EXPECT_NE(victim, nullptr);
    // The downtime window is kept shorter than the retry timeout less the
    // delivery latency: a transfer in flight at the crash (accepted at send
    // time, delivered to a closed listener) retransmits only after the
    // victim is back, so it is redelivered instead of quietly abandoned
    // (ReliableSender gives up on a synchronous refusal at retry time —
    // correct for passive termination, fatally timing-dependent here).
    const SimDuration down = crash_rng.UniformRange(20, 200) * kMillisecond;
    const SimDuration up = down + crash_rng.UniformRange(30, 60) * kMillisecond;
    engine.network().ScheduleAfter(down, [victim] { victim->Crash(); });
    engine.network().ScheduleAfter(
        up, [victim] { EXPECT_TRUE(victim->Restart().ok()); });
  }

  const core::TrafficSummary before = engine.TrafficSnapshot();
  std::vector<query::QueryId> ids;
  for (int i = 0; i < s.queries; ++i) {
    auto compiled = disql::CompileDisql(s.sitemap_queries ? SitemapQueryFor(i)
                                                         : QueryFor(i));
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    auto id = engine.Submit(compiled.value(), "user" + std::to_string(i));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(id.value());
  }
  engine.network().RunUntilIdle();

  OracleRun run;
  for (const query::QueryId& id : ids) {
    const client::UserSite::QueryRun* query_run = engine.user_site().Find(id);
    EXPECT_NE(query_run, nullptr);
    const core::RunOutcome outcome = engine.CollectOutcome(id, before);
    run.all_completed = run.all_completed && outcome.completed;

    const std::multiset<std::string> rows = RowKeys(outcome.results);
    const std::set<std::string> unique_rows(rows.begin(), rows.end());
    if (unique_rows.size() != rows.size()) run.any_duplicate_rows = true;

    // Full verdict: flags, sorted degradation names, rows.
    std::string verdict = StringPrintf(
        "completed=%d partial=%d budget_exhausted=%d\n",
        outcome.completed ? 1 : 0, outcome.partial ? 1 : 0,
        outcome.budget_exhausted ? 1 : 0);
    std::set<std::string> unreachable(outcome.unreachable_hosts.begin(),
                                      outcome.unreachable_hosts.end());
    verdict += "unreachable:";
    for (const std::string& host : unreachable) verdict += " " + host;
    std::set<std::string> budget_nodes(outcome.budget_exceeded_nodes.begin(),
                                       outcome.budget_exceeded_nodes.end());
    verdict += "\nbudget_nodes:";
    for (const std::string& node : budget_nodes) verdict += " " + node;
    std::set<std::string> fallback_names;
    for (const query::ChtEntry& entry : query_run->fallback_nodes) {
      fallback_names.insert(entry.node_url);
    }
    verdict += "\nfallback_nodes:";
    for (const std::string& node : fallback_names) verdict += " " + node;
    verdict += "\nrows:\n";
    for (const std::string& key : rows) verdict += key + "\n";
    run.verdicts.push_back(std::move(verdict));

    // Answer-only verdict: distributed rows plus the §7.1 centralized
    // continuation for whatever was undeliverable in *this* timing.
    std::set<std::string> answer_rows = unique_rows;
    if (!query_run->fallback_nodes.empty()) {
      baseline::DataShippingEngine fallback(core::Engine::kClientHost,
                                            &engine.network());
      auto recovered =
          fallback.RunFrom(query_run->compiled, query_run->fallback_nodes);
      EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
      if (recovered.ok()) {
        for (const std::string& key : RowKeys(recovered->results)) {
          answer_rows.insert(key);
        }
      }
    }
    std::string answer =
        StringPrintf("completed=%d\nrows:\n", outcome.completed ? 1 : 0);
    for (const std::string& key : answer_rows) answer += key + "\n";
    run.answers.push_back(std::move(answer));
    run.answer_rows.push_back(std::move(answer_rows));
  }
  run.server_stats = engine.AggregateServerStats();
  run.faults_dropped = plan.stats().dropped;
  return run;
}

// ---------------------------------------------------------------------------
// Suite A: ≥16 seeds × {cache on/off} × {batching on/off}, composed with
// loss/duplication/delay fault schedules and admission-queue overload.
// Retries make every schedule converge, so the *full* verdict — flags,
// degradation names, rows — must be byte-identical to the unshared baseline.
// ---------------------------------------------------------------------------

TEST(SharingEquivalenceOracle, SixteenSeedFaultAndOverloadSweep) {
  uint64_t cache_hits = 0;
  uint64_t batch_envelopes = 0;
  uint64_t dropped = 0;
  uint64_t overload_sheds = 0;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    OracleSchedule s;
    s.seed = seed;
    s.queries = 3 + static_cast<int>(seed % 2);
    // Every fourth seed composes both axes; the rest sample them so plain
    // schedules stay covered too.
    Rng rng(seed * 29);
    s.drop_faults = seed % 4 == 0 || rng.Bernoulli(0.5);
    s.overload = seed % 4 == 0 || rng.Bernoulli(0.5);

    const OracleRun baseline = RunSchedule(s, kUnshared);
    EXPECT_TRUE(baseline.all_completed);
    EXPECT_FALSE(baseline.any_duplicate_rows);
    dropped += baseline.faults_dropped;
    for (const ShareConfig& share : kVariants) {
      SCOPED_TRACE(share.name);
      const OracleRun shared = RunSchedule(s, share);
      EXPECT_TRUE(shared.all_completed);
      EXPECT_FALSE(shared.any_duplicate_rows);
      EXPECT_EQ(shared.verdicts, baseline.verdicts);
      if (share.cache) {
        cache_hits += shared.server_stats.result_cache_hits;
      }
      if (share.batch) {
        batch_envelopes += shared.server_stats.clone_batches_sent +
                           shared.server_stats.report_batches_sent;
      }
      overload_sheds += shared.server_stats.clones_shed +
                        shared.server_stats.batches_shed;
      dropped += shared.faults_dropped;
    }
  }
  // The sweep was no placebo: results really were shared, envelopes really
  // were batched, messages really were lost, queues really shed.
  EXPECT_GT(cache_hits, 0u);
  EXPECT_GT(batch_envelopes, 0u);
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(overload_sheds, 0u);
}

// ---------------------------------------------------------------------------
// Suite B: composed fault + overload + crash schedules over WAL-durable
// servers. Reordering faults (duplication + delay) compose freely; loss
// faults do not (see the header note on abandoned transfers). The answer —
// distributed rows plus the fallback continuation — must be byte-identical
// across configurations AND equal to the fault-free reference.
// ---------------------------------------------------------------------------

TEST(SharingEquivalenceOracle, CrashComposedSchedulesConvergeIdentically) {
  uint64_t replayed = 0;
  uint64_t recovered = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    OracleSchedule s;
    s.seed = seed;
    s.queries = 3 + static_cast<int>(seed % 2);
    s.reorder_faults = true;
    s.overload = true;
    s.crash = true;

    // Fault-free reference answer over the same web + queries.
    OracleSchedule plain;
    plain.seed = seed;
    plain.queries = s.queries;
    const OracleRun reference = RunSchedule(plain, kUnshared);
    EXPECT_TRUE(reference.all_completed);

    const OracleRun baseline = RunSchedule(s, kUnshared);
    EXPECT_TRUE(baseline.all_completed);
    EXPECT_FALSE(baseline.any_duplicate_rows);
    EXPECT_EQ(baseline.answers, reference.answers);
    replayed += baseline.server_stats.replayed_wal_records;
    recovered += baseline.server_stats.recovered_clones;
    for (const ShareConfig& share : kVariants) {
      SCOPED_TRACE(share.name);
      const OracleRun shared = RunSchedule(s, share);
      EXPECT_TRUE(shared.all_completed);
      EXPECT_FALSE(shared.any_duplicate_rows);
      EXPECT_EQ(shared.answers, baseline.answers);
      replayed += shared.server_stats.replayed_wal_records;
      recovered += shared.server_stats.recovered_clones;
    }
  }
  // Crashes really hit servers holding durable state.
  EXPECT_GT(replayed, 0u);
  EXPECT_GT(recovered, 0u);
}

// ---------------------------------------------------------------------------
// Suite C: degraded outcomes are identically *named*. Degradation here is
// arrival-order-independent by construction: per-visit row budgets truncate
// the same rows at the same nodes regardless of message timing, and
// non-participating hosts are a structural property of the deployment. The
// full verdict — including the sorted degradation names — must match.
// ---------------------------------------------------------------------------

TEST(SharingEquivalenceOracle, DegradedOutcomesIdenticallyNamed) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (const bool structural : {false, true}) {
      SCOPED_TRACE("seed " + std::to_string(seed) +
                   (structural ? " participation" : " row-budget"));
      OracleSchedule s;
      s.seed = seed;
      s.queries = 3;
      s.drop_faults = true;
      s.overload = true;
      if (structural) {
        // Only the forced start hosts participate: the set of undeliverable
        // nodes is a property of the deployment, not of message timing.
        s.participation = 0.0;
      } else {
        s.row_budget = true;
        s.sitemap_queries = true;
      }

      const OracleRun baseline = RunSchedule(s, kUnshared);
      EXPECT_TRUE(baseline.all_completed);
      // The schedule genuinely degrades: something is named.
      bool named = false;
      for (const std::string& verdict : baseline.verdicts) {
        named = named || verdict.find("budget_nodes: ") != std::string::npos ||
                verdict.find("fallback_nodes: ") != std::string::npos;
      }
      EXPECT_TRUE(named);
      for (const ShareConfig& share : kVariants) {
        SCOPED_TRACE(share.name);
        const OracleRun shared = RunSchedule(s, share);
        EXPECT_TRUE(shared.all_completed);
        EXPECT_FALSE(shared.any_duplicate_rows);
        EXPECT_EQ(shared.verdicts, baseline.verdicts);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Suite D: the result cache is shared mutable state inside each server, and
// the parallel stepper (DESIGN.md "Parallel execution") runs servers on
// worker threads. Sharing must be invisible there too — same verdicts as
// the single-threaded unshared baseline. This suite is the reason
// multiquery_test runs under TSan in CI.
// ---------------------------------------------------------------------------

TEST(SharingEquivalenceOracle, ParallelStepperSharingMatchesBaseline) {
  for (uint64_t seed : {3u, 9u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    OracleSchedule s;
    s.seed = seed;
    s.queries = 4;
    s.drop_faults = true;
    s.overload = true;

    const OracleRun baseline = RunSchedule(s, kUnshared);
    EXPECT_TRUE(baseline.all_completed);
    for (const ShareConfig& share : kVariants) {
      SCOPED_TRACE(share.name);
      OracleSchedule threaded = s;
      threaded.workers = 2;
      const OracleRun shared = RunSchedule(threaded, share);
      EXPECT_TRUE(shared.all_completed);
      EXPECT_FALSE(shared.any_duplicate_rows);
      EXPECT_EQ(shared.verdicts, baseline.verdicts);
    }
  }
}

// ---------------------------------------------------------------------------
// Batch-admission crash points (runs under ASan in CI). A server receiving
// batch envelopes with a tight admission queue and a WAL is crashed at a
// grid of points — mid-shed, mid-queue, mid-drain, mid-flush — and
// restarted. The §9.2 all-or-none contract: members are never silently
// part-accepted. Every query still reaches a verdict that is exact or
// *explicitly* degraded (named fallback/unreachable/budget nodes), rows are
// never duplicated, and at least one crash point recovers WAL-admitted
// batch members.
// ---------------------------------------------------------------------------

TEST(BatchAdmissionCrashPointTest, NoSilentPartialAcceptAcrossCrashGrid) {
  OracleSchedule plain;
  plain.seed = 5;
  plain.queries = 8;
  ShareConfig sharing = {"cache+batch", true, true};
  const OracleRun reference = RunSchedule(plain, sharing);
  EXPECT_TRUE(reference.all_completed);
  const std::vector<std::set<std::string>>& reference_rows =
      reference.answer_rows;

  uint64_t recovered = 0;
  uint64_t batches_received = 0;
  uint64_t batches_shed = 0;
  for (const SimDuration crash_at :
       {SimDuration{10}, SimDuration{25}, SimDuration{45}, SimDuration{70},
        SimDuration{110}, SimDuration{170}, SimDuration{260},
        SimDuration{400}}) {
    SCOPED_TRACE("crash at " + std::to_string(crash_at) + "ms");
    web::SynthWebOptions web_options;
    web_options.seed = plain.seed;
    web_options.num_sites = 5;
    web_options.docs_per_site = 6;
    web_options.filler_paragraphs = 1;
    web_options.words_per_paragraph = 12;
    const web::WebGraph web = web::GenerateSynthWeb(web_options);

    core::EngineOptions options;
    options.network.latency_jitter = 2 * kMillisecond;
    options.network.jitter_seed = plain.seed * 31 + 7;
    options.server.retry.enabled = true;
    options.server.retry.initial_timeout = 100 * kMillisecond;
    options.server.retry.max_attempts = 8;
    options.server.retry.overload_initial_timeout = 100 * kMillisecond;
    options.server.retry.overload_max_timeout = 800 * kMillisecond;
    options.client.retry = options.server.retry;
    options.client.entry_deadline = 10 * kSecond;
    options.server.persist.enabled = true;
    options.server.share_results = true;
    options.server.batch_window = 1 * kMillisecond;
    // Small envelopes mean several batches per clone wave, so envelopes
    // overlap inside the victim's slow drain window.
    options.server.batch_max_members = 2;
    options.server.admission.max_pending = 16;
    options.server.admission.service_time = 500 * kMicrosecond;
    // The crash victim is the batch hotspot (every query's traversal clones
    // into site 4) and is also hot: batches shed at its tiny queue AND
    // batches admitted into its WAL both meet the crash.
    server::QueryServerOptions hot = options.server;
    hot.admission.max_pending = 2;
    hot.admission.service_time = 8 * kMillisecond;
    options.server_overrides[web::SynthHost(4)] = hot;

    core::Engine engine(&web, options);
    server::QueryServer* victim = engine.server_for(web::SynthHost(4));
    ASSERT_NE(victim, nullptr);
    engine.network().ScheduleAfter(crash_at * kMillisecond,
                                   [victim] { victim->Crash(); });
    engine.network().ScheduleAfter(
        crash_at * kMillisecond + 300 * kMillisecond,
        [victim] { EXPECT_TRUE(victim->Restart().ok()); });

    const core::TrafficSummary before = engine.TrafficSnapshot();
    std::vector<query::QueryId> ids;
    for (int i = 0; i < plain.queries; ++i) {
      auto compiled = disql::CompileDisql(QueryFor(i));
      ASSERT_TRUE(compiled.ok());
      auto id = engine.Submit(compiled.value(), "user" + std::to_string(i));
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
    }
    engine.network().RunUntilIdle();

    for (size_t i = 0; i < ids.size(); ++i) {
      const client::UserSite::QueryRun* run = engine.user_site().Find(ids[i]);
      ASSERT_NE(run, nullptr);
      const core::RunOutcome outcome = engine.CollectOutcome(ids[i], before);
      // Invariant 1: never a hang.
      EXPECT_TRUE(outcome.completed);
      // Invariant 2: never a duplicated answer row.
      const std::multiset<std::string> rows = RowKeys(outcome.results);
      std::set<std::string> unique_rows(rows.begin(), rows.end());
      EXPECT_EQ(unique_rows.size(), rows.size());
      // Invariant 3: exact, or explicitly degraded — a member lost to the
      // crash must surface as a *named* fallback/unreachable/budget node,
      // never as a silently missing row.
      if (!run->fallback_nodes.empty()) {
        baseline::DataShippingEngine fallback(core::Engine::kClientHost,
                                              &engine.network());
        auto rec = fallback.RunFrom(run->compiled, run->fallback_nodes);
        ASSERT_TRUE(rec.ok());
        for (const std::string& key : RowKeys(rec->results)) {
          unique_rows.insert(key);
        }
      }
      const bool explicitly_degraded =
          outcome.partial || !run->fallback_nodes.empty();
      if (explicitly_degraded) {
        for (const std::string& key : unique_rows) {
          EXPECT_TRUE(reference_rows[i].contains(key)) << key;
        }
      } else {
        EXPECT_EQ(unique_rows, reference_rows[i]);
      }
    }
    const server::QueryServerStats stats = engine.AggregateServerStats();
    recovered += stats.recovered_clones;
    batches_received += stats.clone_batches_received;
    batches_shed += stats.batches_shed;
  }
  // The grid really exercised the batch-admission crash surface.
  EXPECT_GT(batches_received, 0u);
  EXPECT_GT(recovered, 0u);
  EXPECT_GT(batches_shed, 0u);
}

// -- Adversarial batch durability -------------------------------------------
// A kBatchAdmitted WAL record is one atomic admission unit: damage to any
// nested member must reject the whole record — replay must never resurrect
// a batch missing some of its members (the lost members' queries would
// silently drop rows, the exact failure the sharing oracle exists to catch).

TEST(MultiQueryBatchDurabilityTest, DamagedBatchMemberNeverReplaysPartially) {
  auto compiled = disql::CompileDisql(QueryFor(0));
  ASSERT_TRUE(compiled.ok());
  std::vector<query::WebQuery> members;
  for (int i = 0; i < 2; ++i) {
    query::WebQuery clone = compiled->web_query.Clone();
    clone.id.user = "u";
    clone.id.reply_host = "h";
    clone.id.reply_port = 1;
    clone.id.query_number = static_cast<uint32_t>(i + 1);
    clone.dest_urls = {web::SynthUrl(4, 0)};
    members.push_back(std::move(clone));
  }
  serialize::Encoder payload;
  server::WalBatchAdmitted::EncodeFields(
      7, net::Endpoint{"sender", 1}, /*tracked=*/true, /*seq=*/9, members,
      &payload);
  const std::vector<uint8_t> record = server::EncodeWalRecord(
      server::WalRecordType::kBatchAdmitted, payload.data());

  // (a) Flip one byte inside the second member's image. The per-record
  // CRC no longer matches, so DecodeWal must discard the record whole.
  std::vector<uint8_t> damaged = record;
  damaged[damaged.size() - 5] ^= 0x40;
  const server::WalReadResult read = server::DecodeWal(damaged);
  EXPECT_TRUE(read.records.empty());
  EXPECT_EQ(read.discarded_records, 1u);
  EXPECT_EQ(read.discarded_bytes, damaged.size());

  // (b) A torn second member whose record checksum is *valid* (the tear
  // happened before framing, not after): framing passes, so the payload
  // decoder itself must reject with Corruption — never return a batch that
  // decoded "most of" its members.
  std::vector<uint8_t> torn_payload = payload.data();
  torn_payload.resize(torn_payload.size() - 4);
  const std::vector<uint8_t> torn_record = server::EncodeWalRecord(
      server::WalRecordType::kBatchAdmitted, torn_payload);
  const server::WalReadResult reread = server::DecodeWal(torn_record);
  ASSERT_EQ(reread.records.size(), 1u);
  serialize::Decoder dec(reread.records[0].payload);
  server::WalBatchAdmitted out;
  Status status = server::WalBatchAdmitted::DecodeFrom(&dec, &out);
  if (status.ok()) status = dec.ExpectAtEnd("WAL batch-admitted record");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace webdis
