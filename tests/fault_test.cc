// Fault injection and recovery: randomized fault schedules over the
// university topology asserting a protocol-invariant oracle, the regression
// for the duplicate-drop-report hang documented in QueryServerOptions, and
// retry recovery through a FaultyTransport over real TCP sockets.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/user_site.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/engine.h"
#include "disql/compiler.h"
#include "html/url.h"
#include "net/fault.h"
#include "net/tcp.h"
#include "server/query_server.h"
#include "web/topologies.h"
#include "web/university.h"

namespace webdis {
namespace {

std::set<std::string> AllRowKeys(
    const std::vector<relational::ResultSet>& results) {
  std::set<std::string> keys;
  for (const relational::ResultSet& rs : results) {
    for (const relational::Tuple& row : rs.rows) {
      std::string key = Join(rs.column_labels, ",") + ":";
      for (const relational::Value& v : row) key += v.ToString() + "|";
      keys.insert(std::move(key));
    }
  }
  return keys;
}

core::EngineOptions RecoveryOptions() {
  core::EngineOptions options;
  options.server.retry.enabled = true;
  options.server.retry.initial_timeout = 100 * kMillisecond;
  options.server.retry.max_timeout = 400 * kMillisecond;
  options.server.retry.max_attempts = 4;
  options.client.retry = options.server.retry;
  // Well past the retry window: GC only ever fires on genuinely dead keys.
  options.client.entry_deadline = 10 * kSecond;
  return options;
}

// ---------------------------------------------------------------------------
// The acceptance oracle of the fault-injection subsystem: under ANY injected
// schedule of drops, duplications, delays, partitions, and crash/restarts —
// with retries and deadline GC enabled — every query terminates, and either
// the answer is exactly the fault-free answer or the outcome is explicitly
// degraded (partial with named unreachable hosts, or fallback nodes). Never
// a hang, never a duplicated answer row.
// ---------------------------------------------------------------------------

TEST(FaultScheduleTest, RandomizedSchedulesPreserveProtocolInvariants) {
  web::UniversityOptions uni_options;
  uni_options.seed = 11;
  uni_options.departments = 2;
  uni_options.labs_per_department = 2;
  const web::UniversityWeb uni = web::GenerateUniversityWeb(uni_options);
  auto compiled = disql::CompileDisql(uni.convener_disql);
  ASSERT_TRUE(compiled.ok());

  // Fault-free reference answer.
  std::set<std::string> reference;
  {
    core::Engine engine(&uni.web);
    auto outcome = engine.RunCompiled(compiled.value());
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(outcome->completed);
    reference = AllRowKeys(outcome->results);
    ASSERT_FALSE(reference.empty());
  }

  const std::vector<std::string> hosts = uni.web.Hosts();
  ASSERT_GE(hosts.size(), 2u);

  uint64_t total_dropped = 0;
  int degraded_runs = 0;
  int exact_runs = 0;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("fault schedule seed " + std::to_string(seed));
    Rng rng(seed * 7919);

    core::Engine engine(&uni.web, RecoveryOptions());
    net::FaultPlan plan(seed);

    // Random loss/duplication on each protocol message type. Scoped by type
    // so the data-shipping fallback's HTTP traffic stays clean.
    for (net::MessageType type :
         {net::MessageType::kWebQuery, net::MessageType::kReport,
          net::MessageType::kDeliveryAck}) {
      net::FaultPlan::Rule rule;
      rule.type = type;
      rule.drop_prob = 0.02 + 0.20 * rng.NextDouble();
      rule.duplicate_prob = 0.10 * rng.NextDouble();
      plan.AddRule(rule);
    }
    // Random report delays shuffle add/delete arrival order at the CHT.
    net::FaultPlan::Rule delay_rule;
    delay_rule.type = net::MessageType::kReport;
    delay_rule.delay_prob = 0.25;
    delay_rule.delay = rng.UniformRange(1, 8) * kMillisecond;
    plan.AddRule(delay_rule);
    engine.network().SetFaultPlan(&plan);

    // Half the schedules cut a link between two web sites, healed mid-run.
    if (rng.Bernoulli(0.5)) {
      const std::string a = rng.Pick(hosts);
      const std::string b = rng.Pick(hosts);
      if (a != b) {
        plan.Partition(a, b);
        engine.network().ScheduleAfter(
            rng.UniformRange(100, 900) * kMillisecond,
            [&plan, a, b] { plan.Heal(a, b); });
      }
    }

    // Half the schedules crash one query server mid-run (log table and all
    // volatile delivery state lost) and restart it later.
    if (rng.Bernoulli(0.5)) {
      const std::string victim = rng.Pick(engine.participating_hosts());
      server::QueryServer* qs = engine.server_for(victim);
      ASSERT_NE(qs, nullptr);
      const SimDuration down = rng.UniformRange(50, 300) * kMillisecond;
      const SimDuration up = down + rng.UniformRange(100, 700) * kMillisecond;
      engine.network().ScheduleAfter(down, [qs] { qs->Crash(); });
      engine.network().ScheduleAfter(
          up, [qs] { EXPECT_TRUE(qs->Restart().ok()); });
    }

    auto outcome = engine.RunCompiled(compiled.value());
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

    // Invariant 1: never a hang — every schedule reaches a verdict.
    EXPECT_TRUE(outcome->completed);

    // Invariant 2: never a duplicated answer row.
    const std::set<std::string> keys = AllRowKeys(outcome->results);
    EXPECT_EQ(keys.size(), outcome->TotalRows());

    // Invariant 3: the answer is exact unless the outcome says otherwise.
    const bool degraded =
        outcome->partial || outcome->fallback_node_count > 0;
    if (degraded) {
      ++degraded_runs;
      for (const std::string& key : keys) {
        EXPECT_TRUE(reference.contains(key)) << key;
      }
      if (outcome->partial) {
        EXPECT_FALSE(outcome->unreachable_hosts.empty());
      }
    } else {
      ++exact_runs;
      EXPECT_EQ(keys, reference);
    }
    total_dropped += plan.stats().dropped;
  }

  // The sweep was no placebo: messages really were lost, some schedules were
  // survivable via retries alone (exact answers) and some were not
  // (explicitly degraded outcomes). Deterministic given the seeds above.
  EXPECT_GT(total_dropped, 0u);
  EXPECT_GT(exact_runs, 0);
  EXPECT_GT(degraded_runs, 0);
}

// ---------------------------------------------------------------------------
// Crash-point recovery oracle (PROTOCOL.md §8.4). Each seed fixes ONE crash
// schedule — mild message faults plus a crash whose downtime outlasts the
// whole retransmission window — and runs it twice: once volatile, once with
// snapshots + WAL (including seeded torn-write/short-read storage faults).
// Invariants per schedule: both runs terminate with deduplicated rows, and
// the durable run's degraded-node set is a subset of the volatile run's.
// Aggregate: persistence strictly reduces degraded verdicts across the sweep.
// ---------------------------------------------------------------------------

struct CrashSchedule {
  double clone_drop = 0;
  double report_drop = 0;
  double ack_drop = 0;
  double clone_dup = 0;
  double report_dup = 0;
  SimDuration report_delay = 0;
  std::string victim;
  SimDuration down = 0;
  SimDuration up = 0;
};

struct CrashRunResult {
  bool completed = false;
  bool degraded = false;
  std::set<std::string> rows;
  size_t total_rows = 0;
  /// Hosts/nodes named as lost by the verdict: unreachable hosts from the
  /// deadline sweep plus budget-exceeded node URLs from admission shedding.
  std::set<std::string> degraded_nodes;
  server::QueryServerStats stats;
  uint64_t dropped = 0;
};

/// Engine options for crash-point runs. Admission control is on so accepted
/// clones sit in the pending queue with their acks deferred (volatile) or
/// committed at admission after the WAL append (durable) — the exact state
/// the §8 ack-after-append rule protects. The crash downtimes used below
/// (>= 800 ms) strictly exceed the retry window (100+200+400 ms), so any
/// transfer in flight to a crashed volatile server is unrecoverable by
/// retries alone.
core::EngineOptions CrashPointOptions(bool durable, uint64_t seed,
                                      bool storage_faults,
                                      uint64_t snapshot_every) {
  core::EngineOptions options = RecoveryOptions();
  options.server.admission.max_pending = 16;
  options.server.admission.service_time = 25 * kMillisecond;
  if (durable) {
    options.server.persist.enabled = true;
    options.server.persist.wal_enabled = true;
    // The university servers process only a handful of clones each, so the
    // snapshot cadence must be small for snapshots to happen at all.
    options.server.persist.snapshot_every_clones = snapshot_every;
    options.server.persist.wal_compact_bytes = 1024;
    if (storage_faults) {
      options.persist_faults.seed = seed;
      options.persist_faults.torn_wal_tail_prob = 0.25;
      options.persist_faults.torn_snapshot_prob = 0.25;
      options.persist_faults.short_read_prob = 0.25;
    }
  }
  return options;
}

CrashRunResult RunCrashSchedule(const web::UniversityWeb& uni,
                                const disql::CompiledQuery& compiled,
                                const CrashSchedule& sched, bool durable,
                                uint64_t seed, bool storage_faults,
                                uint64_t snapshot_every) {
  CrashRunResult result;
  core::Engine engine(
      &uni.web, CrashPointOptions(durable, seed, storage_faults,
                                  snapshot_every));
  net::FaultPlan plan(seed);
  const auto add_rule = [&plan](net::MessageType type, double drop,
                                double dup) {
    net::FaultPlan::Rule rule;
    rule.type = type;
    rule.drop_prob = drop;
    rule.duplicate_prob = dup;
    plan.AddRule(rule);
  };
  add_rule(net::MessageType::kWebQuery, sched.clone_drop, sched.clone_dup);
  add_rule(net::MessageType::kReport, sched.report_drop, sched.report_dup);
  add_rule(net::MessageType::kDeliveryAck, sched.ack_drop, 0.0);
  if (sched.report_delay > 0) {
    net::FaultPlan::Rule delay_rule;
    delay_rule.type = net::MessageType::kReport;
    delay_rule.delay_prob = 0.25;
    delay_rule.delay = sched.report_delay;
    plan.AddRule(delay_rule);
  }
  engine.network().SetFaultPlan(&plan);

  server::QueryServer* qs = engine.server_for(sched.victim);
  EXPECT_NE(qs, nullptr);
  if (qs == nullptr) return result;
  engine.network().ScheduleAfter(sched.down, [qs] { qs->Crash(); });
  engine.network().ScheduleAfter(sched.up,
                                 [qs] { EXPECT_TRUE(qs->Restart().ok()); });

  auto outcome = engine.RunCompiled(compiled);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  if (!outcome.ok()) return result;
  result.completed = outcome->completed;
  result.rows = AllRowKeys(outcome->results);
  result.total_rows = outcome->TotalRows();
  result.degraded = outcome->partial || outcome->budget_exhausted ||
                    outcome->fallback_node_count > 0;
  for (const std::string& host : outcome->unreachable_hosts) {
    result.degraded_nodes.insert(host);
  }
  for (const std::string& url : outcome->budget_exceeded_nodes) {
    result.degraded_nodes.insert(url);
  }
  result.stats = engine.AggregateServerStats();
  result.dropped = plan.stats().dropped;
  return result;
}

TEST(CrashPointScheduleTest, DurableRecoveryNeverWidensDegradation) {
  web::UniversityOptions uni_options;
  uni_options.seed = 11;
  uni_options.departments = 2;
  uni_options.labs_per_department = 2;
  const web::UniversityWeb uni = web::GenerateUniversityWeb(uni_options);
  auto compiled = disql::CompileDisql(uni.convener_disql);
  ASSERT_TRUE(compiled.ok());

  // Fault-free reference answer.
  std::set<std::string> reference;
  {
    core::Engine engine(&uni.web);
    auto outcome = engine.RunCompiled(compiled.value());
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(outcome->completed);
    reference = AllRowKeys(outcome->results);
    ASSERT_FALSE(reference.empty());
  }

  // Crash victims are downstream servers: crashing the root host tests the
  // origin of the clone tree, which is a liveness question for the client
  // retry layer, not for server durability.
  const std::string root = [&uni] {
    auto parsed = html::ParseUrl(uni.root_url);
    EXPECT_TRUE(parsed.ok());
    return parsed->host;
  }();
  std::vector<std::string> victims;
  for (const std::string& host : uni.web.Hosts()) {
    if (host != root) victims.push_back(host);
  }
  ASSERT_FALSE(victims.empty());

  int volatile_degraded = 0;
  int durable_degraded = 0;
  int durable_exact = 0;
  uint64_t total_dropped = 0;
  server::QueryServerStats durable_sweep;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("crash schedule seed " + std::to_string(seed));
    // The schedule is drawn once and applied VERBATIM to both runs; only
    // the durability mode differs.
    Rng rng(seed * 104729);
    CrashSchedule sched;
    sched.clone_drop = 0.05 * rng.NextDouble();
    sched.report_drop = 0.05 * rng.NextDouble();
    sched.ack_drop = 0.05 * rng.NextDouble();
    sched.clone_dup = 0.05 * rng.NextDouble();
    sched.report_dup = 0.05 * rng.NextDouble();
    if (rng.Bernoulli(0.5)) {
      sched.report_delay = rng.UniformRange(1, 8) * kMillisecond;
    }
    sched.victim = rng.Pick(victims);
    // Aim the crash at the victim's admission window (clones reach the
    // department level at ~70 ms of virtual time and the lab level at
    // ~140 ms; the admission queue holds each clone for service_time
    // = 25 ms), so most schedules destroy genuinely queued state. The
    // jitter still lets some schedules miss the window — those become the
    // exact runs that keep the sweep honest.
    const bool lab_victim = sched.victim.rfind("lab", 0) == 0;
    sched.down =
        rng.UniformRange(lab_victim ? 130 : 60, lab_victim ? 170 : 100) *
        kMillisecond;
    sched.up = sched.down + rng.UniformRange(800, 1500) * kMillisecond;
    const uint64_t snapshot_every = 1 + seed % 3;

    const CrashRunResult vol =
        RunCrashSchedule(uni, compiled.value(), sched, /*durable=*/false, seed,
                         /*storage_faults=*/true, snapshot_every);
    const CrashRunResult dur =
        RunCrashSchedule(uni, compiled.value(), sched, /*durable=*/true, seed,
                         /*storage_faults=*/true, snapshot_every);

    // Invariant 1: every crash schedule terminates, in both modes.
    EXPECT_TRUE(vol.completed);
    EXPECT_TRUE(dur.completed);

    // Invariant 2: never a duplicated answer row — recovery replays clones
    // at-least-once, and the log table / CHT absorb the duplicates.
    EXPECT_EQ(vol.rows.size(), vol.total_rows);
    EXPECT_EQ(dur.rows.size(), dur.total_rows);

    // Invariant 3: answers are exact unless explicitly degraded, and never
    // invent rows.
    for (const CrashRunResult* r : {&vol, &dur}) {
      if (r->degraded) {
        for (const std::string& key : r->rows) {
          EXPECT_TRUE(reference.contains(key)) << key;
        }
      } else {
        EXPECT_EQ(r->rows, reference);
      }
    }

    // Invariant 4 (the §8.4 oracle): recovery never loses MORE than the
    // volatile crash did. Every node the durable run names as degraded was
    // also lost by the volatile run of the same schedule.
    for (const std::string& node : dur.degraded_nodes) {
      EXPECT_TRUE(vol.degraded_nodes.contains(node))
          << "durable run degraded " << node
          << " but the volatile run of the same schedule did not";
    }

    volatile_degraded += vol.degraded ? 1 : 0;
    durable_degraded += dur.degraded ? 1 : 0;
    durable_exact += (!dur.degraded && dur.rows == reference) ? 1 : 0;
    total_dropped += vol.dropped + dur.dropped;
    durable_sweep.snapshots_written += dur.stats.snapshots_written;
    durable_sweep.wal_records_appended += dur.stats.wal_records_appended;
    durable_sweep.replayed_wal_records += dur.stats.replayed_wal_records;
    durable_sweep.recovered_from_snapshot += dur.stats.recovered_from_snapshot;
    durable_sweep.recovered_clones += dur.stats.recovered_clones;
    durable_sweep.wal_records_discarded += dur.stats.wal_records_discarded;
  }

  // The sweep exercised what it claims to: messages were really dropped,
  // durable runs really wrote and replayed WAL records and snapshots, and
  // storage faults really tore some of them.
  EXPECT_GT(total_dropped, 0u);
  EXPECT_GT(durable_sweep.snapshots_written, 0u);
  EXPECT_GT(durable_sweep.wal_records_appended, 0u);
  EXPECT_GT(durable_sweep.replayed_wal_records, 0u);
  EXPECT_GT(durable_sweep.recovered_from_snapshot, 0u);
  EXPECT_GT(durable_sweep.recovered_clones, 0u);

  // The §8 headline: persistence strictly reduces degraded verdicts across
  // the sweep, and some durable runs come back bit-exact.
  EXPECT_LT(durable_degraded, volatile_degraded);
  EXPECT_GT(durable_exact, 0);
}

// ---------------------------------------------------------------------------
// Targeted §8.4 invariant: an acked clone is never lost. The schedule is
// self-tuned — scan victims and crash points until one makes the VOLATILE
// run partial (proving queued state was really destroyed), then replay the
// identical schedule durably and demand a bit-exact answer.
// ---------------------------------------------------------------------------

TEST(CrashPointScheduleTest, AckedCloneSurvivesCrashAndRestart) {
  web::UniversityOptions uni_options;
  uni_options.seed = 11;
  uni_options.departments = 2;
  uni_options.labs_per_department = 2;
  const web::UniversityWeb uni = web::GenerateUniversityWeb(uni_options);
  auto compiled = disql::CompileDisql(uni.convener_disql);
  ASSERT_TRUE(compiled.ok());

  std::set<std::string> reference;
  {
    core::Engine engine(&uni.web);
    auto outcome = engine.RunCompiled(compiled.value());
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->completed);
    reference = AllRowKeys(outcome->results);
  }

  const std::string root = [&uni] {
    auto parsed = html::ParseUrl(uni.root_url);
    EXPECT_TRUE(parsed.ok());
    return parsed->host;
  }();

  // No message faults at all: the crash is the only injected failure, so a
  // partial volatile verdict can only mean clones died in the victim's
  // admission queue (or unacked in flight to it).
  bool found = false;
  for (const std::string& victim : uni.web.Hosts()) {
    if (victim == root) continue;
    for (const int down_ms : {66, 72, 78, 84, 90, 140, 146, 152, 158}) {
      CrashSchedule sched;
      sched.victim = victim;
      sched.down = down_ms * kMillisecond;
      sched.up = sched.down + 1200 * kMillisecond;
      const uint64_t seed = 1;

      const CrashRunResult vol = RunCrashSchedule(
          uni, compiled.value(), sched, /*durable=*/false, seed,
          /*storage_faults=*/false, /*snapshot_every=*/1);
      ASSERT_TRUE(vol.completed);
      if (!vol.degraded) continue;  // crash point missed the queue: try later
      found = true;
      SCOPED_TRACE("victim " + victim + " down at " +
                   std::to_string(down_ms) + "ms");

      const CrashRunResult dur = RunCrashSchedule(
          uni, compiled.value(), sched, /*durable=*/true, seed,
          /*storage_faults=*/false, /*snapshot_every=*/1);
      ASSERT_TRUE(dur.completed);
      // The volatile run lost rows; the durable run of the SAME schedule
      // recovers every acked clone from storage and answers exactly.
      EXPECT_FALSE(dur.degraded);
      EXPECT_EQ(dur.rows, reference);
      EXPECT_GT(dur.stats.recovered_clones, 0u);
      EXPECT_GT(dur.stats.replayed_wal_records, 0u);
      break;
    }
    if (found) break;
  }
  // The scan must find at least one destructive crash point, or the test
  // proved nothing.
  ASSERT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Targeted §8.4 invariant: a recovered server never double-reports. Delivery
// acks from the victim are dropped, so the senders retransmit transfers the
// victim already admitted (and logged). The victim crashes and restarts
// before the retransmissions land: only the WAL-restored dedup state stands
// between a retransmitted clone and a second round of reports, which would
// unbalance the CHT (a hang) or duplicate answer rows.
// ---------------------------------------------------------------------------

TEST(CrashPointScheduleTest, RecoveredDedupStateAbsorbsRetransmissions) {
  web::UniversityOptions uni_options;
  uni_options.seed = 11;
  uni_options.departments = 2;
  uni_options.labs_per_department = 2;
  const web::UniversityWeb uni = web::GenerateUniversityWeb(uni_options);
  auto compiled = disql::CompileDisql(uni.convener_disql);
  ASSERT_TRUE(compiled.ok());

  std::set<std::string> reference;
  {
    core::Engine engine(&uni.web);
    auto outcome = engine.RunCompiled(compiled.value());
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->completed);
    reference = AllRowKeys(outcome->results);
  }

  const std::string root = [&uni] {
    auto parsed = html::ParseUrl(uni.root_url);
    EXPECT_TRUE(parsed.ok());
    return parsed->host;
  }();
  std::string victim;
  for (const std::string& host : uni.web.Hosts()) {
    if (host != root) victim = host;
  }
  ASSERT_FALSE(victim.empty());

  core::Engine engine(
      &uni.web, CrashPointOptions(/*durable=*/true, /*seed=*/1,
                                  /*storage_faults=*/false,
                                  /*snapshot_every=*/1));
  // Drop every delivery ack the victim sends: all of its admitted transfers
  // look undelivered to their senders, which therefore retransmit on the
  // 100 ms retry timer.
  net::FaultPlan plan(1);
  net::FaultPlan::Rule drop_victim_acks;
  drop_victim_acks.type = net::MessageType::kDeliveryAck;
  drop_victim_acks.from_host = victim;
  drop_victim_acks.max_faults = 4;
  drop_victim_acks.drop_prob = 1.0;
  plan.AddRule(drop_victim_acks);
  engine.network().SetFaultPlan(&plan);

  // Crash after admission (lab-level clones are admitted at ~140 ms of
  // virtual time), restart BEFORE the 100 ms retransmission timer fires:
  // the retransmitted transfers must hit the restarted server's recovered
  // seen-set.
  server::QueryServer* qs = engine.server_for(victim);
  ASSERT_NE(qs, nullptr);
  engine.network().ScheduleAfter(145 * kMillisecond, [qs] { qs->Crash(); });
  engine.network().ScheduleAfter(175 * kMillisecond,
                                 [qs] { EXPECT_TRUE(qs->Restart().ok()); });

  auto outcome = engine.RunCompiled(compiled.value());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(plan.stats().dropped, 0u);

  const server::QueryServerStats stats = engine.AggregateServerStats();
  // Retransmissions really happened and recovery really replayed the log.
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.replayed_wal_records, 0u);
  // No double report: the query settles exactly, with no duplicated rows —
  // a reprocessed clone would have added a second copy of its reports.
  EXPECT_TRUE(outcome->completed);
  EXPECT_FALSE(outcome->partial);
  const std::set<std::string> keys = AllRowKeys(outcome->results);
  EXPECT_EQ(keys.size(), outcome->TotalRows());
  EXPECT_EQ(keys, reference);
}

// ---------------------------------------------------------------------------
// Regression for the latent hang documented on
// QueryServerOptions::report_dropped_duplicates: the duplicate-drop report
// is itself a single point of failure — if that one message is lost after
// its connection was accepted, the CHT keeps a positive balance forever.
// On Figure 5, node 4's visit (d) is the first duplicate, so the 4th report
// from site4.example is the first duplicate-drop report.
// ---------------------------------------------------------------------------

TEST(FaultTest, DroppedDuplicateDropReportIsRetried) {
  web::Scenario scenario = web::BuildFig5Scenario();
  auto compiled = disql::CompileDisql(scenario.disql);
  ASSERT_TRUE(compiled.ok());

  net::FaultPlan::Rule drop_fourth_site4_report;
  drop_fourth_site4_report.type = net::MessageType::kReport;
  drop_fourth_site4_report.from_host = "site4.example";
  drop_fourth_site4_report.skip_first = 3;
  drop_fourth_site4_report.max_faults = 1;
  drop_fourth_site4_report.drop_prob = 1.0;

  // Fault-free reference answer.
  std::set<std::string> reference;
  {
    core::Engine engine(&scenario.web);
    auto outcome = engine.RunCompiled(compiled.value());
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->completed);
    reference = AllRowKeys(outcome->results);
  }

  // Without retries, the lost duplicate-drop report starves the CHT of a
  // delete: the network drains but the query never completes.
  {
    core::Engine engine(&scenario.web);
    net::FaultPlan plan;
    plan.AddRule(drop_fourth_site4_report);
    engine.network().SetFaultPlan(&plan);
    auto id = engine.Submit(compiled.value());
    ASSERT_TRUE(id.ok());
    engine.network().RunUntilIdle();
    EXPECT_EQ(plan.stats().dropped, 1u);
    const client::UserSite::QueryRun* run = engine.user_site().Find(id.value());
    ASSERT_NE(run, nullptr);
    EXPECT_FALSE(run->completed);
    // The other duplicate-drop report (visit e) still got through.
    EXPECT_EQ(run->stats.duplicate_drop_reports, 1u);
  }

  // With at-least-once delivery the report is retransmitted and the query
  // completes with the exact fault-free answer — no deadline GC involved.
  {
    core::Engine engine(&scenario.web, RecoveryOptions());
    net::FaultPlan plan;
    plan.AddRule(drop_fourth_site4_report);
    engine.network().SetFaultPlan(&plan);
    auto outcome = engine.RunCompiled(compiled.value());
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(plan.stats().dropped, 1u);
    EXPECT_TRUE(outcome->completed);
    EXPECT_FALSE(outcome->partial);
    EXPECT_EQ(outcome->client_stats.duplicate_drop_reports, 2u);
    EXPECT_GT(engine.AggregateServerStats().retries, 0u);
    EXPECT_EQ(AllRowKeys(outcome->results), reference);
  }
}

// ---------------------------------------------------------------------------
// The same retry machinery works over real sockets: a FaultyTransport
// wrapped around TcpTransport loses an accepted report, and the wall-clock
// retransmission timer recovers it.
// ---------------------------------------------------------------------------

TEST(FaultTest, RetryRecoversDroppedReportOverTcp) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  net::TcpTransport tcp;
  net::FaultPlan plan;
  net::FaultPlan::Rule drop_first_report;
  drop_first_report.type = net::MessageType::kReport;
  drop_first_report.max_faults = 1;
  drop_first_report.drop_prob = 1.0;
  plan.AddRule(drop_first_report);
  net::FaultyTransport faulty(&tcp, &plan);

  net::RetryOptions retry;
  retry.enabled = true;
  retry.initial_timeout = 30 * kMillisecond;
  retry.max_timeout = 120 * kMillisecond;

  server::QueryServerOptions server_options;
  server_options.retry = retry;
  std::vector<std::unique_ptr<server::QueryServer>> servers;
  for (const std::string& host : scenario.web.Hosts()) {
    auto qs = std::make_unique<server::QueryServer>(host, &scenario.web,
                                                    &faulty, server_options);
    ASSERT_TRUE(qs->Start().ok());
    servers.push_back(std::move(qs));
  }
  client::UserSiteOptions user_options;
  user_options.retry = retry;
  client::UserSite user("user.site", &faulty, user_options);

  auto compiled = disql::CompileDisql(scenario.disql);
  ASSERT_TRUE(compiled.ok());
  auto id = user.Submit(compiled.value(), "maya");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  tcp.PumpUntilIdle(300);

  const client::UserSite::QueryRun* run = user.Find(id.value());
  ASSERT_NE(run, nullptr);
  EXPECT_TRUE(run->completed);
  EXPECT_EQ(plan.stats().dropped, 1u);
  uint64_t retries = 0;
  for (auto& qs : servers) retries += qs->stats().retries;
  EXPECT_GE(retries, 1u);

  const std::set<std::string> keys = AllRowKeys(run->results);
  for (const auto& [url, name] : scenario.expected_conveners) {
    bool found = false;
    for (const std::string& key : keys) {
      if (key.find(url) != std::string::npos &&
          key.find(name) != std::string::npos) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << url << " / " << name;
  }
  for (auto& qs : servers) qs->Stop();
}

// ---------------------------------------------------------------------------
// Site churn over real sockets (§10 companion to the retry test above): a
// TcpTransport-backed query server restarts mid-query. While it is down its
// clones bounce with real connection-refused errors, which the protocol
// converts into undeliverable reports — the query drains with the outage
// named in the outcome (fallback nodes on exactly the restarted host),
// never a hang. After the restart the very same deployment answers the
// query exactly.
// ---------------------------------------------------------------------------

TEST(FaultTest, ServerRestartMidQueryOverTcpIsNamedNotHung) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  net::TcpTransport tcp;

  net::RetryOptions retry;
  retry.enabled = true;
  retry.initial_timeout = 30 * kMillisecond;
  retry.max_timeout = 120 * kMillisecond;

  server::QueryServerOptions server_options;
  server_options.retry = retry;
  std::map<std::string, std::unique_ptr<server::QueryServer>> servers;
  for (const std::string& host : scenario.web.Hosts()) {
    auto qs = std::make_unique<server::QueryServer>(host, &scenario.web,
                                                    &tcp, server_options);
    ASSERT_TRUE(qs->Start().ok());
    servers.emplace(host, std::move(qs));
  }
  client::UserSiteOptions user_options;
  user_options.retry = retry;
  client::UserSite user("user.site", &tcp, user_options);

  auto compiled = disql::CompileDisql(scenario.disql);
  ASSERT_TRUE(compiled.ok());

  // The victim hosts a convener page: a forward target, not the StartNode.
  auto victim_url = html::ParseUrl(scenario.expected_conveners[0].first);
  ASSERT_TRUE(victim_url.ok());
  const std::string victim_host = victim_url->host;
  auto start_url = html::ParseUrl(scenario.start_url);
  ASSERT_TRUE(start_url.ok());
  ASSERT_NE(victim_host, start_url->host);
  server::QueryServer* victim = servers.at(victim_host).get();

  // Crash the victim after submission but before any forward can connect —
  // the restart happens mid-query from the protocol's point of view.
  auto id = user.Submit(compiled.value(), "maya");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  victim->Crash();
  tcp.PumpUntilIdle(300);

  const client::UserSite::QueryRun* run = user.Find(id.value());
  ASSERT_NE(run, nullptr);
  // Drained, not hung — and the outage is named: every fallback node sits
  // on the crashed host.
  EXPECT_TRUE(run->completed);
  EXPECT_GT(run->stats.undeliverable_reports, 0u);
  ASSERT_FALSE(run->fallback_nodes.empty());
  for (const query::ChtEntry& entry : run->fallback_nodes) {
    auto parsed = html::ParseUrl(entry.node_url);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->host, victim_host) << entry.node_url;
  }
  const std::set<std::string> degraded_keys = AllRowKeys(run->results);
  for (const auto& [url, name] : scenario.expected_conveners) {
    auto parsed = html::ParseUrl(url);
    ASSERT_TRUE(parsed.ok());
    if (parsed->host != victim_host) continue;
    for (const std::string& key : degraded_keys) {
      EXPECT_EQ(key.find(name), std::string::npos)
          << "row from the crashed host survived: " << key;
    }
  }

  // Restart and ask again: the recovered deployment is exact.
  ASSERT_TRUE(victim->Restart().ok());
  auto id2 = user.Submit(compiled.value(), "maya");
  ASSERT_TRUE(id2.ok()) << id2.status().ToString();
  tcp.PumpUntilIdle(300);

  const client::UserSite::QueryRun* rerun = user.Find(id2.value());
  ASSERT_NE(rerun, nullptr);
  EXPECT_TRUE(rerun->completed);
  EXPECT_TRUE(rerun->fallback_nodes.empty());
  const std::set<std::string> keys = AllRowKeys(rerun->results);
  for (const auto& [url, name] : scenario.expected_conveners) {
    bool found = false;
    for (const std::string& key : keys) {
      if (key.find(url) != std::string::npos &&
          key.find(name) != std::string::npos) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << url << " / " << name;
  }
  for (auto& [host, qs] : servers) qs->Stop();
}

}  // namespace
}  // namespace webdis
