// Fault injection and recovery: randomized fault schedules over the
// university topology asserting a protocol-invariant oracle, the regression
// for the duplicate-drop-report hang documented in QueryServerOptions, and
// retry recovery through a FaultyTransport over real TCP sockets.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/user_site.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/engine.h"
#include "disql/compiler.h"
#include "net/fault.h"
#include "net/tcp.h"
#include "server/query_server.h"
#include "web/topologies.h"
#include "web/university.h"

namespace webdis {
namespace {

std::set<std::string> AllRowKeys(
    const std::vector<relational::ResultSet>& results) {
  std::set<std::string> keys;
  for (const relational::ResultSet& rs : results) {
    for (const relational::Tuple& row : rs.rows) {
      std::string key = Join(rs.column_labels, ",") + ":";
      for (const relational::Value& v : row) key += v.ToString() + "|";
      keys.insert(std::move(key));
    }
  }
  return keys;
}

core::EngineOptions RecoveryOptions() {
  core::EngineOptions options;
  options.server.retry.enabled = true;
  options.server.retry.initial_timeout = 100 * kMillisecond;
  options.server.retry.max_timeout = 400 * kMillisecond;
  options.server.retry.max_attempts = 4;
  options.client.retry = options.server.retry;
  // Well past the retry window: GC only ever fires on genuinely dead keys.
  options.client.entry_deadline = 10 * kSecond;
  return options;
}

// ---------------------------------------------------------------------------
// The acceptance oracle of the fault-injection subsystem: under ANY injected
// schedule of drops, duplications, delays, partitions, and crash/restarts —
// with retries and deadline GC enabled — every query terminates, and either
// the answer is exactly the fault-free answer or the outcome is explicitly
// degraded (partial with named unreachable hosts, or fallback nodes). Never
// a hang, never a duplicated answer row.
// ---------------------------------------------------------------------------

TEST(FaultScheduleTest, RandomizedSchedulesPreserveProtocolInvariants) {
  web::UniversityOptions uni_options;
  uni_options.seed = 11;
  uni_options.departments = 2;
  uni_options.labs_per_department = 2;
  const web::UniversityWeb uni = web::GenerateUniversityWeb(uni_options);
  auto compiled = disql::CompileDisql(uni.convener_disql);
  ASSERT_TRUE(compiled.ok());

  // Fault-free reference answer.
  std::set<std::string> reference;
  {
    core::Engine engine(&uni.web);
    auto outcome = engine.RunCompiled(compiled.value());
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(outcome->completed);
    reference = AllRowKeys(outcome->results);
    ASSERT_FALSE(reference.empty());
  }

  const std::vector<std::string> hosts = uni.web.Hosts();
  ASSERT_GE(hosts.size(), 2u);

  uint64_t total_dropped = 0;
  int degraded_runs = 0;
  int exact_runs = 0;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("fault schedule seed " + std::to_string(seed));
    Rng rng(seed * 7919);

    core::Engine engine(&uni.web, RecoveryOptions());
    net::FaultPlan plan(seed);

    // Random loss/duplication on each protocol message type. Scoped by type
    // so the data-shipping fallback's HTTP traffic stays clean.
    for (net::MessageType type :
         {net::MessageType::kWebQuery, net::MessageType::kReport,
          net::MessageType::kDeliveryAck}) {
      net::FaultPlan::Rule rule;
      rule.type = type;
      rule.drop_prob = 0.02 + 0.20 * rng.NextDouble();
      rule.duplicate_prob = 0.10 * rng.NextDouble();
      plan.AddRule(rule);
    }
    // Random report delays shuffle add/delete arrival order at the CHT.
    net::FaultPlan::Rule delay_rule;
    delay_rule.type = net::MessageType::kReport;
    delay_rule.delay_prob = 0.25;
    delay_rule.delay = rng.UniformRange(1, 8) * kMillisecond;
    plan.AddRule(delay_rule);
    engine.network().SetFaultPlan(&plan);

    // Half the schedules cut a link between two web sites, healed mid-run.
    if (rng.Bernoulli(0.5)) {
      const std::string a = rng.Pick(hosts);
      const std::string b = rng.Pick(hosts);
      if (a != b) {
        plan.Partition(a, b);
        engine.network().ScheduleAfter(
            rng.UniformRange(100, 900) * kMillisecond,
            [&plan, a, b] { plan.Heal(a, b); });
      }
    }

    // Half the schedules crash one query server mid-run (log table and all
    // volatile delivery state lost) and restart it later.
    if (rng.Bernoulli(0.5)) {
      const std::string victim = rng.Pick(engine.participating_hosts());
      server::QueryServer* qs = engine.server_for(victim);
      ASSERT_NE(qs, nullptr);
      const SimDuration down = rng.UniformRange(50, 300) * kMillisecond;
      const SimDuration up = down + rng.UniformRange(100, 700) * kMillisecond;
      engine.network().ScheduleAfter(down, [qs] { qs->Crash(); });
      engine.network().ScheduleAfter(
          up, [qs] { EXPECT_TRUE(qs->Restart().ok()); });
    }

    auto outcome = engine.RunCompiled(compiled.value());
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

    // Invariant 1: never a hang — every schedule reaches a verdict.
    EXPECT_TRUE(outcome->completed);

    // Invariant 2: never a duplicated answer row.
    const std::set<std::string> keys = AllRowKeys(outcome->results);
    EXPECT_EQ(keys.size(), outcome->TotalRows());

    // Invariant 3: the answer is exact unless the outcome says otherwise.
    const bool degraded =
        outcome->partial || outcome->fallback_node_count > 0;
    if (degraded) {
      ++degraded_runs;
      for (const std::string& key : keys) {
        EXPECT_TRUE(reference.contains(key)) << key;
      }
      if (outcome->partial) {
        EXPECT_FALSE(outcome->unreachable_hosts.empty());
      }
    } else {
      ++exact_runs;
      EXPECT_EQ(keys, reference);
    }
    total_dropped += plan.stats().dropped;
  }

  // The sweep was no placebo: messages really were lost, some schedules were
  // survivable via retries alone (exact answers) and some were not
  // (explicitly degraded outcomes). Deterministic given the seeds above.
  EXPECT_GT(total_dropped, 0u);
  EXPECT_GT(exact_runs, 0);
  EXPECT_GT(degraded_runs, 0);
}

// ---------------------------------------------------------------------------
// Regression for the latent hang documented on
// QueryServerOptions::report_dropped_duplicates: the duplicate-drop report
// is itself a single point of failure — if that one message is lost after
// its connection was accepted, the CHT keeps a positive balance forever.
// On Figure 5, node 4's visit (d) is the first duplicate, so the 4th report
// from site4.example is the first duplicate-drop report.
// ---------------------------------------------------------------------------

TEST(FaultTest, DroppedDuplicateDropReportIsRetried) {
  web::Scenario scenario = web::BuildFig5Scenario();
  auto compiled = disql::CompileDisql(scenario.disql);
  ASSERT_TRUE(compiled.ok());

  net::FaultPlan::Rule drop_fourth_site4_report;
  drop_fourth_site4_report.type = net::MessageType::kReport;
  drop_fourth_site4_report.from_host = "site4.example";
  drop_fourth_site4_report.skip_first = 3;
  drop_fourth_site4_report.max_faults = 1;
  drop_fourth_site4_report.drop_prob = 1.0;

  // Fault-free reference answer.
  std::set<std::string> reference;
  {
    core::Engine engine(&scenario.web);
    auto outcome = engine.RunCompiled(compiled.value());
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->completed);
    reference = AllRowKeys(outcome->results);
  }

  // Without retries, the lost duplicate-drop report starves the CHT of a
  // delete: the network drains but the query never completes.
  {
    core::Engine engine(&scenario.web);
    net::FaultPlan plan;
    plan.AddRule(drop_fourth_site4_report);
    engine.network().SetFaultPlan(&plan);
    auto id = engine.Submit(compiled.value());
    ASSERT_TRUE(id.ok());
    engine.network().RunUntilIdle();
    EXPECT_EQ(plan.stats().dropped, 1u);
    const client::UserSite::QueryRun* run = engine.user_site().Find(id.value());
    ASSERT_NE(run, nullptr);
    EXPECT_FALSE(run->completed);
    // The other duplicate-drop report (visit e) still got through.
    EXPECT_EQ(run->stats.duplicate_drop_reports, 1u);
  }

  // With at-least-once delivery the report is retransmitted and the query
  // completes with the exact fault-free answer — no deadline GC involved.
  {
    core::Engine engine(&scenario.web, RecoveryOptions());
    net::FaultPlan plan;
    plan.AddRule(drop_fourth_site4_report);
    engine.network().SetFaultPlan(&plan);
    auto outcome = engine.RunCompiled(compiled.value());
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(plan.stats().dropped, 1u);
    EXPECT_TRUE(outcome->completed);
    EXPECT_FALSE(outcome->partial);
    EXPECT_EQ(outcome->client_stats.duplicate_drop_reports, 2u);
    EXPECT_GT(engine.AggregateServerStats().retries, 0u);
    EXPECT_EQ(AllRowKeys(outcome->results), reference);
  }
}

// ---------------------------------------------------------------------------
// The same retry machinery works over real sockets: a FaultyTransport
// wrapped around TcpTransport loses an accepted report, and the wall-clock
// retransmission timer recovers it.
// ---------------------------------------------------------------------------

TEST(FaultTest, RetryRecoversDroppedReportOverTcp) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  net::TcpTransport tcp;
  net::FaultPlan plan;
  net::FaultPlan::Rule drop_first_report;
  drop_first_report.type = net::MessageType::kReport;
  drop_first_report.max_faults = 1;
  drop_first_report.drop_prob = 1.0;
  plan.AddRule(drop_first_report);
  net::FaultyTransport faulty(&tcp, &plan);

  net::RetryOptions retry;
  retry.enabled = true;
  retry.initial_timeout = 30 * kMillisecond;
  retry.max_timeout = 120 * kMillisecond;

  server::QueryServerOptions server_options;
  server_options.retry = retry;
  std::vector<std::unique_ptr<server::QueryServer>> servers;
  for (const std::string& host : scenario.web.Hosts()) {
    auto qs = std::make_unique<server::QueryServer>(host, &scenario.web,
                                                    &faulty, server_options);
    ASSERT_TRUE(qs->Start().ok());
    servers.push_back(std::move(qs));
  }
  client::UserSiteOptions user_options;
  user_options.retry = retry;
  client::UserSite user("user.site", &faulty, user_options);

  auto compiled = disql::CompileDisql(scenario.disql);
  ASSERT_TRUE(compiled.ok());
  auto id = user.Submit(compiled.value(), "maya");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  tcp.PumpUntilIdle(300);

  const client::UserSite::QueryRun* run = user.Find(id.value());
  ASSERT_NE(run, nullptr);
  EXPECT_TRUE(run->completed);
  EXPECT_EQ(plan.stats().dropped, 1u);
  uint64_t retries = 0;
  for (auto& qs : servers) retries += qs->stats().retries;
  EXPECT_GE(retries, 1u);

  const std::set<std::string> keys = AllRowKeys(run->results);
  for (const auto& [url, name] : scenario.expected_conveners) {
    bool found = false;
    for (const std::string& key : keys) {
      if (key.find(url) != std::string::npos &&
          key.find(name) != std::string::npos) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << url << " / " << name;
  }
  for (auto& qs : servers) qs->Stop();
}

}  // namespace
}  // namespace webdis
