// Randomized stress tests: many seeds, random webs, random latency jitter
// (message reordering), every protocol option combination — the distributed
// engine must always terminate, always detect completion, and always return
// exactly the rows the centralized reference computes.
#include <gtest/gtest.h>

#include <set>

#include "common/strings.h"
#include "core/engine.h"
#include "serialize/encoder.h"
#include "server/db_constructor.h"
#include "web/synth.h"

namespace webdis {
namespace {

std::set<std::string> RowKeys(
    const std::vector<relational::ResultSet>& results) {
  std::set<std::string> keys;
  for (const relational::ResultSet& rs : results) {
    for (const relational::Tuple& row : rs.rows) {
      std::string key = Join(rs.column_labels, ",") + ":";
      for (const relational::Value& v : row) key += v.ToString() + "|";
      keys.insert(std::move(key));
    }
  }
  return keys;
}

std::string TwoStageQuery() {
  return "select d1.url, d2.url\n"
         "from document d1 such that \"" +
         web::SynthUrl(0, 0) +
         "\" (L|G)*2 d1,\n"
         "where d1.title contains \"alpha\"\n"
         "     document d2 such that d1 (L|G).(L*1) d2,\n"
         "     relinfon r such that r.delimiter = \"hr\",\n"
         "where r.text contains \"beta\"\n";
}

/// Seed-parameterized equivalence sweep under heavy jitter.
class JitterSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JitterSweepTest, CompletesAndMatchesReferenceUnderReordering) {
  const uint64_t seed = GetParam();
  web::SynthWebOptions web_options;
  web_options.seed = seed;
  web_options.num_sites = 2 + static_cast<int>(seed % 7);
  web_options.docs_per_site = 3 + static_cast<int>(seed % 9);
  web_options.local_links_per_doc = 1 + static_cast<int>(seed % 4);
  web_options.global_links_per_doc = 1 + static_cast<int>(seed % 3);
  const web::WebGraph web = web::GenerateSynthWeb(web_options);
  auto compiled = disql::CompileDisql(TwoStageQuery());
  ASSERT_TRUE(compiled.ok());

  // Reference answer from the centralized engine.
  auto reference = core::RunDataShippingBaseline(web, compiled.value());
  ASSERT_TRUE(reference.ok());
  const std::set<std::string> expected = RowKeys(reference->outcome.results);

  // Distributed run with jitter large enough to reorder everything.
  core::EngineOptions options;
  options.network.latency_jitter = 200 * kMillisecond;
  options.network.jitter_seed = seed * 31 + 7;
  core::Engine engine(&web, options);
  auto outcome = engine.RunCompiled(compiled.value());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->completed) << "seed " << seed;
  EXPECT_EQ(RowKeys(outcome->results), expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitterSweepTest,
                         ::testing::Range<uint64_t>(1, 21));

/// Option-matrix sweep: every combination of the protocol toggles must give
/// the same answers and (with drop-reports on) detect completion.
class OptionMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(OptionMatrixTest, AllRobustConfigurationsAgree) {
  const int bits = GetParam();
  web::SynthWebOptions web_options;
  web_options.seed = 1234;
  web_options.num_sites = 5;
  web_options.docs_per_site = 7;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);
  auto compiled = disql::CompileDisql(TwoStageQuery());
  ASSERT_TRUE(compiled.ok());

  core::EngineOptions options;
  options.server.dedup_enabled = bits & 1;
  options.server.batch_clones_per_site = bits & 2;
  options.server.batch_reports = bits & 4;
  options.server.cache_databases = bits & 8;
  options.client.cht_dedup = bits & 16;
  options.network.latency_jitter = 30 * kMillisecond;

  core::Engine engine(&web, options);
  auto outcome = engine.RunCompiled(compiled.value());
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed) << "bits " << bits;

  // One canonical run to compare against.
  core::Engine reference(&web);
  auto expected = reference.RunCompiled(compiled.value());
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(RowKeys(outcome->results), RowKeys(expected->results))
      << "bits " << bits;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, OptionMatrixTest,
                         ::testing::Range(0, 32));

/// Unbounded PREs on cyclic webs terminate because the log table recognizes
/// the repeated (state, node) pairs — the derivative of L* is L*.
TEST(UnboundedPreTest, TerminatesOnCyclicWebWithDedup) {
  web::SynthWebOptions web_options;
  web_options.seed = 5;
  web_options.num_sites = 4;
  web_options.docs_per_site = 6;
  web_options.local_links_per_doc = 3;  // dense local cycles
  const web::WebGraph web = web::GenerateSynthWeb(web_options);
  const std::string disql =
      "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
      "\" L* d where d.title contains \"alpha\"";
  core::Engine engine(&web);
  auto outcome = engine.Run(disql);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  // Every document on site 0 reachable over local links was considered;
  // dedup kept the unbounded traversal finite.
  EXPECT_GT(outcome->server_stats.duplicates_dropped, 0u);
}

/// Graceful recovery (§7.1): a crashed site stalls the query; AbandonStalled
/// hands the outstanding nodes to the centralized fallback and the final
/// answer still matches the reference.
TEST(NodeFailureRecoveryTest, AbandonStalledRecoversAnswers) {
  web::SynthWebOptions web_options;
  web_options.seed = 77;
  web_options.num_sites = 6;
  web_options.docs_per_site = 6;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);
  const std::string disql =
      "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
      "\" (L|G)*3 d where d.title contains \"alpha\"";
  auto compiled = disql::CompileDisql(disql);
  ASSERT_TRUE(compiled.ok());

  auto reference = core::RunDataShippingBaseline(web, compiled.value());
  ASSERT_TRUE(reference.ok());

  core::Engine engine(&web);
  auto id = engine.Submit(compiled.value());
  ASSERT_TRUE(id.ok());
  // Kill a site mid-query: its WEBDIS daemon dies but (as in reality) the
  // plain web server keeps serving documents, so fallback can reach them.
  for (int i = 0; i < 6; ++i) engine.network().RunOne();
  server::QueryServer* victim = engine.server_for(web::SynthHost(2));
  ASSERT_NE(victim, nullptr);
  victim->Stop();
  engine.network().RunUntilIdle();

  const client::UserSite::QueryRun* run = engine.user_site().Find(id.value());
  if (!run->completed) {
    const size_t abandoned = engine.user_site().AbandonStalled(id.value());
    EXPECT_GT(abandoned, 0u);
  }
  EXPECT_TRUE(run->completed);

  // Centralized continuation over HTTP for everything abandoned.
  baseline::DataShippingEngine fallback(core::Engine::kClientHost,
                                        &engine.network());
  auto recovered = fallback.RunFrom(run->compiled, run->fallback_nodes);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  std::set<std::string> combined = RowKeys(run->results);
  for (const std::string& key : RowKeys(recovered->results)) {
    combined.insert(key);
  }
  EXPECT_EQ(combined, RowKeys(reference->outcome.results));
}

/// HTML fuzz: random byte soup must never crash the tokenizer, parser, or
/// database constructor.
TEST(HtmlFuzzTest, RandomBytesNeverCrash) {
  Rng rng(20260704);
  const html::Url url = html::ParseUrl("http://fuzz.example/x").value();
  for (int round = 0; round < 200; ++round) {
    std::string soup;
    const size_t len = rng.Uniform(400);
    for (size_t i = 0; i < len; ++i) {
      // Bias toward markup characters to hit tag paths.
      const char* alphabet = "<>/=\"'abAB &#;-!xyz\n\t";
      soup.push_back(alphabet[rng.Uniform(21)]);
    }
    const html::ParsedDocument doc = html::ParseDocument(url, soup);
    const relational::Database db = server::BuildNodeDatabase(doc);
    EXPECT_NE(db.Find("document"), nullptr);
  }
}

/// Wire fuzz: random bytes fed to every decoder must error out, not crash.
TEST(WireFuzzTest, RandomBytesRejectedCleanly) {
  Rng rng(987);
  for (int round = 0; round < 300; ++round) {
    std::vector<uint8_t> bytes(rng.Uniform(200));
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng.Next());
    {
      serialize::Decoder dec(bytes);
      query::WebQuery out;
      (void)query::WebQuery::DecodeFrom(&dec, &out);
    }
    {
      serialize::Decoder dec(bytes);
      query::QueryReport out;
      (void)query::QueryReport::DecodeFrom(&dec, &out);
    }
    {
      serialize::Decoder dec(bytes);
      (void)pre::Pre::DecodeFrom(&dec);
    }
    {
      serialize::Decoder dec(bytes);
      (void)relational::Expr::DecodeFrom(&dec);
    }
  }
}

/// A malicious/garbled clone delivered to a live server must be rejected
/// without disturbing subsequent well-formed queries.
TEST(WireFuzzTest, GarbageToLiveServerThenRealQuery) {
  web::SynthWebOptions web_options;
  web_options.seed = 3;
  web_options.num_sites = 3;
  web_options.docs_per_site = 4;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);
  core::Engine engine(&web);
  Rng rng(55);
  for (int i = 0; i < 20; ++i) {
    std::vector<uint8_t> garbage(rng.Uniform(100));
    for (uint8_t& b : garbage) b = static_cast<uint8_t>(rng.Next());
    (void)engine.network().Send(
        net::Endpoint{"attacker", 666},
        net::Endpoint{web::SynthHost(0), server::kQueryServerPort},
        net::MessageType::kWebQuery, std::move(garbage));
  }
  engine.network().RunUntilIdle();
  const std::string disql =
      "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
      "\" L*1 d";
  auto outcome = engine.Run(disql);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  EXPECT_GT(engine.AggregateServerStats().decode_errors, 0u);
}

}  // namespace
}  // namespace webdis
